//! Error-path tests against the real `wfp` binary: every malformed input
//! must exit non-zero with a diagnostic on stderr (and nothing fatal on
//! stdout), because scripted pipelines branch on exactly that contract.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

use wfp_model::fixtures::{paper_run, paper_spec};
use wfp_model::io::{run_to_xml, spec_to_xml};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("wfp-cli-bin-tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn paper_files() -> (PathBuf, PathBuf) {
    let spec = paper_spec();
    let run = paper_run(&spec);
    let sp = tmp("spec.xml");
    let rp = tmp("run.xml");
    fs::write(&sp, spec_to_xml(&spec)).unwrap();
    fs::write(&rp, run_to_xml(&run)).unwrap();
    (sp, rp)
}

fn wfp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wfp"))
        .args(args)
        .output()
        .expect("wfp binary runs")
}

/// Asserts non-zero exit and that stderr mentions every needle.
fn assert_fails(args: &[&str], needles: &[&str]) {
    let out = wfp(args);
    assert!(
        !out.status.success(),
        "{args:?} must exit non-zero; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.trim().is_empty(), "{args:?} must print a diagnostic");
    for needle in needles {
        assert!(
            stderr.contains(needle),
            "{args:?}: stderr {stderr:?} must mention {needle:?}"
        );
    }
}

// ---------------- wfp query --pairs ----------------------------------

#[test]
fn query_pairs_malformed_line() {
    let (sp, rp) = paper_files();
    let pf = tmp("arity.txt");
    fs::write(&pf, "b1 c1\nb1 b2 b3\n").unwrap();
    assert_fails(
        &["query", sp.to_str().unwrap(), rp.to_str().unwrap(), "--pairs", pf.to_str().unwrap()],
        &[":2:", "expected two vertex names"],
    );
}

#[test]
fn query_pairs_out_of_range_vertex() {
    let (sp, rp) = paper_files();
    let pf = tmp("range.txt");
    // b9 is out of range: the paper run executes b three times
    fs::write(&pf, "b1 b9\n").unwrap();
    assert_fails(
        &["query", sp.to_str().unwrap(), rp.to_str().unwrap(), "--pairs", pf.to_str().unwrap()],
        &["b9", "no vertex"],
    );
}

#[test]
fn query_pairs_empty_file() {
    let (sp, rp) = paper_files();
    let pf = tmp("empty.txt");
    fs::write(&pf, "# nothing but comments\n\n").unwrap();
    assert_fails(
        &["query", sp.to_str().unwrap(), rp.to_str().unwrap(), "--pairs", pf.to_str().unwrap()],
        &["no queries"],
    );
}

#[test]
fn query_pairs_missing_file() {
    let (sp, rp) = paper_files();
    assert_fails(
        &["query", sp.to_str().unwrap(), rp.to_str().unwrap(), "--pairs", "/nonexistent/p.txt"],
        &["cannot read"],
    );
}

// ---------------- wfp ingest -----------------------------------------

#[test]
fn ingest_unknown_module_in_log() {
    let (sp, _) = paper_files();
    let ep = tmp("unknown.events");
    fs::write(&ep, "exec nosuchmodule\n").unwrap();
    assert_fails(
        &["ingest", sp.to_str().unwrap(), ep.to_str().unwrap()],
        &["line 1", "nosuchmodule"],
    );
}

#[test]
fn ingest_protocol_violation_names_the_event() {
    let (sp, _) = paper_files();
    let ep = tmp("protocol.events");
    // module b executes inside L2, not at the root: WrongHome
    fs::write(&ep, "exec a\nexec b\n").unwrap();
    assert_fails(
        &["ingest", sp.to_str().unwrap(), ep.to_str().unwrap()],
        &["event #2", "foreign copy"],
    );
}

#[test]
fn ingest_probe_on_unexecuted_vertex() {
    let (sp, _) = paper_files();
    let ep = tmp("short.events");
    fs::write(&ep, "exec a\n").unwrap();
    let pp = tmp("early.probes");
    fs::write(&pp, "1 a1 h1\n").unwrap();
    assert_fails(
        &[
            "ingest",
            sp.to_str().unwrap(),
            ep.to_str().unwrap(),
            "--probe",
            pp.to_str().unwrap(),
        ],
        &["h1", "not executed"],
    );
}

#[test]
fn ingest_malformed_probe_line() {
    let (sp, _) = paper_files();
    let ep = tmp("ok.events");
    fs::write(&ep, "exec a\n").unwrap();
    let pp = tmp("bad.probes");
    fs::write(&pp, "soon a1 a1\n").unwrap();
    assert_fails(
        &[
            "ingest",
            sp.to_str().unwrap(),
            ep.to_str().unwrap(),
            "--probe",
            pp.to_str().unwrap(),
        ],
        &["bad event number"],
    );
}

#[test]
fn ingest_missing_event_log() {
    let (sp, _) = paper_files();
    assert_fails(
        &["ingest", sp.to_str().unwrap(), "/nonexistent/run.events"],
        &["cannot read"],
    );
}

// ---------------- wfp fleet --save / --load ---------------------------

#[test]
fn fleet_load_missing_snapshot_dir() {
    let (sp, _) = paper_files();
    assert_fails(
        &["fleet", sp.to_str().unwrap(), "--load", "/nonexistent/snapdir"],
        &["cannot read", "fleet.wfps"],
    );
}

#[test]
fn fleet_load_rejects_corrupt_snapshot() {
    let (sp, _) = paper_files();
    let dir = tmp("corrupt-snap");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("fleet.wfps"), b"WFPSgarbage-that-is-not-a-table").unwrap();
    assert_fails(
        &["fleet", sp.to_str().unwrap(), "--load", dir.to_str().unwrap()],
        &["fleet.wfps"],
    );
}

#[test]
fn fleet_load_conflicts_with_run_sources() {
    let (sp, rp) = paper_files();
    let dir = tmp("unused-snap");
    assert_fails(
        &[
            "fleet",
            sp.to_str().unwrap(),
            rp.to_str().unwrap(),
            "--load",
            dir.to_str().unwrap(),
        ],
        &["--load", "--runs"],
    );
}

#[test]
fn fleet_save_load_round_trip_exits_zero() {
    let (sp, rp) = paper_files();
    let dir = tmp("roundtrip-snap");
    let out = wfp(&[
        "fleet",
        sp.to_str().unwrap(),
        rp.to_str().unwrap(),
        "--runs",
        "2",
        "--target",
        "40",
        "--probes",
        "500",
        "--scheme",
        "bfs",
        "--save",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("saved fleet snapshot"), "{stdout}");
    assert!(dir.join("fleet.wfps").is_file());

    let out = wfp(&[
        "fleet",
        sp.to_str().unwrap(),
        "--probes",
        "500",
        "--load",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("restored fleet"), "{stdout}");
    assert!(stdout.contains("3 runs"), "{stdout}");
    assert!(stdout.contains("no re-labeling"), "{stdout}");
}

// ---------------- wfp registry ----------------------------------------

#[test]
fn registry_load_missing_directory() {
    assert_fails(
        &["registry", "--load", "/nonexistent/regdir"],
        &["/nonexistent/regdir", "registry.manifest"],
    );
}

#[test]
fn registry_load_rejects_corrupt_manifest() {
    let dir = tmp("corrupt-registry");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("registry.manifest"), b"WFPSnot-a-real-manifest").unwrap();
    assert_fails(
        &["registry", "--load", dir.to_str().unwrap()],
        &["snapshot format"],
    );
}

#[test]
fn registry_load_conflicts_with_spec_sources() {
    let (sp, _) = paper_files();
    let dir = tmp("unused-registry");
    assert_fails(
        &["registry", sp.to_str().unwrap(), "--load", dir.to_str().unwrap()],
        &["--load", "spec.xml"],
    );
}

#[test]
fn registry_without_specs_is_an_error() {
    assert_fails(&["registry"], &["no specs"]);
}

#[test]
fn registry_rejects_malformed_budget() {
    assert_fails(
        &["registry", "--gen-specs", "1", "--budget", "12xyz"],
        &["invalid --budget", "12xyz"],
    );
    assert_fails(
        &["registry", "--gen-specs", "1", "--budget", "999999999999G"],
        &["--budget", "overflows"],
    );
}

#[test]
fn registry_save_load_round_trip_exits_zero() {
    let dir = tmp("roundtrip-registry");
    let out = wfp(&[
        "registry",
        "--gen-specs",
        "3",
        "--runs",
        "2",
        "--target",
        "60",
        "--probes",
        "400",
        "--save",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("registry: 3 specs"), "{stdout}");
    assert!(stdout.contains("saved registry to"), "{stdout}");
    assert!(dir.join("registry.manifest").is_file());
    let snapshots = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref().unwrap().path().extension().is_some_and(|x| x == "wfps")
        })
        .count();
    assert_eq!(snapshots, 3, "one *.wfps per spec");

    // reopening is lazy, answers the same traffic, and a tight budget
    // forces evictions without changing the exit code
    let out = wfp(&[
        "registry",
        "--probes",
        "400",
        "--budget",
        "24K",
        "--load",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 loaded (lazy)"), "{stdout}");
    assert!(stdout.contains("lazy-loaded"), "{stdout}");
    assert!(stdout.contains("lazy loads"), "{stdout}");
}

// ---------------- sanity: the happy path stays green ------------------

#[test]
fn ingest_happy_path_exits_zero() {
    let (sp, _) = paper_files();
    let ep = tmp("happy.events");
    fs::write(
        &ep,
        "exec a\nbegin-group 0\nbegin-copy\nbegin-group 1\nbegin-copy\n\
         exec b\nexec c\nend-copy\nend-group\nend-copy\nend-group\nexec d\n",
    )
    .unwrap();
    let pp = tmp("happy.probes");
    fs::write(&pp, "7 b1 c1\n").unwrap();
    let out = wfp(&[
        "ingest",
        sp.to_str().unwrap(),
        ep.to_str().unwrap(),
        "--probe",
        pp.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("@7 b1 c1 true"), "{stdout}");
}
