//! Implementation of the `wfp` command-line tool.
//!
//! Commands operate on the XML formats of `wfp-model::io` and the packed
//! label files of `wfp-skl`:
//!
//! ```sh
//! wfp validate spec.xml                 # validate a specification
//! wfp inspect  spec.xml                 # characteristics + hierarchy
//! wfp gen-spec -n 100 -m 200 -k 10 -d 4 --seed 1 -o spec.xml
//! wfp gen-run  spec.xml --target 10000 --seed 2 -o run.xml
//! wfp gen-events spec.xml --target 10000 -o run.events   # streaming log
//! wfp plan     spec.xml run.xml         # recovered execution-plan stats
//! wfp label    spec.xml run.xml -o labels.wfpl [--scheme tcm]
//! wfp query    spec.xml run.xml b3 h1   # reachability between executions
//! wfp query    spec.xml run.xml --pairs pairs.txt [--threads 8]  # batch mode
//! wfp ingest   spec.xml run.events --probe probes.txt   # query-while-running
//! wfp fleet    spec.xml --runs 8 --target 10000 --probes 1000000  # multi-run serving
//! wfp fleet    spec.xml --runs 8 --save snap/    # persist the serving fleet
//! wfp fleet    spec.xml --load snap/             # restore it warm, no re-labeling
//! wfp serve    --gen-specs 4 --runs 4 --probes 200000 --clients 4  # request/response loop
//! ```
//!
//! All command logic lives in this library (returning strings/errors) so it
//! is unit-testable; the binary is a thin wrapper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use wfp_gen::{
    generate_fleet, generate_run_with_target, generate_spec, GeneratedRun, SpecGenConfig,
};
use wfp_model::io::{
    events_from_log, events_to_log, plan_to_events, run_from_xml, run_to_xml, spec_from_xml,
    spec_to_xml, RunEvent,
};
use wfp_model::{Run, RunVertexId, Specification};
use wfp_skl::fleet::{FleetEngine, RunId};
use wfp_skl::{
    construct_plan_with_stats, label_run, LabeledRun, LiveRun, QueryEngine, QueryPath,
    RunLabel, SpecContext, SpecId,
};
use wfp_speclabel::{SchemeKind, SpecScheme};

/// A CLI failure, printed to stderr with exit code 1.
pub type CliError = Box<dyn std::error::Error>;

fn load_spec(path: &Path) -> Result<Specification, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(spec_from_xml(&text)?)
}

fn load_run(path: &Path, spec: &Specification) -> Result<Run, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(run_from_xml(&text, spec)?)
}

/// Parses a scheme name (`tcm`, `bfs`, `dfs`, `treecover`, `chain`).
pub fn parse_scheme(name: &str) -> Result<SchemeKind, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "tcm" => Ok(SchemeKind::Tcm),
        "bfs" => Ok(SchemeKind::Bfs),
        "dfs" => Ok(SchemeKind::Dfs),
        "treecover" => Ok(SchemeKind::TreeCover),
        "chain" => Ok(SchemeKind::Chain),
        "2hop" | "hop2" => Ok(SchemeKind::Hop2),
        other => Err(format!(
            "unknown scheme {other:?} (expected tcm|bfs|dfs|treecover|chain|2hop)"
        )
        .into()),
    }
}

/// `wfp validate <spec.xml>`
pub fn cmd_validate(spec_path: &Path) -> Result<String, CliError> {
    let spec = load_spec(spec_path)?;
    Ok(format!(
        "OK: {} modules, {} channels, {} forks, {} loops, |T_G| = {}, depth = {}",
        spec.module_count(),
        spec.channel_count(),
        spec.forks().count(),
        spec.loops().count(),
        spec.hierarchy().size(),
        spec.hierarchy().max_depth()
    ))
}

/// `wfp inspect <spec.xml>`
pub fn cmd_inspect(spec_path: &Path) -> Result<String, CliError> {
    let spec = load_spec(spec_path)?;
    let h = spec.hierarchy();
    let mut out = String::new();
    writeln!(
        out,
        "specification: n_G = {}, m_G = {}, |T_G| = {}, [T_G] = {}",
        spec.module_count(),
        spec.channel_count(),
        h.size(),
        h.max_depth()
    )?;
    writeln!(out, "hierarchy:")?;
    for level in 1..=h.max_depth() {
        let row: Vec<String> = h
            .level(level)
            .iter()
            .map(|&node| match h.subgraph_at(node) {
                None => "G".to_string(),
                Some(sg) => {
                    let s = spec.subgraph(sg);
                    format!(
                        "{}[{}→{}; {} edges]",
                        s.kind,
                        spec.name(s.source),
                        spec.name(s.sink),
                        s.edges.len()
                    )
                }
            })
            .collect();
        writeln!(out, "  level {level}: {}", row.join("  "))?;
    }
    Ok(out)
}

/// `wfp gen-spec -n N -m M -k SIZE -d DEPTH --seed S -o OUT`
pub fn cmd_gen_spec(cfg: &SpecGenConfig, out: &Path) -> Result<String, CliError> {
    let spec = generate_spec(cfg)?;
    fs::write(out, spec_to_xml(&spec))?;
    Ok(format!(
        "wrote {} (n_G = {}, m_G = {})",
        out.display(),
        spec.module_count(),
        spec.channel_count()
    ))
}

/// `wfp gen-run <spec.xml> --target N --seed S -o OUT`
pub fn cmd_gen_run(
    spec_path: &Path,
    target: usize,
    seed: u64,
    out: &Path,
) -> Result<String, CliError> {
    let spec = load_spec(spec_path)?;
    let GeneratedRun { run, .. } = generate_run_with_target(&spec, seed, target);
    fs::write(out, run_to_xml(&run))?;
    Ok(format!(
        "wrote {} (n_R = {}, m_R = {})",
        out.display(),
        run.vertex_count(),
        run.edge_count()
    ))
}

/// `wfp plan <spec.xml> <run.xml>`
pub fn cmd_plan(spec_path: &Path, run_path: &Path) -> Result<String, CliError> {
    let spec = load_spec(spec_path)?;
    let run = load_run(run_path, &spec)?;
    let (plan, stats) = construct_plan_with_stats(&spec, &run)?;
    Ok(format!(
        "run conforms: {} vertices, {} edges\n\
         execution plan: {} nodes ({} copies, {} groups), {} nonempty + nodes\n\
         contraction: {} special edges (Lemma 4.2 bound: {} ≤ {})",
        run.vertex_count(),
        run.edge_count(),
        plan.node_count(),
        stats.copies,
        stats.groups,
        plan.nonempty_plus_count(),
        stats.special_edges,
        plan.node_count(),
        4 * run.edge_count()
    ))
}

/// `wfp label <spec.xml> <run.xml> [-o OUT] [--scheme KIND]`
pub fn cmd_label(
    spec_path: &Path,
    run_path: &Path,
    scheme: SchemeKind,
    out: Option<&Path>,
) -> Result<String, CliError> {
    let spec = load_spec(spec_path)?;
    let run = load_run(run_path, &spec)?;
    let labeled = LabeledRun::build(&spec, SpecScheme::build(scheme, spec.graph()), &run)?;
    let encoded = labeled.encode();
    let mut msg = format!(
        "labeled {} vertices: {} bits/label (max), {:.1} bits average, n⁺ = {}",
        labeled.vertex_count(),
        labeled.fixed_label_bits(),
        labeled.average_label_bits(),
        labeled.nonempty_plus_count()
    );
    if let Some(out) = out {
        let bytes = encoded.to_bytes();
        fs::write(out, &bytes)?;
        write!(msg, "\nwrote {} ({} bytes)", out.display(), bytes.len())?;
    }
    Ok(msg)
}

/// `wfp query <spec.xml> <run.xml> <from> <to> [--scheme KIND]`
///
/// Vertices are addressed by numbered name (`b3`) as printed by the paper.
pub fn cmd_query(
    spec_path: &Path,
    run_path: &Path,
    from: &str,
    to: &str,
    scheme: SchemeKind,
) -> Result<String, CliError> {
    let spec = load_spec(spec_path)?;
    let run = load_run(run_path, &spec)?;
    let names = run.numbered_names(&spec);
    let find = |name: &str| {
        names
            .iter()
            .position(|n| n == name)
            .map(|i| wfp_model::RunVertexId(i as u32))
            .ok_or_else(|| format!("no vertex named {name:?} in the run"))
    };
    let u = find(from)?;
    let v = find(to)?;
    let labeled = LabeledRun::build(&spec, SpecScheme::build(scheme, spec.graph()), &run)?;
    let (ans, path) = labeled.reaches_traced(u, v);
    Ok(format!(
        "{from} ⇝ {to}: {ans} (decided by {})",
        match path {
            QueryPath::ContextOnly => "context encodings alone",
            QueryPath::Skeleton => "the skeleton labels",
        }
    ))
}

/// `wfp query <spec.xml> <run.xml> --pairs <file> [--scheme KIND] [--threads N]`
///
/// Batch mode: the pairs file holds one query per line — two
/// whitespace-separated numbered vertex names (`b3 h1`); blank lines and
/// `#` comments are skipped. All pairs are answered through the batched
/// [`QueryEngine`] (sharded over `threads` worker threads when `threads >
/// 1`) and reported one `from to answer` line per query plus a summary of
/// how the batch was decided.
pub fn cmd_query_batch(
    spec_path: &Path,
    run_path: &Path,
    pairs_path: &Path,
    scheme: SchemeKind,
    threads: usize,
) -> Result<String, CliError> {
    let spec = load_spec(spec_path)?;
    let run = load_run(run_path, &spec)?;
    let names = run.numbered_names(&spec);
    // First-wins on colliding numbered names (module "b" run 11 vs module
    // "b1" run 1 both print as "b11"), matching scalar `cmd_query`'s
    // position()-based resolution exactly.
    let mut index_of: std::collections::HashMap<&str, RunVertexId> =
        std::collections::HashMap::with_capacity(names.len());
    for (i, n) in names.iter().enumerate() {
        index_of.entry(n.as_str()).or_insert(RunVertexId(i as u32));
    }

    let text = fs::read_to_string(pairs_path)
        .map_err(|e| format!("cannot read {}: {e}", pairs_path.display()))?;
    let mut pairs: Vec<(RunVertexId, RunVertexId)> = Vec::new();
    let mut echo: Vec<(&str, &str)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (from, to) = match (it.next(), it.next(), it.next()) {
            (Some(a), Some(b), None) => (a, b),
            _ => {
                return Err(format!(
                    "{}:{}: expected two vertex names, got {line:?}",
                    pairs_path.display(),
                    lineno + 1
                )
                .into())
            }
        };
        let resolve = |name: &str| {
            index_of.get(name).copied().ok_or_else(|| {
                format!(
                    "{}:{}: no vertex named {name:?} in the run",
                    pairs_path.display(),
                    lineno + 1
                )
            })
        };
        pairs.push((resolve(from)?, resolve(to)?));
        echo.push((from, to));
    }
    if pairs.is_empty() {
        return Err(format!(
            "{}: no queries (the pairs file is empty or all comments)",
            pairs_path.display()
        )
        .into());
    }

    let labeled = LabeledRun::build(&spec, SpecScheme::build(scheme, spec.graph()), &run)?;
    let engine = QueryEngine::from_labeled(labeled);
    let started = std::time::Instant::now();
    let answers = if threads > 1 {
        engine.answer_batch_parallel(&pairs, threads)
    } else {
        engine.answer_batch(&pairs)
    };
    let elapsed = started.elapsed().as_secs_f64();

    let mut out = String::new();
    for ((from, to), ans) in echo.iter().zip(&answers) {
        writeln!(out, "{from} {to} {ans}")?;
    }
    let stats = engine.stats();
    let reachable = answers.iter().filter(|&&a| a).count();
    write!(
        out,
        "# {} queries: {} reachable; {} context-only, {} skeleton; {:.3} ms ({:.0} q/s)",
        pairs.len(),
        reachable,
        stats.context_only,
        stats.skeleton,
        elapsed * 1e3,
        pairs.len() as f64 / elapsed.max(1e-9),
    )?;
    Ok(out)
}

// ======================================================================
// Live ingestion (§9 query-while-running)
// ======================================================================

/// One scheduled probe: answer `from ⇝ to` once `at` events have been
/// ingested.
struct Probe {
    at: usize,
    from: String,
    to: String,
}

/// Parses a probe file: one `EVENT# FROM TO` line per probe (blank lines
/// and `#`-comments skipped), FROM/TO in streaming numbered-name form
/// (`b3` = third execution of module `b`, in event order).
fn parse_probes(path: &Path) -> Result<Vec<Probe>, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut probes = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match (it.next(), it.next(), it.next(), it.next()) {
            (Some(at), Some(from), Some(to), None) => {
                let at: usize = at.parse().map_err(|_| {
                    format!(
                        "{}:{}: bad event number {at:?}",
                        path.display(),
                        lineno + 1
                    )
                })?;
                probes.push(Probe {
                    at,
                    from: from.to_string(),
                    to: to.to_string(),
                });
            }
            _ => {
                return Err(format!(
                    "{}:{}: expected \"EVENT# FROM TO\", got {line:?}",
                    path.display(),
                    lineno + 1
                )
                .into())
            }
        }
    }
    probes.sort_by_key(|p| p.at);
    Ok(probes)
}

/// `wfp ingest <spec.xml> <events.log> [--scheme KIND] [--probe FILE]`
///
/// Replays a line-based event log (`wfp-model::io` format, see
/// `gen-events`) through the live engine and answers the probe file's
/// queries **mid-stream**, at the exact event offsets they name — the §9
/// scenario: provenance queries on intermediate data before the workflow
/// completes. Vertices are addressed by streaming numbered names (`b3` =
/// third `exec b` of the log). After the last event, if the run is
/// structurally complete, the engine freezes (zero re-labeling) and every
/// probe is re-answered against the frozen labels as a parity check.
pub fn cmd_ingest(
    spec_path: &Path,
    events_path: &Path,
    scheme: SchemeKind,
    probe_path: Option<&Path>,
) -> Result<String, CliError> {
    let spec = load_spec(spec_path)?;
    let text = fs::read_to_string(events_path)
        .map_err(|e| format!("cannot read {}: {e}", events_path.display()))?;
    let events = events_from_log(&text, &spec)?;
    let probes = match probe_path {
        Some(p) => parse_probes(p)?,
        None => Vec::new(),
    };

    let mut live = LiveRun::new(&spec, SpecScheme::build(scheme, spec.graph()));
    // streaming numbered names, assigned in exec order
    let mut counters = vec![0u32; spec.module_count()];
    let mut vertex_by_name: std::collections::HashMap<String, RunVertexId> =
        std::collections::HashMap::new();

    let mut out = String::new();
    let mut answered: Vec<(usize, RunVertexId, RunVertexId, bool)> = Vec::new();
    let mut next_probe = 0usize;
    let total = events.len();

    let answer_due = |live: &LiveRun<SpecScheme>,
                          vertex_by_name: &std::collections::HashMap<String, RunVertexId>,
                          processed: usize,
                          out: &mut String,
                          answered: &mut Vec<(usize, RunVertexId, RunVertexId, bool)>,
                          next_probe: &mut usize|
     -> Result<(), CliError> {
        while *next_probe < probes.len()
            && (probes[*next_probe].at <= processed
                || (processed == total && probes[*next_probe].at > total))
        {
            let p = &probes[*next_probe];
            let resolve = |name: &str| {
                vertex_by_name.get(name).copied().ok_or_else(|| {
                    format!(
                        "probe at event {}: vertex {name:?} has not executed yet \
                         ({} executions so far)",
                        p.at,
                        live.vertex_count()
                    )
                })
            };
            let (u, v) = (resolve(&p.from)?, resolve(&p.to)?);
            let ans = live.answer(u, v);
            let late = if p.at > total { " (clamped to end)" } else { "" };
            writeln!(out, "@{} {} {} {ans}{late}", p.at.min(total), p.from, p.to)?;
            answered.push((p.at, u, v, ans));
            *next_probe += 1;
        }
        Ok(())
    };

    answer_due(&live, &vertex_by_name, 0, &mut out, &mut answered, &mut next_probe)?;
    for (i, ev) in events.iter().enumerate() {
        let result = match *ev {
            RunEvent::BeginGroup(sg) => live.begin_group(sg),
            RunEvent::BeginCopy => live.begin_copy(),
            RunEvent::Exec(m) => live.exec(m).map(|v| {
                counters[m.index()] += 1;
                let name = format!("{}{}", spec.name(m), counters[m.index()]);
                // First-wins on colliding numbered names (module "b" run
                // 11 vs module "b1" run 1 both print as "b11"), matching
                // `cmd_query_batch`'s resolution policy.
                vertex_by_name.entry(name).or_insert(v);
            }),
            RunEvent::EndCopy => live.end_copy(),
            RunEvent::EndGroup => live.end_group(),
        };
        result.map_err(|e| format!("event #{} ({ev:?}): {e}", i + 1))?;
        answer_due(&live, &vertex_by_name, i + 1, &mut out, &mut answered, &mut next_probe)?;
    }

    let stats = live.stats();
    writeln!(
        out,
        "# ingested {} events: {} executions, {} probes answered live \
         ({} context-only, {} skeleton; {} tag repairs)",
        total,
        live.vertex_count(),
        answered.len(),
        stats.engine.context_only,
        stats.engine.skeleton,
        stats.tag_repairs,
    )?;
    if live.at_root() {
        match live.freeze() {
            Ok(engine) => {
                let agree = answered
                    .iter()
                    .filter(|&&(_, u, v, live_ans)| engine.answer(u, v) == live_ans)
                    .count();
                write!(
                    out,
                    "# frozen: {} labels; parity check {agree}/{} probes agree",
                    engine.vertex_count(),
                    answered.len()
                )?;
                if agree != answered.len() {
                    return Err("live/frozen parity check failed".into());
                }
            }
            Err(e) => write!(out, "# run incomplete at end of log ({e}): freeze skipped")?,
        }
    } else {
        write!(out, "# run still open at end of log: freeze skipped")?;
    }
    Ok(out)
}

/// `wfp gen-events <spec.xml> --target N [--seed S] -o OUT
///  [--probes K --probe-out FILE]`
///
/// Simulates a run (like `gen-run`) and writes it as a streaming event log
/// instead of a completed XML run — the input `wfp ingest` replays.
/// Optionally also writes `K` probe queries spread evenly across the
/// stream, each over vertices that have already executed at its offset.
pub fn cmd_gen_events(
    spec_path: &Path,
    target: usize,
    seed: u64,
    out: &Path,
    probes: Option<(usize, &Path)>,
) -> Result<String, CliError> {
    let spec = load_spec(spec_path)?;
    let gen = generate_run_with_target(&spec, seed, target);
    let (events, _mapping) = plan_to_events(&gen.run, &gen.plan);
    fs::write(out, events_to_log(&events, &spec))?;
    let mut msg = format!(
        "wrote {} ({} events, {} executions)",
        out.display(),
        events.len(),
        gen.run.vertex_count()
    );

    if let Some((count, probe_out)) = probes {
        // streaming numbered names per exec-ordered vertex
        let mut counters = vec![0u32; spec.module_count()];
        let mut names = Vec::new();
        let mut execs_before = Vec::with_capacity(events.len() + 1); // per event offset
        let mut execs = 0usize;
        for ev in &events {
            execs_before.push(execs);
            if let RunEvent::Exec(m) = *ev {
                counters[m.index()] += 1;
                names.push(format!("{}{}", spec.name(m), counters[m.index()]));
                execs += 1;
            }
        }
        execs_before.push(execs);

        let mut rng = wfp_graph::rng::Xoshiro256::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut lines = String::from("# EVENT# FROM TO (streaming numbered names)\n");
        let mut placed = 0usize;
        for j in 0..count {
            // evenly spaced offsets, skipping ones with < 2 executions
            let at = ((j + 1) * events.len()) / (count + 1);
            let n = execs_before[at];
            if n < 2 {
                continue;
            }
            let (a, b) = (rng.gen_usize(n), rng.gen_usize(n));
            lines.push_str(&format!("{at} {} {}\n", names[a], names[b]));
            placed += 1;
        }
        fs::write(probe_out, lines)?;
        write!(
            msg,
            "\nwrote {} ({placed} probes over {} offsets)",
            probe_out.display(),
            count
        )?;
    }
    Ok(msg)
}

// ======================================================================
// Fleet serving (spec/run split: one skeleton context, many runs)
// ======================================================================

fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// The file `wfp fleet --save DIR` writes (and `--load DIR` reads): one
/// snapshot container holding the spec record, the warm memo and every
/// frozen run's label columns.
pub const FLEET_SNAPSHOT_FILE: &str = "fleet.wfps";

/// Options for [`cmd_fleet`] beyond the specification path.
pub struct FleetOpts<'a> {
    /// Completed run XML files to load and register.
    pub run_paths: &'a [&'a Path],
    /// Additional runs to generate (`--runs K`).
    pub gen_runs: usize,
    /// Target vertex count per generated run.
    pub target: usize,
    /// Generator / traffic seed.
    pub seed: u64,
    /// Mixed cross-run probes to answer.
    pub probes: usize,
    /// Skeleton scheme (ignored under `--load`: the snapshot records its
    /// own scheme).
    pub scheme: SchemeKind,
    /// Worker threads for the probe batch.
    pub threads: usize,
    /// Seal every frozen run into bit-packed label columns before
    /// serving (`--packed`): smaller resident footprint and snapshot,
    /// identical answers.
    pub packed: bool,
    /// Persist the serving fleet to `DIR/fleet.wfps` after answering.
    pub save: Option<&'a Path>,
    /// Restore the fleet from `DIR/fleet.wfps` instead of labeling runs.
    pub load: Option<&'a Path>,
}

/// `wfp fleet <spec.xml> [run.xml...] [--runs K] [--target N] [--seed S]
///  [--probes M] [--scheme KIND] [--threads T] [--packed] [--save DIR]
///  [--load DIR]`
///
/// The multi-run serving scenario the paper's amortization argument is
/// about: load the given runs and/or generate `K` more (all conforming to
/// one specification), register them all under **one** shared skeleton
/// context in a [`FleetEngine`], answer `M` mixed cross-run probes, and
/// report throughput plus the shared-vs-duplicated memory accounting —
/// what the fleet holds once versus what `K` independent engines would
/// hold. With `--save DIR` the serving fleet (spec record + warm memo +
/// per-run label columns) is persisted as one snapshot container; with
/// `--load DIR` it is restored **without re-labeling a single run** and
/// with the memo warm from the saved process's traffic. `--packed` seals
/// every frozen run into bit-packed label columns before serving —
/// identical answers from a smaller resident footprint, and the snapshot
/// stores the compressed segments.
pub fn cmd_fleet(spec_path: &Path, opts: &FleetOpts<'_>) -> Result<String, CliError> {
    let spec = load_spec(spec_path)?;
    let mut out = String::new();

    let mut fleet: FleetEngine<'_, SpecScheme> = if let Some(dir) = opts.load {
        if !opts.run_paths.is_empty() || opts.gen_runs > 0 {
            return Err(
                "--load restores a saved fleet; drop the run.xml arguments and --runs".into(),
            );
        }
        let path = dir.join(FLEET_SNAPSHOT_FILE);
        let bytes = fs::read(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let started = std::time::Instant::now();
        let (fleet, graph) =
            FleetEngine::load(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        let load_ms = started.elapsed().as_secs_f64() * 1e3;
        if graph.vertex_count() != spec.graph().vertex_count()
            || graph.edges() != spec.graph().edges()
        {
            return Err(format!(
                "{}: snapshot was saved for a different specification",
                path.display()
            )
            .into());
        }
        let stats = fleet.stats();
        writeln!(
            out,
            "restored fleet from {} in {load_ms:.1} ms: {} runs ({} evicted), \
             scheme {}, {} warm memo cells (no re-labeling)",
            path.display(),
            stats.frozen + stats.packed,
            stats.evicted,
            fleet.context().skeleton().kind(),
            fleet.context().memo().warm_entries(),
        )?;
        fleet
    } else {
        let mut runs: Vec<Run> = Vec::new();
        for p in opts.run_paths {
            runs.push(load_run(p, &spec)?);
        }
        runs.extend(
            generate_fleet(&spec, opts.seed, opts.gen_runs, opts.target)
                .into_iter()
                .map(|g| g.run),
        );
        if runs.is_empty() {
            return Err("no runs: pass run.xml files, --runs K, or --load DIR".into());
        }

        // one spec-level context for the whole fleet
        let ctx =
            SpecContext::for_spec(&spec, SpecScheme::build(opts.scheme, spec.graph())).shared();
        let mut fleet = FleetEngine::new(ctx);
        let label_started = std::time::Instant::now();
        for run in &runs {
            // labels carry only the *pointer* to the skeleton, so labeling
            // a fleet member never builds (or clones) a per-run skeleton
            let (labels, _n_plus) = label_run(&spec, run)?;
            fleet.register_labels(&labels);
        }
        let label_ms = label_started.elapsed().as_secs_f64() * 1e3;
        let total_vertices: usize = runs.iter().map(Run::vertex_count).sum();
        writeln!(
            out,
            "fleet: {} runs ({} loaded, {} generated), {total_vertices} vertices total, \
             scheme {}",
            runs.len(),
            opts.run_paths.len(),
            opts.gen_runs,
            opts.scheme,
        )?;
        writeln!(out, "labeled in {label_ms:.1} ms (no per-run skeletons built)")?;
        fleet
    };

    if opts.packed {
        let before = fleet.stats().run_bytes;
        let sealed = fleet.seal_packed_all();
        let after = fleet.stats().run_bytes;
        writeln!(
            out,
            "packed: sealed {sealed} runs into bit-packed columns \
             (run columns {} → {})",
            fmt_bytes(before),
            fmt_bytes(after),
        )?;
    }

    // mixed probe traffic: uniformly random (run, u, v) triples over the
    // active runs that executed at least one module (a loaded run XML may
    // be legally empty — it just cannot receive probes)
    let ids: Vec<RunId> = fleet.run_ids().collect();
    let sizes: Vec<usize> = ids
        .iter()
        .map(|&id| fleet.vertex_count(id).expect("active id"))
        .collect();
    let probeable: Vec<usize> = (0..ids.len()).filter(|&i| sizes[i] > 0).collect();
    if opts.probes > 0 && probeable.is_empty() {
        return Err("every run is empty: nothing to probe".into());
    }
    let mut rng = wfp_graph::rng::Xoshiro256::seed_from_u64(opts.seed ^ 0xF1EE_7BA7_C0FF_EE00);
    let traffic: Vec<(RunId, RunVertexId, RunVertexId)> = (0..opts.probes)
        .map(|_| {
            let which = probeable[rng.gen_usize(probeable.len())];
            let n = sizes[which];
            (
                ids[which],
                RunVertexId(rng.gen_usize(n) as u32),
                RunVertexId(rng.gen_usize(n) as u32),
            )
        })
        .collect();
    let started = std::time::Instant::now();
    let answers = if opts.threads > 1 {
        fleet.answer_batch_parallel(&traffic, opts.threads)?
    } else {
        fleet.answer_batch(&traffic)?
    };
    let elapsed = started.elapsed().as_secs_f64();

    let stats = fleet.stats();
    let reachable = answers.iter().filter(|&&a| a).count();
    writeln!(
        out,
        "{} probes: {} reachable; {} context-only, {} skeleton \
         ({} probes, {} memo hits); {:.3} ms ({:.0} q/s, {} threads)",
        traffic.len(),
        reachable,
        stats.engine.context_only,
        stats.engine.skeleton,
        stats.engine.skeleton_probes,
        stats.engine.memo_hits,
        elapsed * 1e3,
        traffic.len() as f64 / elapsed.max(1e-9),
        opts.threads.max(1),
    )?;
    write!(
        out,
        "memory: spec state {} shared once (runs hold {}); \
         {} independent engines would hold {} — saved {} ({}x sharing, \
         {} context refs)",
        fmt_bytes(stats.spec_bytes),
        fmt_bytes(stats.run_bytes),
        stats.active(),
        fmt_bytes(stats.spec_bytes_if_per_run),
        fmt_bytes(stats.bytes_saved()),
        stats.active(),
        stats.context_refs,
    )?;

    if let Some(dir) = opts.save {
        fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let bytes = fleet.save(spec.graph())?;
        let path = dir.join(FLEET_SNAPSHOT_FILE);
        fs::write(&path, &bytes)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        write!(
            out,
            "\nsaved fleet snapshot to {} ({}: 1 spec record + warm memo + {} run segments)",
            path.display(),
            fmt_bytes(bytes.len()),
            stats.frozen + stats.packed,
        )?;
    }
    Ok(out)
}

/// Parses a `--budget` byte count: a plain number, or a number with a
/// binary suffix `K`, `M` or `G` (case-insensitive).
pub fn parse_budget(text: &str) -> Result<usize, CliError> {
    let t = text.trim();
    let (digits, multiplier) = match t.char_indices().last() {
        Some((i, 'k' | 'K')) => (&t[..i], 1usize << 10),
        Some((i, 'm' | 'M')) => (&t[..i], 1usize << 20),
        Some((i, 'g' | 'G')) => (&t[..i], 1usize << 30),
        _ => (t, 1),
    };
    if digits.is_empty() {
        // a bare suffix ("M", "k") would otherwise surface as an opaque
        // integer-parse failure; name the actual mistake
        return Err(format!(
            "invalid --budget {text:?}: missing the number before the \
             suffix (expected e.g. 64M, 512K)"
        )
        .into());
    }
    let value: usize = digits
        .parse()
        .map_err(|_| format!("invalid --budget {text:?} (expected BYTES, or e.g. 64M, 512K)"))?;
    value
        .checked_mul(multiplier)
        .ok_or_else(|| format!("--budget {text:?} overflows").into())
}

/// Options for [`cmd_registry`].
pub struct RegistryOpts<'a> {
    /// Specification XML files to serve (one fleet each).
    pub spec_paths: &'a [&'a Path],
    /// Additional synthetic specs to generate (`--gen-specs N`).
    pub gen_specs: usize,
    /// Runs generated per spec.
    pub runs_per_spec: usize,
    /// Target vertex count per generated run.
    pub target: usize,
    /// Generator / traffic seed.
    pub seed: u64,
    /// Mixed cross-spec probes to answer.
    pub probes: usize,
    /// Resident-byte budget across all fleets (`--budget`, parsed by
    /// [`parse_budget`]); `None` disables pressure eviction.
    pub budget: Option<usize>,
    /// Seal every fleet's frozen runs into bit-packed columns before
    /// probing (`--packed`): snapshots then carry aligned columns, so a
    /// later `--load` faults fleets in zero-copy.
    pub packed: bool,
    /// Persist the registry as a snapshot directory after answering.
    pub save: Option<&'a Path>,
    /// Open a saved snapshot directory (lazy: fleets load on first probe)
    /// instead of building one.
    pub load: Option<&'a Path>,
}

/// `wfp registry [spec.xml...] [--gen-specs N] [--runs K] [--target V]
///  [--seed S] [--probes M] [--budget BYTES] [--packed] [--save DIR]
///  [--load DIR]`
///
/// The multi-spec serving scenario: each specification (loaded from XML
/// and/or generated) gets its own fleet of `K` runs, all behind one
/// [`ServiceRegistry`] keyed by content-derived spec id, with the schemes
/// cycling through all six spec-labeling kinds. `M` mixed probes are
/// routed across the specs in one batch; with `--budget` the registry
/// offloads least-recently-used fleets to their snapshot under memory
/// pressure and reloads them transparently. `--save DIR` writes the
/// snapshot directory (one `*.wfps` per spec + `registry.manifest`);
/// `--load DIR` opens one lazily — nothing is loaded until its first
/// probe, and the cold-load cost is reported per spec.
///
/// [`ServiceRegistry`]: wfp_skl::registry::ServiceRegistry
pub fn cmd_registry(opts: &RegistryOpts<'_>) -> Result<String, CliError> {
    use wfp_skl::registry::ServiceRegistry;
    let mut out = String::new();

    let mut registry: ServiceRegistry<'static> = if let Some(dir) = opts.load {
        if !opts.spec_paths.is_empty() || opts.gen_specs > 0 {
            return Err(
                "--load opens a saved registry; drop the spec.xml arguments and --gen-specs"
                    .into(),
            );
        }
        let registry = ServiceRegistry::open_dir(dir, opts.budget)
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        writeln!(
            out,
            "opened registry at {}: {} specs in manifest, 0 loaded (lazy)",
            dir.display(),
            registry.len(),
        )?;
        registry
    } else {
        let mut specs: Vec<Specification> = Vec::new();
        for p in opts.spec_paths {
            specs.push(load_spec(p)?);
        }
        let mut fleets: Vec<Vec<GeneratedRun>> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                generate_fleet(
                    spec,
                    opts.seed ^ (i as u64 + 1).wrapping_mul(0xD134_2543_DE82_EF95),
                    opts.runs_per_spec,
                    opts.target,
                )
            })
            .collect();
        if opts.gen_specs > 0 {
            let generated = wfp_gen::generate_registry(
                opts.seed,
                opts.gen_specs,
                opts.runs_per_spec,
                opts.target,
            );
            specs.extend(generated.specs);
            fleets.extend(generated.fleets);
        }
        if specs.is_empty() {
            return Err("no specs: pass spec.xml files, --gen-specs N, or --load DIR".into());
        }

        let mut registry = ServiceRegistry::new();
        registry.set_budget(opts.budget)?;
        let started = std::time::Instant::now();
        let mut total_runs = 0usize;
        for (i, (spec, fleet)) in specs.iter().zip(&fleets).enumerate() {
            let kind = SchemeKind::ALL[i % SchemeKind::ALL.len()];
            let id = registry.register_spec(spec, kind)?;
            for g in fleet {
                let (labels, _) = label_run(spec, &g.run)?;
                registry.register_labels(id, &labels)?;
                total_runs += 1;
            }
        }
        let label_ms = started.elapsed().as_secs_f64() * 1e3;
        writeln!(
            out,
            "registry: {} specs ({} loaded, {} generated), {total_runs} runs, \
             schemes cycling {}",
            specs.len(),
            opts.spec_paths.len(),
            opts.gen_specs,
            SchemeKind::ALL
                .map(|k| k.to_string())
                .join("/"),
        )?;
        writeln!(out, "labeled + registered in {label_ms:.1} ms")?;
        if opts.packed {
            let ids: Vec<_> = registry.spec_ids().collect();
            let mut sealed = 0usize;
            for id in ids {
                sealed += registry.seal_packed(id)?;
            }
            writeln!(out, "sealed {sealed} runs into bit-packed columns")?;
        }
        registry
    };

    // per-spec probe-address books; under --load this is the lazy cold
    // load itself, so time each spec's first touch
    let ids: Vec<_> = registry.spec_ids().collect();
    let mut books: Vec<Vec<(RunId, usize)>> = Vec::with_capacity(ids.len());
    for &id in &ids {
        let cold = !registry.resident(id);
        let before = registry.stats();
        let started = std::time::Instant::now();
        registry.ensure_resident(id)?;
        let fleet = registry.fleet(id).expect("just made resident");
        let book: Vec<(RunId, usize)> = fleet
            .run_ids()
            .map(|r| (r, fleet.vertex_count(r).expect("active id")))
            .filter(|&(_, n)| n > 0)
            .collect();
        if cold {
            let after = registry.stats();
            writeln!(
                out,
                "  spec {id} ({}): lazy-loaded {} runs, {} ({}) in {:.1} ms",
                registry.scheme(id).expect("registered"),
                registry.run_count(id)?,
                fmt_bytes((after.reload_bytes - before.reload_bytes) as usize),
                if after.zero_copy_loads > before.zero_copy_loads {
                    "zero-copy"
                } else {
                    "decoded"
                },
                started.elapsed().as_secs_f64() * 1e3,
            )?;
        }
        books.push(book);
    }

    let probeable: Vec<usize> = (0..ids.len()).filter(|&i| !books[i].is_empty()).collect();
    if opts.probes > 0 && probeable.is_empty() {
        return Err("every run of every spec is empty: nothing to probe".into());
    }
    let mut rng = wfp_graph::rng::Xoshiro256::seed_from_u64(opts.seed ^ 0xF1EE_7BA7_C0FF_EE00);
    let traffic: Vec<_> = (0..opts.probes)
        .map(|_| {
            let which = probeable[rng.gen_usize(probeable.len())];
            let (run, n) = books[which][rng.gen_usize(books[which].len())];
            (
                ids[which],
                run,
                RunVertexId(rng.gen_usize(n) as u32),
                RunVertexId(rng.gen_usize(n) as u32),
            )
        })
        .collect();
    let started = std::time::Instant::now();
    let answers = registry.answer_batch(&traffic)?;
    let elapsed = started.elapsed().as_secs_f64();

    let stats = registry.stats();
    let reachable = answers.iter().filter(|&&a| a).count();
    writeln!(
        out,
        "{} mixed-spec probes: {} reachable; {:.3} ms ({:.0} q/s)",
        traffic.len(),
        reachable,
        elapsed * 1e3,
        traffic.len() as f64 / elapsed.max(1e-9),
    )?;
    write!(
        out,
        "residency: {}/{} fleets in memory, {} resident{}; \
         {} evictions, {} lazy loads ({} zero-copy, {} read, {:.1} ms)",
        stats.resident,
        stats.specs,
        fmt_bytes(stats.resident_bytes),
        match stats.budget {
            Some(b) => format!(" (budget {})", fmt_bytes(b)),
            None => " (no budget)".to_string(),
        },
        stats.evictions,
        stats.lazy_loads,
        stats.zero_copy_loads,
        fmt_bytes(stats.reload_bytes as usize),
        stats.decode_ms,
    )?;

    if let Some(dir) = opts.save {
        registry
            .save_dir(dir)
            .map_err(|e| format!("cannot save {}: {e}", dir.display()))?;
        write!(
            out,
            "\nsaved registry to {}: {} spec snapshots + {}",
            dir.display(),
            stats.specs,
            wfp_skl::registry::MANIFEST_FILE,
        )?;
    }
    Ok(out)
}

/// Options for [`cmd_serve`].
pub struct ServeOpts<'a> {
    /// Specification XML files to serve (one fleet each).
    pub spec_paths: &'a [&'a Path],
    /// Additional synthetic specs to generate (`--gen-specs N`).
    pub gen_specs: usize,
    /// Runs generated per spec.
    pub runs_per_spec: usize,
    /// Target vertex count per generated run.
    pub target: usize,
    /// Generator / traffic seed.
    pub seed: u64,
    /// Total probes replayed across all client threads.
    pub probes: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Arrival pattern (`--arrival closed|uniform:RATE|poisson:RATE|bursty:RATE:BURST`).
    pub arrival: wfp_gen::Arrival,
    /// Resident-byte budget for the registry behind the loop.
    pub budget: Option<usize>,
    /// Serve a saved snapshot directory instead of building fleets.
    pub load: Option<&'a Path>,
    /// Admission-window flush threshold in probes (`--batch`).
    pub batch: usize,
    /// Admission-window flush deadline in microseconds (`--window`).
    pub window_us: u64,
    /// Bounded admission-queue capacity in requests (`--queue`).
    pub queue: usize,
    /// Worker threads per registry batch (`--threads`).
    pub threads: usize,
    /// Dispatcher shards, each owning its own registry (`--shards`).
    pub shards: usize,
    /// Spec mix across the probe traffic (`--mix uniform|zipf:SKEW`).
    pub mix: wfp_gen::SpecMix,
}

/// `wfp serve [spec.xml...] [--gen-specs N] [--runs K] [--target V]
///  [--seed S] [--probes M] [--clients C] [--arrival PATTERN]
///  [--budget BYTES] [--load DIR] [--batch N] [--window US] [--queue N]
///  [--threads T] [--shards S] [--mix uniform|zipf:SKEW]`
///
/// The request/response serving loop: each of the `--shards` workers of
/// [`mod@wfp_skl::serve`] builds (or lazily opens with `--load`) a
/// registry holding only the specs the [`ShardPlan`] routes to it, then
/// `C` client threads replay a mixed-spec probe workload through
/// cloneable [`ServeHandle`]s on the allocation-free single-probe path.
/// Open-loop arrival patterns ([`wfp_gen::Arrival`]) pace the
/// submissions; the admission windows coalesce them into run-sharded
/// batches per shard. `--mix zipf:SKEW` skews the spec mix so a head
/// shard saturates while the tail idles. The report shows sustained
/// throughput, the batch-size histogram, per-shard load, and per-scheme
/// p50/p99 serve latency from [`ServeStats`]. Probes a client could not
/// get admitted (bounded-queue overflow under open-loop overload) are
/// counted as dropped, never silently lost; any probe the registry
/// rejects is a hard error.
///
/// [`ServeHandle`]: wfp_skl::ServeHandle
/// [`ServeStats`]: wfp_skl::ServeStats
/// [`ShardPlan`]: wfp_skl::ShardPlan
pub fn cmd_serve(opts: &ServeOpts<'_>) -> Result<String, CliError> {
    use wfp_skl::registry::ServiceRegistry;
    use wfp_skl::{serve_sharded, Probe, ServeConfig, ServeError, ShardPlan};

    let mut out = String::new();

    // Spec loading, generation and labeling happen on this thread — their
    // failures are CLI errors, and plain `RunLabel` rows move cleanly into
    // the dispatch thread, where the registry itself must be born.
    let mut specs: Vec<Specification> = Vec::new();
    for p in opts.spec_paths {
        specs.push(load_spec(p)?);
    }
    let mut payload: Vec<(Specification, SchemeKind, Vec<Vec<RunLabel>>)> = Vec::new();
    if let Some(dir) = opts.load {
        if !specs.is_empty() || opts.gen_specs > 0 {
            return Err(
                "--load serves a saved registry; drop the spec.xml arguments and --gen-specs"
                    .into(),
            );
        }
        writeln!(out, "serving saved registry at {}", dir.display())?;
    } else {
        let started = std::time::Instant::now();
        let mut fleets: Vec<Vec<GeneratedRun>> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                generate_fleet(
                    spec,
                    opts.seed ^ (i as u64 + 1).wrapping_mul(0xD134_2543_DE82_EF95),
                    opts.runs_per_spec,
                    opts.target,
                )
            })
            .collect();
        if opts.gen_specs > 0 {
            let generated = wfp_gen::generate_registry(
                opts.seed,
                opts.gen_specs,
                opts.runs_per_spec,
                opts.target,
            );
            specs.extend(generated.specs);
            fleets.extend(generated.fleets);
        }
        if specs.is_empty() {
            return Err("no specs: pass spec.xml files, --gen-specs N, or --load DIR".into());
        }
        let mut total_runs = 0usize;
        for (i, (spec, fleet)) in specs.into_iter().zip(fleets).enumerate() {
            let kind = SchemeKind::ALL[i % SchemeKind::ALL.len()];
            let mut labeled = Vec::with_capacity(fleet.len());
            for g in &fleet {
                let (labels, _) = label_run(&spec, &g.run)?;
                labeled.push(labels);
                total_runs += 1;
            }
            payload.push((spec, kind, labeled));
        }
        writeln!(
            out,
            "serve: {} specs, {total_runs} runs labeled in {:.1} ms",
            payload.len(),
            started.elapsed().as_secs_f64() * 1e3,
        )?;
    }

    let config = ServeConfig {
        max_batch: opts.batch.max(1),
        window: std::time::Duration::from_micros(opts.window_us),
        queue_cap: opts.queue.max(1),
        threads: opts.threads.max(1),
    };
    let shards = opts.shards.max(1);
    writeln!(
        out,
        "config: batch {} / window {} us / queue {} / {} registry thread(s), \
         {shards} shard(s), {} client(s), arrival {:?}, mix {:?}",
        config.max_batch,
        opts.window_us,
        config.queue_cap,
        config.threads,
        opts.clients.max(1),
        opts.arrival,
        opts.mix,
    )?;

    // Each shard builder runs on its own worker thread and registers only
    // the specs the plan routes there; its context is that shard's slice
    // of the probe address book the traffic generator needs.
    type Book = Vec<(SpecId, Vec<(RunId, usize)>)>;
    let plan = ShardPlan::new();
    // Split the resident-byte budget across the shard registries so the
    // total stays what the caller asked for.
    let shard_budget = opts.budget.map(|b| (b / shards).max(1));
    let load_dir = opts.load.map(Path::to_path_buf);
    let payload = std::sync::Arc::new(payload);
    let builder_plan = plan.clone();
    let server = serve_sharded(config, shards, plan.clone(), move |shard, shards| {
        let mut registry: ServiceRegistry<'static> = if let Some(dir) = &load_dir {
            ServiceRegistry::open_dir_filtered(dir, shard_budget, |id| {
                builder_plan.shard_of(id, shards) == shard
            })?
        } else {
            let mut registry = ServiceRegistry::new();
            registry.set_budget(shard_budget)?;
            for (spec, kind, labeled) in payload.iter() {
                let id = SpecId::of(*kind, spec.graph());
                if builder_plan.shard_of(id, shards) != shard {
                    continue;
                }
                let id = registry.register_spec(spec, *kind)?;
                for labels in labeled {
                    registry.register_labels(id, labels)?;
                }
            }
            registry
        };
        let ids: Vec<SpecId> = registry.spec_ids().collect();
        let mut book: Book = Vec::with_capacity(ids.len());
        for id in ids {
            registry.ensure_resident(id)?;
            let fleet = registry.fleet(id).expect("just made resident");
            let runs: Vec<(RunId, usize)> = fleet
                .run_ids()
                .map(|r| (r, fleet.vertex_count(r).expect("active id")))
                .filter(|&(_, n)| n > 0)
                .collect();
            book.push((id, runs));
        }
        Ok((registry, book))
    })
    .map_err(|e| format!("cannot start serving loop: {e}"))?;

    let book: Book = server
        .contexts()
        .iter()
        .flat_map(|shard_book| shard_book.iter().cloned())
        .collect();
    let probeable: Vec<usize> = (0..book.len()).filter(|&i| !book[i].1.is_empty()).collect();
    if opts.probes > 0 && probeable.is_empty() {
        let _ = server.shutdown();
        return Err("every run of every spec is empty: nothing to probe".into());
    }
    let mut rng = wfp_graph::rng::Xoshiro256::seed_from_u64(opts.seed ^ 0xF1EE_7BA7_C0FF_EE00);
    let picks = if opts.probes == 0 {
        Vec::new()
    } else {
        wfp_gen::spec_mix_indices(opts.mix, probeable.len(), opts.probes, opts.seed)
    };
    let traffic: Vec<Probe> = picks
        .into_iter()
        .map(|s| {
            let (id, runs) = &book[probeable[s]];
            let (run, n) = runs[rng.gen_usize(runs.len())];
            (
                *id,
                run,
                RunVertexId(rng.gen_usize(n) as u32),
                RunVertexId(rng.gen_usize(n) as u32),
            )
        })
        .collect();
    let offsets = wfp_gen::arrival_offsets_us(opts.arrival, traffic.len(), opts.seed);

    // Client c replays the strided slice c, c+C, c+2C, ... Closed-loop
    // clients block on each answer; open-loop clients submit on schedule
    // and drain their tickets afterwards, so a full queue surfaces as
    // dropped (shed) probes rather than back-pressure on the schedule.
    let clients = opts.clients.max(1);
    let closed_loop = opts.arrival == wfp_gen::Arrival::Closed;
    let started = std::time::Instant::now();
    let mut reachable = 0usize;
    let mut dropped = 0usize;
    let mut first_error: Option<ServeError> = None;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let handle = server.handle();
                let traffic = &traffic;
                let offsets = &offsets;
                scope.spawn(move || {
                    let epoch = std::time::Instant::now();
                    let mut reachable = 0usize;
                    let mut dropped = 0usize;
                    let mut first_error: Option<ServeError> = None;
                    let mut tickets = Vec::new();
                    for i in (c..traffic.len()).step_by(clients) {
                        if !closed_loop {
                            let at = std::time::Duration::from_micros(offsets[i]);
                            if let Some(wait) = at.checked_sub(epoch.elapsed()) {
                                std::thread::sleep(wait);
                            }
                        }
                        // Allocation-free single-probe path: no request
                        // `Vec`, no reply `Vec` — the answer bit rides the
                        // pooled slot.
                        match handle.submit_one(traffic[i]) {
                            Ok(ticket) if closed_loop => match ticket.wait_one() {
                                Ok(reached) => reachable += usize::from(reached),
                                Err(e) => {
                                    first_error.get_or_insert(e);
                                }
                            },
                            Ok(ticket) => tickets.push(ticket),
                            Err(ServeError::Overloaded) => dropped += 1,
                            Err(e) => {
                                first_error.get_or_insert(e);
                            }
                        }
                    }
                    for ticket in tickets {
                        match ticket.wait_one() {
                            Ok(reached) => reachable += usize::from(reached),
                            Err(e) => {
                                first_error.get_or_insert(e);
                            }
                        }
                    }
                    (reachable, dropped, first_error)
                })
            })
            .collect();
        for worker in workers {
            let (r, d, e) = worker.join().expect("client thread");
            reachable += r;
            dropped += d;
            if let Some(e) = e {
                first_error.get_or_insert(e);
            }
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let sharded = server
        .shutdown()
        .map_err(|e| format!("serving loop did not shut down cleanly: {e}"))?;
    if let Some(e) = first_error {
        return Err(format!("probe failed while serving: {e}").into());
    }
    let stats = &sharded.merged;
    let answered = stats.probes_answered;
    writeln!(
        out,
        "traffic: {} probes, {answered} answered ({reachable} reachable), \
         {} failed, {dropped} dropped",
        traffic.len(),
        stats.probes_failed,
    )?;
    writeln!(
        out,
        "wall: {:.3} s -> {:.0} probes/s sustained across {clients} client(s)",
        elapsed,
        answered as f64 / elapsed.max(1e-9),
    )?;
    writeln!(
        out,
        "batches: {} ({} full / {} timer / {} drain); probes/batch p50 {} p99 {} max {}",
        stats.batches,
        stats.batches_full,
        stats.batches_timer,
        stats.batches_drain,
        stats.batch_probes.quantile(0.50).unwrap_or(0),
        stats.batch_probes.quantile(0.99).unwrap_or(0),
        stats.batch_probes.max(),
    )?;
    if shards > 1 {
        writeln!(out, "per-shard load:")?;
        for (i, s) in sharded.per_shard.iter().enumerate() {
            writeln!(
                out,
                "  shard {i}: {:>9} probes answered in {:>6} batches, {} failed",
                s.probes_answered, s.batches, s.probes_failed,
            )?;
        }
    }
    writeln!(out, "per-scheme serve latency (submit -> reply):")?;
    for kind in SchemeKind::ALL {
        let lat = stats.scheme(kind);
        if lat.probes == 0 {
            continue;
        }
        writeln!(
            out,
            "  {:<9} {:>9} probes   p50 {:>6} us   p99 {:>6} us",
            kind.to_string(),
            lat.probes,
            lat.p50_us().unwrap_or(0),
            lat.p99_us().unwrap_or(0),
        )?;
    }
    write!(
        out,
        "shutdown: clean; {} requests / {} batches / {} controls drained",
        stats.requests, stats.batches, stats.controls,
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_model::fixtures::{paper_run, paper_spec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("wfp-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_paper_files() -> (std::path::PathBuf, std::path::PathBuf) {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let sp = tmp("paper-spec.xml");
        let rp = tmp("paper-run.xml");
        fs::write(&sp, spec_to_xml(&spec)).unwrap();
        fs::write(&rp, run_to_xml(&run)).unwrap();
        (sp, rp)
    }

    #[test]
    fn validate_and_inspect() {
        let (sp, _) = write_paper_files();
        let v = cmd_validate(&sp).unwrap();
        assert!(v.contains("8 modules"), "{v}");
        assert!(v.contains("2 forks"), "{v}");
        let i = cmd_inspect(&sp).unwrap();
        assert!(i.contains("level 1: G"), "{i}");
        assert!(i.contains("level 3"), "{i}");
    }

    #[test]
    fn validate_rejects_bad_files() {
        // cyclic specification
        let p = tmp("bad.xml");
        fs::write(
            &p,
            "<specification>\
             <module id=\"0\" name=\"a\"/><module id=\"1\" name=\"b\"/>\
             <channel from=\"0\" to=\"1\"/><channel from=\"1\" to=\"0\"/>\
             </specification>",
        )
        .unwrap();
        assert!(cmd_validate(&p).is_err());
        assert!(cmd_validate(Path::new("/nonexistent/x.xml")).is_err());
        // a single-module spec is degenerate but legal (source == sink)
        let p1 = tmp("one.xml");
        fs::write(&p1, "<specification><module id=\"0\" name=\"a\"/></specification>").unwrap();
        assert!(cmd_validate(&p1).is_ok());
    }

    #[test]
    fn gen_roundtrip_plan_label_query() {
        let sp = tmp("gen-spec.xml");
        let cfg = SpecGenConfig {
            modules: 40,
            edges: 60,
            hierarchy_size: 6,
            hierarchy_depth: 3,
            seed: 5,
        };
        let msg = cmd_gen_spec(&cfg, &sp).unwrap();
        assert!(msg.contains("n_G = 40"), "{msg}");

        let rp = tmp("gen-run.xml");
        let msg = cmd_gen_run(&sp, 500, 3, &rp).unwrap();
        assert!(msg.contains("n_R ="), "{msg}");

        let msg = cmd_plan(&sp, &rp).unwrap();
        assert!(msg.contains("run conforms"), "{msg}");

        let lp = tmp("labels.wfpl");
        let msg = cmd_label(&sp, &rp, SchemeKind::Tcm, Some(&lp)).unwrap();
        assert!(msg.contains("bits/label"), "{msg}");
        let bytes = fs::read(&lp).unwrap();
        assert!(wfp_skl::EncodedLabels::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn query_paper_claims() {
        let (sp, rp) = write_paper_files();
        let ans = cmd_query(&sp, &rp, "b1", "c3", SchemeKind::Tcm).unwrap();
        assert!(ans.contains("false"), "{ans}");
        assert!(ans.contains("context encodings"), "{ans}");
        let ans = cmd_query(&sp, &rp, "b1", "c1", SchemeKind::Bfs).unwrap();
        assert!(ans.contains("true"), "{ans}");
        assert!(cmd_query(&sp, &rp, "zz9", "c1", SchemeKind::Tcm).is_err());
    }

    #[test]
    fn query_batch_answers_pairs_file() {
        let (sp, rp) = write_paper_files();
        let pf = tmp("pairs.txt");
        fs::write(
            &pf,
            "# reachability probes\n\
             b1 c3\n\
             c1 b2\n\
             \n\
             a1 h1\n",
        )
        .unwrap();
        for threads in [1usize, 4] {
            let out = cmd_query_batch(&sp, &rp, &pf, SchemeKind::Tcm, threads).unwrap();
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines[0], "b1 c3 false", "{out}");
            assert_eq!(lines[1], "c1 b2 true", "{out}");
            assert_eq!(lines[2], "a1 h1 true", "{out}");
            assert!(lines[3].starts_with("# 3 queries: 2 reachable"), "{out}");
        }
    }

    #[test]
    fn query_batch_rejects_bad_files() {
        let (sp, rp) = write_paper_files();
        let bad_name = tmp("bad-name.txt");
        fs::write(&bad_name, "b1 zz9\n").unwrap();
        let err = cmd_query_batch(&sp, &rp, &bad_name, SchemeKind::Tcm, 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("zz9"), "{err}");
        assert!(err.contains(":1:"), "{err}");
        let bad_arity = tmp("bad-arity.txt");
        fs::write(&bad_arity, "b1 c1\nb1 b2 b3\n").unwrap();
        let err = cmd_query_batch(&sp, &rp, &bad_arity, SchemeKind::Tcm, 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains(":2:"), "{err}");
        assert!(
            cmd_query_batch(&sp, &rp, Path::new("/nonexistent/p.txt"), SchemeKind::Tcm, 1)
                .is_err()
        );
    }

    #[test]
    fn query_batch_rejects_empty_pairs_file() {
        let (sp, rp) = write_paper_files();
        let empty = tmp("empty-pairs.txt");
        fs::write(&empty, "# only a comment\n\n").unwrap();
        let err = cmd_query_batch(&sp, &rp, &empty, SchemeKind::Tcm, 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("no queries"), "{err}");
    }

    #[test]
    fn gen_events_then_ingest_round_trips_with_probes() {
        let sp = tmp("live-spec.xml");
        let cfg = SpecGenConfig {
            modules: 40,
            edges: 60,
            hierarchy_size: 6,
            hierarchy_depth: 3,
            seed: 5,
        };
        cmd_gen_spec(&cfg, &sp).unwrap();
        let ep = tmp("live.events");
        let pp = tmp("live.probes");
        let msg = cmd_gen_events(&sp, 400, 3, &ep, Some((8, &pp))).unwrap();
        assert!(msg.contains("events"), "{msg}");
        assert!(msg.contains("probes"), "{msg}");

        let out = cmd_ingest(&sp, &ep, SchemeKind::Tcm, Some(&pp)).unwrap();
        assert!(out.contains("probes answered live"), "{out}");
        assert!(out.contains("parity check"), "{out}");
        // every scheduled probe produced an @EVENT# line
        let probe_lines = out.lines().filter(|l| l.starts_with('@')).count();
        assert!(probe_lines > 0, "{out}");
        assert!(out.contains(&format!("{probe_lines}/{probe_lines} probes agree")), "{out}");

        // ingest without probes also works
        let out = cmd_ingest(&sp, &ep, SchemeKind::Bfs, None).unwrap();
        assert!(out.contains("0 probes answered live"), "{out}");
    }

    #[test]
    fn ingest_answers_probes_mid_stream_on_the_paper_run() {
        let (sp, _) = write_paper_files();
        let ep = tmp("paper.events");
        // the paper's Figure 3 structure: a, F1(2 copies of L2...), d, ...
        // Use a prefix: probes must answer while groups are still open.
        fs::write(
            &ep,
            "exec a\nbegin-group 0\nbegin-copy\nbegin-group 1\nbegin-copy\n\
             exec b\nexec c\nend-copy\nend-group\nend-copy\nend-group\nexec d\n",
        )
        .unwrap();
        let pp = tmp("paper.probes");
        // event 7 = right after `exec c`: b1 and c1 exist, run mid-flight
        fs::write(&pp, "7 a1 c1\n7 c1 b1\n").unwrap();
        let out = cmd_ingest(&sp, &ep, SchemeKind::Tcm, Some(&pp)).unwrap();
        assert!(out.contains("@7 a1 c1 true"), "{out}");
        assert!(out.contains("@7 c1 b1 false"), "{out}");
        // incomplete run (only part of the paper run): freeze is skipped
        assert!(out.contains("freeze skipped"), "{out}");
    }

    #[test]
    fn ingest_rejects_bad_inputs() {
        let (sp, _) = write_paper_files();
        let ep = tmp("bad.events");
        fs::write(&ep, "exec nosuch\n").unwrap();
        assert!(cmd_ingest(&sp, &ep, SchemeKind::Tcm, None).is_err());

        // protocol violation: exec outside the module's home copy
        fs::write(&ep, "exec b\n").unwrap();
        let err = cmd_ingest(&sp, &ep, SchemeKind::Tcm, None)
            .unwrap_err()
            .to_string();
        assert!(err.contains("event #1"), "{err}");

        // probe naming a vertex that has not executed yet
        fs::write(&ep, "exec a\n").unwrap();
        let pp = tmp("bad.probes");
        fs::write(&pp, "1 a1 zz9\n").unwrap();
        let err = cmd_ingest(&sp, &ep, SchemeKind::Tcm, Some(&pp))
            .unwrap_err()
            .to_string();
        assert!(err.contains("zz9"), "{err}");
        // malformed probe line
        fs::write(&pp, "not-a-number a1 a1\n").unwrap();
        assert!(cmd_ingest(&sp, &ep, SchemeKind::Tcm, Some(&pp)).is_err());
        fs::write(&pp, "1 a1\n").unwrap();
        assert!(cmd_ingest(&sp, &ep, SchemeKind::Tcm, Some(&pp)).is_err());
        // missing files
        assert!(cmd_ingest(&sp, Path::new("/nonexistent/e.log"), SchemeKind::Tcm, None).is_err());
    }

    fn fleet_opts<'a>(run_paths: &'a [&'a Path], gen_runs: usize, probes: usize) -> FleetOpts<'a> {
        FleetOpts {
            run_paths,
            gen_runs,
            target: 60,
            seed: 7,
            probes,
            scheme: SchemeKind::Bfs,
            threads: 1,
            packed: false,
            save: None,
            load: None,
        }
    }

    #[test]
    fn fleet_serves_loaded_and_generated_runs() {
        let (sp, rp) = write_paper_files();
        let paths = [rp.as_path(), rp.as_path()];
        for threads in [1usize, 4] {
            let opts = FleetOpts {
                threads,
                ..fleet_opts(&paths, 6, 5_000)
            };
            let out = cmd_fleet(&sp, &opts).unwrap();
            assert!(out.contains("8 runs (2 loaded, 6 generated)"), "{out}");
            assert!(out.contains("5000 probes"), "{out}");
            assert!(out.contains("shared once"), "{out}");
            assert!(out.contains("8 independent engines would hold"), "{out}");
        }
    }

    #[test]
    fn fleet_rejects_empty_and_bad_inputs() {
        let (sp, _) = write_paper_files();
        let err = cmd_fleet(&sp, &fleet_opts(&[], 0, 10)).unwrap_err().to_string();
        assert!(err.contains("no runs"), "{err}");
        assert!(cmd_fleet(Path::new("/nonexistent/spec.xml"), &fleet_opts(&[], 2, 10)).is_err());
    }

    #[test]
    fn fleet_save_load_round_trip_restores_warm_serving() {
        let (sp, rp) = write_paper_files();
        let dir = tmp("fleet-snap");
        let paths = [rp.as_path()];
        let save_opts = FleetOpts {
            save: Some(&dir),
            ..fleet_opts(&paths, 3, 2_000)
        };
        let out = cmd_fleet(&sp, &save_opts).unwrap();
        assert!(out.contains("saved fleet snapshot"), "{out}");
        assert!(out.contains("4 run segments"), "{out}");
        assert!(dir.join(FLEET_SNAPSHOT_FILE).is_file());

        let load_opts = FleetOpts {
            load: Some(&dir),
            ..fleet_opts(&[], 0, 2_000)
        };
        let out = cmd_fleet(&sp, &load_opts).unwrap();
        assert!(out.contains("restored fleet"), "{out}");
        assert!(out.contains("4 runs (0 evicted), scheme BFS"), "{out}");
        assert!(out.contains("no re-labeling"), "{out}");
        assert!(out.contains("2000 probes"), "{out}");
        // the saved process's traffic warmed the memo; the restored fleet
        // answers the identical traffic without new skeleton probes
        assert!(out.contains("(0 probes,"), "{out}");

        // mixing --load with run sources is rejected
        let bad = FleetOpts {
            load: Some(&dir),
            ..fleet_opts(&paths, 0, 10)
        };
        let err = cmd_fleet(&sp, &bad).unwrap_err().to_string();
        assert!(err.contains("--load"), "{err}");
        // a snapshot for a different spec is rejected
        let other_sp = tmp("other-spec.xml");
        let cfg = SpecGenConfig {
            modules: 12,
            edges: 14,
            hierarchy_size: 4,
            hierarchy_depth: 3,
            seed: 9,
        };
        cmd_gen_spec(&cfg, &other_sp).unwrap();
        let err = cmd_fleet(&other_sp, &load_opts).unwrap_err().to_string();
        assert!(err.contains("different specification"), "{err}");
    }

    #[test]
    fn fleet_packed_serves_and_round_trips_smaller_snapshots() {
        let (sp, rp) = write_paper_files();
        let paths = [rp.as_path()];

        // raw baseline snapshot of the identical fleet + traffic
        let raw_dir = tmp("fleet-raw-snap");
        let raw_opts = FleetOpts {
            save: Some(&raw_dir),
            ..fleet_opts(&paths, 3, 2_000)
        };
        let raw_out = cmd_fleet(&sp, &raw_opts).unwrap();
        let raw_len = fs::metadata(raw_dir.join(FLEET_SNAPSHOT_FILE)).unwrap().len();

        let dir = tmp("fleet-packed-snap");
        let packed_opts = FleetOpts {
            packed: true,
            save: Some(&dir),
            ..fleet_opts(&paths, 3, 2_000)
        };
        let out = cmd_fleet(&sp, &packed_opts).unwrap();
        assert!(out.contains("sealed 4 runs"), "{out}");
        assert!(out.contains("4 run segments"), "{out}");
        // identical traffic, identical decision counts as the raw fleet
        // (compare up to the memo/timing half, which varies run to run)
        let count_line = |s: &str| {
            let l = s.lines().find(|l| l.contains("2000 probes")).unwrap();
            l.split(" (").next().unwrap().to_string()
        };
        assert_eq!(count_line(&out), count_line(&raw_out));
        let packed_len = fs::metadata(dir.join(FLEET_SNAPSHOT_FILE)).unwrap().len();
        assert!(
            packed_len < raw_len,
            "packed snapshot {packed_len} B must undercut raw {raw_len} B"
        );

        // restore: runs come back packed, memo warm, no re-labeling
        let load_opts = FleetOpts {
            load: Some(&dir),
            ..fleet_opts(&[], 0, 2_000)
        };
        let out = cmd_fleet(&sp, &load_opts).unwrap();
        assert!(out.contains("restored fleet"), "{out}");
        assert!(out.contains("4 runs (0 evicted)"), "{out}");
        assert!(out.contains("(0 probes,"), "{out}");
        // decision counters are cumulative (the snapshot carries them), so
        // only the answers themselves are comparable after the reload
        let reachable = |s: &str| count_line(s).split(';').next().unwrap().to_string();
        assert_eq!(reachable(&out), reachable(&raw_out));
    }

    #[test]
    fn scheme_parsing() {
        assert_eq!(parse_scheme("TCM").unwrap(), SchemeKind::Tcm);
        assert_eq!(parse_scheme("treecover").unwrap(), SchemeKind::TreeCover);
        assert!(parse_scheme("nope").is_err());
    }

    #[test]
    fn budget_parsing_accepts_both_suffix_cases() {
        assert_eq!(parse_budget("4096").unwrap(), 4096);
        // lowercase and uppercase binary suffixes are interchangeable
        assert_eq!(parse_budget("512k").unwrap(), 512 << 10);
        assert_eq!(parse_budget("512K").unwrap(), 512 << 10);
        assert_eq!(parse_budget("64m").unwrap(), 64 << 20);
        assert_eq!(parse_budget("64M").unwrap(), 64 << 20);
        assert_eq!(parse_budget("2g").unwrap(), 2 << 30);
        assert_eq!(parse_budget("2G").unwrap(), 2 << 30);
        assert_eq!(parse_budget("  8K  ").unwrap(), 8 << 10, "whitespace trims");
    }

    #[test]
    fn budget_parsing_rejects_garbage_with_clear_errors() {
        // a bare suffix names the missing number, not a parse failure
        for bare in ["M", "k", "G", " m "] {
            let err = parse_budget(bare).unwrap_err().to_string();
            assert!(
                err.contains("missing the number before the suffix"),
                "{bare:?} -> {err}"
            );
        }
        assert!(parse_budget("").is_err());
        assert!(parse_budget("12xyzM").is_err());
        assert!(parse_budget("-4K").is_err());
        assert!(
            parse_budget(&format!("{}G", usize::MAX)).is_err(),
            "suffix multiplication overflow is a typed error"
        );
    }

    fn serve_opts(arrival: wfp_gen::Arrival, probes: usize) -> ServeOpts<'static> {
        ServeOpts {
            spec_paths: &[],
            gen_specs: 3,
            runs_per_spec: 2,
            target: 400,
            seed: 11,
            probes,
            clients: 4,
            arrival,
            budget: None,
            load: None,
            batch: 512,
            window_us: 100,
            queue: 256,
            threads: 1,
            shards: 1,
            mix: wfp_gen::SpecMix::Uniform,
        }
    }

    #[test]
    fn serve_answers_every_probe_closed_loop() {
        let out = cmd_serve(&serve_opts(wfp_gen::Arrival::Closed, 5_000)).unwrap();
        assert!(
            out.contains("5000 probes, 5000 answered"),
            "every submitted probe must come back: {out}"
        );
        assert!(out.contains("0 failed, 0 dropped"), "{out}");
        assert!(out.contains("shutdown: clean"), "{out}");
        assert!(out.contains("per-scheme serve latency"), "{out}");
        // 3 specs cycle through tcm/bfs/dfs — each scheme row appears
        for scheme in ["TCM", "BFS", "DFS"] {
            assert!(out.contains(scheme), "missing {scheme} row: {out}");
        }
    }

    #[test]
    fn serve_paces_open_loop_arrivals_and_reports_drops() {
        // an aggressive Poisson rate with a generous queue: probes may be
        // shed under overload, but answered + dropped must account for all
        let mut opts = serve_opts(wfp_gen::Arrival::Poisson { per_sec: 200_000.0 }, 3_000);
        opts.queue = 4096; // deep enough that nothing sheds in practice
        let out = cmd_serve(&opts).unwrap();
        assert!(out.contains("3000 probes"), "{out}");
        assert!(out.contains("0 failed"), "{out}");
        assert!(out.contains("shutdown: clean"), "{out}");
    }

    #[test]
    fn serve_sharded_zipf_answers_every_probe() {
        let mut opts = serve_opts(wfp_gen::Arrival::Closed, 4_000);
        opts.gen_specs = 4;
        opts.shards = 4;
        opts.mix = wfp_gen::SpecMix::Zipf { skew: 1.0 };
        let out = cmd_serve(&opts).unwrap();
        assert!(out.contains("4000 probes, 4000 answered"), "{out}");
        assert!(out.contains("0 failed, 0 dropped"), "{out}");
        assert!(out.contains("per-shard load:"), "{out}");
        assert!(out.contains("shutdown: clean"), "{out}");
    }

    #[test]
    fn serve_rejects_empty_inputs() {
        let mut opts = serve_opts(wfp_gen::Arrival::Closed, 10);
        opts.gen_specs = 0;
        let err = cmd_serve(&opts).unwrap_err().to_string();
        assert!(err.contains("no specs"), "{err}");
    }
}
