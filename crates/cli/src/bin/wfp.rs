//! The `wfp` command-line tool. See `wfp --help`.

use std::path::PathBuf;
use std::process::exit;

use wfp_cli::*;
use wfp_gen::SpecGenConfig;
use wfp_speclabel::SchemeKind;

const USAGE: &str = "\
wfp — workflow provenance tools (skeleton-label reachability)

usage:
  wfp validate <spec.xml>
  wfp inspect  <spec.xml>
  wfp gen-spec -n MODULES -m EDGES -k HIERARCHY -d DEPTH [--seed S] -o OUT
  wfp gen-run  <spec.xml> --target VERTICES [--seed S] -o OUT
  wfp gen-events <spec.xml> --target VERTICES [--seed S] -o OUT
               [--probes K --probe-out FILE]
  wfp plan     <spec.xml> <run.xml>
  wfp label    <spec.xml> <run.xml> [--scheme KIND] [-o OUT.wfpl]
  wfp query    <spec.xml> <run.xml> <from> <to> [--scheme KIND]
  wfp query    <spec.xml> <run.xml> --pairs FILE [--threads N] [--scheme KIND]
  wfp ingest   <spec.xml> <events.log> [--scheme KIND] [--probe FILE]
  wfp fleet    <spec.xml> [run.xml...] [--runs K] [--target VERTICES]
               [--seed S] [--probes M] [--threads N] [--scheme KIND]
               [--packed] [--save DIR] [--load DIR]
  wfp registry [spec.xml...] [--gen-specs N] [--runs K] [--target VERTICES]
               [--seed S] [--probes M] [--budget BYTES] [--packed]
               [--save DIR] [--load DIR]
  wfp serve    [spec.xml...] [--gen-specs N] [--runs K] [--target VERTICES]
               [--seed S] [--probes M] [--clients C] [--arrival PATTERN]
               [--budget BYTES] [--load DIR] [--batch N] [--window US]
               [--queue N] [--threads N] [--shards S] [--mix MIX]

KIND: tcm | bfs | dfs | treecover | chain | 2hop   (default: tcm)
vertex names use the paper's numbered form, e.g. b3 = third execution of b;
--pairs batch mode reads one \"from to\" query per line (#-comments allowed)
and answers all of them through the batched query engine.
ingest replays a line-based event log through the live (query-while-running)
engine; --probe FILE schedules \"EVENT# FROM TO\" queries answered mid-stream,
then re-checked against the frozen labels when the run completes.
fleet loads the given runs and/or generates --runs more, registers them all
under one shared skeleton context, answers --probes mixed cross-run queries
(default 1000000) and reports the shared-vs-duplicated memory accounting.
--packed seals every frozen run into bit-packed label columns before serving
(identical answers, smaller memory and snapshots). --save DIR persists the
serving fleet (spec record + warm memo + per-run label columns) to
DIR/fleet.wfps; --load DIR restores it warm, with no re-labeling (drop
run.xml/--runs when loading).
registry serves many specs at once, each by its own fleet behind one
content-addressed registry (schemes cycle per spec); --budget BYTES (or
e.g. 64M, 512K) evicts least-recently-used fleets to their snapshot under
memory pressure, --save DIR writes one *.wfps per spec + registry.manifest,
and --load DIR opens the directory lazily: each fleet loads on first probe
(--packed seals runs before saving, so reloads bind the snapshot zero-copy).
serve runs the same multi-spec registry behind the request/response loop:
--clients C threads replay --probes M mixed probes through the bounded
admission queue, coalesced into batches of up to --batch probes per
--window US microseconds. PATTERN is closed (default; submit as answers
return) or open-loop uniform:RATE | poisson:RATE | bursty:RATE:BURST in
probes/second; overflowing an open-loop queue sheds probes (reported as
dropped). --shards S runs S dispatch shards, each owning the registry
slice a deterministic spec-affinity plan routes to it (probes fan out by
spec and reassemble in submission order); --budget splits evenly across
the shards. MIX is uniform (default) or zipf:SKEW, which skews the spec
mix onto a hot head shard. The report shows sustained throughput, the
batch-size histogram, per-shard load and per-scheme p50/p99 serve
latency.";

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

/// Flags that take no value: present means on.
const BOOL_FLAGS: &[&str] = &["packed"];

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        } else if let Some(name) = a.strip_prefix('-') {
            if name.len() == 1 {
                let value = it.next().ok_or_else(|| format!("-{name} needs a value"))?;
                flags.insert(name.to_string(), value.clone());
            } else {
                return Err(format!("unknown flag {a}"));
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Args { positional, flags })
}

impl Args {
    fn path(&self, i: usize) -> Result<PathBuf, String> {
        self.positional
            .get(i)
            .map(PathBuf::from)
            .ok_or_else(|| format!("missing argument #{}", i + 1))
    }

    fn num<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, String> {
        match self.flags.get(flag) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value for --{flag}: {v:?}")),
        }
    }

    fn required_num<T: std::str::FromStr>(&self, flag: &str) -> Result<T, String> {
        self.num(flag)?
            .ok_or_else(|| format!("missing required flag -{flag}"))
    }

    fn scheme(&self) -> Result<SchemeKind, CliError> {
        match self.flags.get("scheme") {
            None => Ok(SchemeKind::Tcm),
            Some(s) => parse_scheme(s),
        }
    }
}

fn run() -> Result<String, CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().cloned() else {
        return Err(USAGE.into());
    };
    let args = parse_args(&argv[1..])?;
    match command.as_str() {
        "validate" => cmd_validate(&args.path(0)?),
        "inspect" => cmd_inspect(&args.path(0)?),
        "gen-spec" => {
            let cfg = SpecGenConfig {
                modules: args.required_num("n")?,
                edges: args.required_num("m")?,
                hierarchy_size: args.required_num("k")?,
                hierarchy_depth: args.required_num("d")?,
                seed: args.num("seed")?.unwrap_or(0),
            };
            let out = args
                .flags
                .get("o")
                .map(PathBuf::from)
                .ok_or("missing -o OUT")?;
            cmd_gen_spec(&cfg, &out)
        }
        "gen-run" => {
            let out = args
                .flags
                .get("o")
                .map(PathBuf::from)
                .ok_or("missing -o OUT")?;
            cmd_gen_run(
                &args.path(0)?,
                args.required_num("target")?,
                args.num("seed")?.unwrap_or(0),
                &out,
            )
        }
        "gen-events" => {
            let out = args
                .flags
                .get("o")
                .map(PathBuf::from)
                .ok_or("missing -o OUT")?;
            let probes = match (args.num::<usize>("probes")?, args.flags.get("probe-out")) {
                (Some(k), Some(p)) => Some((k, PathBuf::from(p))),
                (None, None) => None,
                _ => return Err("--probes and --probe-out go together".into()),
            };
            cmd_gen_events(
                &args.path(0)?,
                args.required_num("target")?,
                args.num("seed")?.unwrap_or(0),
                &out,
                probes.as_ref().map(|(k, p)| (*k, p.as_path())),
            )
        }
        "ingest" => cmd_ingest(
            &args.path(0)?,
            &args.path(1)?,
            args.scheme()?,
            args.flags.get("probe").map(PathBuf::from).as_deref(),
        ),
        "plan" => cmd_plan(&args.path(0)?, &args.path(1)?),
        "label" => cmd_label(
            &args.path(0)?,
            &args.path(1)?,
            args.scheme()?,
            args.flags.get("o").map(PathBuf::from).as_deref(),
        ),
        "query" => {
            if let Some(pairs) = args.flags.get("pairs") {
                if args.positional.len() > 2 {
                    return Err("--pairs batch mode takes no <from>/<to> arguments".into());
                }
                cmd_query_batch(
                    &args.path(0)?,
                    &args.path(1)?,
                    &PathBuf::from(pairs),
                    args.scheme()?,
                    args.num("threads")?.unwrap_or(1),
                )
            } else if args.flags.contains_key("threads") {
                Err("--threads requires --pairs batch mode".into())
            } else {
                let from = args.positional.get(2).ok_or("missing <from> vertex")?;
                let to = args.positional.get(3).ok_or("missing <to> vertex")?;
                cmd_query(&args.path(0)?, &args.path(1)?, from, to, args.scheme()?)
            }
        }
        "fleet" => {
            let spec = args.path(0)?;
            let run_paths: Vec<PathBuf> =
                args.positional[1..].iter().map(PathBuf::from).collect();
            let refs: Vec<&std::path::Path> =
                run_paths.iter().map(PathBuf::as_path).collect();
            let save = args.flags.get("save").map(PathBuf::from);
            let load = args.flags.get("load").map(PathBuf::from);
            cmd_fleet(
                &spec,
                &FleetOpts {
                    run_paths: &refs,
                    gen_runs: args.num("runs")?.unwrap_or(0),
                    target: args.num("target")?.unwrap_or(10_000),
                    seed: args.num("seed")?.unwrap_or(0),
                    probes: args.num("probes")?.unwrap_or(1_000_000),
                    scheme: args.scheme()?,
                    threads: args.num("threads")?.unwrap_or(1),
                    packed: args.flags.contains_key("packed"),
                    save: save.as_deref(),
                    load: load.as_deref(),
                },
            )
        }
        "registry" => {
            let spec_paths: Vec<PathBuf> = args.positional.iter().map(PathBuf::from).collect();
            let refs: Vec<&std::path::Path> =
                spec_paths.iter().map(PathBuf::as_path).collect();
            let save = args.flags.get("save").map(PathBuf::from);
            let load = args.flags.get("load").map(PathBuf::from);
            let budget = args
                .flags
                .get("budget")
                .map(|b| parse_budget(b))
                .transpose()?;
            cmd_registry(&RegistryOpts {
                spec_paths: &refs,
                gen_specs: args.num("gen-specs")?.unwrap_or(0),
                runs_per_spec: args.num("runs")?.unwrap_or(4),
                target: args.num("target")?.unwrap_or(2_000),
                seed: args.num("seed")?.unwrap_or(0),
                probes: args.num("probes")?.unwrap_or(100_000),
                budget,
                packed: args.flags.contains_key("packed"),
                save: save.as_deref(),
                load: load.as_deref(),
            })
        }
        "serve" => {
            let spec_paths: Vec<PathBuf> = args.positional.iter().map(PathBuf::from).collect();
            let refs: Vec<&std::path::Path> =
                spec_paths.iter().map(PathBuf::as_path).collect();
            let load = args.flags.get("load").map(PathBuf::from);
            let budget = args
                .flags
                .get("budget")
                .map(|b| parse_budget(b))
                .transpose()?;
            let arrival = match args.flags.get("arrival") {
                None => wfp_gen::Arrival::Closed,
                Some(text) => wfp_gen::Arrival::parse(text)?,
            };
            let mix = match args.flags.get("mix") {
                None => wfp_gen::SpecMix::Uniform,
                Some(text) => wfp_gen::SpecMix::parse(text)?,
            };
            cmd_serve(&ServeOpts {
                spec_paths: &refs,
                gen_specs: args.num("gen-specs")?.unwrap_or(0),
                runs_per_spec: args.num("runs")?.unwrap_or(4),
                target: args.num("target")?.unwrap_or(2_000),
                seed: args.num("seed")?.unwrap_or(0),
                probes: args.num("probes")?.unwrap_or(100_000),
                clients: args.num("clients")?.unwrap_or(4),
                arrival,
                budget,
                load: load.as_deref(),
                batch: args.num("batch")?.unwrap_or(8192),
                window_us: args.num("window")?.unwrap_or(200),
                queue: args.num("queue")?.unwrap_or(1024),
                threads: args.num("threads")?.unwrap_or(1),
                shards: args.num("shards")?.unwrap_or(1),
                mix,
            })
        }
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    }
}

fn main() {
    match run() {
        Ok(msg) => println!("{msg}"),
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}
