//! Machine-readable benchmark output (`BENCH_PR10.json`).
//!
//! Every `repro` invocation serializes the tables it produced — with their
//! per-experiment wall-clock timings and full cell grids (the `throughput`
//! experiment's grid carries queries/sec) — into one JSON document, so the
//! performance trajectory of the repository can be tracked mechanically
//! from PR to PR instead of by eyeballing text tables. The writer is
//! dependency-free: the document shape is flat enough that hand-rolled
//! escaping beats vendoring a serializer.

use std::fs;
use std::path::Path;

use crate::table::Table;

/// The file name every invocation writes under the results directory
/// (bumped per PR so trajectories diff cleanly: PR 9 wrote
/// `BENCH_PR9.json`).
pub const BENCH_JSON_FILE: &str = "BENCH_PR10.json";

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", cells.join(","))
}

/// Renders one repro invocation: experiment names, wall-clock seconds, and
/// the full table grids.
pub fn render(quick: bool, entries: &[(String, f64, Table)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"wfp-bench/v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"experiments\": [\n");
    let blocks: Vec<String> = entries
        .iter()
        .map(|(name, elapsed_s, table)| {
            let rows: Vec<String> = table
                .rows()
                .iter()
                .map(|r| format!("        {}", string_array(r)))
                .collect();
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"elapsed_s\": {:.3},\n      \
                 \"title\": \"{}\",\n      \"headers\": {},\n      \"rows\": [\n{}\n      ]\n    }}",
                escape(name),
                elapsed_s,
                escape(table.title()),
                string_array(table.headers()),
                rows.join(",\n"),
            )
        })
        .collect();
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes [`render`]'s output to `<dir>/`[`BENCH_JSON_FILE`].
pub fn emit(dir: &Path, quick: bool, entries: &[(String, f64, Table)]) {
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(BENCH_JSON_FILE);
    if let Err(e) = fs::write(&path, render(quick, entries)) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("[wrote {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(String, f64, Table)> {
        let mut t = Table::new("Demo \"quoted\"", &["a", "q/s"]);
        t.row(vec!["TCM".into(), "123456".into()]);
        t.row(vec!["BFS".into(), "789".into()]);
        vec![("throughput".to_string(), 1.25, t)]
    }

    #[test]
    fn renders_escaped_well_formed_json() {
        let s = render(true, &sample_entries());
        assert!(s.contains("\"mode\": \"quick\""));
        assert!(s.contains("\"name\": \"throughput\""));
        assert!(s.contains("\"elapsed_s\": 1.250"));
        assert!(s.contains(r#"Demo \"quoted\""#));
        assert!(s.contains(r#"["TCM","123456"]"#));
        // structurally balanced
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\tb\nc"), "a\\tb\\nc");
        assert_eq!(escape("x\u{1}y"), "x\\u0001y");
        assert_eq!(escape(r"back\slash"), r"back\\slash");
    }

    #[test]
    fn emit_writes_the_file() {
        let dir = std::env::temp_dir().join("wfp-bench-json-test");
        emit(&dir, false, &sample_entries());
        let body = std::fs::read_to_string(dir.join(BENCH_JSON_FILE)).unwrap();
        assert!(body.contains("\"mode\": \"full\""));
    }
}
