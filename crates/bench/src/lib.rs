//! Benchmark harness reproducing the paper's evaluation (§8).
//!
//! The `repro` binary regenerates every table and figure:
//!
//! ```sh
//! cargo run -p wfp-bench --release --bin repro -- all
//! cargo run -p wfp-bench --release --bin repro -- fig12 --quick
//! ```
//!
//! Each experiment prints the same rows/series the paper reports and writes
//! a copy under `results/`. Criterion microbenches live in `benches/`.
//!
//! Absolute numbers differ from the paper (Rust on this machine vs. Java on
//! a 2006 Pentium); the reproduction targets are the *shapes*: logarithmic
//! label growth under `3·log n_R` (Fig. 12), linear construction dominated
//! by plan recovery (Fig. 13/16), constant query time for TCM+SKL (Fig.
//! 14/17), the decreasing BFS+SKL query curve (Fig. 17/20), and the
//! wash-out of specification size for large runs (Fig. 18–20).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod json;
pub mod options;
pub mod table;
pub mod timing;

pub use options::ReproOptions;
pub use table::Table;
