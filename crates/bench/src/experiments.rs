//! One reproduction function per table/figure of the paper's §8.
//!
//! Terminology matches the paper: `TCM+SKL` / `BFS+SKL` label the
//! specification with TCM or BFS and the run with the skeleton scheme;
//! bare `TCM` / `BFS` index the *run* directly (the scalability baselines).
//! Amortized costs spread the specification-labeling cost over `k` runs
//! (Table 2).

use wfp_gen::{
    generate_fleet, generate_run_with_target, generate_spec, random_pairs, real_workflows,
    stand_in, GeneratedRun, SpecGenConfig,
};
use wfp_graph::TransitiveClosure;
use wfp_speclabel::TreeExpansion;
use wfp_model::io::{plan_to_events, RunEvent};
use wfp_model::{Run, RunVertexId, Specification};
use wfp_skl::fleet::{FleetEngine, RunId};
use wfp_skl::{label_run, LabeledRun, LiveRun, QueryEngine};
use wfp_speclabel::{SchemeKind, SpecIndex, SpecScheme};

use crate::options::ReproOptions;
use crate::table::{fmt_f64, Table};
use crate::timing::{best_ms, predicate_time_ms, query_time_ms, time_ms};

/// The §8.2 synthetic specification: `n_G=100, m_G=200, |T_G|=10, [T_G]=4`.
pub fn synthetic_spec(modules: usize) -> Specification {
    // first seed whose random layout realizes the exact parameters
    for seed in 0..10_000 {
        let cfg = SpecGenConfig {
            modules,
            edges: 2 * modules,
            hierarchy_size: 10,
            hierarchy_depth: 4,
            seed: seed * 77 + 13,
        };
        if let Ok(spec) = generate_spec(&cfg) {
            return spec;
        }
    }
    unreachable!("§8 parameters are feasible");
}

/// The QBLAST stand-in used by the first experiment set (§8.1).
pub fn qblast_spec() -> Specification {
    stand_in(
        real_workflows()
            .into_iter()
            .find(|w| w.name == "QBLAST")
            .expect("QBLAST is in Table 1"),
    )
}

fn ladder_runs(spec: &Specification, opts: &ReproOptions, seed: u64) -> Vec<(usize, Run)> {
    opts.ladder()
        .into_iter()
        .map(|size| {
            let GeneratedRun { run, .. } = generate_run_with_target(spec, seed, size);
            (size, run)
        })
        .collect()
}

fn size_label(size: usize) -> String {
    format!("{:.1}K", size as f64 / 1000.0)
}

// ======================================================================
// Table 1 — characteristics of the real-life workflows
// ======================================================================

/// Table 1: the six real workflows (stand-ins match the published rows
/// exactly; see DESIGN.md §3).
pub fn table1(_opts: &ReproOptions) -> Table {
    let mut t = Table::new(
        "Table 1: Characteristics of Real-life Scientific Workflows",
        &["workflow", "n_G", "m_G", "|T_G|", "[T_G]"],
    );
    for w in real_workflows() {
        let spec = stand_in(w);
        t.row(vec![
            w.name.to_string(),
            spec.module_count().to_string(),
            spec.channel_count().to_string(),
            spec.hierarchy().size().to_string(),
            spec.hierarchy().max_depth().to_string(),
        ]);
    }
    t.note("stand-in specifications generated to match the published parameters exactly");
    t
}

// ======================================================================
// Table 2 — complexity comparison with amortized cost
// ======================================================================

/// Table 2: asymptotic costs plus measured values on the §8.2 synthetic
/// workflow at a representative run size.
pub fn table2(opts: &ReproOptions) -> Table {
    let spec = synthetic_spec(100);
    let size = if opts.quick { 12_800 } else { 25_600 };
    let GeneratedRun { run, .. } = generate_run_with_target(&spec, 2, size);
    let pairs = random_pairs(&run, opts.query_count().min(200_000), 3);
    let n_g = spec.module_count();
    let n_r = run.vertex_count();

    // TCM+SKL
    let tcm_build_ms = time_ms(opts.time_reps(), || {
        std::hint::black_box(SpecScheme::build(SchemeKind::Tcm, spec.graph()));
    });
    let skl_label_ms = time_ms(opts.time_reps(), || {
        let scheme = SpecScheme::build(SchemeKind::Tcm, spec.graph());
        std::hint::black_box(LabeledRun::build(&spec, scheme, &run).unwrap());
    });
    let labeled_tcm =
        LabeledRun::build(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()), &run).unwrap();
    let (tcm_skl_q, _) = query_time_ms(&labeled_tcm, &pairs);
    let labeled_bfs =
        LabeledRun::build(&spec, SpecScheme::build(SchemeKind::Bfs, spec.graph()), &run).unwrap();
    let (bfs_skl_q, _) = query_time_ms(&labeled_bfs, &pairs);

    // bare TCM / BFS on the run
    let closure = TransitiveClosure::build(run.graph());
    let (tcm_q, _) = predicate_time_ms(&pairs, |u, v| closure.reaches(u.raw(), v.raw()));
    let run_search = SpecScheme::build(SchemeKind::Bfs, run.graph());
    let bfs_pairs = &pairs[..pairs.len().min(300)];
    let (bfs_q, _) = predicate_time_ms(bfs_pairs, |u, v| run_search.reaches(u.raw(), v.raw()));
    let tcm_run_build_ms = time_ms(1, || {
        std::hint::black_box(TransitiveClosure::build(run.graph()));
    });

    let k = 10.0;
    let amortized_tcm_bits =
        labeled_tcm.fixed_label_bits() as f64 + (n_g * n_g) as f64 / (k * n_r as f64);
    let mut t = Table::new(
        format!("Table 2: Complexity Comparison (measured at n_R = {n_r}, k = 10 runs)"),
        &[
            "scheme",
            "label length (bits)",
            "construction (ms)",
            "query (ms)",
            "asymptotics",
        ],
    );
    t.row(vec![
        "TCM+SKL".into(),
        fmt_f64(amortized_tcm_bits),
        fmt_f64(skl_label_ms + tcm_build_ms / k),
        fmt_f64(tcm_skl_q),
        "3logN+logn + n²/kN | O(M+N+mn/k) | O(1)".into(),
    ]);
    t.row(vec![
        "BFS+SKL".into(),
        fmt_f64(labeled_bfs.fixed_label_bits() as f64),
        fmt_f64(skl_label_ms),
        fmt_f64(bfs_skl_q),
        "3logN+logn | O(M+N) | O(m+n)".into(),
    ]);
    t.row(vec![
        "TCM".into(),
        fmt_f64(n_r as f64),
        fmt_f64(tcm_run_build_ms),
        fmt_f64(tcm_q),
        "N | O(M·N) | O(1)".into(),
    ]);
    t.row(vec![
        "BFS".into(),
        "0".into(),
        "0".into(),
        fmt_f64(bfs_q),
        "0 | 0 | O(M+N)".into(),
    ]);
    t.note("N,M = run size; n,m = spec size; k = number of runs sharing the spec labels");
    t.note(format!(
        "bare-BFS query time sampled over {} queries (others over {})",
        bfs_pairs.len(),
        pairs.len()
    ));
    t
}

// ======================================================================
// Figure 12 — label length for QBLAST
// ======================================================================

/// Figure 12: maximum and average label length vs. run size (QBLAST),
/// against the `3·log₂ n_R` asymptote.
pub fn fig12(opts: &ReproOptions) -> Table {
    let spec = qblast_spec();
    let mut t = Table::new(
        "Figure 12: Label Length for QBLAST (bits)",
        &["run size", "max label", "avg label", "3·log2(n_R)"],
    );
    for size in opts.ladder() {
        let mut max_bits = 0usize;
        let mut avg_bits = 0.0;
        let mut actual = 0usize;
        let samples = opts.runs_per_point();
        for s in 0..samples {
            let GeneratedRun { run, .. } =
                generate_run_with_target(&spec, 1000 + s as u64, size);
            let labeled = LabeledRun::build(
                &spec,
                SpecScheme::build(SchemeKind::Tcm, spec.graph()),
                &run,
            )
            .unwrap();
            max_bits = max_bits.max(labeled.fixed_label_bits());
            avg_bits += labeled.average_label_bits();
            actual = actual.max(run.vertex_count());
        }
        avg_bits /= samples as f64;
        t.row(vec![
            size_label(size),
            max_bits.to_string(),
            fmt_f64(avg_bits),
            fmt_f64(3.0 * (actual.max(2) as f64).log2()),
        ]);
    }
    t.note("expected shape: logarithmic growth, max below the 3·log2(n_R) line (Lemma 4.7)");
    t
}

// ======================================================================
// Figure 13 — construction time for QBLAST
// ======================================================================

/// Figure 13: SKL construction time vs. run size — default setting (plan
/// recovered from the bare run) vs. the run arriving with its execution
/// plan and context.
pub fn fig13(opts: &ReproOptions) -> Table {
    let spec = qblast_spec();
    let mut t = Table::new(
        "Figure 13: Construction Time for QBLAST (ms)",
        &["run size", "default", "with plan+context", "plan share"],
    );
    for size in opts.ladder() {
        let gen = generate_run_with_target(&spec, 7, size);
        let run = &gen.run;
        let default_ms = time_ms(opts.time_reps(), || {
            let scheme = SpecScheme::build(SchemeKind::Tcm, spec.graph());
            std::hint::black_box(LabeledRun::build(&spec, scheme, run).unwrap());
        });
        let with_plan_ms = time_ms(opts.time_reps(), || {
            let scheme = SpecScheme::build(SchemeKind::Tcm, spec.graph());
            std::hint::black_box(LabeledRun::build_with_plan(&spec, scheme, run, &gen.plan));
        });
        t.row(vec![
            size_label(size),
            fmt_f64(default_ms),
            fmt_f64(with_plan_ms),
            format!("{:.0}%", 100.0 * (default_ms - with_plan_ms) / default_ms.max(1e-9)),
        ]);
    }
    t.note("expected shape: both linear; plan+context computation dominates the default cost");
    t
}

// ======================================================================
// Figure 14 — query time for QBLAST
// ======================================================================

/// Figure 14: TCM+SKL query time vs. run size (constant).
pub fn fig14(opts: &ReproOptions) -> Table {
    let spec = qblast_spec();
    let mut t = Table::new(
        "Figure 14: Query Time for QBLAST (ns/query, TCM+SKL)",
        &["run size", "ns/query"],
    );
    for size in opts.ladder() {
        let GeneratedRun { run, .. } = generate_run_with_target(&spec, 5, size);
        let labeled = LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Tcm, spec.graph()),
            &run,
        )
        .unwrap();
        let pairs = random_pairs(&run, opts.query_count(), 11);
        let (ms, _) = query_time_ms(&labeled, &pairs);
        t.row(vec![size_label(size), fmt_f64(ms * 1e6)]);
    }
    t.note("expected shape: flat (constant query time, Theorem 1)");
    t
}

// ======================================================================
// Figures 15–17 — TCM+SKL vs BFS+SKL vs TCM vs BFS
// ======================================================================

/// Figure 15: maximum label length with the spec-labeling storage amortized
/// over 1, 2 and 10 runs.
pub fn fig15(opts: &ReproOptions) -> Table {
    let spec = synthetic_spec(100);
    let n_g = spec.module_count() as f64;
    let mut t = Table::new(
        "Figure 15: Label Length with Amortized Cost (bits)",
        &[
            "run size",
            "TCM+SKL (1 run)",
            "TCM+SKL (2 runs)",
            "TCM+SKL (10 runs)",
            "BFS+SKL",
        ],
    );
    for (size, run) in ladder_runs(&spec, opts, 23) {
        let labeled = LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Tcm, spec.graph()),
            &run,
        )
        .unwrap();
        let base = labeled.fixed_label_bits() as f64;
        let n_r = run.vertex_count() as f64;
        let amortized = |k: f64| base + n_g * n_g / (k * n_r);
        t.row(vec![
            size_label(size),
            fmt_f64(amortized(1.0)),
            fmt_f64(amortized(2.0)),
            fmt_f64(amortized(10.0)),
            fmt_f64(base),
        ]);
    }
    t.note("expected shape: BFS+SKL shortest for small runs; all converge for large runs");
    t
}

/// Figure 16: construction time with the spec-labeling time amortized,
/// against raw TCM on the run.
pub fn fig16(opts: &ReproOptions) -> Table {
    let spec = synthetic_spec(100);
    let tcm_cap = 25_600;
    let tcm_spec_ms = time_ms(opts.time_reps(), || {
        std::hint::black_box(SpecScheme::build(SchemeKind::Tcm, spec.graph()));
    });
    let mut t = Table::new(
        "Figure 16: Construction Time with Amortized Cost (ms)",
        &[
            "run size",
            "TCM+SKL (1 run)",
            "TCM+SKL (2 runs)",
            "TCM+SKL (10 runs)",
            "BFS+SKL",
            "TCM",
        ],
    );
    for (size, run) in ladder_runs(&spec, opts, 29) {
        let label_ms = time_ms(opts.time_reps(), || {
            let scheme = SpecScheme::build(SchemeKind::Bfs, spec.graph());
            std::hint::black_box(LabeledRun::build(&spec, scheme, &run).unwrap());
        });
        let tcm_run_ms = if run.vertex_count() <= tcm_cap {
            fmt_f64(time_ms(1, || {
                std::hint::black_box(TransitiveClosure::build(run.graph()));
            }))
        } else {
            "— (memory)".to_string()
        };
        t.row(vec![
            size_label(size),
            fmt_f64(label_ms + tcm_spec_ms),
            fmt_f64(label_ms + tcm_spec_ms / 2.0),
            fmt_f64(label_ms + tcm_spec_ms / 10.0),
            fmt_f64(label_ms),
            tcm_run_ms,
        ]);
    }
    t.note("expected shape: SKL linear and orders faster than TCM-on-run (polynomial)");
    t.note("TCM on runs beyond 25.6K vertices is skipped, as in the paper (memory constraint)");
    t
}

/// Figure 17: query time for all four schemes.
pub fn fig17(opts: &ReproOptions) -> Table {
    let spec = synthetic_spec(100);
    let tcm_cap = 25_600;
    let mut t = Table::new(
        "Figure 17: Query Time (ns/query)",
        &["run size", "TCM+SKL", "BFS+SKL", "TCM", "BFS"],
    );
    for (size, run) in ladder_runs(&spec, opts, 31) {
        let pairs = random_pairs(&run, opts.query_count(), 13);
        let labeled_tcm = LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Tcm, spec.graph()),
            &run,
        )
        .unwrap();
        let (tcm_skl, _) = query_time_ms(&labeled_tcm, &pairs);
        let labeled_bfs = LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Bfs, spec.graph()),
            &run,
        )
        .unwrap();
        let bfs_skl_pairs = &pairs[..pairs.len().min(200_000)];
        let (bfs_skl, _) = query_time_ms(&labeled_bfs, bfs_skl_pairs);
        let tcm_cell = if run.vertex_count() <= tcm_cap {
            let closure = TransitiveClosure::build(run.graph());
            let (q, _) = predicate_time_ms(&pairs, |u, v| closure.reaches(u.raw(), v.raw()));
            fmt_f64(q * 1e6)
        } else {
            "— (memory)".to_string()
        };
        let run_search = SpecScheme::build(SchemeKind::Bfs, run.graph());
        let bfs_pairs = &pairs[..pairs.len().min(300)];
        let (bfs, _) = predicate_time_ms(bfs_pairs, |u, v| run_search.reaches(u.raw(), v.raw()));
        t.row(vec![
            size_label(size),
            fmt_f64(tcm_skl * 1e6),
            fmt_f64(bfs_skl * 1e6),
            tcm_cell,
            fmt_f64(bfs * 1e6),
        ]);
    }
    t.note("expected shapes: TCM+SKL and TCM flat; BFS linear and slowest; BFS+SKL *decreasing*");
    t.note("(larger runs answer more queries from context encodings alone, §8.2)");
    t
}

// ======================================================================
// Figures 18–20 — influence of the specification size
// ======================================================================

fn spec_sweep() -> Vec<(usize, Specification)> {
    [50usize, 100, 200]
        .into_iter()
        .map(|n| (n, synthetic_spec(n)))
        .collect()
}

/// Figure 18: TCM+SKL label length (amortized over 2 runs) for
/// `n_G ∈ {50, 100, 200}`.
pub fn fig18(opts: &ReproOptions) -> Table {
    let specs = spec_sweep();
    let mut t = Table::new(
        "Figure 18: Influence of Specification — Label Length (bits, TCM+SKL, k = 2)",
        &["run size", "n_G=50", "n_G=100", "n_G=200"],
    );
    for size in opts.ladder() {
        let mut cells = vec![size_label(size)];
        for (n, spec) in &specs {
            let GeneratedRun { run, .. } =
                generate_run_with_target(spec, 41 + *n as u64, size);
            let labeled = LabeledRun::build(
                spec,
                SpecScheme::build(SchemeKind::Tcm, spec.graph()),
                &run,
            )
            .unwrap();
            let bits = labeled.fixed_label_bits() as f64
                + (*n as f64 * *n as f64) / (2.0 * run.vertex_count() as f64);
            cells.push(fmt_f64(bits));
        }
        t.row(cells);
    }
    t.note("expected shape: smaller specs much shorter for small runs, slightly longer for large");
    t
}

/// Figure 19: TCM+SKL construction time (amortized over 2 runs) for the
/// same specification sweep.
pub fn fig19(opts: &ReproOptions) -> Table {
    let specs = spec_sweep();
    let mut t = Table::new(
        "Figure 19: Influence of Specification — Construction Time (ms, TCM+SKL, k = 2)",
        &["run size", "n_G=50", "n_G=100", "n_G=200"],
    );
    let spec_ms: Vec<f64> = specs
        .iter()
        .map(|(_, spec)| {
            time_ms(opts.time_reps(), || {
                std::hint::black_box(SpecScheme::build(SchemeKind::Tcm, spec.graph()));
            })
        })
        .collect();
    for size in opts.ladder() {
        let mut cells = vec![size_label(size)];
        for ((_, spec), tcm_ms) in specs.iter().zip(&spec_ms) {
            let GeneratedRun { run, .. } = generate_run_with_target(spec, 43, size);
            let label_ms = time_ms(opts.time_reps(), || {
                let scheme = SpecScheme::build(SchemeKind::Bfs, spec.graph());
                std::hint::black_box(LabeledRun::build(spec, scheme, &run).unwrap());
            });
            cells.push(fmt_f64(label_ms + tcm_ms / 2.0));
        }
        t.row(cells);
    }
    t.note("expected shape: spec size matters only for small runs");
    t
}

/// Figure 20: BFS+SKL query time for the specification sweep.
pub fn fig20(opts: &ReproOptions) -> Table {
    let specs = spec_sweep();
    let mut t = Table::new(
        "Figure 20: Influence of Specification — Query Time (ns/query, BFS+SKL)",
        &["run size", "n_G=50", "n_G=100", "n_G=200"],
    );
    for size in opts.ladder() {
        let mut cells = vec![size_label(size)];
        for (_, spec) in &specs {
            let GeneratedRun { run, .. } = generate_run_with_target(spec, 47, size);
            let labeled = LabeledRun::build(
                spec,
                SpecScheme::build(SchemeKind::Bfs, spec.graph()),
                &run,
            )
            .unwrap();
            let pairs = random_pairs(&run, opts.query_count().min(300_000), 17);
            let (ms, _) = query_time_ms(&labeled, &pairs);
            cells.push(fmt_f64(ms * 1e6));
        }
        t.row(cells);
    }
    t.note("expected shape: grows with n_G, falls with run size, converges for large runs");
    t
}

// ======================================================================
// Throughput — scalar loop vs batched vs parallel-batched πr (PR 2)
// ======================================================================

/// The canonical 10⁶-pair throughput workload — the single definition
/// shared by [`throughput`] (whose numbers land in `BENCH_PR2.json`) and
/// the `throughput` criterion bench, so the regression guard measures
/// exactly the workload the committed record describes.
pub fn throughput_workload(
    quick: bool,
) -> (Specification, Run, Vec<(RunVertexId, RunVertexId)>) {
    let spec = synthetic_spec(100);
    let size = if quick { 12_800 } else { 25_600 };
    let GeneratedRun { run, .. } = generate_run_with_target(&spec, 2, size);
    let pairs = random_pairs(&run, 1_000_000, 19);
    (spec, run, pairs)
}

/// Throughput of the batched query engine against the scalar per-pair
/// loop on a 10⁶-pair workload, for the TCM and search schemes.
///
/// Three evaluation strategies over identical pairs:
///
/// * **scalar** — the per-pair [`LabeledRun::reaches`] loop (the baseline
///   every prior experiment used);
/// * **batched** — [`QueryEngine::answer_batch`]: SoA columns plus the
///   `(origin, origin)` skeleton memo, one thread;
/// * **parallel** — [`QueryEngine::answer_batch_parallel`] sharded over all
///   available cores.
///
/// The pair count stays at 10⁶ even under `--quick` (the whole point is the
/// bulk workload); quick mode only shrinks the run.
pub fn throughput(opts: &ReproOptions) -> Table {
    let (spec, run, pairs) = throughput_workload(opts.quick);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut t = Table::new(
        format!(
            "Throughput: batched query engine vs scalar loop \
             (n_R = {}, {} pairs, {} threads)",
            run.vertex_count(),
            pairs.len(),
            threads
        ),
        &[
            "scheme",
            "scalar q/s",
            "batched q/s",
            "parallel q/s",
            "batched x",
            "parallel x",
        ],
    );
    for kind in [SchemeKind::Tcm, SchemeKind::Bfs, SchemeKind::Dfs] {
        let labeled =
            LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
        let (scalar_ms_per_q, scalar_positive) = query_time_ms(&labeled, &pairs);
        let scalar_qps = 1e3 / scalar_ms_per_q.max(1e-12);

        let engine = QueryEngine::from_labeled(labeled);
        // One cold pass doubles as the agreement check (the strategies
        // must agree before their numbers mean much); the timed passes
        // then measure the steady state, where the memo warms up within
        // the first chunk of every batch.
        let batch_positive = engine
            .answer_batch(&pairs)
            .iter()
            .filter(|&&a| a)
            .count();
        assert_eq!(batch_positive, scalar_positive, "batch diverged under {kind}");
        let batched_ms = time_ms(opts.time_reps(), || {
            std::hint::black_box(engine.answer_batch(&pairs));
        });
        let batched_qps = pairs.len() as f64 / (batched_ms / 1e3).max(1e-12);
        let parallel_ms = time_ms(opts.time_reps(), || {
            std::hint::black_box(engine.answer_batch_parallel(&pairs, threads));
        });
        let parallel_qps = pairs.len() as f64 / (parallel_ms / 1e3).max(1e-12);

        t.row(vec![
            format!("{kind}+SKL"),
            format!("{scalar_qps:.0}"),
            format!("{batched_qps:.0}"),
            format!("{parallel_qps:.0}"),
            format!("{:.2}", batched_qps / scalar_qps),
            format!("{:.2}", parallel_qps / scalar_qps),
        ]);
    }
    t.note("identical 10^6-pair workload per strategy; batched/parallel reuse a warm skeleton memo");
    t.note("expected shape: memoization lifts the search schemes hardest; sharding lifts all");
    t.note(
        "the scalar loop only counts positives; the batched paths also materialize the \
         full answer vector (TCM's O(1) probes leave them nothing else to amortize)",
    );
    if threads == 1 {
        t.note("host exposes a single core: parallel sharding degenerates to the batched path");
    }
    t
}

// ======================================================================
// Live ingestion — query-while-running vs freeze-then-query (PR 3)
// ======================================================================

/// The canonical live-ingestion workload: one §8.2 synthetic run
/// linearized into its event stream, plus probe batches placed at evenly
/// spaced points of the stream, each over vertices already executed at
/// that point (in *exec order* — `mapping[i]` is the offline run vertex of
/// the `i`-th execution). Shared by the [`live_ingest`] experiment and the
/// `live_ingest` criterion bench.
#[allow(clippy::type_complexity)]
pub fn live_ingest_workload(
    quick: bool,
) -> (
    Specification,
    Run,
    Vec<RunEvent>,
    Vec<RunVertexId>,
    Vec<(usize, Vec<(RunVertexId, RunVertexId)>)>,
) {
    let spec = synthetic_spec(100);
    let size = if quick { 12_800 } else { 25_600 };
    let gen = generate_run_with_target(&spec, 2, size);
    let (events, mapping) = plan_to_events(&gen.run, &gen.plan);

    // exec count per event offset, to size each batch's vertex universe
    let mut execs_before = Vec::with_capacity(events.len() + 1);
    let mut execs = 0usize;
    for ev in &events {
        execs_before.push(execs);
        execs += matches!(ev, RunEvent::Exec(_)) as usize;
    }
    execs_before.push(execs);

    let checkpoints = 8usize;
    let per_batch = if quick { 50_000 } else { 125_000 };
    let mut rng = wfp_graph::rng::Xoshiro256::seed_from_u64(0x5DEE_CE66);
    let batches = (1..=checkpoints)
        .filter_map(|j| {
            let at = j * events.len() / (checkpoints + 1);
            // skip checkpoints before two executions exist — probing
            // unexecuted vertices would trip the engine's range assert
            let n = execs_before[at];
            if n < 2 {
                return None;
            }
            let pairs = (0..per_batch)
                .map(|_| {
                    (
                        RunVertexId(rng.gen_usize(n) as u32),
                        RunVertexId(rng.gen_usize(n) as u32),
                    )
                })
                .collect();
            Some((at, pairs))
        })
        .collect();
    (spec, gen.run, events, mapping, batches)
}

/// Replays `events[from..to)` into `live`, panicking on protocol errors
/// (generated streams are valid by construction).
pub fn replay<S: SpecIndex>(live: &mut LiveRun<'_, S>, events: &[RunEvent]) {
    for ev in events {
        match *ev {
            RunEvent::BeginGroup(sg) => live.begin_group(sg).unwrap(),
            RunEvent::BeginCopy => live.begin_copy().unwrap(),
            RunEvent::Exec(m) => {
                live.exec(m).unwrap();
            }
            RunEvent::EndCopy => live.end_copy().unwrap(),
            RunEvent::EndGroup => live.end_group().unwrap(),
        }
    }
}

/// Live ingestion: per-probe latency of intermediate queries answered
/// **while the run streams** against the same probes under
/// freeze-then-query — the §9 scenario. The baseline is the genuine
/// "wait for completion" strategy: the offline pipeline labels the
/// finished run from scratch and answers the identical batches with its
/// own cold memo (probes translated through the exec-order mapping). The
/// headline column is `live/frozen ×`: the per-probe price of *not*
/// waiting for the workflow to finish. `freeze ms` vs `label ms` shows
/// what the zero-re-labeling handoff saves when the run does complete.
pub fn live_ingest(opts: &ReproOptions) -> Table {
    let (spec, run, events, mapping, batches) = live_ingest_workload(opts.quick);
    let total_probes: usize = batches.iter().map(|(_, b)| b.len()).sum();
    let mut t = Table::new(
        format!(
            "Live ingestion: query-while-running vs freeze-then-query \
             ({} events, {} probes in {} mid-stream batches)",
            events.len(),
            total_probes,
            batches.len()
        ),
        &[
            "scheme",
            "ingest ms",
            "live ns/probe",
            "freeze ms",
            "label ms",
            "frozen ns/probe",
            "live/frozen x",
        ],
    );
    for kind in [SchemeKind::Tcm, SchemeKind::Bfs, SchemeKind::Dfs] {
        let mut live = LiveRun::new(&spec, SpecScheme::build(kind, spec.graph()));
        let mut out = Vec::new();
        let mut cursor = 0usize;
        let mut ingest_s = 0.0f64;
        let mut live_probe_s = 0.0f64;
        let mut live_answers: Vec<Vec<bool>> = Vec::with_capacity(batches.len());
        for (at, pairs) in &batches {
            let started = std::time::Instant::now();
            replay(&mut live, &events[cursor..*at]);
            ingest_s += started.elapsed().as_secs_f64();
            cursor = *at;
            let started = std::time::Instant::now();
            let answers = live.answer_batch_into(pairs, &mut out);
            live_probe_s += started.elapsed().as_secs_f64();
            live_answers.push(answers.to_vec());
        }
        let started = std::time::Instant::now();
        replay(&mut live, &events[cursor..]);
        let ingest_ms = (ingest_s + started.elapsed().as_secs_f64()) * 1e3;

        // the zero-re-labeling handoff (labels extracted from the bracket
        // lists, skeleton and memo carried over) …
        let freeze_started = std::time::Instant::now();
        let handoff = live.freeze().expect("generated runs freeze");
        let freeze_ms = freeze_started.elapsed().as_secs_f64() * 1e3;

        // … versus the wait-for-completion baseline: label the finished
        // run from scratch and answer the same probes with a cold memo.
        let label_started = std::time::Instant::now();
        let labeled =
            LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
        let engine = QueryEngine::from_labeled(labeled);
        let label_ms = label_started.elapsed().as_secs_f64() * 1e3;

        let mut frozen_probe_s = 0.0f64;
        for ((_, pairs), live_ans) in batches.iter().zip(&live_answers) {
            let offline: Vec<_> = pairs
                .iter()
                .map(|&(u, v)| (mapping[u.index()], mapping[v.index()]))
                .collect();
            let started = std::time::Instant::now();
            let answers = engine.answer_batch_into(&offline, &mut out);
            frozen_probe_s += started.elapsed().as_secs_f64();
            assert_eq!(answers, &live_ans[..], "live diverged from offline under {kind}");
            // the handoff engine agrees too, on live exec-order ids
            debug_assert_eq!(handoff.answer_batch(pairs), live_ans.clone());
        }
        // outside debug builds, spot-check the handoff on the last batch
        let (_, last) = batches.last().expect("at least one batch");
        assert_eq!(
            handoff.answer_batch(last),
            live_answers.last().cloned().unwrap(),
            "freeze handoff diverged under {kind}"
        );

        let live_ns = live_probe_s * 1e9 / total_probes as f64;
        let frozen_ns = frozen_probe_s * 1e9 / total_probes as f64;
        t.row(vec![
            format!("{kind}+SKL"),
            fmt_f64(ingest_ms),
            fmt_f64(live_ns),
            fmt_f64(freeze_ms),
            fmt_f64(label_ms),
            fmt_f64(frozen_ns),
            format!("{:.2}", live_ns / frozen_ns.max(1e-9)),
        ]);
    }
    t.note("identical probe batches per strategy (frozen side translated to offline vertex ids);");
    t.note("live answers mid-stream over tag columns; frozen = offline relabel + cold memo");
    t.note("expected shape: live within ~2x of frozen per probe; freeze() far below label ms");
    t
}

// ======================================================================
// Fleet — one shared skeleton context serving K runs (PR 4)
// ======================================================================

/// The canonical fleet workload: `K = 8` runs of the §8.2 synthetic spec
/// plus 10⁶ mixed cross-run probes, `(run index, u, v)` with both vertices
/// valid in that run. Shared by the [`fleet`] experiment and the `fleet`
/// criterion bench.
#[allow(clippy::type_complexity)]
pub fn fleet_workload(
    quick: bool,
) -> (
    Specification,
    Vec<Run>,
    Vec<(usize, RunVertexId, RunVertexId)>,
) {
    let spec = synthetic_spec(100);
    let k = 8usize;
    let size = if quick { 3_200 } else { 12_800 };
    let runs: Vec<Run> = generate_fleet(&spec, 2, k, size)
        .into_iter()
        .map(|g| g.run)
        .collect();
    let mut rng = wfp_graph::rng::Xoshiro256::seed_from_u64(0x000F_1EE7);
    let probes = (0..1_000_000usize)
        .map(|_| {
            let r = rng.gen_usize(k);
            let n = runs[r].vertex_count();
            (
                r,
                RunVertexId(rng.gen_usize(n) as u32),
                RunVertexId(rng.gen_usize(n) as u32),
            )
        })
        .collect();
    (spec, runs, probes)
}

/// Answers fleet-shaped probes against per-run independent engines with
/// the *same* run-grouped evaluation shape as the fleet — so the
/// comparison isolates what sharing one spec context buys, not batching.
fn independent_answer(
    engines: &[QueryEngine<SpecScheme>],
    probes: &[(usize, RunVertexId, RunVertexId)],
) -> Vec<bool> {
    let mut per: Vec<Vec<usize>> = vec![Vec::new(); engines.len()];
    for (i, &(r, _, _)) in probes.iter().enumerate() {
        per[r].push(i);
    }
    let mut out = vec![false; probes.len()];
    let mut pairs = Vec::new();
    let mut buf = Vec::new();
    for (r, idxs) in per.iter().enumerate() {
        pairs.clear();
        pairs.extend(idxs.iter().map(|&i| (probes[i].1, probes[i].2)));
        engines[r].answer_batch_into(&pairs, &mut buf);
        for (&i, &a) in idxs.iter().zip(buf.iter()) {
            out[i] = a;
        }
    }
    out
}

/// Fleet serving: one shared `SpecContext` (skeleton + concurrent memo)
/// answering 10⁶ mixed probes over `K = 8` runs, against `K` independent
/// engines each owning a private skeleton and memo. Answers are asserted
/// byte-identical; the table reports throughput plus the
/// shared-vs-duplicated memory split ([`FleetEngine`]'s accounting).
pub fn fleet(opts: &ReproOptions) -> Table {
    let (spec, runs, probes) = fleet_workload(opts.quick);
    let k = runs.len();
    let mut t = Table::new(
        format!(
            "Fleet: one shared skeleton context vs {k} independent engines \
             ({} probes over {k} runs of ~{} vertices)",
            probes.len(),
            runs[0].vertex_count(),
        ),
        &[
            "scheme",
            "fleet q/s",
            "indep q/s",
            "fleet x",
            "spec state shared",
            "spec state indep",
            "memory x",
        ],
    );
    for kind in [SchemeKind::Tcm, SchemeKind::Bfs, SchemeKind::Dfs] {
        // the fleet: labels only per run (no per-run skeleton), one context
        let mut fleet = FleetEngine::for_spec(&spec, SpecScheme::build(kind, spec.graph()));
        let labels: Vec<Vec<wfp_skl::RunLabel>> = runs
            .iter()
            .map(|run| label_run(&spec, run).unwrap().0)
            .collect();
        let ids: Vec<RunId> = labels.iter().map(|l| fleet.register_labels(l)).collect();
        let traffic: Vec<(RunId, RunVertexId, RunVertexId)> = probes
            .iter()
            .map(|&(r, u, v)| (ids[r], u, v))
            .collect();

        // K independent engines: each builds (and owns) its own skeleton
        let engines: Vec<QueryEngine<SpecScheme>> = labels
            .iter()
            .map(|l| QueryEngine::from_labels(l, SpecScheme::build(kind, spec.graph())))
            .collect();

        // agreement first (cold pass both sides), then steady-state timing
        let fleet_answers = fleet.answer_batch(&traffic).unwrap();
        let indep_answers = independent_answer(&engines, &probes);
        assert_eq!(fleet_answers, indep_answers, "fleet diverged under {kind}");

        let fleet_ms = time_ms(opts.time_reps(), || {
            std::hint::black_box(fleet.answer_batch(&traffic).unwrap());
        });
        let indep_ms = time_ms(opts.time_reps(), || {
            std::hint::black_box(independent_answer(&engines, &probes));
        });
        let fleet_qps = probes.len() as f64 / (fleet_ms / 1e3).max(1e-12);
        let indep_qps = probes.len() as f64 / (indep_ms / 1e3).max(1e-12);

        let stats = fleet.stats();
        let indep_spec_bytes: usize = engines
            .iter()
            .map(|e| e.context().memory_bytes())
            .sum();
        t.row(vec![
            format!("{kind}+SKL"),
            format!("{fleet_qps:.0}"),
            format!("{indep_qps:.0}"),
            format!("{:.2}", fleet_qps / indep_qps),
            format!("{:.1} KiB", stats.spec_bytes as f64 / 1024.0),
            format!("{:.1} KiB", indep_spec_bytes as f64 / 1024.0),
            format!(
                "{:.1}",
                indep_spec_bytes as f64 / stats.spec_bytes.max(1) as f64
            ),
        ]);
    }
    t.note(format!(
        "both sides answer the identical probe set with the same run-grouped \
         batch shape; answers asserted byte-identical over all {} probes",
        probes.len()
    ));
    t.note("fleet: K runs share one skeleton + one warm concurrent memo (Arc-counted);");
    t.note("independent: every run owns a private skeleton index and memo");
    t.note("expected shape: ~Kx less spec-state memory; throughput at parity or better");
    t
}

/// Persistence (the PR 5 tentpole): a warm serving [`FleetEngine`] is
/// saved as one snapshot container (spec record + dense memo warm bytes +
/// `K` run label-column segments) and restored — versus relabeling the
/// same fleet from its runs. The restored fleet's answers are asserted
/// byte-identical over the full 10⁶-probe set, and the table reports the
/// restart memo hit-rate (warm snapshot carried across the restart).
pub fn persistence(opts: &ReproOptions) -> Table {
    let (spec, runs, probes) = fleet_workload(opts.quick);
    let k = runs.len();
    let mut t = Table::new(
        format!(
            "Persistence: load a saved {k}-run fleet vs relabel it from runs \
             ({} probes over runs of ~{} vertices)",
            probes.len(),
            runs[0].vertex_count(),
        ),
        &[
            "scheme",
            "relabel ms",
            "load ms",
            "load x",
            "snapshot",
            "warm cells",
            "restart hit-rate",
        ],
    );
    for kind in [SchemeKind::Tcm, SchemeKind::Bfs, SchemeKind::Dfs] {
        // the serving fleet: label once, warm the memo with real traffic
        let build = || {
            let mut fleet =
                FleetEngine::for_spec(&spec, SpecScheme::build(kind, spec.graph()));
            let ids: Vec<RunId> = runs
                .iter()
                .map(|run| {
                    let (labels, _) = label_run(&spec, run).unwrap();
                    fleet.register_labels(&labels)
                })
                .collect();
            (fleet, ids)
        };
        let (fleet, ids) = build();
        let traffic: Vec<(RunId, RunVertexId, RunVertexId)> = probes
            .iter()
            .map(|&(r, u, v)| (ids[r], u, v))
            .collect();
        let original = fleet.answer_batch(&traffic).unwrap();

        // cold restart, the old way: rebuild context + relabel every run
        let relabel_ms = time_ms(opts.time_reps(), || {
            std::hint::black_box(build().0.stats().frozen);
        });

        // cold restart, the snapshot way: parse + map the columns back
        let bytes = fleet.save(spec.graph()).unwrap();
        let load_ms = time_ms(opts.time_reps(), || {
            std::hint::black_box(FleetEngine::load(&bytes).unwrap().0.stats().frozen);
        });

        let (restored, _graph) = FleetEngine::load(&bytes).unwrap();
        let restored_answers = restored.answer_batch(&traffic).unwrap();
        assert_eq!(
            restored_answers, original,
            "restored fleet diverged under {kind}"
        );
        let stats = restored.stats();
        let hit_rate = if restored.context().probe_memo().is_none() {
            f64::NAN // TCM: constant-time probes, no memo to warm
        } else {
            // restored counters include the pre-save traffic; the
            // post-restart share is the second half
            stats.engine.memo_hits as f64 / (stats.engine.skeleton as f64 / 2.0)
        };
        t.row(vec![
            format!("{kind}+SKL"),
            format!("{relabel_ms:.1}"),
            format!("{load_ms:.1}"),
            format!("{:.1}", relabel_ms / load_ms.max(1e-9)),
            format!("{:.2} MiB", bytes.len() as f64 / (1 << 20) as f64),
            format!("{}", restored.context().memo().warm_entries()),
            if hit_rate.is_nan() {
                "n/a (no memo)".to_string()
            } else {
                format!("{:.3}", hit_rate)
            },
        ]);
    }
    t.note("relabel: construct plans + three orders for every run, rebuild the context;");
    t.note("load: parse one container, map K label-column segments, restore warm memo");
    t.note("answers asserted byte-identical over the full probe set after restore;");
    t.note("restart hit-rate: share of post-restart skeleton delegations answered");
    t.note("from the restored warm memo (1.000 = zero warm-up probes re-run)");
    t
}

// ======================================================================
// Registry — many specs served behind one content-addressed map (PR 6)
// ======================================================================

/// The canonical registry workload: six specs — one per scheme — with
/// four runs each, plus 10⁶ mixed-spec probes `(spec index, run, u, v)`.
/// Shared by the [`registry`] experiment and the `registry` criterion
/// bench.
#[allow(clippy::type_complexity)]
pub fn registry_workload(
    quick: bool,
) -> (
    wfp_gen::GeneratedRegistry,
    Vec<(usize, RunId, RunVertexId, RunVertexId)>,
) {
    let target = if quick { 800 } else { 3_200 };
    let generated = wfp_gen::generate_registry(0xB405, SchemeKind::ALL.len(), 4, target);
    let books: Vec<Vec<(RunId, usize)>> = generated
        .fleets
        .iter()
        .map(|gens| {
            gens.iter()
                .enumerate()
                .filter(|(_, g)| g.run.vertex_count() > 0)
                .map(|(j, g)| (RunId(j as u32), g.run.vertex_count()))
                .collect()
        })
        .collect();
    let mut rng = wfp_graph::rng::Xoshiro256::seed_from_u64(0x0B00_C0DE);
    let probes = (0..1_000_000usize)
        .map(|_| {
            let s = rng.gen_usize(books.len());
            let (run, n) = books[s][rng.gen_usize(books[s].len())];
            (
                s,
                run,
                RunVertexId(rng.gen_usize(n) as u32),
                RunVertexId(rng.gen_usize(n) as u32),
            )
        })
        .collect();
    (generated, probes)
}

/// Registry serving (the PR 6 tentpole): six specs — one per scheme —
/// behind one [`ServiceRegistry`], answering 10⁶ mixed-spec probes in one
/// batch, against the baseline of six hand-routed independent
/// [`FleetEngine`]s. Cold starts are compared three ways: relabel every
/// run from scratch, eager snapshot load, and the registry's lazy
/// directory open; a tight byte budget then measures continuous
/// eviction/reload churn. Answers are asserted byte-identical everywhere.
///
/// [`ServiceRegistry`]: wfp_skl::ServiceRegistry
pub fn registry(opts: &ReproOptions) -> Table {
    use wfp_skl::{ServiceRegistry, SpecId};
    let (generated, probes) = registry_workload(opts.quick);
    let m = generated.specs.len();

    // the baseline: M independent fleets, probes hand-routed per spec
    let mut fleets: Vec<FleetEngine<'_, SpecScheme>> = Vec::with_capacity(m);
    let mut label_ms_total = 0.0;
    for (i, (spec, gens)) in generated.specs.iter().zip(&generated.fleets).enumerate() {
        let kind = SchemeKind::ALL[i];
        let started = std::time::Instant::now();
        let mut fleet = FleetEngine::for_spec(spec, SpecScheme::build(kind, spec.graph()));
        for g in gens {
            let (labels, _) = label_run(spec, &g.run).unwrap();
            fleet.register_labels(&labels);
        }
        label_ms_total += started.elapsed().as_secs_f64() * 1e3;
        fleets.push(fleet);
    }
    let baseline_answer = |fleets: &[FleetEngine<'_, SpecScheme>]| {
        let mut per: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, &(s, _, _, _)) in probes.iter().enumerate() {
            per[s].push(i);
        }
        let mut out = vec![false; probes.len()];
        let mut shard = Vec::new();
        for (s, idxs) in per.iter().enumerate() {
            shard.clear();
            shard.extend(idxs.iter().map(|&i| (probes[i].1, probes[i].2, probes[i].3)));
            let answers = fleets[s].answer_batch(&shard).unwrap();
            for (&i, a) in idxs.iter().zip(answers) {
                out[i] = a;
            }
        }
        out
    };
    let expected = baseline_answer(&fleets);
    let indep_ms = time_ms(opts.time_reps(), || {
        std::hint::black_box(baseline_answer(&fleets));
    });

    // the registry: same specs, same runs, routed by content-derived id
    let mut registry = ServiceRegistry::new();
    let mut ids: Vec<SpecId> = Vec::with_capacity(m);
    for (i, (spec, gens)) in generated.specs.iter().zip(&generated.fleets).enumerate() {
        let id = registry.register_spec(spec, SchemeKind::ALL[i]).unwrap();
        for g in gens {
            let (labels, _) = label_run(spec, &g.run).unwrap();
            registry.register_labels(id, &labels).unwrap();
        }
        ids.push(id);
    }
    let traffic: Vec<(SpecId, RunId, RunVertexId, RunVertexId)> = probes
        .iter()
        .map(|&(s, run, u, v)| (ids[s], run, u, v))
        .collect();
    assert_eq!(
        registry.answer_batch(&traffic).unwrap(),
        expected,
        "registry diverged from independent fleets"
    );
    let registry_ms = time_ms(opts.time_reps(), || {
        std::hint::black_box(registry.answer_batch(&traffic).unwrap());
    });

    // cold starts: relabel-from-scratch vs lazy snapshot-directory open
    let dir = std::env::temp_dir().join(format!("wfp-bench-registry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    registry.save_dir(&dir).unwrap();
    let lazy_ms = time_ms(opts.time_reps(), || {
        let mut r = ServiceRegistry::open_dir(&dir, None).unwrap();
        for &id in &ids {
            r.ensure_resident(id).unwrap();
        }
        std::hint::black_box(r.stats().resident);
    });

    // eviction/reload churn: a budget holding roughly two of six fleets
    let budget = registry.resident_bytes() / 3;
    let mut evicting = ServiceRegistry::open_dir(&dir, Some(budget)).unwrap();
    assert_eq!(
        evicting.answer_batch(&traffic).unwrap(),
        expected,
        "evicting registry diverged"
    );
    let evicting_ms = time_ms(opts.time_reps(), || {
        std::hint::black_box(evicting.answer_batch(&traffic).unwrap());
    });
    let churn = evicting.stats();
    let _ = std::fs::remove_dir_all(&dir);

    let qps = |ms: f64| probes.len() as f64 / (ms / 1e3).max(1e-12);
    let mut t = Table::new(
        format!(
            "Registry: {m} specs (one per scheme) behind one content-addressed \
             registry ({} mixed-spec probes, {} runs/spec)",
            probes.len(),
            generated.fleets[0].len(),
        ),
        &["serving mode", "cold start ms", "probe q/s", "vs fleets"],
    );
    t.row(vec![
        format!("{m} hand-routed fleets"),
        format!("{label_ms_total:.1} (relabel)"),
        format!("{:.0}", qps(indep_ms)),
        "1.00".to_string(),
    ]);
    t.row(vec![
        "registry, resident".to_string(),
        format!("{lazy_ms:.1} (lazy load)"),
        format!("{:.0}", qps(registry_ms)),
        format!("{:.2}", qps(registry_ms) / qps(indep_ms)),
    ]);
    t.row(vec![
        format!("registry, budget {:.0} KiB", budget as f64 / 1024.0),
        "—".to_string(),
        format!("{:.0}", qps(evicting_ms)),
        format!("{:.2}", qps(evicting_ms) / qps(indep_ms)),
    ]);
    t.note("answers asserted byte-identical across all three modes over the full probe set;");
    t.note("cold start: relabel = plans + orders + labels for every run of every spec,");
    t.note("lazy load = open the snapshot directory and fault all six fleets in;");
    t.note(format!(
        "budget row churns continuously: {} evictions, {} lazy reloads \
         across the timed batches",
        churn.evictions, churn.lazy_loads,
    ));
    t.note("expected shape: lazy load beats relabel; routing overhead within noise");
    t
}

// ======================================================================
// Reload — zero-copy snapshot fault-in over aligned columns (PR 10)
// ======================================================================

/// Shared payload for the [`reload`] experiment and the `reload`
/// criterion bench: six fleets (one per scheme, four sealed-packed runs
/// each) serialized as aligned-column snapshots.
pub fn reload_workload(quick: bool) -> (wfp_gen::GeneratedRegistry, Vec<Vec<u8>>) {
    let target = if quick { 2_000 } else { 16_000 };
    let generated = wfp_gen::generate_registry(0x4E10_AD10, SchemeKind::ALL.len(), 4, target);
    let snapshots = generated
        .specs
        .iter()
        .zip(&generated.fleets)
        .enumerate()
        .map(|(i, (spec, gens))| {
            let kind = SchemeKind::ALL[i];
            let mut fleet = FleetEngine::for_spec(spec, SpecScheme::build(kind, spec.graph()));
            for g in gens {
                let (labels, _) = label_run(spec, &g.run).unwrap();
                fleet.register_labels(&labels);
            }
            fleet.seal_packed_all();
            fleet.save(spec.graph()).unwrap()
        })
        .collect();
    (generated, snapshots)
}

/// Snapshot reload (the PR 10 tentpole): the same sealed-packed fleets
/// faulted in three ways — the PR 7 decode path (every aligned column
/// unpacked into owned storage), the zero-copy fault-in (full container
/// validation, then the query engine binds the load buffer), and the
/// registry's trusted rebind (evict→reload churn of unmodified fleets
/// through the memory store, where pointer identity lets the reload skip
/// even the per-payload checksum pass). Probe throughput through the
/// borrowed view is measured against resident owned columns, with answers
/// asserted byte-identical.
pub fn reload(opts: &ReproOptions) -> Table {
    use std::sync::Arc;
    use wfp_skl::{ServiceRegistry, SpecId};
    let (generated, snapshots) = reload_workload(opts.quick);
    let m = snapshots.len();
    let total_bytes: usize = snapshots.iter().map(Vec::len).sum();
    let reps = 5 * opts.time_reps();

    let decode_ms = time_ms(reps, || {
        for bytes in &snapshots {
            std::hint::black_box(FleetEngine::load(bytes).unwrap());
        }
    });

    let arcs: Vec<Arc<[u8]>> = snapshots.iter().map(|b| Arc::from(b.as_slice())).collect();
    let fault_ms = time_ms(reps, || {
        for arc in &arcs {
            std::hint::black_box(FleetEngine::load_shared(Arc::clone(arc)).unwrap());
        }
    });

    // the registry churn: after the priming cycle every offload is clean
    // (content never diverges from the stored snapshot), so every reload
    // is a pointer rebind of the retained buffer
    let mut registry = ServiceRegistry::new();
    let mut ids: Vec<SpecId> = Vec::with_capacity(m);
    for (i, (spec, gens)) in generated.specs.iter().zip(&generated.fleets).enumerate() {
        let id = registry.register_spec(spec, SchemeKind::ALL[i]).unwrap();
        for g in gens {
            let (labels, _) = label_run(spec, &g.run).unwrap();
            registry.register_labels(id, &labels).unwrap();
        }
        registry.seal_packed(id).unwrap();
        ids.push(id);
    }
    for &id in &ids {
        registry.evict(id).unwrap();
        registry.ensure_resident(id).unwrap();
    }
    let rebind_ms = time_ms(reps, || {
        for &id in &ids {
            registry.evict(id).unwrap();
            registry.ensure_resident(id).unwrap();
        }
    });
    let churn = registry.stats();
    assert_eq!(
        churn.zero_copy_loads, churn.lazy_loads,
        "an all-packed reload fell off the zero-copy path"
    );

    // probe parity: borrowed views must answer byte-identically to owned
    // packed columns at comparable throughput
    let books: Vec<(RunId, usize)> = generated.fleets[0]
        .iter()
        .enumerate()
        .filter(|(_, g)| g.run.vertex_count() > 0)
        .map(|(j, g)| (RunId(j as u32), g.run.vertex_count()))
        .collect();
    let mut rng = wfp_graph::rng::Xoshiro256::seed_from_u64(0x4E10_AD11);
    let probes: Vec<(RunId, RunVertexId, RunVertexId)> = (0..opts.query_count())
        .map(|_| {
            let (run, n) = books[rng.gen_usize(books.len())];
            (
                run,
                RunVertexId(rng.gen_usize(n) as u32),
                RunVertexId(rng.gen_usize(n) as u32),
            )
        })
        .collect();
    let (owned_fleet, _) = FleetEngine::load(&snapshots[0]).unwrap();
    let (view_fleet, _, profile) = FleetEngine::load_shared(Arc::clone(&arcs[0])).unwrap();
    assert!(
        profile.zero_copy_runs > 0 && profile.decoded_runs == 0,
        "the shared load decoded instead of binding"
    );
    let want = owned_fleet.answer_batch(&probes).unwrap();
    assert_eq!(
        view_fleet.answer_batch(&probes).unwrap(),
        want,
        "borrowed view diverged from owned columns"
    );
    let owned_ms = time_ms(opts.time_reps(), || {
        std::hint::black_box(owned_fleet.answer_batch(&probes).unwrap());
    });
    let view_ms = time_ms(opts.time_reps(), || {
        std::hint::black_box(view_fleet.answer_batch(&probes).unwrap());
    });

    let qps = |ms: f64| probes.len() as f64 / (ms / 1e3).max(1e-12);
    let mut t = Table::new(
        format!(
            "Snapshot reload: {m} sealed-packed fleets ({:.1} MiB of aligned \
             snapshots), {} probes through the reloaded columns",
            total_bytes as f64 / (1024.0 * 1024.0),
            probes.len(),
        ),
        &[
            "fault-in path",
            "reload ms (all fleets)",
            "vs decode",
            "probe q/s",
            "vs owned",
        ],
    );
    t.row(vec![
        "decoded columns (PR 7 path)".to_string(),
        format!("{decode_ms:.2}"),
        "1.00".to_string(),
        format!("{:.0}", qps(owned_ms)),
        "1.00".to_string(),
    ]);
    t.row(vec![
        "zero-copy bind (validated)".to_string(),
        format!("{fault_ms:.2}"),
        format!("{:.2}", decode_ms / fault_ms),
        format!("{:.0}", qps(view_ms)),
        format!("{:.2}", qps(view_ms) / qps(owned_ms)),
    ]);
    t.row(vec![
        "trusted rebind (registry churn)".to_string(),
        format!("{rebind_ms:.2}"),
        format!("{:.2}", decode_ms / rebind_ms),
        "—".to_string(),
        "—".to_string(),
    ]);
    t.note("answers asserted byte-identical: borrowed views vs owned columns over the probe set;");
    t.note("decode = parse container + unpack every aligned column into owned words (PR 7 cost),");
    t.note("zero-copy = parse + CRC the container, then bind the query engine to the load buffer,");
    t.note("rebind = registry evict→reload of an unmodified fleet (pointer identity skips payload CRCs);");
    t.note(format!(
        "churn accounting: {} lazy loads, {} zero-copy, {:.1} MiB read back",
        churn.lazy_loads,
        churn.zero_copy_loads,
        churn.reload_bytes as f64 / (1024.0 * 1024.0),
    ));
    t
}

// ======================================================================
// Serving — the request/response loop over the registry (PR 8)
// ======================================================================

/// The serving payload: one `(spec, scheme, per-run frozen labels)` entry
/// per registered spec — everything a builder closure needs to
/// reconstruct the registry on the dispatch thread.
pub type ServingPayload = Vec<(Specification, SchemeKind, Vec<Vec<wfp_skl::RunLabel>>)>;

/// SpecId-routed mixed-spec probe traffic.
pub type ServingTraffic = Vec<(wfp_skl::SpecId, RunId, RunVertexId, RunVertexId)>;

/// Shared payload for the serving experiment and the criterion bench:
/// six specs (one per scheme), their frozen run labels, and SpecId-routed
/// mixed traffic, with the direct registry the traffic was addressed to.
pub fn serving_workload(
    quick: bool,
    probes: usize,
) -> (wfp_skl::ServiceRegistry<'static>, ServingPayload, ServingTraffic) {
    use wfp_skl::ServiceRegistry;
    let target = if quick { 800 } else { 3_200 };
    let generated = wfp_gen::generate_registry(0x5E21, SchemeKind::ALL.len(), 4, target);

    let mut payload = Vec::with_capacity(generated.specs.len());
    let mut direct: ServiceRegistry<'static> = ServiceRegistry::new();
    let mut books = Vec::new();
    for (i, (spec, gens)) in generated
        .specs
        .into_iter()
        .zip(generated.fleets)
        .enumerate()
    {
        let kind = SchemeKind::ALL[i];
        let id = direct.register_spec(&spec, kind).unwrap();
        let mut labeled = Vec::with_capacity(gens.len());
        let mut runs = Vec::new();
        for g in &gens {
            let (labels, _) = label_run(&spec, &g.run).unwrap();
            let rid = direct.register_labels(id, &labels).unwrap();
            if g.run.vertex_count() > 0 {
                runs.push((rid, g.run.vertex_count()));
            }
            labeled.push(labels);
        }
        assert!(!runs.is_empty(), "spec {i} generated only empty runs");
        payload.push((spec, kind, labeled));
        books.push((id, runs));
    }

    let mut rng = wfp_graph::rng::Xoshiro256::seed_from_u64(0x0B00_C0DE);
    let traffic = (0..probes)
        .map(|_| {
            let (id, runs) = &books[rng.gen_usize(books.len())];
            let (run, n) = runs[rng.gen_usize(runs.len())];
            (
                *id,
                run,
                RunVertexId(rng.gen_usize(n) as u32),
                RunVertexId(rng.gen_usize(n) as u32),
            )
        })
        .collect();
    (direct, payload, traffic)
}

/// The number of dispatch shards the serving experiment and the CI smoke
/// use for the sharded rows.
pub const SERVING_SHARDS: usize = 4;

/// Spawns the sharded serving loop over the shared payload: each shard
/// registers only the specs the plan routes to it.
pub fn sharded_serving_server(
    config: wfp_skl::ServeConfig,
    shards: usize,
    payload: std::sync::Arc<ServingPayload>,
) -> wfp_skl::ShardedServer<()> {
    use wfp_skl::{serve_sharded, ServiceRegistry, ShardPlan, SpecId};
    let plan = ShardPlan::new();
    serve_sharded(config, shards, plan.clone(), move |shard, shards| {
        let mut registry: ServiceRegistry<'static> = ServiceRegistry::new();
        for (spec, kind, labeled) in payload.iter() {
            if plan.shard_of(SpecId::of(*kind, spec.graph()), shards) != shard {
                continue;
            }
            let id = registry.register_spec(spec, *kind)?;
            for labels in labeled {
                registry.register_labels(id, labels)?;
            }
        }
        Ok((registry, ()))
    })
    .expect("sharded serving loop starts")
}

/// Drives `requests` through `handle` from `clients` closed-loop client
/// threads, each keeping `depth` requests outstanding (depth 1 is the
/// classic submit-and-wait round trip). Returns the reassembled answers
/// and the wall-clock seconds.
fn drive_clients(
    handle: &wfp_skl::ServeHandle,
    requests: &[&[(wfp_skl::SpecId, RunId, RunVertexId, RunVertexId)]],
    clients: usize,
    depth: usize,
) -> (Vec<bool>, f64) {
    let mut served: Vec<Option<Vec<bool>>> = vec![None; requests.len()];
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut answered = Vec::new();
                    let mut inflight: std::collections::VecDeque<(usize, wfp_skl::Ticket)> =
                        std::collections::VecDeque::with_capacity(depth);
                    for j in (c..requests.len()).step_by(clients) {
                        if inflight.len() == depth {
                            let (jj, ticket) = inflight.pop_front().unwrap();
                            answered.push((jj, ticket.wait().unwrap()));
                        }
                        inflight.push_back((j, handle.submit(requests[j].to_vec()).unwrap()));
                    }
                    for (jj, ticket) in inflight {
                        answered.push((jj, ticket.wait().unwrap()));
                    }
                    answered
                })
            })
            .collect();
        for worker in workers {
            for (j, answers) in worker.join().expect("client thread") {
                served[j] = Some(answers);
            }
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let flat = served
        .into_iter()
        .enumerate()
        .flat_map(|(j, a)| a.unwrap_or_else(|| panic!("request {j} was never answered")))
        .collect();
    (flat, elapsed)
}

/// Serving (the PR 8 tentpole, resharded in PR 9): the same six-scheme
/// registry, probed four ways over identical traffic — one direct
/// `answer_batch` call (the ceiling: zero admission overhead, perfect
/// batching), the single-dispatch request/response loop with four
/// closed-loop clients, and the sharded dispatcher ([`SERVING_SHARDS`]
/// spec-affinity shards) driven both at pipelining depth 1 (apples to
/// apples with the single loop) and at depth 16 (the same clients keep
/// 16 requests outstanding so the admission windows never drain dry —
/// the identical batch/window/queue config throughout). Reports
/// sustained throughput, the coalesced batch-size histogram, per-shard
/// load, and per-scheme p50/p99 serve latency; every served mode is
/// asserted byte-identical to the direct call.
pub fn serving(opts: &ReproOptions) -> Table {
    use std::time::Duration;
    use wfp_skl::{serve, ServeConfig, ServiceRegistry};

    const CLIENTS: usize = 4;
    const PER_REQUEST: usize = 64;
    const DEPTH: usize = 16;
    let probes_total = if opts.quick { 200_000 } else { 1_000_000 };
    let (mut direct, payload, traffic) = serving_workload(opts.quick, probes_total);
    let payload = std::sync::Arc::new(payload);

    let expected = direct.answer_batch(&traffic).unwrap();
    let direct_ms = time_ms(opts.time_reps(), || {
        std::hint::black_box(direct.answer_batch(&traffic).unwrap());
    });

    let config = ServeConfig {
        max_batch: 8192,
        window: Duration::from_micros(200),
        queue_cap: 1024,
        threads: 1,
    };
    let requests: Vec<_> = traffic.chunks(PER_REQUEST).collect();

    // --- single dispatch thread, depth-1 round trips (the PR 8 shape) ---
    let single_payload = std::sync::Arc::clone(&payload);
    let server = serve(config, move || {
        let mut registry: ServiceRegistry<'static> = ServiceRegistry::new();
        for (spec, kind, labeled) in single_payload.iter() {
            let id = registry.register_spec(spec, *kind)?;
            for labels in labeled {
                registry.register_labels(id, labels)?;
            }
        }
        Ok((registry, ()))
    })
    .unwrap();
    let (served_flat, served_s) = drive_clients(&server.handle(), &requests, CLIENTS, 1);
    assert_eq!(served_flat, expected, "served loop diverged from answer_batch");
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.probes_answered, probes_total as u64);
    assert_eq!(stats.probes_failed, 0);

    // --- sharded dispatch, same admission config, depth 1 and depth 16 --
    let sharded = sharded_serving_server(config, SERVING_SHARDS, std::sync::Arc::clone(&payload));
    let (sharded_flat, sharded_s) = drive_clients(&sharded.handle(), &requests, CLIENTS, 1);
    assert_eq!(sharded_flat, expected, "sharded loop diverged from answer_batch");
    let (piped_flat, piped_s) = drive_clients(&sharded.handle(), &requests, CLIENTS, DEPTH);
    assert_eq!(piped_flat, expected, "pipelined sharded loop diverged");
    let sharded_stats = sharded.shutdown().unwrap();
    assert_eq!(sharded_stats.merged.probes_answered, 2 * probes_total as u64);
    assert_eq!(sharded_stats.merged.probes_failed, 0);

    let direct_qps = probes_total as f64 / (direct_ms / 1e3).max(1e-12);
    let served_qps = probes_total as f64 / served_s.max(1e-12);
    let sharded_qps = probes_total as f64 / sharded_s.max(1e-12);
    let piped_qps = probes_total as f64 / piped_s.max(1e-12);
    let mut t = Table::new(
        format!(
            "Serving: sharded dispatch vs single loop vs direct answer_batch \
             ({probes_total} probes, {CLIENTS} closed-loop clients x \
             {PER_REQUEST}/request, {SERVING_SHARDS} shards)"
        ),
        &["mode / scheme", "probes", "q/s", "p50 us", "p99 us"],
    );
    t.row(vec![
        "direct answer_batch".to_string(),
        probes_total.to_string(),
        format!("{direct_qps:.0}"),
        "—".to_string(),
        "—".to_string(),
    ]);
    t.row(vec![
        "served, 1 dispatch thread".to_string(),
        probes_total.to_string(),
        format!("{served_qps:.0}"),
        "—".to_string(),
        "—".to_string(),
    ]);
    t.row(vec![
        format!("served, {SERVING_SHARDS} shards, depth 1"),
        probes_total.to_string(),
        format!("{sharded_qps:.0}"),
        "—".to_string(),
        "—".to_string(),
    ]);
    t.row(vec![
        format!("served, {SERVING_SHARDS} shards, depth {DEPTH}"),
        probes_total.to_string(),
        format!("{piped_qps:.0}"),
        "—".to_string(),
        "—".to_string(),
    ]);
    for kind in SchemeKind::ALL {
        let lat = sharded_stats.merged.scheme(kind);
        if lat.probes == 0 {
            continue;
        }
        t.row(vec![
            format!("  {kind}"),
            lat.probes.to_string(),
            "—".to_string(),
            lat.p50_us().unwrap_or(0).to_string(),
            lat.p99_us().unwrap_or(0).to_string(),
        ]);
    }
    t.note("every served mode asserted byte-identical to the direct batch call;");
    t.note("per-scheme latency is submit -> reply across both sharded drives;");
    t.note(format!(
        "single-loop admission: {} batches ({} full / {} timer / {} drain), \
         probes/batch p50 {} p99 {} max {}",
        stats.batches,
        stats.batches_full,
        stats.batches_timer,
        stats.batches_drain,
        stats.batch_probes.quantile(0.50).unwrap_or(0),
        stats.batch_probes.quantile(0.99).unwrap_or(0),
        stats.batch_probes.max(),
    ));
    t.note(format!(
        "sharded admission: {} batches ({} full / {} timer / {} drain), \
         probes/batch p50 {} p99 {} max {}",
        sharded_stats.merged.batches,
        sharded_stats.merged.batches_full,
        sharded_stats.merged.batches_timer,
        sharded_stats.merged.batches_drain,
        sharded_stats.merged.batch_probes.quantile(0.50).unwrap_or(0),
        sharded_stats.merged.batch_probes.quantile(0.99).unwrap_or(0),
        sharded_stats.merged.batch_probes.max(),
    ));
    t.note(format!(
        "per-shard probes answered: [{}]",
        sharded_stats
            .per_shard
            .iter()
            .map(|s| s.probes_answered.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    ));
    t.note("expected shape: depth 1 is window-bound (every client blocked while the");
    t.note("window fills); depth 16 keeps the windows full at the identical config, so");
    t.note("the sharded loop closes most of the gap to the direct call");
    t
}

// ======================================================================
// Kernel — scalar reference vs column sweep vs packed columns (PR 7)
// ======================================================================

/// Batch-kernel ablation (the PR 7 tentpole): the branchless column-sweep
/// kernel against the retired scalar per-pair reference, and against the
/// same sweep reading bit-packed label columns, over the canonical
/// 10⁶-pair workload ([`throughput_workload`]) — per scheme. All three
/// paths are asserted byte-identical before anything is timed. The last
/// columns report what packing buys at rest: the fleet snapshot size with
/// raw [`seg::RUN_COLUMNS`] segments versus bit-packed
/// [`seg::PACKED_COLUMNS`] segments for the identical fleet.
///
/// [`seg::RUN_COLUMNS`]: wfp_skl::snapshot::seg::RUN_COLUMNS
/// [`seg::PACKED_COLUMNS`]: wfp_skl::snapshot::seg::PACKED_COLUMNS
pub fn kernel(opts: &ReproOptions) -> Table {
    let (spec, run, pairs) = throughput_workload(opts.quick);
    let mut t = Table::new(
        format!(
            "Kernel: branchless column sweep vs scalar reference vs packed columns \
             (n_R = {}, {} pairs)",
            run.vertex_count(),
            pairs.len(),
        ),
        &[
            "scheme",
            "scalar q/s",
            "sweep q/s",
            "packed q/s",
            "sweep x",
            "packed x",
            "snap raw KiB",
            "snap packed KiB",
            "snap shrink",
        ],
    );
    for kind in [SchemeKind::Tcm, SchemeKind::Bfs, SchemeKind::Dfs] {
        let labeled =
            LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
        let engine = QueryEngine::from_labeled(labeled);
        let packed = engine.seal_packed();

        // byte-identical agreement first; the timed passes then measure
        // the steady state over a memo the cold pass already warmed
        let mut out = Vec::new();
        let sweep_answers = engine.answer_batch(&pairs);
        assert_eq!(
            engine.answer_batch_scalar_into(&pairs, &mut out),
            &sweep_answers[..],
            "sweep diverged from the scalar reference under {kind}"
        );
        assert_eq!(
            packed.answer_batch(&pairs),
            sweep_answers,
            "packed sweep diverged under {kind}"
        );

        // best-of-reps ([`best_ms`]): these kernels run in single-digit
        // milliseconds, where ambient load smears an average badly
        let reps = opts.time_reps() + 4;
        let scalar_ms = best_ms(reps, || {
            std::hint::black_box(engine.answer_batch_scalar_into(&pairs, &mut out).len());
        });
        let sweep_ms = best_ms(reps, || {
            std::hint::black_box(engine.answer_batch_into(&pairs, &mut out).len());
        });
        let packed_ms = best_ms(reps, || {
            std::hint::black_box(packed.answer_batch_into(&pairs, &mut out).len());
        });
        let qps = |ms: f64| pairs.len() as f64 / (ms / 1e3).max(1e-12);

        // at-rest delta: the same one-run fleet snapshotted raw vs packed
        let mut fleet = FleetEngine::for_spec(&spec, SpecScheme::build(kind, spec.graph()));
        let (labels, _) = label_run(&spec, &run).unwrap();
        fleet.register_labels(&labels);
        let raw_snap = fleet.save(spec.graph()).unwrap().len();
        fleet.seal_packed_all();
        let packed_snap = fleet.save(spec.graph()).unwrap().len();

        t.row(vec![
            format!("{kind}+SKL"),
            format!("{:.0}", qps(scalar_ms)),
            format!("{:.0}", qps(sweep_ms)),
            format!("{:.0}", qps(packed_ms)),
            format!("{:.2}", qps(sweep_ms) / qps(scalar_ms)),
            format!("{:.2}", qps(packed_ms) / qps(scalar_ms)),
            format!("{:.1}", raw_snap as f64 / 1024.0),
            format!("{:.1}", packed_snap as f64 / 1024.0),
            format!("-{:.0}%", 100.0 * (1.0 - packed_snap as f64 / raw_snap as f64)),
        ]);
    }
    t.note("identical 10^6-pair workload and identical answers across all three paths;");
    t.note("scalar = the retired per-pair reference loop; sweep = 64-lane gather + mask kernel;");
    t.note("packed = the same sweep gathering straight from bit-packed columns");
    t.note("snapshot sizes: one-run fleet container, raw vs packed run segments");
    t
}

// ======================================================================
// Extra: the tree-expansion baseline (beyond the paper's figures)
// ======================================================================

/// Extra experiment: Heinis & Alonso's DAG-to-tree transform \[8\] against
/// SKL on QBLAST runs — demonstrating the exponential blow-up that
/// motivates the paper (§2: "the size of the transformed tree may be
/// exponential in the size of the original graph").
pub fn baseline(opts: &ReproOptions) -> Table {
    let spec = qblast_spec();
    let budget = 50_000_000usize;
    let mut t = Table::new(
        "Extra: Tree-Expansion Baseline [Heinis & Alonso '08] vs SKL (QBLAST runs)",
        &[
            "run size",
            "SKL bits/vertex",
            "SKL total KiB",
            "tree nodes",
            "expansion ×",
            "TreeExp total KiB",
        ],
    );
    for size in opts.ladder() {
        let GeneratedRun { run, .. } = generate_run_with_target(&spec, 3, size);
        let labeled = LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Tcm, spec.graph()),
            &run,
        )
        .unwrap();
        let skl_bits = labeled.fixed_label_bits();
        let skl_total = (skl_bits * run.vertex_count()) as f64 / 8.0 / 1024.0;
        let (nodes, factor, total) = match TreeExpansion::build(run.graph(), budget) {
            Ok(exp) => (
                exp.tree_size().to_string(),
                format!("{:.1}", exp.expansion_factor()),
                fmt_f64(exp.total_bits() as f64 / 8.0 / 1024.0),
            ),
            Err(e) => (
                format!("> {}", e.budget),
                "overflow".to_string(),
                "—".to_string(),
            ),
        };
        t.row(vec![
            size_label(size),
            skl_bits.to_string(),
            fmt_f64(skl_total),
            nodes,
            factor,
            total,
        ]);
    }
    t.note("expected shape: SKL linear in run size; the tree transform explodes and overflows");
    t.note(format!("tree-node budget: {budget}"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReproOptions {
        ReproOptions {
            quick: true,
            out_dir: std::env::temp_dir().join("wfp-bench-test"),
        }
    }

    #[test]
    fn table1_matches_published_rows() {
        let t = table1(&tiny());
        assert_eq!(t.len(), 6);
        let rendered = t.render();
        assert!(rendered.contains("QBLAST"));
        assert!(rendered.contains("58"));
        assert!(rendered.contains("158"));
    }

    #[test]
    fn synthetic_specs_hit_parameters() {
        for n in [50usize, 100, 200] {
            let spec = synthetic_spec(n);
            assert_eq!(spec.module_count(), n);
            assert_eq!(spec.channel_count(), 2 * n);
            assert_eq!(spec.hierarchy().size(), 10);
            assert_eq!(spec.hierarchy().max_depth(), 4);
        }
    }

    #[test]
    fn fig12_rows_cover_the_ladder_and_respect_the_bound() {
        let opts = ReproOptions {
            quick: true,
            ..tiny()
        };
        let t = fig12(&opts);
        assert_eq!(t.len(), opts.ladder().len());
        let rendered = t.render();
        assert!(rendered.contains("0.1K"));
        assert!(rendered.contains("12.8K"));
    }
}
