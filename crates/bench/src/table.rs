//! Aligned text tables for experiment output.

use std::fs;
use std::path::Path;

/// A titled, column-aligned table that renders to the terminal and to a
/// text file under the results directory.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a footnote line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows (each matching the header arity).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Prints to stdout and writes `<dir>/<file>.txt`.
    pub fn emit(&self, dir: &Path, file: &str) {
        let rendered = self.render();
        println!("{rendered}");
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{file}.txt"));
        if let Err(e) = fs::write(&path, &rendered) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

/// Formats a float with three significant-ish digits for table cells.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["100".into(), "x".into(), "yyyy".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert!(s.contains("note: a note"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.6), "1235");
        assert_eq!(fmt_f64(12.345), "12.35");
        assert_eq!(fmt_f64(0.01234), "0.0123");
    }
}
