//! Experiment sizing knobs shared by every reproduction target.

use std::path::PathBuf;

/// Options controlling experiment scale and output.
#[derive(Clone, Debug)]
pub struct ReproOptions {
    /// Shrink the run-size ladder and sample counts (useful on laptops; the
    /// paper's full ladder reaches 102.4K vertices and 10⁶ queries).
    pub quick: bool,
    /// Directory receiving one text file per experiment.
    pub out_dir: PathBuf,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            quick: false,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ReproOptions {
    /// The paper's run-size ladder: 0.1K to 102.4K vertices, doubling
    /// (quick mode stops at 12.8K).
    pub fn ladder(&self) -> Vec<usize> {
        let max = if self.quick { 12_800 } else { 102_400 };
        let mut sizes = Vec::new();
        let mut n = 100usize;
        while n <= max {
            sizes.push(n);
            n *= 2;
        }
        sizes
    }

    /// Queries per data point (paper: 10⁶).
    pub fn query_count(&self) -> usize {
        if self.quick {
            100_000
        } else {
            1_000_000
        }
    }

    /// Sampled runs per label-length data point (the paper averages over
    /// 10³ runs; label statistics concentrate tightly, so a handful
    /// suffices for the reported digits).
    pub fn runs_per_point(&self) -> usize {
        if self.quick {
            2
        } else {
            5
        }
    }

    /// Repetitions per construction-time measurement.
    pub fn time_reps(&self) -> usize {
        if self.quick {
            2
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_doubles_to_the_cap() {
        let full = ReproOptions::default();
        let sizes = full.ladder();
        assert_eq!(sizes.first(), Some(&100));
        assert_eq!(sizes.last(), Some(&102_400));
        assert!(sizes.windows(2).all(|w| w[1] == 2 * w[0]));
        let quick = ReproOptions {
            quick: true,
            ..Default::default()
        };
        assert_eq!(quick.ladder().last(), Some(&12_800));
        assert_eq!(quick.query_count(), 100_000);
    }
}
