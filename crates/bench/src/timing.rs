//! Wall-clock measurement helpers.
//!
//! The paper reports milliseconds for construction and milliseconds per
//! query (averaged over 10⁶ queries). Wall time is the right metric here —
//! the algorithms are single-threaded and allocation-dominated effects are
//! exactly what the comparison is about. `std::hint::black_box` keeps the
//! optimizer honest.

use std::hint::black_box;
use std::time::Instant;

use wfp_model::RunVertexId;
use wfp_skl::LabeledRun;
use wfp_speclabel::SpecIndex;

/// Average milliseconds of `f` over `reps` repetitions (at least one).
pub fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let reps = reps.max(1);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

/// Best (minimum) milliseconds of `f` over `reps` repetitions (at least
/// one). The right estimator for short, allocation-free kernels: ambient
/// load and frequency ramps only ever add time, so the fastest repetition
/// is the closest observation of the kernel's actual cost, where the
/// average would smear scheduler noise into the committed number.
pub fn best_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Average milliseconds per query over a prepared pair workload.
///
/// Returns (ms per query, number of positive answers — also serving as the
/// black-box sink).
pub fn query_time_ms<S: SpecIndex>(
    labeled: &LabeledRun<S>,
    pairs: &[(RunVertexId, RunVertexId)],
) -> (f64, usize) {
    let start = Instant::now();
    let mut positive = 0usize;
    for &(u, v) in pairs {
        positive += labeled.reaches(u, v) as usize;
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    (elapsed / pairs.len().max(1) as f64, black_box(positive))
}

/// Average milliseconds per query for an arbitrary predicate closure.
pub fn predicate_time_ms<F: FnMut(RunVertexId, RunVertexId) -> bool>(
    pairs: &[(RunVertexId, RunVertexId)],
    mut pred: F,
) -> (f64, usize) {
    let start = Instant::now();
    let mut positive = 0usize;
    for &(u, v) in pairs {
        positive += pred(u, v) as usize;
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    (elapsed / pairs.len().max(1) as f64, black_box(positive))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ms_is_positive_and_averaged() {
        let mut counter = 0u64;
        let ms = time_ms(5, || {
            for i in 0..1000u64 {
                counter = counter.wrapping_add(std::hint::black_box(i));
            }
        });
        assert!(ms >= 0.0);
        assert!(counter > 0);
    }

    #[test]
    fn best_ms_takes_the_fastest_repetition() {
        let mut calls = 0u32;
        let ms = best_ms(4, || {
            calls += 1;
            if calls == 1 {
                // the slow outlier best-of is there to discard
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        });
        assert_eq!(calls, 4);
        assert!(ms < 20.0, "the sleeping outlier must not be the estimate");
        assert!(best_ms(0, || {}) >= 0.0, "reps clamp to at least one");
    }

    #[test]
    fn query_time_runs_over_a_real_index() {
        use wfp_model::fixtures::{paper_run, paper_spec};
        use wfp_speclabel::{SchemeKind, SpecScheme};
        let spec = paper_spec();
        let run = paper_run(&spec);
        let labeled =
            LabeledRun::build(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()), &run)
                .unwrap();
        let pairs: Vec<_> = run.vertices().map(|v| (run.source(), v)).collect();
        let (ms, positive) = query_time_ms(&labeled, &pairs);
        assert!(ms >= 0.0);
        assert_eq!(positive, run.vertex_count(), "source reaches everything");
        let (_, p2) = predicate_time_ms(&pairs, |u, v| labeled.reaches(u, v));
        assert_eq!(p2, positive);
    }
}
