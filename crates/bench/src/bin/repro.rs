//! Reproduces the paper's tables and figures.
//!
//! ```sh
//! repro [--quick] [--out DIR] <experiment>...
//! repro all                 # everything
//! repro table1 fig12 fig17  # a subset
//! ```

use std::path::PathBuf;
use std::time::Instant;

use wfp_bench::{experiments, json};
use wfp_bench::{ReproOptions, Table};

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
    "fig20", "baseline", "throughput", "live_ingest", "fleet", "persistence", "registry",
    "reload", "kernel", "serving",
];

fn usage() -> ! {
    eprintln!("usage: repro [--quick] [--out DIR] <experiment>...");
    eprintln!("experiments: all {}", EXPERIMENTS.join(" "));
    std::process::exit(2);
}

/// Runs one experiment, emits its text table, and returns it with its
/// wall-clock seconds for the machine-readable log.
fn run_one(name: &str, opts: &ReproOptions) -> (f64, Table) {
    let started = Instant::now();
    let table: Table = match name {
        "table1" => experiments::table1(opts),
        "table2" => experiments::table2(opts),
        "fig12" => experiments::fig12(opts),
        "fig13" => experiments::fig13(opts),
        "fig14" => experiments::fig14(opts),
        "fig15" => experiments::fig15(opts),
        "fig16" => experiments::fig16(opts),
        "fig17" => experiments::fig17(opts),
        "fig18" => experiments::fig18(opts),
        "fig19" => experiments::fig19(opts),
        "fig20" => experiments::fig20(opts),
        "baseline" => experiments::baseline(opts),
        "throughput" => experiments::throughput(opts),
        "live_ingest" => experiments::live_ingest(opts),
        "fleet" => experiments::fleet(opts),
        "persistence" => experiments::persistence(opts),
        "registry" => experiments::registry(opts),
        "reload" => experiments::reload(opts),
        "kernel" => experiments::kernel(opts),
        "serving" => experiments::serving(opts),
        other => {
            eprintln!("unknown experiment {other:?}");
            usage();
        }
    };
    table.emit(&opts.out_dir, name);
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!("[{name} finished in {elapsed:.1}s]\n");
    (elapsed, table)
}

fn main() {
    let mut opts = ReproOptions::default();
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => match args.next() {
                Some(dir) => opts.out_dir = PathBuf::from(dir),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            "all" => selected.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            name if EXPERIMENTS.contains(&name) => selected.push(name.to_string()),
            _ => usage(),
        }
    }
    if selected.is_empty() {
        usage();
    }
    selected.dedup();
    eprintln!(
        "running {} experiment(s), {} mode, results under {}\n",
        selected.len(),
        if opts.quick { "quick" } else { "full" },
        opts.out_dir.display()
    );
    let mut results: Vec<(String, f64, Table)> = Vec::with_capacity(selected.len());
    for name in &selected {
        let (elapsed, table) = run_one(name, &opts);
        results.push((name.clone(), elapsed, table));
    }
    json::emit(&opts.out_dir, opts.quick, &results);
}
