//! Criterion bench: `ConstructPlan` alone (the §5 linear-time algorithm) —
//! throughput per run edge should be flat across sizes.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wfp_bench::experiments::{qblast_spec, synthetic_spec};
use wfp_gen::{generate_run_with_target, GeneratedRun};
use wfp_skl::construct_plan;

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_plan");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, spec) in [("qblast", qblast_spec()), ("synthetic100", synthetic_spec(100))] {
        for &size in &[1_600usize, 12_800, 51_200] {
            let GeneratedRun { run, .. } = generate_run_with_target(&spec, 13, size);
            group.throughput(Throughput::Elements(run.edge_count() as u64));
            group.bench_with_input(
                BenchmarkId::new(name, size),
                &run,
                |b, run| b.iter(|| black_box(construct_plan(&spec, run).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
