//! Criterion bench: the request/response serving loop (the PR 8 tentpole,
//! resharded in PR 9) — direct `answer_batch` as the ceiling, the
//! single-dispatch admission loop under four closed-loop clients, the
//! sharded dispatcher under the same drive plus a pipelined drive, and a
//! single-client round trip for the per-request floor. `repro -- serving`
//! produces the committed table; this bench is the fast regression guard.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfp_bench::experiments::{serving_workload, sharded_serving_server, SERVING_SHARDS};
use wfp_skl::{serve, Probe, ServeConfig, ServiceRegistry};

fn bench_serving(c: &mut Criterion) {
    const CLIENTS: usize = 4;
    const PER_REQUEST: usize = 64;
    const DEPTH: usize = 16;
    let (mut direct, payload, traffic) = serving_workload(true, 100_000);
    let payload = std::sync::Arc::new(payload);

    let config = ServeConfig {
        max_batch: 8192,
        window: Duration::from_micros(200),
        queue_cap: 1024,
        threads: 1,
    };
    let single_payload = std::sync::Arc::clone(&payload);
    let server = serve(config, move || {
        let mut registry: ServiceRegistry<'static> = ServiceRegistry::new();
        for (spec, kind, labeled) in single_payload.iter() {
            let id = registry.register_spec(spec, *kind)?;
            for labels in labeled {
                registry.register_labels(id, labels)?;
            }
        }
        Ok((registry, ()))
    })
    .unwrap();
    let sharded = sharded_serving_server(config, SERVING_SHARDS, payload);

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    group.bench_function("direct-answer-batch", |b| {
        b.iter(|| black_box(direct.answer_batch(&traffic).unwrap().len()))
    });
    group.bench_function("served/4-clients-closed-loop", |b| {
        let requests: Vec<&[Probe]> = traffic.chunks(PER_REQUEST).collect();
        b.iter(|| {
            let answered = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..CLIENTS)
                    .map(|c| {
                        let handle = server.handle();
                        let requests = &requests;
                        scope.spawn(move || {
                            (c..requests.len())
                                .step_by(CLIENTS)
                                .map(|j| handle.probe_vec(requests[j].to_vec()).unwrap().len())
                                .sum::<usize>()
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().unwrap()).sum::<usize>()
            });
            black_box(answered)
        })
    });
    group.bench_function("sharded/4-clients-closed-loop", |b| {
        let requests: Vec<&[Probe]> = traffic.chunks(PER_REQUEST).collect();
        b.iter(|| {
            let answered = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..CLIENTS)
                    .map(|c| {
                        let handle = sharded.handle();
                        let requests = &requests;
                        scope.spawn(move || {
                            (c..requests.len())
                                .step_by(CLIENTS)
                                .map(|j| handle.probe_vec(requests[j].to_vec()).unwrap().len())
                                .sum::<usize>()
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().unwrap()).sum::<usize>()
            });
            black_box(answered)
        })
    });
    group.bench_function("sharded/4-clients-pipelined-x16", |b| {
        let requests: Vec<&[Probe]> = traffic.chunks(PER_REQUEST).collect();
        b.iter(|| {
            let answered = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..CLIENTS)
                    .map(|c| {
                        let handle = sharded.handle();
                        let requests = &requests;
                        scope.spawn(move || {
                            let mut inflight = std::collections::VecDeque::new();
                            let mut answered = 0usize;
                            for j in (c..requests.len()).step_by(CLIENTS) {
                                if inflight.len() == DEPTH {
                                    let t: wfp_skl::Ticket = inflight.pop_front().unwrap();
                                    answered += t.wait().unwrap().len();
                                }
                                inflight.push_back(
                                    handle.submit(requests[j].to_vec()).unwrap(),
                                );
                            }
                            for t in inflight {
                                answered += t.wait().unwrap().len();
                            }
                            answered
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().unwrap()).sum::<usize>()
            });
            black_box(answered)
        })
    });
    group.bench_function("served/single-probe-round-trip", |b| {
        let handle = server.handle();
        let (spec, run, u, v) = traffic[0];
        b.iter(|| black_box(handle.probe(spec, run, u, v).unwrap()))
    });
    group.finish();
    server.shutdown().unwrap();
    sharded.shutdown().unwrap();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
