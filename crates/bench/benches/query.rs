//! Criterion bench: πr query latency (Figures 14/17) — TCM+SKL must be
//! flat in run size; BFS+SKL pays the spec search only on +-LCA queries.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wfp_bench::experiments::qblast_spec;
use wfp_gen::{generate_run_with_target, random_pairs, GeneratedRun};
use wfp_skl::LabeledRun;
use wfp_speclabel::{SchemeKind, SpecScheme};

fn bench_query(c: &mut Criterion) {
    let spec = qblast_spec();
    let mut group = c.benchmark_group("skl_query");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &size in &[1_600usize, 25_600] {
        let GeneratedRun { run, .. } = generate_run_with_target(&spec, 7, size);
        let pairs = random_pairs(&run, 4096, 3);
        for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
            let labeled =
                LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
            group.throughput(Throughput::Elements(pairs.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{kind}+SKL"), size),
                &pairs,
                |b, pairs| {
                    b.iter(|| {
                        let mut hits = 0usize;
                        for &(u, v) in pairs {
                            hits += labeled.reaches(u, v) as usize;
                        }
                        black_box(hits)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
