//! Ablations of the design choices called out in DESIGN.md §5:
//!
//! (a) πr's context short-circuit vs. always consulting the skeleton —
//!     quantifies §8.2's "queries may frequently be answered using only
//!     the extended labels";
//! (b) epoch-stamped VisitMap reuse vs. a freshly allocated visited buffer
//!     per BFS query — the substrate choice behind the BFS scheme.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::VecDeque;
use std::hint::black_box;
use wfp_bench::experiments::synthetic_spec;
use wfp_gen::{generate_run_with_target, random_pairs, GeneratedRun};
use wfp_skl::LabeledRun;
use wfp_speclabel::{SchemeKind, SpecIndex, SpecScheme};

fn bench_shortcircuit(c: &mut Criterion) {
    let spec = synthetic_spec(100);
    let GeneratedRun { run, .. } = generate_run_with_target(&spec, 3, 25_600);
    let labeled =
        LabeledRun::build(&spec, SpecScheme::build(SchemeKind::Bfs, spec.graph()), &run).unwrap();
    let pairs = random_pairs(&run, 2048, 9);

    let mut group = c.benchmark_group("predicate_shortcircuit");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("context_shortcircuit (paper)", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &pairs {
                hits += labeled.reaches(u, v) as usize;
            }
            black_box(hits)
        })
    });
    group.bench_function("always_consult_skeleton", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &pairs {
                // same observable answer, but the skeleton is probed even
                // when the context encoding already decides the query
                let (a, bb) = (labeled.label(u), labeled.label(v));
                let skeleton_ans = labeled.skeleton().reaches(a.origin.raw(), bb.origin.raw());
                let d2 = a.q2 as i64 - bb.q2 as i64;
                let d3 = a.q3 as i64 - bb.q3 as i64;
                let ans = if d2 * d3 < 0 {
                    a.q1 < bb.q1 && a.q3 > bb.q3
                } else {
                    skeleton_ans
                };
                hits += ans as usize;
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_visitmap(c: &mut Criterion) {
    use wfp_graph::traversal::{bfs_reaches, VisitMap};
    let spec = synthetic_spec(200);
    let g = spec.graph();
    let n = g.vertex_count();
    let queries: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|u| [(u, (u * 7 + 3) % n as u32), ((u * 5 + 1) % n as u32, u)])
        .collect();

    let mut group = c.benchmark_group("bfs_visited_buffer");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("epoch_stamped_reuse (ours)", |b| {
        let mut vm = VisitMap::new(n);
        let mut queue = VecDeque::new();
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &queries {
                hits += bfs_reaches(g, u, v, &mut vm, &mut queue) as usize;
            }
            black_box(hits)
        })
    });
    group.bench_function("fresh_allocation_per_query", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &queries {
                // naive baseline: new buffers every query
                let mut visited = vec![false; n];
                let mut queue = VecDeque::new();
                visited[u as usize] = true;
                queue.push_back(u);
                let mut found = u == v;
                while let Some(x) = queue.pop_front() {
                    if found {
                        break;
                    }
                    for w in g.successors(x) {
                        if w == v {
                            found = true;
                            break;
                        }
                        if !visited[w as usize] {
                            visited[w as usize] = true;
                            queue.push_back(w);
                        }
                    }
                }
                hits += found as usize;
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shortcircuit, bench_visitmap);
criterion_main!(benches);
