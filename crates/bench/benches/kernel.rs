//! Criterion bench: the branchless column-sweep batch kernel vs the scalar
//! per-pair reference vs the same sweep over bit-packed label columns (the
//! PR 7 tentpole). `repro -- kernel` produces the committed table; this
//! bench is the fast regression guard.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wfp_bench::experiments::throughput_workload;
use wfp_skl::{LabeledRun, QueryEngine};
use wfp_speclabel::{SchemeKind, SpecScheme};

fn bench_kernel(c: &mut Criterion) {
    let (spec, run, pairs) = throughput_workload(false);

    let mut group = c.benchmark_group("kernel_1M");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.throughput(Throughput::Elements(pairs.len() as u64));
    for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
        let labeled =
            LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
        let engine = QueryEngine::from_labeled(labeled);
        let packed = engine.seal_packed();
        // one cold pass doubles as the agreement check before timing
        let mut out = Vec::new();
        let sweep_answers = engine.answer_batch(&pairs);
        assert_eq!(
            engine.answer_batch_scalar_into(&pairs, &mut out),
            &sweep_answers[..]
        );
        assert_eq!(packed.answer_batch(&pairs), sweep_answers);

        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "scalar"),
            &pairs,
            |b, pairs| {
                b.iter(|| black_box(engine.answer_batch_scalar_into(pairs, &mut out).len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "sweep"),
            &pairs,
            |b, pairs| b.iter(|| black_box(engine.answer_batch_into(pairs, &mut out).len())),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "packed"),
            &pairs,
            |b, pairs| b.iter(|| black_box(packed.answer_batch_into(pairs, &mut out).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
