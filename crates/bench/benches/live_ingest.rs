//! Criterion bench: the live ingestion engine (PR 3 tentpole) — event
//! replay throughput, mid-stream probe latency, and the frozen engine on
//! identical probes. `repro -- live_ingest` produces the committed table;
//! this bench is the fast regression guard for the three hot paths.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wfp_bench::experiments::{live_ingest_workload, replay};
use wfp_skl::LiveRun;
use wfp_speclabel::{SchemeKind, SpecScheme};

fn bench_live_ingest(c: &mut Criterion) {
    let (spec, _run, events, _mapping, batches) = live_ingest_workload(true);
    let (mid_at, mid_pairs) = &batches[batches.len() / 2];

    let mut group = c.benchmark_group("live_ingest");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    // full-stream replay (no probes): pure ingestion throughput
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("replay_full_stream", |b| {
        b.iter(|| {
            let mut live = LiveRun::new(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
            replay(&mut live, &events);
            black_box(live.vertex_count())
        })
    });

    group.throughput(Throughput::Elements(mid_pairs.len() as u64));
    for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
        // probes answered mid-stream, over the half-ingested run
        let mut live = LiveRun::new(&spec, SpecScheme::build(kind, spec.graph()));
        replay(&mut live, &events[..*mid_at]);
        let mut out = Vec::new();
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "live_mid_stream"),
            mid_pairs,
            |b, pairs| b.iter(|| black_box(live.answer_batch_into(pairs, &mut out).len())),
        );

        // the same probes against the frozen engine (completed run)
        let mut live = LiveRun::new(&spec, SpecScheme::build(kind, spec.graph()));
        replay(&mut live, &events);
        let engine = live.freeze().expect("generated runs freeze");
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "frozen"),
            mid_pairs,
            |b, pairs| b.iter(|| black_box(engine.answer_batch_into(pairs, &mut out).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_live_ingest);
criterion_main!(benches);
