//! Criterion bench: the unified snapshot layer (the PR 5 tentpole) —
//! saving a warm serving fleet, loading it back, and the relabel-from-runs
//! baseline the load path replaces. `repro -- persistence` produces the
//! committed table; this bench is the fast regression guard.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wfp_bench::experiments::fleet_workload;
use wfp_skl::fleet::FleetEngine;
use wfp_skl::label_run;
use wfp_speclabel::{SchemeKind, SpecScheme};

fn bench_persistence(c: &mut Criterion) {
    let (spec, runs, probes) = fleet_workload(true);

    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
        let build = || {
            let mut fleet =
                FleetEngine::for_spec(&spec, SpecScheme::build(kind, spec.graph()));
            for run in &runs {
                let (labels, _) = label_run(&spec, run).unwrap();
                fleet.register_labels(&labels);
            }
            fleet
        };
        let fleet = build();
        // warm the memo with real traffic so the saved snapshot carries it
        let ids: Vec<_> = fleet.run_ids().collect();
        let traffic: Vec<_> = probes.iter().map(|&(r, u, v)| (ids[r], u, v)).collect();
        fleet.answer_batch(&traffic).unwrap();
        let bytes = fleet.save(spec.graph()).unwrap();

        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "relabel-from-runs"),
            &(),
            |b, ()| b.iter(|| black_box(build().stats().frozen)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "save"),
            &(),
            |b, ()| b.iter(|| black_box(fleet.save(spec.graph()).unwrap().len())),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "load"),
            &bytes,
            |b, bytes| {
                b.iter(|| black_box(FleetEngine::load(bytes).unwrap().0.stats().frozen))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
