//! Criterion bench: the five specification schemes — build time and query
//! time on the §8.2 synthetic spec, plus SKL's robustness to the choice
//! (§8.2: "SKL is insensitive to the quality of the labeling scheme used
//! to label the specification").

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wfp_bench::experiments::synthetic_spec;
use wfp_gen::{generate_run_with_target, random_pairs, GeneratedRun};
use wfp_skl::LabeledRun;
use wfp_speclabel::{SchemeKind, SpecIndex, SpecScheme};

fn bench_schemes(c: &mut Criterion) {
    let spec = synthetic_spec(100);
    let mut build_group = c.benchmark_group("spec_scheme_build");
    build_group.sample_size(30);
    build_group.measurement_time(Duration::from_secs(2));
    build_group.warm_up_time(Duration::from_millis(500));
    for kind in SchemeKind::ALL {
        build_group.bench_function(BenchmarkId::from_parameter(kind), |b| {
            b.iter(|| black_box(SpecScheme::build(kind, spec.graph())))
        });
    }
    build_group.finish();

    let mut query_group = c.benchmark_group("spec_scheme_query");
    query_group.sample_size(30);
    query_group.measurement_time(Duration::from_secs(2));
    query_group.warm_up_time(Duration::from_millis(500));
    let n = spec.module_count() as u64;
    for kind in SchemeKind::ALL {
        let index = SpecScheme::build(kind, spec.graph());
        query_group.bench_function(BenchmarkId::from_parameter(kind), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for u in (0..n).step_by(7) {
                    for v in (0..n).step_by(11) {
                        hits += index.reaches(u as u32, v as u32) as usize;
                    }
                }
                black_box(hits)
            })
        });
    }
    query_group.finish();

    // robustness: SKL query latency under each skeleton scheme
    let GeneratedRun { run, .. } = generate_run_with_target(&spec, 3, 12_800);
    let pairs = random_pairs(&run, 4096, 5);
    let mut skl_group = c.benchmark_group("skl_query_by_scheme");
    skl_group.sample_size(20);
    skl_group.measurement_time(Duration::from_secs(2));
    skl_group.warm_up_time(Duration::from_millis(500));
    for kind in SchemeKind::ALL {
        let labeled =
            LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
        skl_group.bench_function(BenchmarkId::from_parameter(kind), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in &pairs {
                    hits += labeled.reaches(u, v) as usize;
                }
                black_box(hits)
            })
        });
    }
    skl_group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
