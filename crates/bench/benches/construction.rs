//! Criterion bench: SKL run-labeling construction time (Figure 13's
//! default setting) across run sizes — the expected shape is linear.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wfp_bench::experiments::qblast_spec;
use wfp_gen::{generate_run_with_target, GeneratedRun};
use wfp_skl::LabeledRun;
use wfp_speclabel::{SchemeKind, SpecScheme};

fn bench_construction(c: &mut Criterion) {
    let spec = qblast_spec();
    let mut group = c.benchmark_group("skl_construction");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &size in &[400usize, 1_600, 6_400, 25_600] {
        let GeneratedRun { run, plan } = generate_run_with_target(&spec, 7, size);
        group.throughput(Throughput::Elements(run.vertex_count() as u64));
        group.bench_with_input(BenchmarkId::new("default", size), &run, |b, run| {
            b.iter(|| {
                let scheme = SpecScheme::build(SchemeKind::Tcm, spec.graph());
                black_box(LabeledRun::build(&spec, scheme, run).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("with_plan", size), &run, |b, run| {
            b.iter(|| {
                let scheme = SpecScheme::build(SchemeKind::Tcm, spec.graph());
                black_box(LabeledRun::build_with_plan(&spec, scheme, run, &plan))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
