//! Criterion bench: zero-copy snapshot fault-in (the PR 10 tentpole) —
//! the PR 7 decode path (aligned columns unpacked into owned words)
//! against the validated zero-copy bind and the registry's trusted
//! rebind under evict→reload churn, plus probe throughput through the
//! borrowed view vs resident owned columns. `repro -- reload` produces
//! the committed table; this bench is the fast regression guard.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfp_bench::experiments::reload_workload;
use wfp_graph::rng::Xoshiro256;
use wfp_model::RunVertexId;
use wfp_skl::fleet::{FleetEngine, RunId};
use wfp_skl::{label_run, ServiceRegistry, SpecId};
use wfp_speclabel::SchemeKind;

fn bench_reload(c: &mut Criterion) {
    let (generated, snapshots) = reload_workload(true);
    let arcs: Vec<Arc<[u8]>> = snapshots.iter().map(|b| Arc::from(b.as_slice())).collect();

    // the registry churn target: all runs sealed packed, primed through one
    // evict→reload cycle so every subsequent offload is clean and every
    // reload a pointer rebind of the retained buffer
    let mut registry = ServiceRegistry::new();
    let mut ids: Vec<SpecId> = Vec::with_capacity(generated.specs.len());
    for (i, (spec, gens)) in generated.specs.iter().zip(&generated.fleets).enumerate() {
        let id = registry.register_spec(spec, SchemeKind::ALL[i]).unwrap();
        for g in gens {
            let (labels, _) = label_run(spec, &g.run).unwrap();
            registry.register_labels(id, &labels).unwrap();
        }
        registry.seal_packed(id).unwrap();
        ids.push(id);
    }
    for &id in &ids {
        registry.evict(id).unwrap();
        registry.ensure_resident(id).unwrap();
    }

    // probe traffic over spec 0, answered through owned columns and the view
    let books: Vec<(RunId, usize)> = generated.fleets[0]
        .iter()
        .enumerate()
        .filter(|(_, g)| g.run.vertex_count() > 0)
        .map(|(j, g)| (RunId(j as u32), g.run.vertex_count()))
        .collect();
    let mut rng = Xoshiro256::seed_from_u64(0x4E10_AD12);
    let probes: Vec<(RunId, RunVertexId, RunVertexId)> = (0..50_000)
        .map(|_| {
            let (run, n) = books[rng.gen_usize(books.len())];
            (
                run,
                RunVertexId(rng.gen_usize(n) as u32),
                RunVertexId(rng.gen_usize(n) as u32),
            )
        })
        .collect();
    let (owned_fleet, _) = FleetEngine::load(&snapshots[0]).unwrap();
    let (view_fleet, _, profile) = FleetEngine::load_shared(Arc::clone(&arcs[0])).unwrap();
    assert!(profile.zero_copy_runs > 0 && profile.decoded_runs == 0);
    assert_eq!(
        view_fleet.answer_batch(&probes).unwrap(),
        owned_fleet.answer_batch(&probes).unwrap(),
    );

    let mut group = c.benchmark_group("reload");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    group.bench_function("fault-in/decode-owned-columns", |b| {
        b.iter(|| {
            for bytes in &snapshots {
                black_box(FleetEngine::load(bytes).unwrap());
            }
        })
    });
    group.bench_function("fault-in/zero-copy-bind", |b| {
        b.iter(|| {
            for arc in &arcs {
                black_box(FleetEngine::load_shared(Arc::clone(arc)).unwrap());
            }
        })
    });
    group.bench_function("fault-in/registry-trusted-rebind", |b| {
        b.iter(|| {
            for &id in &ids {
                registry.evict(id).unwrap();
                registry.ensure_resident(id).unwrap();
            }
            black_box(registry.stats().lazy_loads)
        })
    });
    group.bench_function("probe/owned-columns", |b| {
        b.iter(|| black_box(owned_fleet.answer_batch(&probes).unwrap().len()))
    });
    group.bench_function("probe/borrowed-view", |b| {
        b.iter(|| black_box(view_fleet.answer_batch(&probes).unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_reload);
criterion_main!(benches);
