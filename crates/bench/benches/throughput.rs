//! Criterion bench: batched query-engine throughput vs the scalar per-pair
//! loop on a 10⁶-pair workload (the PR 2 tentpole). `repro -- throughput`
//! produces the committed table; this bench is the fast regression guard.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wfp_bench::experiments::throughput_workload;
use wfp_skl::{LabeledRun, QueryEngine};
use wfp_speclabel::{SchemeKind, SpecScheme};

fn bench_throughput(c: &mut Criterion) {
    let (spec, run, pairs) = throughput_workload(false);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut group = c.benchmark_group("throughput_1M");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.throughput(Throughput::Elements(pairs.len() as u64));
    for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
        let labeled =
            LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "scalar"),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for &(u, v) in pairs {
                        hits += labeled.reaches(u, v) as usize;
                    }
                    black_box(hits)
                })
            },
        );
        let engine = QueryEngine::from_labeled(labeled);
        let mut out = Vec::new();
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "batched"),
            &pairs,
            |b, pairs| b.iter(|| black_box(engine.answer_batch_into(pairs, &mut out).len())),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), format!("parallel-{threads}")),
            &pairs,
            |b, pairs| {
                b.iter(|| black_box(engine.answer_batch_parallel(pairs, threads).len()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
