//! Criterion bench: the fleet engine (one shared skeleton context serving
//! K runs) vs K independent per-run engines on 10⁶ mixed cross-run probes
//! (the PR 4 tentpole). `repro -- fleet` produces the committed table;
//! this bench is the fast regression guard.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wfp_bench::experiments::fleet_workload;
use wfp_model::RunVertexId;
use wfp_skl::fleet::{FleetEngine, RunId};
use wfp_skl::{label_run, QueryEngine};
use wfp_speclabel::{SchemeKind, SpecScheme};

fn bench_fleet(c: &mut Criterion) {
    let (spec, runs, probes) = fleet_workload(false);

    let mut group = c.benchmark_group("fleet_1M");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.throughput(Throughput::Elements(probes.len() as u64));
    for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
        let labels: Vec<Vec<wfp_skl::RunLabel>> = runs
            .iter()
            .map(|run| label_run(&spec, run).unwrap().0)
            .collect();

        let mut fleet = FleetEngine::for_spec(&spec, SpecScheme::build(kind, spec.graph()));
        let ids: Vec<RunId> = labels.iter().map(|l| fleet.register_labels(l)).collect();
        let traffic: Vec<(RunId, RunVertexId, RunVertexId)> = probes
            .iter()
            .map(|&(r, u, v)| (ids[r], u, v))
            .collect();
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "fleet-shared-context"),
            &traffic,
            |b, traffic| b.iter(|| black_box(fleet.answer_batch(traffic).unwrap().len())),
        );

        let engines: Vec<QueryEngine<SpecScheme>> = labels
            .iter()
            .map(|l| QueryEngine::from_labels(l, SpecScheme::build(kind, spec.graph())))
            .collect();
        let mut per: Vec<Vec<(RunVertexId, RunVertexId)>> = vec![Vec::new(); engines.len()];
        for &(r, u, v) in &probes {
            per[r].push((u, v));
        }
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}+SKL"), "independent-engines"),
            &per,
            |b, per| {
                let mut buf = Vec::new();
                b.iter(|| {
                    let mut n = 0usize;
                    for (engine, pairs) in engines.iter().zip(per) {
                        n += engine.answer_batch_into(pairs, &mut buf).len();
                    }
                    black_box(n)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
