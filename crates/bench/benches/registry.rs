//! Criterion bench: the multi-spec service registry (the PR 6 tentpole) —
//! mixed-spec batch routing against hand-routed per-spec fleets, the lazy
//! snapshot-directory cold start against relabeling from scratch, and the
//! cost of one eviction/reload cycle. `repro -- registry` produces the
//! committed table; this bench is the fast regression guard.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfp_bench::experiments::registry_workload;
use wfp_skl::fleet::FleetEngine;
use wfp_skl::{label_run, ServiceRegistry, SpecId};
use wfp_speclabel::{SchemeKind, SpecScheme};

fn bench_registry(c: &mut Criterion) {
    let (generated, probes) = registry_workload(true);
    let m = generated.specs.len();

    let build_registry = || {
        let mut registry = ServiceRegistry::new();
        let mut ids = Vec::with_capacity(m);
        for (i, (spec, gens)) in generated.specs.iter().zip(&generated.fleets).enumerate() {
            let id = registry.register_spec(spec, SchemeKind::ALL[i]).unwrap();
            for g in gens {
                let (labels, _) = label_run(spec, &g.run).unwrap();
                registry.register_labels(id, &labels).unwrap();
            }
            ids.push(id);
        }
        (registry, ids)
    };
    let (mut registry, ids) = build_registry();
    let traffic: Vec<_> = probes
        .iter()
        .map(|&(s, run, u, v)| (ids[s], run, u, v))
        .collect();

    // the baseline: one fleet per spec, probes hand-routed by spec index
    let fleets: Vec<FleetEngine<'_, SpecScheme>> = generated
        .specs
        .iter()
        .zip(&generated.fleets)
        .enumerate()
        .map(|(i, (spec, gens))| {
            let mut fleet =
                FleetEngine::for_spec(spec, SpecScheme::build(SchemeKind::ALL[i], spec.graph()));
            for g in gens {
                let (labels, _) = label_run(spec, &g.run).unwrap();
                fleet.register_labels(&labels);
            }
            fleet
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("wfp-bench-registry-cb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    registry.save_dir(&dir).unwrap();

    let mut group = c.benchmark_group("registry");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    group.bench_function("mixed-spec-batch/registry", |b| {
        b.iter(|| black_box(registry.answer_batch(&traffic).unwrap().len()))
    });
    group.bench_function("mixed-spec-batch/hand-routed-fleets", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (s, fleet) in fleets.iter().enumerate() {
                let shard: Vec<_> = probes
                    .iter()
                    .filter(|&&(ps, ..)| ps == s)
                    .map(|&(_, run, u, v)| (run, u, v))
                    .collect();
                total += fleet.answer_batch(&shard).unwrap().len();
            }
            black_box(total)
        })
    });
    group.bench_function("cold-start/relabel-from-scratch", |b| {
        b.iter(|| black_box(build_registry().0.stats().resident))
    });
    group.bench_function("cold-start/lazy-snapshot-load", |b| {
        b.iter(|| {
            let mut r = ServiceRegistry::open_dir(&dir, None).unwrap();
            for &id in &ids {
                r.ensure_resident(id).unwrap();
            }
            black_box(r.stats().resident)
        })
    });
    group.bench_function("evict-and-reload-one-fleet", |b| {
        let mut r = ServiceRegistry::open_dir(&dir, None).unwrap();
        let victim: SpecId = ids[0];
        b.iter(|| {
            r.ensure_resident(victim).unwrap();
            r.evict(victim).unwrap();
            black_box(r.stats().evictions)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_registry);
criterion_main!(benches);
