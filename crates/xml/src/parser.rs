//! Pull parser for the XML subset.

use crate::unescape;

/// A parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name k="v" ...>` or `<name .../>` (then `self_closing` is true and
    /// a matching [`Event::End`] is synthesized by the parser).
    Start {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// `</name>` (also emitted after a self-closing start tag).
    End {
        /// Element name.
        name: String,
    },
    /// Character data between tags (whitespace-only runs are skipped).
    Text(String),
}

/// A parse failure with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A pull parser over a complete document string.
pub struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    /// Element stack for well-formedness checking.
    stack: Vec<String>,
    /// Pending synthesized end tag for a self-closing element.
    pending_end: Option<String>,
    started: bool,
    finished: bool,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            stack: Vec::new(),
            pending_end: None,
            started: false,
            finished: false,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (mut line, mut col) = (1, 1);
        for &b in &self.input[..self.pos.min(self.input.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn take_until(&mut self, needle: &str) -> Result<&'a str, ParseError> {
        let hay = &self.input[self.pos..];
        let idx = find_sub(hay, needle.as_bytes())
            .ok_or_else(|| self.error(format!("expected {needle:?}")))?;
        let s = std::str::from_utf8(&hay[..idx]).map_err(|_| self.error("invalid UTF-8"))?;
        self.pos += idx + needle.len();
        Ok(s)
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.error("invalid UTF-8 in name"))?;
        if !crate::writer::is_valid_name(name) {
            return Err(self.error(format!("invalid name {name:?}")));
        }
        Ok(name.to_string())
    }

    /// Produces the next event, or `Ok(None)` at end of document.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Event>, ParseError> {
        if let Some(name) = self.pending_end.take() {
            return Ok(Some(Event::End { name }));
        }
        loop {
            if self.finished {
                // allow only trailing whitespace
                self.skip_ws();
                if self.pos < self.input.len() {
                    return Err(self.error("content after document element"));
                }
                return Ok(None);
            }
            if self.stack.is_empty() && self.started {
                self.finished = true;
                continue;
            }
            // text handling only inside elements
            if !self.stack.is_empty() {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                if self.pos > start {
                    let raw = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in text"))?;
                    if !raw.trim().is_empty() {
                        let text = unescape(raw.trim()).map_err(|e| self.error(e))?;
                        return Ok(Some(Event::Text(text)));
                    }
                    continue;
                }
            } else {
                self.skip_ws();
            }
            if self.pos >= self.input.len() {
                if self.stack.is_empty() && self.started {
                    self.finished = true;
                    continue;
                }
                return Err(self.error("unexpected end of input"));
            }
            if !self.starts_with("<") {
                return Err(self.error("expected '<'"));
            }
            if self.starts_with("<?") {
                if self.started || !self.stack.is_empty() {
                    return Err(self.error("XML declaration not at document start"));
                }
                self.pos += 2;
                self.take_until("?>")?;
                continue;
            }
            if self.starts_with("<!--") {
                self.pos += 4;
                self.take_until("-->")?;
                continue;
            }
            if self.starts_with("<!") {
                return Err(self.error("DOCTYPE/CDATA are not supported"));
            }
            if self.starts_with("</") {
                self.pos += 2;
                let name = self.read_name()?;
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.error("expected '>' after closing tag name"));
                }
                self.pos += 1;
                match self.stack.pop() {
                    Some(open) if open == name => return Ok(Some(Event::End { name })),
                    Some(open) => {
                        return Err(self.error(format!("mismatched tag </{name}>, open <{open}>")))
                    }
                    None => return Err(self.error(format!("unmatched closing tag </{name}>"))),
                }
            }
            // start tag
            self.pos += 1;
            let name = self.read_name()?;
            let mut attrs = Vec::new();
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'>') => {
                        self.pos += 1;
                        self.stack.push(name.clone());
                        self.started = true;
                        return Ok(Some(Event::Start { name, attrs }));
                    }
                    Some(b'/') => {
                        self.pos += 1;
                        if self.peek() != Some(b'>') {
                            return Err(self.error("expected '/>'"));
                        }
                        self.pos += 1;
                        self.started = true;
                        self.pending_end = Some(name.clone());
                        return Ok(Some(Event::Start { name, attrs }));
                    }
                    Some(_) => {
                        let key = self.read_name()?;
                        self.skip_ws();
                        if self.peek() != Some(b'=') {
                            return Err(self.error("expected '=' in attribute"));
                        }
                        self.pos += 1;
                        self.skip_ws();
                        let quote = match self.peek() {
                            Some(q @ (b'"' | b'\'')) => q,
                            _ => return Err(self.error("expected quoted attribute value")),
                        };
                        self.pos += 1;
                        let raw =
                            self.take_until(if quote == b'"' { "\"" } else { "'" })?;
                        let value = unescape(raw).map_err(|e| self.error(e))?;
                        if attrs.iter().any(|(k, _)| k == &key) {
                            return Err(self.error(format!("duplicate attribute {key:?}")));
                        }
                        attrs.push((key, value));
                    }
                    None => return Err(self.error("unexpected end of input in tag")),
                }
            }
        }
    }
}

fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    (0..=hay.len() - needle.len()).find(|&i| &hay[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events(s: &str) -> Result<Vec<Event>, ParseError> {
        let mut p = Parser::new(s);
        let mut out = Vec::new();
        while let Some(e) = p.next()? {
            out.push(e);
        }
        Ok(out)
    }

    #[test]
    fn simple_document() {
        let events = all_events("<?xml version=\"1.0\"?><a x=\"1\"><b/>hi</a>").unwrap();
        assert_eq!(
            events,
            vec![
                Event::Start {
                    name: "a".into(),
                    attrs: vec![("x".into(), "1".into())]
                },
                Event::Start {
                    name: "b".into(),
                    attrs: vec![]
                },
                Event::End { name: "b".into() },
                Event::Text("hi".into()),
                Event::End { name: "a".into() },
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let events = all_events("<a><!-- note --><b/></a>").unwrap();
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn whitespace_only_text_is_skipped() {
        let events = all_events("<a>\n  <b/>\n</a>").unwrap();
        assert!(!events.iter().any(|e| matches!(e, Event::Text(_))));
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let events = all_events("<a k=\"&lt;&amp;&gt;\">x &amp; y</a>").unwrap();
        match &events[0] {
            Event::Start { attrs, .. } => assert_eq!(attrs[0].1, "<&>"),
            _ => panic!(),
        }
        assert_eq!(events[1], Event::Text("x & y".into()));
    }

    #[test]
    fn single_quoted_attributes() {
        let events = all_events("<a k='v'/>").unwrap();
        match &events[0] {
            Event::Start { attrs, .. } => assert_eq!(attrs[0], ("k".into(), "v".into())),
            _ => panic!(),
        }
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let err = all_events("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn truncated_input_is_rejected() {
        assert!(all_events("<a><b>").is_err());
        assert!(all_events("<a attr=>").is_err());
        assert!(all_events("<a attr=unquoted>").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(all_events("<a/>junk").is_err());
        assert!(all_events("<a/><b/>").is_err());
    }

    #[test]
    fn duplicate_attributes_rejected() {
        assert!(all_events("<a k=\"1\" k=\"2\"/>").is_err());
    }

    #[test]
    fn error_position_reports_line() {
        let err = all_events("<a>\n<b>\n</wrong>\n</a>").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("3:"));
    }
}
