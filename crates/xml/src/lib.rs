//! A minimal XML subset: writer, pull parser, and a small DOM.
//!
//! The paper stores workflow specifications and runs as XML files (§8,
//! "Both the specification and runs are stored as XML files"). This crate
//! implements just enough of XML for that purpose — elements, attributes,
//! character data, comments and the XML declaration — with no external
//! dependencies. It is **not** a general XML processor: namespaces,
//! DOCTYPEs, CDATA and processing instructions (other than the leading
//! declaration) are rejected.
//!
//! * [`Writer`] — streaming, indentation-aware serializer with escaping.
//! * [`Parser`] — pull parser producing [`Event`]s with line/column error
//!   positions.
//! * [`Element`] / [`parse_document`] — a convenience DOM for small files.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dom;
pub mod parser;
pub mod writer;

pub use dom::{parse_document, Element};
pub use parser::{Event, ParseError, Parser};
pub use writer::Writer;

/// Escapes a string for use as XML character data or an attribute value.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]. Unknown entities are reported as errors.
pub(crate) fn unescape(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity near {rest:.10}"))?;
        match &rest[..=end] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => return Err(format!("unknown entity {other}")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        let cases = [
            "plain",
            "a<b>&c\"d'e",
            "&&&&",
            "",
            "unicode ✓ ok",
            "<tag attr=\"v\">",
        ];
        for c in cases {
            assert_eq!(unescape(&escape(c)).unwrap(), c, "case {c:?}");
        }
    }

    #[test]
    fn unescape_rejects_unknown_entities() {
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("&unterminated").is_err());
    }

    #[test]
    fn full_round_trip_through_writer_and_dom() {
        let mut w = Writer::new();
        w.begin("workflow");
        w.attr("name", "QBLAST <&> test");
        w.begin("module");
        w.attr("id", "0");
        w.text("align & \"filter\"");
        w.end();
        w.begin("empty");
        w.end();
        w.end();
        let xml = w.finish();
        let doc = parse_document(&xml).unwrap();
        assert_eq!(doc.name, "workflow");
        assert_eq!(doc.attr("name"), Some("QBLAST <&> test"));
        let module = doc.child("module").unwrap();
        assert_eq!(module.attr("id"), Some("0"));
        assert_eq!(module.text(), "align & \"filter\"");
        assert!(doc.child("empty").is_some());
        assert!(doc.child("missing").is_none());
    }
}
