//! Streaming XML writer with indentation and escaping.

use crate::escape;

enum Pending {
    /// `begin` was called; the opening tag is not yet closed with `>`.
    OpenTag,
    /// The element has children or text; the opening tag is closed.
    Content,
}

/// A streaming XML serializer.
///
/// ```
/// let mut w = wfp_xml::Writer::new();
/// w.begin("run");
/// w.attr("size", "3");
/// w.begin("vertex");
/// w.attr("origin", "b");
/// w.end();
/// w.end();
/// assert!(w.finish().contains("<vertex origin=\"b\"/>"));
/// ```
pub struct Writer {
    out: String,
    stack: Vec<(String, bool)>, // (name, has_content)
    pending: Option<Pending>,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// Creates a writer that emits the XML declaration.
    pub fn new() -> Self {
        Writer {
            out: String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"),
            stack: Vec::new(),
            pending: None,
        }
    }

    fn close_pending_open(&mut self, newline: bool) {
        if matches!(self.pending, Some(Pending::OpenTag)) {
            self.out.push('>');
            if newline {
                self.out.push('\n');
            }
        }
        self.pending = None;
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Opens an element. Attributes may be added until the next call.
    pub fn begin(&mut self, name: &str) {
        debug_assert!(is_valid_name(name), "invalid element name {name:?}");
        self.close_pending_open(true);
        if let Some(top) = self.stack.last_mut() {
            top.1 = true;
        }
        self.indent();
        self.out.push('<');
        self.out.push_str(name);
        self.stack.push((name.to_string(), false));
        self.pending = Some(Pending::OpenTag);
    }

    /// Adds an attribute to the element just opened with [`begin`](Self::begin).
    /// Panics if content has already been written.
    pub fn attr(&mut self, key: &str, value: &str) {
        assert!(
            matches!(self.pending, Some(Pending::OpenTag)),
            "attr() must directly follow begin()"
        );
        debug_assert!(is_valid_name(key), "invalid attribute name {key:?}");
        self.out.push(' ');
        self.out.push_str(key);
        self.out.push_str("=\"");
        self.out.push_str(&escape(value));
        self.out.push('"');
    }

    /// Convenience for numeric attributes.
    pub fn attr_num(&mut self, key: &str, value: impl std::fmt::Display) {
        self.attr(key, &value.to_string());
    }

    /// Writes escaped character data inside the current element.
    pub fn text(&mut self, s: &str) {
        assert!(!self.stack.is_empty(), "text() outside any element");
        if matches!(self.pending, Some(Pending::OpenTag)) {
            self.out.push('>');
        }
        self.pending = Some(Pending::Content);
        if let Some(top) = self.stack.last_mut() {
            top.1 = true;
        }
        self.out.push_str(&escape(s));
    }

    /// Closes the most recently opened element.
    pub fn end(&mut self) {
        let (name, had_children) = self.stack.pop().expect("end() without begin()");
        match self.pending.take() {
            Some(Pending::OpenTag) => {
                // no content at all: self-closing
                self.out.push_str("/>\n");
            }
            Some(Pending::Content) => {
                // inline text content: close on the same line
                self.out.push_str("</");
                self.out.push_str(&name);
                self.out.push_str(">\n");
            }
            None => {
                if had_children {
                    self.indent();
                }
                self.out.push_str("</");
                self.out.push_str(&name);
                self.out.push_str(">\n");
            }
        }
    }

    /// Finishes the document. Panics if elements are still open.
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty(),
            "unclosed elements: {:?}",
            self.stack.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
        self.out
    }
}

/// Restricted XML name: ASCII letters, digits, `_`, `-`, `.`, starting with a
/// letter or underscore. Sufficient for this workspace's schemas.
pub(crate) fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_elements_with_indentation() {
        let mut w = Writer::new();
        w.begin("a");
        w.begin("b");
        w.begin("c");
        w.end();
        w.end();
        w.end();
        let s = w.finish();
        assert!(s.contains("<a>\n  <b>\n    <c/>\n  </b>\n</a>\n"), "{s}");
    }

    #[test]
    fn attributes_are_escaped() {
        let mut w = Writer::new();
        w.begin("x");
        w.attr("k", "a\"b<c>&");
        w.end();
        let s = w.finish();
        assert!(s.contains("k=\"a&quot;b&lt;c&gt;&amp;\""), "{s}");
    }

    #[test]
    fn text_content_inline() {
        let mut w = Writer::new();
        w.begin("x");
        w.text("hello");
        w.end();
        assert!(w.finish().contains("<x>hello</x>"));
    }

    #[test]
    fn numeric_attr() {
        let mut w = Writer::new();
        w.begin("x");
        w.attr_num("n", 42);
        w.end();
        assert!(w.finish().contains("n=\"42\""));
    }

    #[test]
    #[should_panic(expected = "attr() must directly follow begin()")]
    fn attr_after_content_panics() {
        let mut w = Writer::new();
        w.begin("x");
        w.text("t");
        w.attr("k", "v");
    }

    #[test]
    #[should_panic(expected = "unclosed elements")]
    fn unbalanced_finish_panics() {
        let mut w = Writer::new();
        w.begin("x");
        let _ = w.finish();
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_name("module"));
        assert!(is_valid_name("_x-1.y"));
        assert!(!is_valid_name("1bad"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("has space"));
    }
}
