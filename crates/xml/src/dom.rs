//! A small DOM built on top of the pull parser, convenient for the
//! fixed-schema documents this workspace reads (specifications, runs, data
//! annotations).

use crate::parser::{Event, ParseError, Parser};

/// An element node: name, attributes, child elements and concatenated text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated character data directly inside this element.
    pub text: String,
}

impl Element {
    /// Attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Attribute parsed as an integer type.
    pub fn attr_num<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.attr(key)?.parse().ok()
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The element's direct text content.
    pub fn text(&self) -> &str {
        &self.text
    }
}

/// Parses a complete document into its root element.
pub fn parse_document(input: &str) -> Result<Element, ParseError> {
    let mut parser = Parser::new(input);
    let mut stack: Vec<Element> = Vec::new();
    let mut root: Option<Element> = None;
    while let Some(event) = parser.next()? {
        match event {
            Event::Start { name, attrs } => {
                stack.push(Element {
                    name,
                    attrs,
                    children: Vec::new(),
                    text: String::new(),
                });
            }
            Event::Text(t) => {
                if let Some(top) = stack.last_mut() {
                    top.text.push_str(&t);
                }
            }
            Event::End { .. } => {
                let done = stack.pop().expect("parser guarantees balance");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(done),
                    None => root = Some(done),
                }
            }
        }
    }
    root.ok_or(ParseError {
        line: 1,
        col: 1,
        message: "empty document".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_tree() {
        let doc = parse_document(
            "<spec n=\"3\"><module id=\"0\">a</module><module id=\"1\">b</module><edge from=\"0\" to=\"1\"/></spec>",
        )
        .unwrap();
        assert_eq!(doc.name, "spec");
        assert_eq!(doc.attr_num::<u32>("n"), Some(3));
        assert_eq!(doc.children.len(), 3);
        assert_eq!(doc.children_named("module").count(), 2);
        let m1 = doc.children_named("module").nth(1).unwrap();
        assert_eq!(m1.text(), "b");
        assert_eq!(m1.attr_num::<usize>("id"), Some(1));
        assert_eq!(doc.child("edge").unwrap().attr("from"), Some("0"));
    }

    #[test]
    fn empty_document_is_an_error() {
        assert!(parse_document("   ").is_err());
        assert!(parse_document("<?xml version=\"1.0\"?>").is_err());
    }

    #[test]
    fn attr_num_rejects_garbage() {
        let doc = parse_document("<a n=\"xyz\"/>").unwrap();
        assert_eq!(doc.attr_num::<u32>("n"), None);
        assert_eq!(doc.attr_num::<u32>("missing"), None);
    }
}
