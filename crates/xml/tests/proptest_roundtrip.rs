//! Property tests: any document tree the writer can produce is parsed back
//! identically by the pull parser / DOM.

use proptest::prelude::*;
use wfp_xml::{parse_document, Element, Writer};

/// Arbitrary element trees with bounded depth/width.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,8}".prop_map(|s| s)
}

fn arb_text() -> impl Strategy<Value = String> {
    // Arbitrary content including XML-significant characters; leading and
    // trailing whitespace is excluded because the parser trims text runs.
    "[ -~]{0,20}".prop_map(|s| s.trim().to_string())
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    attrs: Vec<(String, String)>,
    text: String,
    children: Vec<Node>,
}

fn arb_node() -> impl Strategy<Value = Node> {
    let leaf = (arb_name(), proptest::collection::vec((arb_name(), arb_text()), 0..3), arb_text())
        .prop_map(|(name, mut attrs, text)| {
            attrs.dedup_by(|a, b| a.0 == b.0);
            let mut seen = std::collections::HashSet::new();
            attrs.retain(|(k, _)| seen.insert(k.clone()));
            Node {
                name,
                attrs,
                text,
                children: Vec::new(),
            }
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, mut attrs, children)| {
                let mut seen = std::collections::HashSet::new();
                attrs.retain(|(k, _)| seen.insert(k.clone()));
                Node {
                    name,
                    attrs,
                    // mixed content order is not modeled by the DOM; keep
                    // text on leaves only
                    text: String::new(),
                    children,
                }
            })
    })
}

fn write_node(w: &mut Writer, node: &Node) {
    w.begin(&node.name);
    for (k, v) in &node.attrs {
        w.attr(k, v);
    }
    if !node.text.is_empty() {
        w.text(&node.text);
    }
    for c in &node.children {
        write_node(w, c);
    }
    w.end();
}

fn assert_matches(node: &Node, el: &Element) {
    assert_eq!(node.name, el.name);
    assert_eq!(node.attrs.len(), el.attrs.len());
    for (k, v) in &node.attrs {
        assert_eq!(el.attr(k), Some(v.as_str()), "attr {k}");
    }
    assert_eq!(node.text, el.text());
    assert_eq!(node.children.len(), el.children.len());
    for (c, e) in node.children.iter().zip(&el.children) {
        assert_matches(c, e);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn writer_parser_round_trip(root in arb_node()) {
        let mut w = Writer::new();
        write_node(&mut w, &root);
        let xml = w.finish();
        let doc = parse_document(&xml).unwrap_or_else(|e| panic!("{e}\n{xml}"));
        assert_matches(&root, &doc);
    }

    /// Re-serializing the parsed document is a fixed point.
    #[test]
    fn second_round_trip_is_identical(root in arb_node()) {
        fn write_el(w: &mut Writer, el: &Element) {
            w.begin(&el.name);
            for (k, v) in &el.attrs {
                w.attr(k, v);
            }
            if !el.text().is_empty() {
                w.text(el.text());
            }
            for c in &el.children {
                write_el(w, c);
            }
            w.end();
        }
        let mut w = Writer::new();
        write_node(&mut w, &root);
        let xml1 = w.finish();
        let doc1 = parse_document(&xml1).unwrap();
        let mut w2 = Writer::new();
        write_el(&mut w2, &doc1);
        let xml2 = w2.finish();
        prop_assert_eq!(&xml1, &xml2);
    }
}
