//! Graph substrate for the workflow-provenance workspace.
//!
//! This crate contains every generic data structure the rest of the
//! workspace is built on:
//!
//! * [`DiGraph`] — a compact static directed multigraph used for workflow
//!   specifications and runs.
//! * [`DynGraph`] — a dynamic directed multigraph with O(1) edge deletion,
//!   backing the linear-time `ConstructPlan` algorithm (paper §5).
//! * [`FixedBitSet`] and [`TransitiveClosure`] — bit-matrix reachability used
//!   by the `TCM` skeleton scheme (paper §7) and by test oracles.
//! * [`Tree`] — an arena tree with Euler-tour LCA, used for the fork/loop
//!   hierarchy `T_G` and the execution plan `T_R` (paper §4).
//! * [`traversal`] — reusable BFS/DFS machinery with epoch-stamped visit
//!   maps (the `BFS`/`DFS` schemes of paper §7 and the differential oracle).
//! * [`rng`] — deterministic SplitMix64 / xoshiro256★★ random number
//!   generation for reproducible workloads (paper §8).
//! * [`fxhash`] — the FxHash fast hash function; `ConstructPlan` relies on
//!   hashing for its grouping steps (paper §5.3) and FxHash keeps that O(1)
//!   per operation with a small constant.
//!
//! All vertex/edge identifiers at this layer are plain `u32` indices; the
//! `wfp-model` crate wraps them in domain newtypes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitset;
pub mod closure;
pub mod digraph;
pub mod dyngraph;
pub mod fxhash;
pub mod orderlist;
pub mod rng;
pub mod topo;
pub mod traversal;
pub mod tree;

pub use bitset::FixedBitSet;
pub use closure::TransitiveClosure;
pub use digraph::{DiGraph, EdgeIdx, VertexIdx, NIL};
pub use dyngraph::DynGraph;
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use orderlist::OrderList;
pub use rng::Xoshiro256;
pub use topo::{sinks, sources, topo_order, CycleError};
pub use traversal::VisitMap;
pub use tree::Tree;
