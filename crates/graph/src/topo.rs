//! Topological ordering and terminal-vertex helpers for [`DiGraph`].

use crate::digraph::{DiGraph, VertexIdx};

/// Error returned when a graph contains a directed cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Number of vertices that could not be ordered (they lie on or behind a
    /// cycle).
    pub stuck_vertices: usize,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a directed cycle ({} vertices unorderable)",
            self.stuck_vertices
        )
    }
}

impl std::error::Error for CycleError {}

/// Kahn's algorithm. Returns the vertices in a topological order, or a
/// [`CycleError`] if the graph is not a DAG. `O(n + m)`.
pub fn topo_order(g: &DiGraph) -> Result<Vec<VertexIdx>, CycleError> {
    let n = g.vertex_count();
    let mut in_deg: Vec<u32> = (0..n as u32).map(|v| g.in_degree(v) as u32).collect();
    let mut order = Vec::with_capacity(n);
    let mut frontier: Vec<VertexIdx> = (0..n as u32).filter(|&v| in_deg[v as usize] == 0).collect();
    while let Some(v) = frontier.pop() {
        order.push(v);
        for w in g.successors(v) {
            let d = &mut in_deg[w as usize];
            *d -= 1;
            if *d == 0 {
                frontier.push(w);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(CycleError {
            stuck_vertices: n - order.len(),
        })
    }
}

/// Whether the graph is acyclic.
pub fn is_dag(g: &DiGraph) -> bool {
    topo_order(g).is_ok()
}

/// Vertices with no incoming edges.
pub fn sources(g: &DiGraph) -> Vec<VertexIdx> {
    g.vertices().filter(|&v| g.in_degree(v) == 0).collect()
}

/// Vertices with no outgoing edges.
pub fn sinks(g: &DiGraph) -> Vec<VertexIdx> {
    g.vertices().filter(|&v| g.out_degree(v) == 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_a_dag() {
        let mut g = DiGraph::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let order = topo_order(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for &(u, v) in g.edges() {
            assert!(pos[u as usize] < pos[v as usize], "edge ({u},{v}) violated");
        }
    }

    #[test]
    fn detects_cycle() {
        let mut g = DiGraph::with_vertices(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        let err = topo_order(&g).unwrap_err();
        assert_eq!(err.stuck_vertices, 2);
        assert!(!is_dag(&g));
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn terminals() {
        let mut g = DiGraph::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        assert_eq!(sources(&g), vec![0]);
        assert_eq!(sinks(&g), vec![2, 3]);
    }

    #[test]
    fn empty_graph_is_a_dag() {
        let g = DiGraph::new();
        assert_eq!(topo_order(&g).unwrap(), Vec::<u32>::new());
        assert!(is_dag(&g));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::with_vertices(1);
        g.add_edge(0, 0);
        assert!(!is_dag(&g));
    }
}
