//! The Fx hash function (as used by rustc) and map/set aliases.
//!
//! `ConstructPlan` (paper §5.3) leans on hash maps for leader lookup and
//! fork-copy grouping; the paper notes "the search steps used in the
//! algorithm can be implemented efficiently using hash functions". The keys
//! are small integers/tuples, for which SipHash's DoS resistance buys nothing
//! and costs a lot — Fx is the standard fast alternative (see the Rust
//! Performance Book's Hashing chapter). Implemented in-house to keep the
//! dependency set minimal; `benches/ablation.rs` measures the difference.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x517c_c1b7_2722_0a95;

/// A fast, non-cryptographic hasher for small keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u32::from_le_bytes(buf) as u64);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
        assert_eq!(hash_of(&"workflow"), hash_of(&"workflow"));
    }

    #[test]
    fn different_values_usually_differ() {
        // Not a cryptographic guarantee, but these must differ for the hash
        // to be useful at all.
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32, u32), &str> = FxHashMap::default();
        m.insert((1, 2, 3), "a");
        m.insert((3, 2, 1), "b");
        assert_eq!(m.get(&(1, 2, 3)), Some(&"a"));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i * 7919);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&(7919 * 999)));
    }

    #[test]
    fn byte_stream_chunking_consistency() {
        // write() must consume 8-byte, 4-byte and tail chunks without panic
        for len in 0..32 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let _ = h.finish();
        }
    }

    #[test]
    fn distribution_smoke_test() {
        // Hash 10k sequential tuples into 64 buckets; no bucket should be
        // pathologically overloaded (>4x expected).
        let mut buckets = [0u32; 64];
        for i in 0..10_000u32 {
            let h = hash_of(&(i, i ^ 0xdead));
            buckets[(h >> 58) as usize] += 1;
        }
        let expected = 10_000 / 64;
        assert!(buckets.iter().all(|&c| c < 4 * expected), "{buckets:?}");
    }
}
