//! Order-maintenance list: O(1) order comparison with dynamic insertion.
//!
//! The offline labeling scheme encodes each context as three *integer*
//! preorder positions; those integers are only known once the run is
//! complete. The online extension (paper §9's future work, implemented in
//! `wfp-skl::online`) instead keeps each of the three orders in an
//! [`OrderList`]: elements can be inserted anywhere at any time, and two
//! elements compare in O(1).
//!
//! The implementation is the classic tag-relabeling scheme: every element
//! carries a `u64` tag strictly increasing along the list; insertion
//! bisects the neighbouring tags, and when a gap is exhausted the whole
//! list is retagged with even spacing (amortized cheap: a rebuild buys at
//! least `2^64 / (4·len)`-sized gaps).

use crate::digraph::NIL;

/// A list over handle ids with O(1) order comparison.
pub struct OrderList {
    key: Vec<u64>,
    next: Vec<u32>,
    prev: Vec<u32>,
    head: u32,
    tail: u32,
    rebuilds: usize,
}

impl Default for OrderList {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderList {
    /// Creates an empty list.
    pub fn new() -> Self {
        OrderList {
            key: Vec::new(),
            next: Vec::new(),
            prev: Vec::new(),
            head: NIL,
            tail: NIL,
            rebuilds: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.key.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.key.is_empty()
    }

    /// How many global retaggings have happened (exposed for tests).
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    fn alloc(&mut self, key: u64, prev: u32, next: u32) -> u32 {
        let id = self.key.len() as u32;
        self.key.push(key);
        self.prev.push(prev);
        self.next.push(next);
        if prev != NIL {
            self.next[prev as usize] = id;
        } else {
            self.head = id;
        }
        if next != NIL {
            self.prev[next as usize] = id;
        } else {
            self.tail = id;
        }
        id
    }

    /// Appends an element at the end; returns its handle.
    pub fn push_back(&mut self) -> u32 {
        let tail = self.tail;
        if tail == NIL {
            return self.alloc(u64::MAX / 2, NIL, NIL);
        }
        self.insert_after(tail)
    }

    /// Inserts a new element immediately after `at`.
    pub fn insert_after(&mut self, at: u32) -> u32 {
        let next = self.next[at as usize];
        match self.key_between(self.key[at as usize], self.bound_after(next)) {
            Some(key) => self.alloc(key, at, next),
            None => {
                self.rebuild();
                let next = self.next[at as usize];
                let key = self
                    .key_between(self.key[at as usize], self.bound_after(next))
                    .expect("rebuild guarantees a gap");
                self.alloc(key, at, next)
            }
        }
    }

    /// Inserts a new element immediately before `at`.
    pub fn insert_before(&mut self, at: u32) -> u32 {
        let prev = self.prev[at as usize];
        match self.key_between(self.bound_before(prev), self.key[at as usize]) {
            Some(key) => self.alloc(key, prev, at),
            None => {
                self.rebuild();
                let prev = self.prev[at as usize];
                let key = self
                    .key_between(self.bound_before(prev), self.key[at as usize])
                    .expect("rebuild guarantees a gap");
                self.alloc(key, prev, at)
            }
        }
    }

    #[inline]
    fn bound_after(&self, next: u32) -> u64 {
        if next == NIL {
            u64::MAX
        } else {
            self.key[next as usize]
        }
    }

    #[inline]
    fn bound_before(&self, prev: u32) -> u64 {
        if prev == NIL {
            0
        } else {
            self.key[prev as usize]
        }
    }

    /// A key strictly between `lo` and `hi`, if the gap admits one.
    fn key_between(&self, lo: u64, hi: u64) -> Option<u64> {
        if hi - lo >= 2 {
            Some(lo + (hi - lo) / 2)
        } else {
            None
        }
    }

    /// Retags the whole list with even spacing.
    fn rebuild(&mut self) {
        self.rebuilds += 1;
        let n = self.len() as u64;
        let gap = (u64::MAX / (n + 2)).max(2);
        let mut cur = self.head;
        let mut key = gap;
        while cur != NIL {
            self.key[cur as usize] = key;
            key += gap;
            cur = self.next[cur as usize];
        }
    }

    /// The current tag of element `id`. Tags increase strictly along the
    /// list, so two tags compare like the handles they came from — but a
    /// tag is only valid until the next [`rebuild`](Self::rebuild_count)
    /// (callers caching tags must refresh them when `rebuild_count`
    /// advances).
    #[inline]
    pub fn key(&self, id: u32) -> u64 {
        self.key[id as usize]
    }

    /// Compares two elements by list order in O(1).
    #[inline]
    pub fn cmp(&self, a: u32, b: u32) -> std::cmp::Ordering {
        self.key[a as usize].cmp(&self.key[b as usize])
    }

    /// Whether `a` precedes `b` (strictly).
    #[inline]
    pub fn before(&self, a: u32, b: u32) -> bool {
        self.key[a as usize] < self.key[b as usize]
    }

    /// Iterates handles in list order.
    pub fn iter_order(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let id = cur;
                cur = self.next[cur as usize];
                Some(id)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn push_back_preserves_order() {
        let mut l = OrderList::new();
        let ids: Vec<u32> = (0..100).map(|_| l.push_back()).collect();
        for w in ids.windows(2) {
            assert!(l.before(w[0], w[1]));
        }
        assert_eq!(l.iter_order().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn insert_before_and_after() {
        let mut l = OrderList::new();
        let b = l.push_back();
        let a = l.insert_before(b);
        let c = l.insert_after(b);
        let d = l.insert_after(a);
        // order: a, d, b, c
        assert_eq!(l.iter_order().collect::<Vec<_>>(), vec![a, d, b, c]);
        assert!(l.before(a, d) && l.before(d, b) && l.before(b, c));
        assert_eq!(l.cmp(a, a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn pathological_front_insertion_triggers_rebuilds_but_stays_ordered() {
        let mut l = OrderList::new();
        let first = l.push_back();
        let mut front = first;
        let mut ids = vec![first];
        for _ in 0..10_000 {
            front = l.insert_before(front);
            ids.push(front);
        }
        ids.reverse(); // insertion order is back-to-front
        assert_eq!(l.iter_order().collect::<Vec<_>>(), ids);
        assert!(l.rebuild_count() > 0, "front insertion must exhaust gaps");
        for w in ids.windows(2) {
            assert!(l.before(w[0], w[1]));
        }
    }

    #[test]
    fn random_insertions_match_a_vector_model() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut l = OrderList::new();
        let mut model: Vec<u32> = vec![l.push_back()];
        for _ in 0..5000 {
            let pos = rng.gen_usize(model.len());
            let at = model[pos];
            if rng.gen_bool(0.5) {
                let id = l.insert_after(at);
                model.insert(pos + 1, id);
            } else {
                let id = l.insert_before(at);
                model.insert(pos, id);
            }
        }
        assert_eq!(l.iter_order().collect::<Vec<_>>(), model);
        // order comparisons agree with model positions for random samples
        for _ in 0..2000 {
            let i = rng.gen_usize(model.len());
            let j = rng.gen_usize(model.len());
            assert_eq!(l.before(model[i], model[j]), i < j, "({i},{j})");
        }
    }
}
