//! Arena-allocated rooted trees with Euler-tour ancestry and LCA.
//!
//! Both trees of the paper live on this type: the fork/loop hierarchy `T_G`
//! (§3) and the execution plan `T_R` (§4.1). The plan builder creates nodes
//! bottom-up before their parents exist, so nodes start detached and are
//! linked later; child order is the insertion order of [`Tree::set_parent`]
//! calls (this is what makes `T_R` *semi-ordered*: loop-group children are
//! attached in serial order).
//!
//! [`Tree::preorder_by`] drives the three traversals of Algorithm 1, where
//! the per-node child order is chosen by a callback. [`Ancestry`] gives O(1)
//! `is_ancestor` and O(1) LCA (Euler tour + sparse table) — used by the test
//! oracle for Lemma 4.5 and by the LCA-based ablation baseline.

use crate::digraph::NIL;

struct Node<T> {
    parent: u32,
    children: Vec<u32>,
    data: T,
}

/// An arena tree (possibly a forest while under construction).
pub struct Tree<T> {
    nodes: Vec<Node<T>>,
}

/// Child visit order for [`Tree::preorder_by`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildOrder {
    /// Visit children left to right (insertion order).
    Forward,
    /// Visit children right to left.
    Reverse,
}

impl<T> Default for Tree<T> {
    fn default() -> Self {
        Tree { nodes: Vec::new() }
    }
}

impl<T> Tree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (attached or detached).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a detached node carrying `data`; returns its id.
    pub fn add_node(&mut self, data: T) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            parent: NIL,
            children: Vec::new(),
            data,
        });
        id
    }

    /// Adds a node and immediately attaches it as the last child of `parent`.
    pub fn add_child(&mut self, parent: u32, data: T) -> u32 {
        let id = self.add_node(data);
        self.set_parent(id, parent);
        id
    }

    /// Attaches the detached node `child` as the last child of `parent`.
    /// Panics if `child` already has a parent or if this would self-loop.
    pub fn set_parent(&mut self, child: u32, parent: u32) {
        assert_ne!(child, parent, "node cannot parent itself");
        assert_eq!(
            self.nodes[child as usize].parent, NIL,
            "node {child} already has a parent"
        );
        self.nodes[child as usize].parent = parent;
        self.nodes[parent as usize].children.push(child);
    }

    /// Parent of `x`, or `None` for a root/detached node.
    #[inline]
    pub fn parent(&self, x: u32) -> Option<u32> {
        let p = self.nodes[x as usize].parent;
        (p != NIL).then_some(p)
    }

    /// Children of `x` in insertion order.
    #[inline]
    pub fn children(&self, x: u32) -> &[u32] {
        &self.nodes[x as usize].children
    }

    /// Payload of `x`.
    #[inline]
    pub fn data(&self, x: u32) -> &T {
        &self.nodes[x as usize].data
    }

    /// Mutable payload of `x`.
    #[inline]
    pub fn data_mut(&mut self, x: u32) -> &mut T {
        &mut self.nodes[x as usize].data
    }

    /// All nodes with no parent (a fully built tree has exactly one).
    pub fn roots(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == NIL)
            .map(|(i, _)| i as u32)
    }

    /// The unique root. Panics unless exactly one node is parentless.
    pub fn root(&self) -> u32 {
        let mut it = self.roots();
        let r = it.next().expect("tree has no root");
        assert!(it.next().is_none(), "tree has multiple roots");
        r
    }

    /// Depth of every node below `root` (`root` has depth 0; detached
    /// subtrees keep `u32::MAX`).
    pub fn depths(&self, root: u32) -> Vec<u32> {
        let mut depth = vec![u32::MAX; self.len()];
        depth[root as usize] = 0;
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            let d = depth[x as usize];
            for &c in self.children(x) {
                depth[c as usize] = d + 1;
                stack.push(c);
            }
        }
        depth
    }

    /// Iterative preorder traversal from `root`, visiting each node's
    /// children in the order chosen by `order(node)`. Calls `visit` on every
    /// node, parents before descendants.
    ///
    /// This is the engine behind the three traversals of Algorithm 1.
    pub fn preorder_by(
        &self,
        root: u32,
        mut order: impl FnMut(u32) -> ChildOrder,
        mut visit: impl FnMut(u32),
    ) {
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            visit(x);
            let kids = self.children(x);
            match order(x) {
                // Stack is LIFO: push reversed so children pop left-to-right.
                ChildOrder::Forward => stack.extend(kids.iter().rev().copied()),
                ChildOrder::Reverse => stack.extend(kids.iter().copied()),
            }
        }
    }

    /// Plain left-to-right preorder listing.
    pub fn preorder(&self, root: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        self.preorder_by(root, |_| ChildOrder::Forward, |x| out.push(x));
        out
    }
}

/// Euler-tour ancestry structure: O(1) `is_ancestor`, O(1) LCA after
/// `O(n log n)` preprocessing.
pub struct Ancestry {
    tin: Vec<u32>,
    tout: Vec<u32>,
    /// euler[i] = node at position i of the Euler tour
    euler: Vec<u32>,
    /// first[v] = first occurrence of v in the tour
    first: Vec<u32>,
    /// sparse[k][i] = tour position with minimum depth in window [i, i+2^k)
    sparse: Vec<Vec<u32>>,
    depth: Vec<u32>,
}

impl Ancestry {
    /// Builds the structure for the subtree rooted at `root`.
    pub fn build<T>(tree: &Tree<T>, root: u32) -> Self {
        let n = tree.len();
        let mut tin = vec![u32::MAX; n];
        let mut tout = vec![u32::MAX; n];
        let mut euler = Vec::with_capacity(2 * n);
        let mut first = vec![u32::MAX; n];
        let depth = tree.depths(root);
        let mut clock = 0u32;

        // Iterative DFS recording entry/exit times and the Euler tour.
        enum Step {
            Enter(u32),
            Exit(u32),
            Touch(u32), // re-visit of a node between children (Euler tour)
        }
        let mut stack = vec![Step::Enter(root)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(x) => {
                    tin[x as usize] = clock;
                    clock += 1;
                    first[x as usize] = euler.len() as u32;
                    euler.push(x);
                    stack.push(Step::Exit(x));
                    let kids = tree.children(x);
                    for (i, &c) in kids.iter().enumerate().rev() {
                        stack.push(Step::Enter(c));
                        if i > 0 {
                            stack.push(Step::Touch(x));
                        }
                    }
                }
                Step::Touch(x) => euler.push(x),
                Step::Exit(x) => {
                    tout[x as usize] = clock;
                    clock += 1;
                }
            }
        }

        // Sparse table over the Euler tour for range-minimum (by depth).
        let m = euler.len();
        let levels = if m <= 1 { 1 } else { (usize::BITS - (m - 1).leading_zeros()) as usize + 1 };
        let mut sparse: Vec<Vec<u32>> = Vec::with_capacity(levels);
        sparse.push((0..m as u32).collect());
        let mut k = 1;
        while (1 << k) <= m {
            let half = 1 << (k - 1);
            let prev = &sparse[k - 1];
            let mut row = Vec::with_capacity(m - (1 << k) + 1);
            for i in 0..=(m - (1 << k)) {
                let a = prev[i];
                let b = prev[i + half];
                let pick = if depth[euler[a as usize] as usize] <= depth[euler[b as usize] as usize]
                {
                    a
                } else {
                    b
                };
                row.push(pick);
            }
            sparse.push(row);
            k += 1;
        }

        Ancestry {
            tin,
            tout,
            euler,
            first,
            sparse,
            depth,
        }
    }

    /// Whether `a` is an ancestor of `b` (reflexive: `is_ancestor(x, x)`).
    #[inline]
    pub fn is_ancestor(&self, a: u32, b: u32) -> bool {
        self.tin[a as usize] <= self.tin[b as usize] && self.tout[b as usize] <= self.tout[a as usize]
    }

    /// Lowest common ancestor of `a` and `b`.
    pub fn lca(&self, a: u32, b: u32) -> u32 {
        let (mut i, mut j) = (self.first[a as usize] as usize, self.first[b as usize] as usize);
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let len = j - i + 1;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let x = self.sparse[k][i];
        let y = self.sparse[k][j + 1 - (1 << k)];
        let (nx, ny) = (self.euler[x as usize], self.euler[y as usize]);
        if self.depth[nx as usize] <= self.depth[ny as usize] {
            nx
        } else {
            ny
        }
    }

    /// Depth of `x` below the build root.
    #[inline]
    pub fn depth(&self, x: u32) -> u32 {
        self.depth[x as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the tree
    /// ```text
    ///        0
    ///      / | \
    ///     1  2  3
    ///    / \     \
    ///   4   5     6
    /// ```
    fn sample() -> Tree<&'static str> {
        let mut t = Tree::new();
        let r = t.add_node("0");
        let a = t.add_child(r, "1");
        let _b = t.add_child(r, "2");
        let c = t.add_child(r, "3");
        t.add_child(a, "4");
        t.add_child(a, "5");
        t.add_child(c, "6");
        t
    }

    #[test]
    fn structure_accessors() {
        let t = sample();
        assert_eq!(t.len(), 7);
        assert_eq!(t.root(), 0);
        assert_eq!(t.children(0), &[1, 2, 3]);
        assert_eq!(t.parent(4), Some(1));
        assert_eq!(t.parent(0), None);
        assert_eq!(*t.data(6), "6");
    }

    #[test]
    fn preorder_forward_and_reverse() {
        let t = sample();
        assert_eq!(t.preorder(0), vec![0, 1, 4, 5, 2, 3, 6]);
        let mut rev = Vec::new();
        t.preorder_by(0, |_| ChildOrder::Reverse, |x| rev.push(x));
        assert_eq!(rev, vec![0, 3, 6, 2, 1, 5, 4]);
        // mixed: reverse only at the root
        let mut mixed = Vec::new();
        t.preorder_by(
            0,
            |x| if x == 0 { ChildOrder::Reverse } else { ChildOrder::Forward },
            |x| mixed.push(x),
        );
        assert_eq!(mixed, vec![0, 3, 6, 2, 1, 4, 5]);
    }

    #[test]
    fn depths() {
        let t = sample();
        assert_eq!(t.depths(0), vec![0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn ancestry_and_lca() {
        let t = sample();
        let anc = Ancestry::build(&t, 0);
        assert!(anc.is_ancestor(0, 6));
        assert!(anc.is_ancestor(1, 4));
        assert!(anc.is_ancestor(4, 4));
        assert!(!anc.is_ancestor(4, 1));
        assert!(!anc.is_ancestor(1, 6));
        assert_eq!(anc.lca(4, 5), 1);
        assert_eq!(anc.lca(4, 6), 0);
        assert_eq!(anc.lca(1, 4), 1);
        assert_eq!(anc.lca(2, 3), 0);
        assert_eq!(anc.lca(0, 6), 0);
        assert_eq!(anc.lca(5, 5), 5);
    }

    #[test]
    fn lca_on_a_path_tree() {
        let mut t = Tree::new();
        let mut prev = t.add_node(0u32);
        let root = prev;
        for i in 1..50u32 {
            prev = t.add_child(prev, i);
        }
        let anc = Ancestry::build(&t, root);
        assert_eq!(anc.lca(10, 40), 10);
        assert!(anc.is_ancestor(10, 40));
        assert_eq!(anc.depth(40), 40);
    }

    #[test]
    fn detached_then_linked() {
        let mut t = Tree::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        assert_eq!(t.roots().count(), 3);
        t.set_parent(b, a);
        t.set_parent(c, a);
        assert_eq!(t.root(), a);
        assert_eq!(t.children(a), &[b, c]);
    }

    #[test]
    #[should_panic(expected = "already has a parent")]
    fn double_link_panics() {
        let mut t = Tree::new();
        let a = t.add_node(());
        let b = t.add_node(());
        let c = t.add_node(());
        t.set_parent(c, a);
        t.set_parent(c, b);
    }
}
