//! Deterministic pseudo-random number generation.
//!
//! The paper's evaluation (§8) randomly generates specifications, replicates
//! forks/loops "one or more times", and samples 10⁶ query pairs. For the
//! reproduction we need those workloads to be *bit-for-bit reproducible*
//! across machines and library versions, so instead of depending on `rand`
//! we implement two small, well-known generators: SplitMix64 (for seeding)
//! and xoshiro256★★ (the workhorse). See DESIGN.md §3 for the substitution
//! rationale.

/// SplitMix64: a tiny generator used to expand a 64-bit seed into the
/// xoshiro state. Also usable standalone for cheap hashing-style streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256★★ by Blackman & Vigna: fast, high-quality, 256-bit state.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator deterministically from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift with rejection, so the result is exactly
    /// uniform.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_usize(&mut self, bound: usize) -> usize {
        self.gen_below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Geometric distribution: number of failures before the first success
    /// with per-trial probability `p ∈ (0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric requires p in (0,1], got {p}");
        if p >= 1.0 {
            return 0;
        }
        let u = self.gen_f64();
        // Inversion: floor(ln(1-u) / ln(1-p)); 1-u in (0,1] so ln is finite.
        let g = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
        if g < 0.0 {
            0
        } else {
            g as u64
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_usize(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference output for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // determinism check against a fresh instance
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn gen_below_stays_in_range_and_covers() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.gen_below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should appear");
    }

    #[test]
    fn gen_range_inclusive_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range_inclusive(5, 9);
            assert!((5..=9).contains(&x));
        }
        assert_eq!(rng.gen_range_inclusive(3, 3), 3);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let p = 0.25;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expected = (1.0 - p) / p; // 3.0
        assert!((mean - expected).abs() < 0.2, "mean {mean}, expected {expected}");
        assert_eq!(rng.geometric(1.0), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }

    #[test]
    fn choose_behaviour() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let empty: [u32; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let one = [42];
        assert_eq!(rng.choose(&one), Some(&42));
    }
}
