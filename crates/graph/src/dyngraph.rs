//! A dynamic directed multigraph with O(1) edge deletion.
//!
//! `ConstructPlan` (paper §5) repeatedly *contracts* fork/loop copies of the
//! run graph: it deletes the copy's edges and interior vertices and inserts a
//! single "special" edge. For the algorithm to stay linear, deleting an edge
//! must not require scanning adjacency lists, and iterating a vertex's
//! incident edges must never revisit dead ones. [`DynGraph`] achieves both by
//! threading every edge through two intrusive doubly-linked lists (one for
//! its tail's out-list, one for its head's in-list).
//!
//! Edge payloads of type `E` travel with the edge (the plan builder uses them
//! to tag original vs. special edges).

use crate::digraph::NIL;

struct Vert {
    out_head: u32,
    in_head: u32,
    out_deg: u32,
    in_deg: u32,
    alive: bool,
}

struct Edge<E> {
    from: u32,
    to: u32,
    prev_out: u32,
    next_out: u32,
    prev_in: u32,
    next_in: u32,
    alive: bool,
    data: E,
}

/// A mutable directed multigraph supporting O(1) edge insertion and deletion.
pub struct DynGraph<E> {
    verts: Vec<Vert>,
    edges: Vec<Edge<E>>,
    alive_edges: usize,
    alive_verts: usize,
}

impl<E> DynGraph<E> {
    /// Creates a graph with `n` isolated, alive vertices and no edges.
    pub fn with_vertices(n: usize) -> Self {
        DynGraph {
            verts: (0..n)
                .map(|_| Vert {
                    out_head: NIL,
                    in_head: NIL,
                    out_deg: 0,
                    in_deg: 0,
                    alive: true,
                })
                .collect(),
            edges: Vec::new(),
            alive_edges: 0,
            alive_verts: n,
        }
    }

    /// Total number of vertex slots (alive or dead).
    #[inline]
    pub fn vertex_slots(&self) -> usize {
        self.verts.len()
    }

    /// Number of alive vertices.
    #[inline]
    pub fn alive_vertex_count(&self) -> usize {
        self.alive_verts
    }

    /// Number of alive edges.
    #[inline]
    pub fn alive_edge_count(&self) -> usize {
        self.alive_edges
    }

    /// Total number of edge slots ever allocated (alive or dead).
    #[inline]
    pub fn edge_slots(&self) -> usize {
        self.edges.len()
    }

    /// Whether vertex `v` is alive.
    #[inline]
    pub fn vertex_alive(&self, v: u32) -> bool {
        self.verts[v as usize].alive
    }

    /// Whether edge `e` is alive.
    #[inline]
    pub fn edge_alive(&self, e: u32) -> bool {
        self.edges[e as usize].alive
    }

    /// Endpoints `(from, to)` of edge `e` (valid even after deletion).
    #[inline]
    pub fn edge(&self, e: u32) -> (u32, u32) {
        let ed = &self.edges[e as usize];
        (ed.from, ed.to)
    }

    /// Payload of edge `e` (valid even after deletion).
    #[inline]
    pub fn data(&self, e: u32) -> &E {
        &self.edges[e as usize].data
    }

    /// Mutable payload of edge `e`.
    #[inline]
    pub fn data_mut(&mut self, e: u32) -> &mut E {
        &mut self.edges[e as usize].data
    }

    /// Out-degree of `v` over alive edges.
    #[inline]
    pub fn out_degree(&self, v: u32) -> usize {
        self.verts[v as usize].out_deg as usize
    }

    /// In-degree of `v` over alive edges.
    #[inline]
    pub fn in_degree(&self, v: u32) -> usize {
        self.verts[v as usize].in_deg as usize
    }

    /// Inserts edge `from -> to` carrying `data`; returns its id.
    pub fn add_edge(&mut self, from: u32, to: u32, data: E) -> u32 {
        assert!(self.verts[from as usize].alive, "tail vertex {from} is dead");
        assert!(self.verts[to as usize].alive, "head vertex {to} is dead");
        let id = self.edges.len() as u32;
        let out_head = self.verts[from as usize].out_head;
        let in_head = self.verts[to as usize].in_head;
        self.edges.push(Edge {
            from,
            to,
            prev_out: NIL,
            next_out: out_head,
            prev_in: NIL,
            next_in: in_head,
            alive: true,
            data,
        });
        if out_head != NIL {
            self.edges[out_head as usize].prev_out = id;
        }
        if in_head != NIL {
            self.edges[in_head as usize].prev_in = id;
        }
        self.verts[from as usize].out_head = id;
        self.verts[to as usize].in_head = id;
        self.verts[from as usize].out_deg += 1;
        self.verts[to as usize].in_deg += 1;
        self.alive_edges += 1;
        id
    }

    /// Deletes edge `e` in O(1). Idempotent: deleting a dead edge is a no-op.
    pub fn remove_edge(&mut self, e: u32) {
        let ei = e as usize;
        if !self.edges[ei].alive {
            return;
        }
        self.edges[ei].alive = false;
        self.alive_edges -= 1;
        let (from, to) = (self.edges[ei].from, self.edges[ei].to);
        let (prev_out, next_out) = (self.edges[ei].prev_out, self.edges[ei].next_out);
        let (prev_in, next_in) = (self.edges[ei].prev_in, self.edges[ei].next_in);
        // unlink from the out-list of `from`
        if prev_out != NIL {
            self.edges[prev_out as usize].next_out = next_out;
        } else {
            self.verts[from as usize].out_head = next_out;
        }
        if next_out != NIL {
            self.edges[next_out as usize].prev_out = prev_out;
        }
        // unlink from the in-list of `to`
        if prev_in != NIL {
            self.edges[prev_in as usize].next_in = next_in;
        } else {
            self.verts[to as usize].in_head = next_in;
        }
        if next_in != NIL {
            self.edges[next_in as usize].prev_in = prev_in;
        }
        self.verts[from as usize].out_deg -= 1;
        self.verts[to as usize].in_deg -= 1;
    }

    /// Deletes all incident alive edges of `v` and marks it dead.
    /// Idempotent on dead vertices.
    pub fn remove_vertex(&mut self, v: u32) {
        if !self.verts[v as usize].alive {
            return;
        }
        while self.verts[v as usize].out_head != NIL {
            let e = self.verts[v as usize].out_head;
            self.remove_edge(e);
        }
        while self.verts[v as usize].in_head != NIL {
            let e = self.verts[v as usize].in_head;
            self.remove_edge(e);
        }
        self.verts[v as usize].alive = false;
        self.alive_verts -= 1;
    }

    /// Iterates over the alive outgoing edge ids of `v`.
    ///
    /// The iterator reads the successor link before yielding, so deleting the
    /// *yielded* edge mid-iteration is safe; deleting other edges of `v`
    /// while iterating is not (the borrow checker rules it out anyway for
    /// `&mut self` deletions).
    pub fn out_edges(&self, v: u32) -> EdgeIter<'_, E> {
        EdgeIter {
            graph: self,
            cur: self.verts[v as usize].out_head,
            outgoing: true,
        }
    }

    /// Iterates over the alive incoming edge ids of `v`.
    pub fn in_edges(&self, v: u32) -> EdgeIter<'_, E> {
        EdgeIter {
            graph: self,
            cur: self.verts[v as usize].in_head,
            outgoing: false,
        }
    }

    /// An arbitrary alive outgoing edge of `v`, if any.
    #[inline]
    pub fn first_out(&self, v: u32) -> Option<u32> {
        let h = self.verts[v as usize].out_head;
        (h != NIL).then_some(h)
    }

    /// An arbitrary alive incoming edge of `v`, if any.
    #[inline]
    pub fn first_in(&self, v: u32) -> Option<u32> {
        let h = self.verts[v as usize].in_head;
        (h != NIL).then_some(h)
    }

    /// Iterates over ids of alive vertices.
    pub fn alive_vertices(&self) -> impl Iterator<Item = u32> + '_ {
        self.verts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.alive)
            .map(|(i, _)| i as u32)
    }

    /// Iterates over ids of alive edges.
    pub fn alive_edges(&self) -> impl Iterator<Item = u32> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| i as u32)
    }
}

/// Iterator over the alive incident edges of one vertex.
pub struct EdgeIter<'a, E> {
    graph: &'a DynGraph<E>,
    cur: u32,
    outgoing: bool,
}

impl<E> Iterator for EdgeIter<'_, E> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == NIL {
            return None;
        }
        let e = self.cur;
        let ed = &self.graph.edges[e as usize];
        self.cur = if self.outgoing { ed.next_out } else { ed.next_in };
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids<E>(it: EdgeIter<'_, E>) -> Vec<u32> {
        let mut v: Vec<u32> = it.collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn add_and_iterate() {
        let mut g: DynGraph<()> = DynGraph::with_vertices(3);
        let e0 = g.add_edge(0, 1, ());
        let e1 = g.add_edge(0, 2, ());
        let e2 = g.add_edge(1, 2, ());
        assert_eq!(g.alive_edge_count(), 3);
        assert_eq!(ids(g.out_edges(0)), vec![e0, e1]);
        assert_eq!(ids(g.in_edges(2)), vec![e1, e2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
    }

    #[test]
    fn remove_edge_unlinks_both_lists() {
        let mut g: DynGraph<u8> = DynGraph::with_vertices(2);
        let a = g.add_edge(0, 1, 1);
        let b = g.add_edge(0, 1, 2);
        let c = g.add_edge(0, 1, 3);
        g.remove_edge(b);
        assert!(!g.edge_alive(b));
        assert_eq!(ids(g.out_edges(0)), vec![a, c]);
        assert_eq!(ids(g.in_edges(1)), vec![a, c]);
        assert_eq!(g.alive_edge_count(), 2);
        // removing the head of the list works too
        g.remove_edge(c);
        assert_eq!(ids(g.out_edges(0)), vec![a]);
        g.remove_edge(a);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.in_degree(1), 0);
        assert_eq!(g.first_out(0), None);
    }

    #[test]
    fn remove_edge_is_idempotent() {
        let mut g: DynGraph<()> = DynGraph::with_vertices(2);
        let e = g.add_edge(0, 1, ());
        g.remove_edge(e);
        g.remove_edge(e);
        assert_eq!(g.alive_edge_count(), 0);
    }

    #[test]
    fn remove_vertex_kills_incident_edges() {
        let mut g: DynGraph<()> = DynGraph::with_vertices(4);
        g.add_edge(0, 1, ());
        g.add_edge(1, 2, ());
        g.add_edge(3, 1, ());
        let keep = g.add_edge(0, 3, ());
        g.remove_vertex(1);
        assert!(!g.vertex_alive(1));
        assert_eq!(g.alive_edge_count(), 1);
        assert!(g.edge_alive(keep));
        assert_eq!(g.alive_vertex_count(), 3);
        assert_eq!(g.alive_vertices().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn payload_survives_deletion() {
        let mut g: DynGraph<&'static str> = DynGraph::with_vertices(2);
        let e = g.add_edge(0, 1, "hello");
        g.remove_edge(e);
        assert_eq!(*g.data(e), "hello");
        assert_eq!(g.edge(e), (0, 1));
    }

    #[test]
    fn deleting_yielded_edge_during_iteration_is_safe() {
        let mut g: DynGraph<()> = DynGraph::with_vertices(2);
        for _ in 0..5 {
            g.add_edge(0, 1, ());
        }
        let all: Vec<u32> = g.out_edges(0).collect();
        for e in all {
            g.remove_edge(e);
        }
        assert_eq!(g.alive_edge_count(), 0);
    }

    #[test]
    fn interleaved_add_remove_keeps_counts() {
        let mut g: DynGraph<u32> = DynGraph::with_vertices(5);
        let mut live = Vec::new();
        for i in 0..100u32 {
            let e = g.add_edge(i % 5, (i + 1) % 5, i);
            if i % 3 == 0 {
                g.remove_edge(e);
            } else {
                live.push(e);
            }
        }
        assert_eq!(g.alive_edge_count(), live.len());
        let total_out: usize = (0..5).map(|v| g.out_degree(v)).sum();
        assert_eq!(total_out, live.len());
        assert_eq!(g.alive_edges().count(), live.len());
    }
}
