//! Transitive closure as a bit matrix.
//!
//! This is the `TCM` index of paper §7: row `u` holds a bit per vertex `v`
//! with `row[u][v] = 1` iff `u ⇝ v`. Construction runs a single reverse
//! topological sweep, OR-ing successor rows (`O(n·m/64)` word operations),
//! which in practice beats the paper's quoted `O(min(m·n, n^2.376 log n))`
//! bound for the graph sizes involved. Reachability is reflexive:
//! `reaches(v, v)` is always `true`.

use crate::digraph::{DiGraph, VertexIdx};
use crate::topo::topo_order;
use crate::FixedBitSet;

/// Full transitive-closure matrix of a DAG.
#[derive(Clone)]
pub struct TransitiveClosure {
    rows: Vec<FixedBitSet>,
}

impl TransitiveClosure {
    /// Builds the closure of `g`. Panics if `g` contains a cycle (workflow
    /// graphs are DAGs by construction; validate first for untrusted input).
    pub fn build(g: &DiGraph) -> Self {
        let n = g.vertex_count();
        let order = topo_order(g).expect("transitive closure requires a DAG");
        let mut rows: Vec<FixedBitSet> = (0..n).map(|_| FixedBitSet::new(n)).collect();
        // Reverse topological order: successors are complete before their
        // predecessors, so each row is the union of successor rows.
        for &v in order.iter().rev() {
            let mut row = FixedBitSet::new(n);
            row.insert(v as usize);
            for w in g.successors(v) {
                row.union_with(&rows[w as usize]);
            }
            rows[v as usize] = row;
        }
        TransitiveClosure { rows }
    }

    /// Whether there is a directed path `u ⇝ v` (reflexive).
    #[inline]
    pub fn reaches(&self, u: VertexIdx, v: VertexIdx) -> bool {
        self.rows[u as usize].contains(v as usize)
    }

    /// The full row of `u`: every vertex reachable from `u`, including `u`.
    #[inline]
    pub fn row(&self, u: VertexIdx) -> &FixedBitSet {
        &self.rows[u as usize]
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.rows.len()
    }

    /// Total number of reachable pairs, counting the `n` reflexive ones.
    pub fn pair_count(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;
    use crate::traversal::{bfs_reaches, VisitMap};
    use std::collections::VecDeque;

    #[test]
    fn diamond_closure() {
        let mut g = DiGraph::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let tc = TransitiveClosure::build(&g);
        assert!(tc.reaches(0, 3));
        assert!(tc.reaches(1, 3));
        assert!(!tc.reaches(1, 2));
        assert!(!tc.reaches(3, 0));
        assert!(tc.reaches(2, 2));
        assert_eq!(tc.pair_count(), 4 + 4 + 1); // 0:{0,1,2,3} 1:{1,3} 2:{2,3} 3:{3}
    }

    #[test]
    fn matches_bfs_on_random_dags() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..20 {
            let n = 2 + rng.gen_usize(30);
            let mut g = DiGraph::with_vertices(n);
            // only forward edges w.r.t. the index order => DAG
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.15) {
                        g.add_edge(u, v);
                    }
                }
            }
            let tc = TransitiveClosure::build(&g);
            let mut vm = VisitMap::new(n);
            let mut q = VecDeque::new();
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    assert_eq!(
                        tc.reaches(u, v),
                        bfs_reaches(&g, u, v, &mut vm, &mut q),
                        "mismatch at ({u},{v}), n={n}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires a DAG")]
    fn cyclic_graph_panics() {
        let mut g = DiGraph::with_vertices(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        TransitiveClosure::build(&g);
    }
}
