//! A compact, append-only directed multigraph.
//!
//! [`DiGraph`] is the static representation used for workflow specifications
//! and runs: vertices and edges are added once and never removed, adjacency
//! is stored as per-vertex edge-index lists, and parallel edges are allowed
//! (runs of workflows with single-edge forks are genuine multigraphs, see
//! paper §3.2 / DESIGN.md §4).

/// Index of a vertex inside a [`DiGraph`].
pub type VertexIdx = u32;
/// Index of an edge inside a [`DiGraph`].
pub type EdgeIdx = u32;
/// Sentinel index meaning "none".
pub const NIL: u32 = u32::MAX;

/// A static directed multigraph over `u32` vertex indices.
#[derive(Clone, Default)]
pub struct DiGraph {
    edges: Vec<(VertexIdx, VertexIdx)>,
    out_adj: Vec<Vec<EdgeIdx>>,
    in_adj: Vec<Vec<EdgeIdx>>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        DiGraph {
            edges: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a new isolated vertex and returns its index.
    pub fn add_vertex(&mut self) -> VertexIdx {
        let id = self.out_adj.len() as VertexIdx;
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a directed edge `from -> to` and returns its index.
    ///
    /// Parallel edges are allowed. Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: VertexIdx, to: VertexIdx) -> EdgeIdx {
        assert!((from as usize) < self.vertex_count(), "vertex {from} out of range");
        assert!((to as usize) < self.vertex_count(), "vertex {to} out of range");
        let id = self.edges.len() as EdgeIdx;
        self.edges.push((from, to));
        self.out_adj[from as usize].push(id);
        self.in_adj[to as usize].push(id);
        id
    }

    /// Endpoints `(from, to)` of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeIdx) -> (VertexIdx, VertexIdx) {
        self.edges[e as usize]
    }

    /// All edges as `(from, to)` pairs, indexed by [`EdgeIdx`].
    #[inline]
    pub fn edges(&self) -> &[(VertexIdx, VertexIdx)] {
        &self.edges
    }

    /// Outgoing edge indices of `v`.
    #[inline]
    pub fn out_edges(&self, v: VertexIdx) -> &[EdgeIdx] {
        &self.out_adj[v as usize]
    }

    /// Incoming edge indices of `v`.
    #[inline]
    pub fn in_edges(&self, v: VertexIdx) -> &[EdgeIdx] {
        &self.in_adj[v as usize]
    }

    /// Iterates over the heads of `v`'s outgoing edges.
    pub fn successors(&self, v: VertexIdx) -> impl Iterator<Item = VertexIdx> + '_ {
        self.out_adj[v as usize].iter().map(move |&e| self.edges[e as usize].1)
    }

    /// Iterates over the tails of `v`'s incoming edges.
    pub fn predecessors(&self, v: VertexIdx) -> impl Iterator<Item = VertexIdx> + '_ {
        self.in_adj[v as usize].iter().map(move |&e| self.edges[e as usize].0)
    }

    /// Out-degree of `v` (counting parallel edges).
    #[inline]
    pub fn out_degree(&self, v: VertexIdx) -> usize {
        self.out_adj[v as usize].len()
    }

    /// In-degree of `v` (counting parallel edges).
    #[inline]
    pub fn in_degree(&self, v: VertexIdx) -> usize {
        self.in_adj[v as usize].len()
    }

    /// Returns `true` if some edge `from -> to` exists (linear in
    /// `min(out_degree(from), in_degree(to))`).
    pub fn has_edge(&self, from: VertexIdx, to: VertexIdx) -> bool {
        if self.out_degree(from) <= self.in_degree(to) {
            self.successors(from).any(|h| h == to)
        } else {
            self.predecessors(to).any(|t| t == from)
        }
    }

    /// Iterates over all vertex indices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexIdx> {
        0..self.vertex_count() as VertexIdx
    }
}

impl std::fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DiGraph(n={}, m={})", self.vertex_count(), self.edge_count())?;
        for v in self.vertices() {
            let succ: Vec<_> = self.successors(v).collect();
            writeln!(f, "  {v} -> {succ:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = DiGraph::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn adjacency_matches_edges() {
        let g = diamond();
        assert_eq!(g.successors(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g.predecessors(3).collect::<Vec<_>>(), vec![1, 2]);
        let (from, to) = g.edge(2);
        assert_eq!((from, to), (1, 3));
    }

    #[test]
    fn parallel_edges_are_kept() {
        let mut g = DiGraph::with_vertices(2);
        let e1 = g.add_edge(0, 1);
        let e2 = g.add_edge(0, 1);
        assert_ne!(e1, e2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(0), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = DiGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        assert_eq!((a, b), (0, 1));
        g.add_edge(a, b);
        assert!(g.has_edge(a, b));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let mut g = DiGraph::with_vertices(1);
        g.add_edge(0, 1);
    }
}
