//! Reusable BFS/DFS machinery.
//!
//! The `BFS`/`DFS` specification schemes of paper §7 answer each reachability
//! query by a fresh graph search. To keep the per-query cost at `O(m + n)`
//! with a tiny constant, [`VisitMap`] provides an epoch-stamped visited set
//! that resets in O(1), and the search functions reuse caller-provided
//! frontier buffers so a query performs no allocation in the steady state.

use std::collections::VecDeque;

use crate::digraph::{DiGraph, VertexIdx};
use crate::FixedBitSet;

/// A visited set over `0..n` that can be reset in O(1) via epoch stamping.
#[derive(Clone)]
pub struct VisitMap {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitMap {
    /// Creates a map for vertices `0..n`, all unvisited.
    pub fn new(n: usize) -> Self {
        VisitMap {
            stamps: vec![0; n],
            epoch: 1,
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether the map covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Forgets all visits in O(1) (amortized; a full clear happens once every
    /// `u32::MAX` resets).
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Marks `v` visited; returns `true` if it was not visited before.
    #[inline]
    pub fn visit(&mut self, v: VertexIdx) -> bool {
        let slot = &mut self.stamps[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `v` has been visited since the last [`reset`](Self::reset).
    #[inline]
    pub fn is_visited(&self, v: VertexIdx) -> bool {
        self.stamps[v as usize] == self.epoch
    }

    /// Ensures the map covers at least `n` vertices.
    pub fn grow(&mut self, n: usize) {
        if n > self.stamps.len() {
            self.stamps.resize(n, 0);
        }
    }
}

/// BFS reachability: is there a directed path `from ⇝ to`?
///
/// Reflexive: `from == to` answers `true`. `visit` is reset internally;
/// `queue` is cleared. Both are reused to avoid allocation.
pub fn bfs_reaches(
    g: &DiGraph,
    from: VertexIdx,
    to: VertexIdx,
    visit: &mut VisitMap,
    queue: &mut VecDeque<VertexIdx>,
) -> bool {
    if from == to {
        return true;
    }
    visit.reset();
    queue.clear();
    visit.visit(from);
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for w in g.successors(v) {
            if w == to {
                return true;
            }
            if visit.visit(w) {
                queue.push_back(w);
            }
        }
    }
    false
}

/// DFS reachability: is there a directed path `from ⇝ to`?
///
/// Reflexive, like [`bfs_reaches`]. `stack` is the reusable frontier.
pub fn dfs_reaches(
    g: &DiGraph,
    from: VertexIdx,
    to: VertexIdx,
    visit: &mut VisitMap,
    stack: &mut Vec<VertexIdx>,
) -> bool {
    if from == to {
        return true;
    }
    visit.reset();
    stack.clear();
    visit.visit(from);
    stack.push(from);
    while let Some(v) = stack.pop() {
        for w in g.successors(v) {
            if w == to {
                return true;
            }
            if visit.visit(w) {
                stack.push(w);
            }
        }
    }
    false
}

/// The set of vertices reachable from `from` (including `from` itself).
pub fn reachable_set(g: &DiGraph, from: VertexIdx) -> FixedBitSet {
    let mut set = FixedBitSet::new(g.vertex_count());
    let mut stack = vec![from];
    set.insert(from as usize);
    while let Some(v) = stack.pop() {
        for w in g.successors(v) {
            if !set.contains(w as usize) {
                set.insert(w as usize);
                stack.push(w);
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_branch() -> DiGraph {
        // 0 -> 1 -> 2 -> 3, 1 -> 4 (4 is a dead end)
        let mut g = DiGraph::with_vertices(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(1, 4);
        g
    }

    #[test]
    fn bfs_and_dfs_agree() {
        let g = chain_with_branch();
        let mut vm = VisitMap::new(5);
        let mut q = VecDeque::new();
        let mut st = Vec::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                let b = bfs_reaches(&g, u, v, &mut vm, &mut q);
                let d = dfs_reaches(&g, u, v, &mut vm, &mut st);
                assert_eq!(b, d, "mismatch at ({u},{v})");
            }
        }
    }

    #[test]
    fn reachability_is_reflexive_and_directional() {
        let g = chain_with_branch();
        let mut vm = VisitMap::new(5);
        let mut q = VecDeque::new();
        assert!(bfs_reaches(&g, 3, 3, &mut vm, &mut q));
        assert!(bfs_reaches(&g, 0, 3, &mut vm, &mut q));
        assert!(bfs_reaches(&g, 0, 4, &mut vm, &mut q));
        assert!(!bfs_reaches(&g, 3, 0, &mut vm, &mut q));
        assert!(!bfs_reaches(&g, 4, 3, &mut vm, &mut q));
    }

    #[test]
    fn reachable_set_matches_pointwise_queries() {
        let g = chain_with_branch();
        let mut vm = VisitMap::new(5);
        let mut q = VecDeque::new();
        for u in 0..5u32 {
            let set = reachable_set(&g, u);
            for v in 0..5u32 {
                assert_eq!(
                    set.contains(v as usize),
                    bfs_reaches(&g, u, v, &mut vm, &mut q),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn visit_map_reset_is_cheap_and_correct() {
        let mut vm = VisitMap::new(3);
        assert!(vm.visit(0));
        assert!(!vm.visit(0));
        assert!(vm.is_visited(0));
        vm.reset();
        assert!(!vm.is_visited(0));
        assert!(vm.visit(0));
    }

    #[test]
    fn visit_map_grow() {
        let mut vm = VisitMap::new(1);
        vm.visit(0);
        vm.grow(4);
        assert_eq!(vm.len(), 4);
        assert!(vm.is_visited(0));
        assert!(!vm.is_visited(3));
        assert!(vm.visit(3));
    }

    #[test]
    fn cycle_terminates() {
        let mut g = DiGraph::with_vertices(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let mut vm = VisitMap::new(3);
        let mut q = VecDeque::new();
        assert!(bfs_reaches(&g, 0, 2, &mut vm, &mut q));
        // no path to a vertex outside the cycle, search must terminate
        let mut g2 = g.clone();
        let iso = g2.add_vertex();
        assert!(!bfs_reaches(&g2, 0, iso, &mut vm, &mut q));
    }
}
