//! A fixed-capacity bit set backed by `u64` words.
//!
//! Used for transitive-closure rows ([`crate::TransitiveClosure`]), reachable
//! sets in test oracles, and interval/tree-cover bookkeeping. The capacity is
//! chosen at construction; out-of-range indices panic, matching slice
//! semantics.

/// A fixed-capacity set of bits.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitSet {
    /// Creates an empty bit set able to hold `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        FixedBitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits this set can hold.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the capacity is zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn index(&self, bit: usize) -> (usize, u64) {
        assert!(bit < self.len, "bit {bit} out of range for len {}", self.len);
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Sets the bit at `bit` to one.
    #[inline]
    pub fn insert(&mut self, bit: usize) {
        let (w, mask) = self.index(bit);
        self.words[w] |= mask;
    }

    /// Clears the bit at `bit`.
    #[inline]
    pub fn remove(&mut self, bit: usize) {
        let (w, mask) = self.index(bit);
        self.words[w] &= !mask;
    }

    /// Sets the bit at `bit` to `value`.
    #[inline]
    pub fn set(&mut self, bit: usize, value: bool) {
        if value {
            self.insert(bit);
        } else {
            self.remove(bit);
        }
    }

    /// Returns whether the bit at `bit` is set.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        let (w, mask) = self.index(bit);
        self.words[w] & mask != 0
    }

    /// Sets every bit to zero, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union: `self |= other`. Panics if capacities differ.
    pub fn union_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection: `self &= other`. Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.ones()).finish()
    }
}

/// Iterator over set bits of a [`FixedBitSet`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bs = FixedBitSet::new(130);
        assert_eq!(bs.len(), 130);
        assert!(!bs.contains(0));
        bs.insert(0);
        bs.insert(63);
        bs.insert(64);
        bs.insert(129);
        assert!(bs.contains(0) && bs.contains(63) && bs.contains(64) && bs.contains(129));
        assert!(!bs.contains(1) && !bs.contains(128));
        bs.remove(64);
        assert!(!bs.contains(64));
        assert_eq!(bs.count_ones(), 3);
    }

    #[test]
    fn ones_iterates_in_order() {
        let mut bs = FixedBitSet::new(200);
        for &b in &[199, 0, 64, 65, 3, 127] {
            bs.insert(b);
        }
        let got: Vec<usize> = bs.ones().collect();
        assert_eq!(got, vec![0, 3, 64, 65, 127, 199]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = FixedBitSet::new(100);
        let mut b = FixedBitSet::new(100);
        a.insert(1);
        a.insert(50);
        b.insert(50);
        b.insert(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.ones().collect::<Vec<_>>(), vec![1, 50, 99]);
        a.intersect_with(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![50]);
    }

    #[test]
    fn clear_resets_all() {
        let mut bs = FixedBitSet::new(70);
        bs.insert(69);
        bs.clear();
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.len(), 70);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let bs = FixedBitSet::new(10);
        bs.contains(10);
    }

    #[test]
    fn empty_set_iterates_nothing() {
        let bs = FixedBitSet::new(0);
        assert!(bs.is_empty());
        assert_eq!(bs.ones().count(), 0);
    }

    #[test]
    fn set_with_bool() {
        let mut bs = FixedBitSet::new(8);
        bs.set(3, true);
        assert!(bs.contains(3));
        bs.set(3, false);
        assert!(!bs.contains(3));
    }
}
