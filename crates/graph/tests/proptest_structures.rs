//! Model-based property tests for the graph substrate.

use proptest::prelude::*;
use wfp_graph::dyngraph::DynGraph;
use wfp_graph::orderlist::OrderList;
use wfp_graph::tree::{Ancestry, Tree};
use wfp_graph::FixedBitSet;

// ----------------------------------------------------------------------
// FixedBitSet vs. a HashSet model
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SetOp {
    Insert(usize),
    Remove(usize),
    Clear,
}

fn arb_set_ops(universe: usize) -> impl Strategy<Value = Vec<SetOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..universe).prop_map(SetOp::Insert),
            (0..universe).prop_map(SetOp::Remove),
            Just(SetOp::Clear),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn bitset_behaves_like_hashset(ops in arb_set_ops(150)) {
        let mut bs = FixedBitSet::new(150);
        let mut model = std::collections::BTreeSet::new();
        for op in ops {
            match op {
                SetOp::Insert(i) => {
                    bs.insert(i);
                    model.insert(i);
                }
                SetOp::Remove(i) => {
                    bs.remove(i);
                    model.remove(&i);
                }
                SetOp::Clear => {
                    bs.clear();
                    model.clear();
                }
            }
        }
        prop_assert_eq!(bs.count_ones(), model.len());
        prop_assert_eq!(bs.ones().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
        for i in 0..150 {
            prop_assert_eq!(bs.contains(i), model.contains(&i));
        }
    }
}

// ----------------------------------------------------------------------
// DynGraph vs. a naive edge-list model
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum GraphOp {
    AddEdge(u32, u32),
    RemoveEdge(usize),
    RemoveVertex(u32),
}

fn arb_graph_ops(n: u32) -> impl Strategy<Value = Vec<GraphOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0..n, 0..n).prop_map(|(a, b)| GraphOp::AddEdge(a, b)),
            2 => any::<proptest::sample::Index>().prop_map(|i| GraphOp::RemoveEdge(i.index(64))),
            1 => (0..n).prop_map(GraphOp::RemoveVertex),
        ],
        0..120,
    )
}

proptest! {
    #[test]
    fn dyngraph_matches_naive_model(ops in arb_graph_ops(12)) {
        let n = 12usize;
        let mut g: DynGraph<u32> = DynGraph::with_vertices(n);
        // model: edge id -> (from, to, alive); vertex alive flags
        let mut edges: Vec<(u32, u32, bool)> = Vec::new();
        let mut vertex_alive = vec![true; n];
        for op in ops {
            match op {
                GraphOp::AddEdge(a, b) => {
                    if vertex_alive[a as usize] && vertex_alive[b as usize] {
                        let id = g.add_edge(a, b, edges.len() as u32);
                        prop_assert_eq!(id as usize, edges.len());
                        edges.push((a, b, true));
                    }
                }
                GraphOp::RemoveEdge(i) => {
                    if !edges.is_empty() {
                        let i = i % edges.len();
                        g.remove_edge(i as u32);
                        edges[i].2 = false;
                    }
                }
                GraphOp::RemoveVertex(v) => {
                    g.remove_vertex(v);
                    if vertex_alive[v as usize] {
                        vertex_alive[v as usize] = false;
                        for e in edges.iter_mut() {
                            if e.0 == v || e.1 == v {
                                e.2 = false;
                            }
                        }
                    }
                }
            }
        }
        // counts
        let alive = edges.iter().filter(|e| e.2).count();
        prop_assert_eq!(g.alive_edge_count(), alive);
        prop_assert_eq!(
            g.alive_vertex_count(),
            vertex_alive.iter().filter(|&&b| b).count()
        );
        // adjacency agreement per vertex
        for v in 0..n as u32 {
            let mut got_out: Vec<u32> = g.out_edges(v).collect();
            got_out.sort_unstable();
            let mut want_out: Vec<u32> = edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.2 && e.0 == v)
                .map(|(i, _)| i as u32)
                .collect();
            want_out.sort_unstable();
            prop_assert_eq!(got_out, want_out, "out edges of {}", v);
            let mut got_in: Vec<u32> = g.in_edges(v).collect();
            got_in.sort_unstable();
            let mut want_in: Vec<u32> = edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.2 && e.1 == v)
                .map(|(i, _)| i as u32)
                .collect();
            want_in.sort_unstable();
            prop_assert_eq!(got_in, want_in, "in edges of {}", v);
            prop_assert_eq!(g.out_degree(v), g.out_edges(v).count());
            prop_assert_eq!(g.in_degree(v), g.in_edges(v).count());
        }
    }
}

// ----------------------------------------------------------------------
// Euler-tour LCA vs. naive parent walking
// ----------------------------------------------------------------------

fn naive_lca(tree: &Tree<u32>, mut a: u32, mut b: u32, depths: &[u32]) -> u32 {
    while depths[a as usize] > depths[b as usize] {
        a = tree.parent(a).unwrap();
    }
    while depths[b as usize] > depths[a as usize] {
        b = tree.parent(b).unwrap();
    }
    while a != b {
        a = tree.parent(a).unwrap();
        b = tree.parent(b).unwrap();
    }
    a
}

proptest! {
    #[test]
    fn ancestry_matches_naive_lca(parents in proptest::collection::vec(any::<proptest::sample::Index>(), 1..60)) {
        // random tree: node i+1 attaches to a random earlier node
        let mut tree: Tree<u32> = Tree::new();
        let root = tree.add_node(0);
        for (i, p) in parents.iter().enumerate() {
            let parent = p.index(i + 1) as u32;
            tree.add_child(parent, i as u32 + 1);
        }
        let anc = Ancestry::build(&tree, root);
        let depths = tree.depths(root);
        let n = tree.len() as u32;
        for a in 0..n {
            for b in 0..n {
                let expected = naive_lca(&tree, a, b, &depths);
                prop_assert_eq!(anc.lca(a, b), expected, "lca({}, {})", a, b);
                prop_assert_eq!(
                    anc.is_ancestor(a, b),
                    expected == a,
                    "is_ancestor({}, {})", a, b
                );
            }
        }
    }
}

// ----------------------------------------------------------------------
// OrderList vs. a Vec model under mixed insertions
// ----------------------------------------------------------------------

proptest! {
    #[test]
    fn orderlist_matches_vec_model(ops in proptest::collection::vec((any::<proptest::sample::Index>(), any::<bool>()), 1..300)) {
        let mut list = OrderList::new();
        let mut model = vec![list.push_back()];
        for (idx, after) in ops {
            let pos = idx.index(model.len());
            let id = if after {
                let id = list.insert_after(model[pos]);
                model.insert(pos + 1, id);
                id
            } else {
                let id = list.insert_before(model[pos]);
                model.insert(pos, id);
                id
            };
            let _ = id;
        }
        prop_assert_eq!(list.iter_order().collect::<Vec<_>>(), model.clone());
        // random order probes
        for k in (0..model.len()).step_by(7) {
            for l in (0..model.len()).step_by(11) {
                prop_assert_eq!(list.before(model[k], model[l]), k < l);
            }
        }
    }
}
