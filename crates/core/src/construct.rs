//! `ConstructPlan` / `ComputeContext` — recovering the execution plan `T_R`
//! and every vertex's context from a bare run graph in linear time
//! (paper §5, Algorithms 4 and 5).
//!
//! The run is loaded into a [`DynGraph`] and contracted bottom-up along the
//! fork/loop hierarchy `T_G`:
//!
//! 1. **Seeds.** Copies of each *leaf* subgraph `H` are found from copies of
//!    its leader edge (any member edge; run edges are matched by endpoint
//!    origins). Copies of an *inner* subgraph are seeded by the group
//!    special edge of a designated candidate child, produced one level
//!    deeper.
//! 2. **SearchNodes.** From a seed, an undirected DFS collects the copy's
//!    edges. For a fork copy the search prunes at vertices whose origin is
//!    the fork's source/sink (the internal vertices are connected — Lemma
//!    5.1); for a loop copy the source explores only out-edges and the sink
//!    only in-edges (completeness keeps the search inside the copy).
//! 3. **Contraction.** Each copy becomes a `+` plan node and is replaced by
//!    a *special* copy edge; parallel fork copies are then merged into an
//!    `F−` group (keyed by `(H, source, sink)`), and serial loop copies are
//!    chained through their connector edges into an `L−` group, leaving one
//!    group special edge per execution group.
//! 4. **Contexts.** A visited vertex receives the current `+` node as its
//!    context if it has none yet and is not the source/sink of a fork copy
//!    — processing deepest copies first makes this equivalent to
//!    Definition 9.
//!
//! Every step cross-checks the collected copy against the specification's
//! quotient structure, so a run that does not conform to the specification
//! produces a precise [`ConstructError`] instead of wrong labels.

use wfp_graph::fxhash::FxHashMap;
use wfp_graph::traversal::VisitMap;
use wfp_graph::DynGraph;
use wfp_model::hierarchy::Leader;
use wfp_model::plan::{ExecutionPlan, PlanBuilder, PlanError, PlanNodeKind};
use wfp_model::{ModuleId, Run, RunVertexId, SpecEdgeId, Specification, SubgraphId, SubgraphKind};

/// What exactly made a run non-conforming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Issue {
    /// A loop connector edge appeared inside a copy's body.
    ConnectorInCopy,
    /// A transient copy special edge leaked between copies (internal
    /// inconsistency or malformed run).
    TransientEdge,
    /// The same quotient piece (plain edge or child group) appeared twice in
    /// one copy.
    DuplicatePiece,
    /// An edge or child group inside a copy belongs to a different part of
    /// the specification.
    WrongPiece,
    /// A child group was claimed by two different copies.
    GroupAlreadyPlaced,
    /// Two vertices of one copy share an origin module.
    DuplicateOrigin,
    /// A copy is missing its source or sink.
    MissingTerminal,
    /// A copy has the wrong number of edges for its quotient.
    EdgeCount {
        /// Edges the quotient prescribes.
        expected: usize,
        /// Edges actually collected.
        found: usize,
    },
    /// A copy has the wrong number of vertices for its quotient.
    VertexCount {
        /// Vertices the quotient prescribes.
        expected: usize,
        /// Vertices actually collected.
        found: usize,
    },
    /// The serial chain of a loop group is malformed.
    BrokenChain,
    /// A vertex whose origin is dominated by some subgraph was never claimed
    /// by any copy.
    OrphanVertex,
    /// A leader seed edge was already consumed (overlapping copies).
    DeadSeed,
}

/// Errors from plan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstructError {
    /// A run edge's endpoint origins match neither a specification edge nor
    /// a loop connector `(t(L), s(L))`.
    ForeignEdge {
        /// Origin of the edge tail.
        from: ModuleId,
        /// Origin of the edge head.
        to: ModuleId,
    },
    /// The run does not conform to the specification's fork/loop structure.
    NonConforming {
        /// The subgraph whose copy failed validation (`None`: the root).
        subgraph: Option<SubgraphId>,
        /// The precise failure.
        issue: Issue,
    },
    /// The assembled plan failed its shape validation (internal error or a
    /// deeply malformed run).
    Plan(PlanError),
}

impl std::fmt::Display for ConstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstructError::ForeignEdge { from, to } => {
                write!(f, "run edge with origins ({from}, {to}) matches no specification edge or loop connector")
            }
            ConstructError::NonConforming { subgraph, issue } => match subgraph {
                Some(sg) => write!(f, "run does not conform at subgraph {sg}: {issue:?}"),
                None => write!(f, "run does not conform at the top level: {issue:?}"),
            },
            ConstructError::Plan(e) => write!(f, "plan assembly failed: {e}"),
        }
    }
}

impl std::error::Error for ConstructError {}

impl From<PlanError> for ConstructError {
    fn from(e: PlanError) -> Self {
        ConstructError::Plan(e)
    }
}

/// A sorted flat-array map over vertex pairs: packed `u64` keys probed by
/// binary search. Plan construction classifies every run edge through two
/// of these; compared with a hash map the lookup does no hashing, the
/// storage is two dense arrays, and building is one sort — `O(log m_G)`
/// probes over a ~200-edge specification stay within one cache line.
struct PairTable<T> {
    keys: Vec<u64>,
    vals: Vec<T>,
}

#[inline]
fn pair_key(u: u32, v: u32) -> u64 {
    ((u as u64) << 32) | v as u64
}

impl<T: Copy> PairTable<T> {
    /// Builds the table; when a pair repeats, the last entry wins (matching
    /// hash-map insertion semantics).
    fn build(pairs: impl Iterator<Item = ((u32, u32), T)>) -> Self {
        let mut kv: Vec<(u64, T)> = pairs.map(|((u, v), t)| (pair_key(u, v), t)).collect();
        kv.sort_by_key(|&(k, _)| k); // stable: equal keys keep insertion order
        kv.reverse();
        kv.dedup_by_key(|&mut (k, _)| k); // keeps the last-inserted entry
        kv.reverse();
        PairTable {
            keys: kv.iter().map(|&(k, _)| k).collect(),
            vals: kv.into_iter().map(|(_, t)| t).collect(),
        }
    }

    #[inline]
    fn get(&self, (u, v): (u32, u32)) -> Option<T> {
        self.keys
            .binary_search(&pair_key(u, v))
            .ok()
            .map(|i| self.vals[i])
    }
}

/// Edge payload inside the working multigraph.
#[derive(Clone, Copy, Debug)]
enum Tag {
    /// A copy of a specification edge.
    Plain(SpecEdgeId),
    /// A serial-composition connector of loop `sg` (origins `(t, s)`).
    Connector(SubgraphId),
    /// Transient: a contracted single copy, owned by `+` node `.0`.
    Copy(u32, SubgraphId),
    /// A contracted execution group, owned by `−` node `.0`.
    Group(u32, SubgraphId),
}

/// Statistics reported alongside a constructed plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstructStats {
    /// Special (copy + group) edges created during contraction; the paper's
    /// `m_sp ≤ |V(T_R)|` bound (Lemma 5.2).
    pub special_edges: usize,
    /// Copies (`+` nodes below the root) identified.
    pub copies: usize,
    /// Execution groups (`−` nodes) identified.
    pub groups: usize,
}

/// Constructs the execution plan and context function for `run`.
///
/// Linear in `|V(R)| + |E(R)|` for a fixed specification (Lemma 5.2).
pub fn construct_plan(
    spec: &Specification,
    run: &Run,
) -> Result<ExecutionPlan, ConstructError> {
    construct_plan_with_stats(spec, run).map(|(plan, _)| plan)
}

/// [`construct_plan`] plus contraction statistics.
pub fn construct_plan_with_stats(
    spec: &Specification,
    run: &Run,
) -> Result<(ExecutionPlan, ConstructStats), ConstructError> {
    Construction::new(spec, run)?.execute()
}

struct Construction<'a> {
    spec: &'a Specification,
    run: &'a Run,
    g: DynGraph<Tag>,
    plan: PlanBuilder,
    stats: ConstructStats,
    /// seeds per hierarchy level: (dyn edge id, subgraph)
    leader_sets: Vec<Vec<(u32, SubgraphId)>>,
    /// subgraphs whose group edges seed their parent (Leader::Child targets)
    is_candidate: Vec<bool>,
    level_of_sg: Vec<usize>,
    /// expected quotient sizes per hierarchy node
    expected_edges: Vec<usize>,
    expected_vertices: Vec<usize>,
    // reusable per-copy scratch
    v_seen: VisitMap,
    e_seen: VisitMap,
    se_seen: VisitMap,
    sg_seen: VisitMap,
    ori_seen: VisitMap,
    stack: Vec<u32>,
    edge_buf: Vec<u32>,
    copy_edges: Vec<u32>,
    copy_vertices: Vec<u32>,
    copy_children: Vec<u32>,
}

/// A contracted copy awaiting grouping: `(+ node, subgraph, source vertex,
/// sink vertex, copy special edge)`.
#[derive(Clone, Copy)]
struct PendingCopy {
    plus: u32,
    sg: SubgraphId,
    s: u32,
    t: u32,
    edge: u32,
}

impl<'a> Construction<'a> {
    fn new(spec: &'a Specification, run: &'a Run) -> Result<Self, ConstructError> {
        let hierarchy = spec.hierarchy();
        let n_r = run.vertex_count();

        // ---- static lookup tables -------------------------------------
        let spec_edge_of_pair: PairTable<SpecEdgeId> = PairTable::build(spec.edge_ids().map(|e| {
            let (u, v) = spec.edge(e);
            ((u.raw(), v.raw()), e)
        }));
        let connector_of_pair: PairTable<SubgraphId> = PairTable::build(
            spec.subgraphs()
                .filter(|(_, sg)| sg.kind == SubgraphKind::Loop)
                .map(|(id, sg)| ((sg.sink.raw(), sg.source.raw()), id)),
        );
        let mut leaf_leader: Vec<Option<SubgraphId>> = vec![None; spec.channel_count()];
        let mut is_candidate = vec![false; spec.subgraph_count()];
        let mut level_of_sg = vec![0usize; spec.subgraph_count()];
        for (id, _) in spec.subgraphs() {
            level_of_sg[id.index()] = hierarchy.level_of_node(hierarchy.node_of(id)) as usize;
            match hierarchy.leader(id) {
                Leader::Edge(e) => leaf_leader[e.index()] = Some(id),
                Leader::Child(c) => is_candidate[c.index()] = true,
            }
        }

        // Expected quotient sizes per hierarchy node.
        let node_count = hierarchy.size();
        let mut expected_edges = vec![0usize; node_count];
        let mut expected_vertices = vec![0usize; node_count];
        for node in 0..node_count as u32 {
            let children: Vec<SubgraphId> = hierarchy.child_subgraphs(node).collect();
            let mut removed = 0usize;
            for &c in &children {
                let csg = spec.subgraph(c);
                removed += match csg.kind {
                    SubgraphKind::Fork => csg.internal.len(),
                    SubgraphKind::Loop => csg.vertices.len() - 2,
                };
            }
            let total_vertices = match hierarchy.subgraph_at(node) {
                Some(sg) => spec.subgraph(sg).vertices.len(),
                None => spec.module_count(),
            };
            expected_vertices[node as usize] = total_vertices - removed;
            expected_edges[node as usize] =
                hierarchy.plain_edges(node).len() + children.len();
        }

        // ---- load the run, classify every edge, collect leaf seeds ----
        let depth = hierarchy.max_depth();
        let mut leader_sets: Vec<Vec<(u32, SubgraphId)>> = vec![Vec::new(); depth + 1];
        let mut g: DynGraph<Tag> = DynGraph::with_vertices(n_r);
        for re in run.edge_ids() {
            let (u, v) = run.edge(re);
            let pair = (run.origin(u).raw(), run.origin(v).raw());
            let tag = if let Some(se) = spec_edge_of_pair.get(pair) {
                Tag::Plain(se)
            } else if let Some(sg) = connector_of_pair.get(pair) {
                Tag::Connector(sg)
            } else {
                return Err(ConstructError::ForeignEdge {
                    from: ModuleId(pair.0),
                    to: ModuleId(pair.1),
                });
            };
            let eid = g.add_edge(u.raw(), v.raw(), tag);
            if let Tag::Plain(se) = tag {
                if let Some(sg) = leaf_leader[se.index()] {
                    leader_sets[level_of_sg[sg.index()]].push((eid, sg));
                }
            }
        }

        Ok(Construction {
            spec,
            run,
            g,
            plan: PlanBuilder::with_vertex_count(n_r),
            stats: ConstructStats::default(),
            leader_sets,
            is_candidate,
            level_of_sg,
            expected_edges,
            expected_vertices,
            v_seen: VisitMap::new(n_r),
            e_seen: VisitMap::new(0),
            se_seen: VisitMap::new(spec.channel_count()),
            sg_seen: VisitMap::new(spec.subgraph_count()),
            ori_seen: VisitMap::new(spec.module_count()),
            stack: Vec::new(),
            edge_buf: Vec::new(),
            copy_edges: Vec::new(),
            copy_vertices: Vec::new(),
            copy_children: Vec::new(),
        })
    }

    fn fail(&self, sg: Option<SubgraphId>, issue: Issue) -> ConstructError {
        ConstructError::NonConforming { subgraph: sg, issue }
    }

    fn execute(mut self) -> Result<(ExecutionPlan, ConstructStats), ConstructError> {
        let depth = self.spec.hierarchy().max_depth();
        // Bottom-up over subgraph levels d, d-1, ..., 2 (level 1 = root).
        for level in (2..=depth).rev() {
            let seeds = std::mem::take(&mut self.leader_sets[level]);
            let mut pending: Vec<PendingCopy> = Vec::with_capacity(seeds.len());
            for (seed, sg) in seeds {
                pending.push(self.contract_copy(sg, seed)?);
            }
            self.group_level(&pending)?;
        }
        self.finish_root()
    }

    // ---------------- Phase A: one copy (Algorithm 5) ----------------

    /// Collects the copy of `sg` seeded by `seed`, validates it against the
    /// quotient, assigns contexts, and contracts it to a copy special edge.
    fn contract_copy(&mut self, sg: SubgraphId, seed: u32) -> Result<PendingCopy, ConstructError> {
        if !self.g.edge_alive(seed) {
            return Err(self.fail(Some(sg), Issue::DeadSeed));
        }
        let node = self.spec.hierarchy().node_of(sg);
        let sub = self.spec.subgraph(sg);
        let is_fork = sub.kind == SubgraphKind::Fork;
        let (s_mod, t_mod) = (sub.source, sub.sink);

        self.v_seen.reset();
        self.e_seen.grow(self.g.edge_slots());
        self.e_seen.reset();
        self.se_seen.reset();
        self.sg_seen.reset();
        self.ori_seen.reset();
        self.stack.clear();
        self.copy_edges.clear();
        self.copy_vertices.clear();
        self.copy_children.clear();

        let plus = self.plan.add_node(PlanNodeKind::Plus(sg));
        self.stats.copies += 1;

        let mut source: Option<u32> = None;
        let mut sink: Option<u32> = None;

        // The seed edge and its endpoints start the search.
        self.e_seen.visit(seed);
        self.take_edge(seed, sg, node)?;
        let (a, b) = self.g.edge(seed);
        for v in [a, b] {
            self.enter_vertex(v, sg, s_mod, t_mod, &mut source, &mut sink)?;
        }

        while let Some(v) = self.stack.pop() {
            let origin = self.run.origin(RunVertexId(v));
            let at_source = origin == s_mod;
            let at_sink = origin == t_mod;
            if is_fork && (at_source || at_sink) {
                continue; // prune at fork terminals (Alg. 5 line 5)
            }
            // Loop terminals: source explores out-edges only, sink in-edges
            // only (Alg. 5 line 8); internal vertices explore everything.
            let explore_out = !at_sink;
            let explore_in = !at_source;
            // Reusable buffer: incident edges are snapshotted before the
            // recursive bookkeeping mutates the graph-side scratch.
            let mut buf = std::mem::take(&mut self.edge_buf);
            buf.clear();
            if explore_out {
                buf.extend(self.g.out_edges(v));
            }
            if explore_in {
                buf.extend(self.g.in_edges(v));
            }
            for &e in &buf {
                self.follow_edge(e, v, sg, node, s_mod, t_mod, &mut source, &mut sink)?;
            }
            self.edge_buf = buf;
        }

        let (s, t) = match (source, sink) {
            (Some(s), Some(t)) => (s, t),
            _ => return Err(self.fail(Some(sg), Issue::MissingTerminal)),
        };

        // Quotient conformance: piece identities were checked on the fly;
        // the counts pin the copy to exactly one instance of each piece.
        let expected_e = self.expected_edges[node as usize];
        if self.copy_edges.len() != expected_e {
            return Err(self.fail(
                Some(sg),
                Issue::EdgeCount {
                    expected: expected_e,
                    found: self.copy_edges.len(),
                },
            ));
        }
        let expected_v = self.expected_vertices[node as usize];
        if self.copy_vertices.len() != expected_v {
            return Err(self.fail(
                Some(sg),
                Issue::VertexCount {
                    expected: expected_v,
                    found: self.copy_vertices.len(),
                },
            ));
        }

        // Contexts (Definition 9): deepest-first processing means "first
        // writer wins" realizes the deepest dominating + node.
        for i in 0..self.copy_vertices.len() {
            let v = self.copy_vertices[i];
            let origin = self.run.origin(RunVertexId(v));
            if is_fork && (origin == s_mod || origin == t_mod) {
                continue;
            }
            if !self.plan.context_is_set(RunVertexId(v)) {
                self.plan.set_context(RunVertexId(v), plus);
            }
        }

        // Attach child groups below this copy.
        for i in 0..self.copy_children.len() {
            let minus = self.copy_children[i];
            if self.plan.has_parent(minus) {
                return Err(self.fail(Some(sg), Issue::GroupAlreadyPlaced));
            }
            self.plan.link(minus, plus);
        }

        // Contract: delete the copy's edges, insert the copy special edge.
        for i in 0..self.copy_edges.len() {
            let e = self.copy_edges[i];
            self.g.remove_edge(e);
        }
        let edge = self.g.add_edge(s, t, Tag::Copy(plus, sg));
        self.stats.special_edges += 1;

        Ok(PendingCopy {
            plus,
            sg,
            s,
            t,
            edge,
        })
    }

    /// Validates and records one edge of the current copy.
    fn take_edge(&mut self, e: u32, sg: SubgraphId, node: u32) -> Result<(), ConstructError> {
        match *self.g.data(e) {
            Tag::Plain(se) => {
                let owner = self.spec.hierarchy().deepest_for_edge(se);
                let owner_node = owner.map(|o| self.spec.hierarchy().node_of(o));
                if owner_node != Some(node) {
                    return Err(self.fail(Some(sg), Issue::WrongPiece));
                }
                if !self.se_seen.visit(se.raw()) {
                    return Err(self.fail(Some(sg), Issue::DuplicatePiece));
                }
            }
            Tag::Connector(_) => return Err(self.fail(Some(sg), Issue::ConnectorInCopy)),
            Tag::Copy(..) => return Err(self.fail(Some(sg), Issue::TransientEdge)),
            Tag::Group(minus, child) => {
                if self.spec.hierarchy().parent_subgraph(child) != Some(sg) {
                    return Err(self.fail(Some(sg), Issue::WrongPiece));
                }
                if !self.sg_seen.visit(child.raw()) {
                    return Err(self.fail(Some(sg), Issue::DuplicatePiece));
                }
                self.copy_children.push(minus);
            }
        }
        self.copy_edges.push(e);
        Ok(())
    }

    /// Records a newly reached vertex of the current copy and queues it.
    fn enter_vertex(
        &mut self,
        v: u32,
        sg: SubgraphId,
        s_mod: ModuleId,
        t_mod: ModuleId,
        source: &mut Option<u32>,
        sink: &mut Option<u32>,
    ) -> Result<(), ConstructError> {
        if !self.v_seen.visit(v) {
            return Ok(());
        }
        let origin = self.run.origin(RunVertexId(v));
        if !self.ori_seen.visit(origin.raw()) {
            return Err(self.fail(Some(sg), Issue::DuplicateOrigin));
        }
        if origin == s_mod {
            *source = Some(v);
        } else if origin == t_mod {
            *sink = Some(v);
        }
        self.copy_vertices.push(v);
        self.stack.push(v);
        Ok(())
    }

    /// Handles one incident edge during the copy DFS.
    #[allow(clippy::too_many_arguments)]
    fn follow_edge(
        &mut self,
        e: u32,
        from: u32,
        sg: SubgraphId,
        node: u32,
        s_mod: ModuleId,
        t_mod: ModuleId,
        source: &mut Option<u32>,
        sink: &mut Option<u32>,
    ) -> Result<(), ConstructError> {
        self.e_seen.grow(self.g.edge_slots());
        if !self.e_seen.visit(e) {
            return Ok(());
        }
        self.take_edge(e, sg, node)?;
        let (a, b) = self.g.edge(e);
        let other = if a == from { b } else { a };
        self.enter_vertex(other, sg, s_mod, t_mod, source, sink)
    }

    // ---------------- Phase B: grouping (Algorithm 4, lines 20–33) ----

    fn group_level(&mut self, pending: &[PendingCopy]) -> Result<(), ConstructError> {
        let mut fork_groups: FxHashMap<(SubgraphId, u32, u32), u32> = FxHashMap::default();
        for &copy in pending {
            if self.plan.has_parent(copy.plus) {
                continue; // already collected into a loop chain
            }
            match self.spec.subgraph(copy.sg).kind {
                SubgraphKind::Fork => self.group_fork_copy(copy, &mut fork_groups)?,
                SubgraphKind::Loop => self.group_loop_chain(copy)?,
            }
        }
        Ok(())
    }

    fn group_fork_copy(
        &mut self,
        copy: PendingCopy,
        fork_groups: &mut FxHashMap<(SubgraphId, u32, u32), u32>,
    ) -> Result<(), ConstructError> {
        match fork_groups.entry((copy.sg, copy.s, copy.t)) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                // A parallel sibling: merge into the existing group and drop
                // the redundant parallel special edge.
                let minus = *slot.get();
                self.plan.link(copy.plus, minus);
                self.g.remove_edge(copy.edge);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                let minus = self.plan.add_node(PlanNodeKind::Minus(copy.sg));
                self.stats.groups += 1;
                self.plan.link(copy.plus, minus);
                slot.insert(minus);
                // The copy edge is promoted to the group's special edge.
                *self.g.data_mut(copy.edge) = Tag::Group(minus, copy.sg);
                self.seed_parent(copy.sg, copy.edge);
            }
        }
        Ok(())
    }

    fn group_loop_chain(&mut self, copy: PendingCopy) -> Result<(), ConstructError> {
        let sg = copy.sg;
        // Walk backward to the head of the serial chain.
        let mut head = copy;
        loop {
            match self.connector_into(head.s, sg)? {
                None => break,
                Some(conn) => {
                    let (prev_t, _) = self.g.edge(conn);
                    head = self.copy_at_sink(prev_t, sg)?;
                }
            }
        }
        // Walk forward collecting the ordered members and their connectors.
        let mut members = vec![head];
        let mut connectors = Vec::new();
        let mut cur = head;
        loop {
            match self.connector_out_of(cur.t, sg)? {
                None => break,
                Some(conn) => {
                    connectors.push(conn);
                    let (_, next_s) = self.g.edge(conn);
                    cur = self.copy_at_source(next_s, sg)?;
                    members.push(cur);
                }
            }
        }

        let minus = self.plan.add_node(PlanNodeKind::Minus(sg));
        self.stats.groups += 1;
        for m in &members {
            if self.plan.has_parent(m.plus) {
                return Err(self.fail(Some(sg), Issue::BrokenChain));
            }
            self.plan.link(m.plus, minus);
        }
        // Contract the chain: delete copy edges, connectors and interior
        // boundary vertices, then insert the group special edge.
        for m in &members {
            self.g.remove_edge(m.edge);
        }
        for &c in &connectors {
            self.g.remove_edge(c);
        }
        let first = members[0];
        let last = *members.last().expect("nonempty chain");
        for (i, m) in members.iter().enumerate() {
            if i > 0 {
                self.g.remove_vertex(m.s);
            }
            if i + 1 < members.len() {
                self.g.remove_vertex(m.t);
            }
        }
        let edge = self.g.add_edge(first.s, last.t, Tag::Group(minus, sg));
        self.stats.special_edges += 1;
        self.seed_parent(sg, edge);
        Ok(())
    }

    /// The loop connector of `sg` entering vertex `v`, if any (strictly at
    /// most one).
    fn connector_into(&self, v: u32, sg: SubgraphId) -> Result<Option<u32>, ConstructError> {
        let mut found = None;
        for e in self.g.in_edges(v) {
            if let Tag::Connector(c) = *self.g.data(e) {
                if c == sg {
                    if found.is_some() {
                        return Err(self.fail(Some(sg), Issue::BrokenChain));
                    }
                    found = Some(e);
                }
            }
        }
        Ok(found)
    }

    /// The loop connector of `sg` leaving vertex `v`, if any.
    fn connector_out_of(&self, v: u32, sg: SubgraphId) -> Result<Option<u32>, ConstructError> {
        let mut found = None;
        for e in self.g.out_edges(v) {
            if let Tag::Connector(c) = *self.g.data(e) {
                if c == sg {
                    if found.is_some() {
                        return Err(self.fail(Some(sg), Issue::BrokenChain));
                    }
                    found = Some(e);
                }
            }
        }
        Ok(found)
    }

    /// The contracted copy of `sg` whose sink is `t` (the unique in-edge of
    /// `t` must be its copy special edge).
    fn copy_at_sink(&self, t: u32, sg: SubgraphId) -> Result<PendingCopy, ConstructError> {
        let e = self
            .g
            .first_in(t)
            .ok_or_else(|| self.fail(Some(sg), Issue::BrokenChain))?;
        match *self.g.data(e) {
            Tag::Copy(plus, owner) if owner == sg => {
                let (s, _) = self.g.edge(e);
                Ok(PendingCopy {
                    plus,
                    sg,
                    s,
                    t,
                    edge: e,
                })
            }
            _ => Err(self.fail(Some(sg), Issue::BrokenChain)),
        }
    }

    /// The contracted copy of `sg` whose source is `s`.
    fn copy_at_source(&self, s: u32, sg: SubgraphId) -> Result<PendingCopy, ConstructError> {
        let e = self
            .g
            .first_out(s)
            .ok_or_else(|| self.fail(Some(sg), Issue::BrokenChain))?;
        match *self.g.data(e) {
            Tag::Copy(plus, owner) if owner == sg => {
                let (_, t) = self.g.edge(e);
                Ok(PendingCopy {
                    plus,
                    sg,
                    s,
                    t,
                    edge: e,
                })
            }
            _ => Err(self.fail(Some(sg), Issue::BrokenChain)),
        }
    }

    /// If `sg` is the designated candidate of its parent, its group edges
    /// seed the parent's copies one level up.
    fn seed_parent(&mut self, sg: SubgraphId, group_edge: u32) {
        if !self.is_candidate[sg.index()] {
            return;
        }
        let parent = self
            .spec
            .hierarchy()
            .parent_subgraph(sg)
            .expect("candidate children always have subgraph parents");
        let level = self.level_of_sg[parent.index()];
        self.leader_sets[level].push((group_edge, parent));
    }

    // ---------------- Root (level 1) ----------------------------------

    fn finish_root(mut self) -> Result<(ExecutionPlan, ConstructStats), ConstructError> {
        let hierarchy = self.spec.hierarchy();
        let root_hnode = hierarchy.root();
        let root = self.plan.add_node(PlanNodeKind::Root);

        self.se_seen.reset();
        self.sg_seen.reset();
        let mut found_edges = 0usize;
        let alive: Vec<u32> = self.g.alive_edges().collect();
        for e in alive {
            match *self.g.data(e) {
                Tag::Plain(se) => {
                    if hierarchy.deepest_for_edge(se).is_some() {
                        return Err(self.fail(None, Issue::WrongPiece));
                    }
                    if !self.se_seen.visit(se.raw()) {
                        return Err(self.fail(None, Issue::DuplicatePiece));
                    }
                }
                Tag::Connector(_) => return Err(self.fail(None, Issue::ConnectorInCopy)),
                Tag::Copy(..) => return Err(self.fail(None, Issue::TransientEdge)),
                Tag::Group(minus, sg) => {
                    if hierarchy.parent_subgraph(sg).is_some() {
                        return Err(self.fail(None, Issue::WrongPiece));
                    }
                    if !self.sg_seen.visit(sg.raw()) {
                        return Err(self.fail(None, Issue::DuplicatePiece));
                    }
                    if self.plan.has_parent(minus) {
                        return Err(self.fail(None, Issue::GroupAlreadyPlaced));
                    }
                    self.plan.link(minus, root);
                }
            }
            found_edges += 1;
        }
        let expected = self.expected_edges[root_hnode as usize];
        if found_edges != expected {
            return Err(self.fail(
                None,
                Issue::EdgeCount {
                    expected,
                    found: found_edges,
                },
            ));
        }

        // Remaining vertices belong to the root context; their origins must
        // not be dominated by any subgraph (otherwise some copy should have
        // claimed them).
        for v in self.run.vertices() {
            if !self.plan.context_is_set(v) {
                if hierarchy.dominator_of_vertex(self.run.origin(v)).is_some() {
                    return Err(self.fail(None, Issue::OrphanVertex));
                }
                self.plan.set_context(v, root);
            }
        }

        let plan = self.plan.finish(self.run.vertex_count())?;
        Ok((plan, self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_model::fixtures::{paper_run, paper_spec, paper_subgraph, paper_vertex};
    use wfp_model::RunBuilder;

    fn context_names(
        spec: &Specification,
        run: &Run,
        plan: &ExecutionPlan,
    ) -> FxHashMap<String, u32> {
        let names = run.numbered_names(spec);
        names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), plan.context(RunVertexId(i as u32))))
            .collect()
    }

    #[test]
    fn paper_plan_shape_matches_figure_7() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let (plan, stats) = construct_plan_with_stats(&spec, &run).unwrap();
        // Figure 7: 17 nodes (11 plus incl. root, 6 minus)
        assert_eq!(plan.node_count(), 17);
        assert_eq!(plan.plus_node_count(), 11);
        // Figure 8/9: two F1+ copies are empty; 9 nonempty + nodes
        assert_eq!(plan.nonempty_plus_count(), 9);
        assert_eq!(stats.copies, 10); // all + nodes except the root
        assert_eq!(stats.groups, 6);
        // Lemma 4.2
        assert!(plan.node_count() <= 4 * run.edge_count());
    }

    #[test]
    fn paper_contexts_match_figure_8() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let plan = construct_plan(&spec, &run).unwrap();
        let ctx = context_names(&spec, &run, &plan);
        // root context: {a1, d1, h1}
        assert_eq!(ctx["a1"], plan.root());
        assert_eq!(ctx["d1"], plan.root());
        assert_eq!(ctx["h1"], plan.root());
        // same-copy pairs
        assert_eq!(ctx["b1"], ctx["c1"]);
        assert_eq!(ctx["b2"], ctx["c2"]);
        assert_eq!(ctx["b3"], ctx["c3"]);
        assert_eq!(ctx["e1"], ctx["g1"]);
        assert_eq!(ctx["e2"], ctx["g2"]);
        // distinct copies
        assert_ne!(ctx["b1"], ctx["b2"]);
        assert_ne!(ctx["b1"], ctx["b3"]);
        assert_ne!(ctx["e1"], ctx["e2"]);
        assert_ne!(ctx["f2"], ctx["f3"]);
        assert_ne!(ctx["f1"], ctx["f2"]);
        // kinds: f-vertices live in F2+ copies, b/c in L2+ copies
        let l2 = paper_subgraph(&spec, "L2");
        let f2 = paper_subgraph(&spec, "F2");
        let l1 = paper_subgraph(&spec, "L1");
        assert_eq!(plan.kind(ctx["b1"]), PlanNodeKind::Plus(l2));
        assert_eq!(plan.kind(ctx["f3"]), PlanNodeKind::Plus(f2));
        assert_eq!(plan.kind(ctx["e2"]), PlanNodeKind::Plus(l1));
    }

    #[test]
    fn paper_loop_groups_are_ordered() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let plan = construct_plan(&spec, &run).unwrap();
        let ctx = context_names(&spec, &run, &plan);
        // L1-: children ordered [copy(e1,g1), copy(e2,g2)]
        let c1 = ctx["e1"];
        let c2 = ctx["e2"];
        let parent = plan.tree().parent(c1).unwrap();
        assert_eq!(plan.tree().parent(c2), Some(parent));
        let kids = plan.tree().children(parent);
        assert_eq!(kids, &[c1, c2], "serial order must be preserved");
        // L2- inside F1 copy 1: [copy(b1,c1), copy(b2,c2)]
        let b1 = ctx["b1"];
        let b2 = ctx["b2"];
        let l2minus = plan.tree().parent(b1).unwrap();
        assert_eq!(plan.tree().children(l2minus), &[b1, b2]);
    }

    #[test]
    fn plan_is_equivalent_to_hand_built_ground_truth() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let plan = construct_plan(&spec, &run).unwrap();

        // Hand-build Figure 7 with Figure 8's contexts.
        let f1 = paper_subgraph(&spec, "F1");
        let f2 = paper_subgraph(&spec, "F2");
        let l1 = paper_subgraph(&spec, "L1");
        let l2 = paper_subgraph(&spec, "L2");
        let mut b = PlanBuilder::with_vertex_count(run.vertex_count());
        let root = b.add_node(PlanNodeKind::Root);
        let f1m = b.add_node(PlanNodeKind::Minus(f1));
        b.link(f1m, root);
        let f1p_a = b.add_node(PlanNodeKind::Plus(f1));
        let f1p_b = b.add_node(PlanNodeKind::Plus(f1));
        b.link(f1p_a, f1m);
        b.link(f1p_b, f1m);
        let l2m_a = b.add_node(PlanNodeKind::Minus(l2));
        b.link(l2m_a, f1p_a);
        let l2p_1 = b.add_node(PlanNodeKind::Plus(l2));
        let l2p_2 = b.add_node(PlanNodeKind::Plus(l2));
        b.link(l2p_1, l2m_a);
        b.link(l2p_2, l2m_a);
        let l2m_b = b.add_node(PlanNodeKind::Minus(l2));
        b.link(l2m_b, f1p_b);
        let l2p_3 = b.add_node(PlanNodeKind::Plus(l2));
        b.link(l2p_3, l2m_b);
        let l1m = b.add_node(PlanNodeKind::Minus(l1));
        b.link(l1m, root);
        let l1p_1 = b.add_node(PlanNodeKind::Plus(l1));
        let l1p_2 = b.add_node(PlanNodeKind::Plus(l1));
        b.link(l1p_1, l1m);
        b.link(l1p_2, l1m);
        let f2m_1 = b.add_node(PlanNodeKind::Minus(f2));
        b.link(f2m_1, l1p_1);
        let f2p_1 = b.add_node(PlanNodeKind::Plus(f2));
        b.link(f2p_1, f2m_1);
        let f2m_2 = b.add_node(PlanNodeKind::Minus(f2));
        b.link(f2m_2, l1p_2);
        let f2p_2 = b.add_node(PlanNodeKind::Plus(f2));
        let f2p_3 = b.add_node(PlanNodeKind::Plus(f2));
        b.link(f2p_2, f2m_2);
        b.link(f2p_3, f2m_2);

        let v = |name: &str| paper_vertex(&spec, &run, name);
        for (name, node) in [
            ("a1", root),
            ("d1", root),
            ("h1", root),
            ("b1", l2p_1),
            ("c1", l2p_1),
            ("b2", l2p_2),
            ("c2", l2p_2),
            ("b3", l2p_3),
            ("c3", l2p_3),
            ("e1", l1p_1),
            ("g1", l1p_1),
            ("e2", l1p_2),
            ("g2", l1p_2),
            ("f1", f2p_1),
            ("f2", f2p_2),
            ("f3", f2p_3),
        ] {
            b.set_context(v(name), node);
        }
        let expected = b.finish(run.vertex_count()).unwrap();
        assert!(plan.equivalent(&expected, &spec), "plans must match Figure 7/8");
    }

    #[test]
    fn pair_table_lookup_and_last_wins() {
        let t: PairTable<u32> = PairTable::build(
            [((3, 4), 0u32), ((1, 2), 1), ((3, 4), 2), ((0, 7), 3)].into_iter(),
        );
        assert_eq!(t.get((1, 2)), Some(1));
        assert_eq!(t.get((0, 7)), Some(3));
        assert_eq!(t.get((3, 4)), Some(2), "duplicate pairs keep the last entry");
        assert_eq!(t.get((4, 3)), None);
        assert_eq!(t.get((9, 9)), None);
        let empty: PairTable<u32> = PairTable::build(std::iter::empty());
        assert_eq!(empty.get((0, 0)), None);
    }

    #[test]
    fn foreign_edge_is_reported() {
        let spec = paper_spec();
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let mut b = RunBuilder::new();
        let a1 = b.add_vertex(m("a"));
        let h1 = b.add_vertex(m("h"));
        b.add_edge(a1, h1); // (a, h) is not a spec edge
        let run = b.finish(&spec).unwrap();
        match construct_plan(&spec, &run) {
            Err(ConstructError::ForeignEdge { from, to }) => {
                assert_eq!(spec.name(from), "a");
                assert_eq!(spec.name(to), "h");
            }
            other => panic!("expected ForeignEdge, got {other:?}"),
        }
    }

    #[test]
    fn duplicated_edge_inside_copy_is_reported() {
        let spec = paper_spec();
        let run0 = paper_run(&spec);
        // Rebuild the paper run with one extra parallel (b1 -> c1) edge: the
        // L2 copy then contains the (b, c) piece twice.
        let mut b = RunBuilder::new();
        for v in run0.vertices() {
            b.add_vertex(run0.origin(v));
        }
        for e in run0.edge_ids() {
            let (u, v) = run0.edge(e);
            b.add_edge(u, v);
        }
        let b1 = paper_vertex(&spec, &run0, "b1");
        let c1 = paper_vertex(&spec, &run0, "c1");
        b.add_edge(b1, c1);
        let run = b.finish(&spec).unwrap();
        match construct_plan(&spec, &run) {
            Err(ConstructError::NonConforming { issue, .. }) => {
                assert!(
                    matches!(issue, Issue::DuplicatePiece | Issue::EdgeCount { .. }),
                    "got {issue:?}"
                );
            }
            other => panic!("expected NonConforming, got {other:?}"),
        }
    }

    #[test]
    fn cross_copy_edge_is_reported() {
        let spec = paper_spec();
        let run0 = paper_run(&spec);
        // Wire f1 -> g2 (crossing two L1 copies): pair (f, g) is a valid
        // spec edge, but the copies stop conforming.
        let mut b = RunBuilder::new();
        for v in run0.vertices() {
            b.add_vertex(run0.origin(v));
        }
        for e in run0.edge_ids() {
            let (u, v) = run0.edge(e);
            b.add_edge(u, v);
        }
        let f1 = paper_vertex(&spec, &run0, "f1");
        let g2 = paper_vertex(&spec, &run0, "g2");
        b.add_edge(f1, g2);
        let run = b.finish(&spec).unwrap();
        assert!(
            matches!(
                construct_plan(&spec, &run),
                Err(ConstructError::NonConforming { .. })
            ),
            "cross-copy edge must not silently label"
        );
    }

    #[test]
    fn spec_without_subgraphs_yields_root_only_plan() {
        let mut sb = wfp_model::SpecBuilder::new();
        let s = sb.add_module("s").unwrap();
        let x = sb.add_module("x").unwrap();
        let t = sb.add_module("t").unwrap();
        sb.add_edge(s, x).unwrap();
        sb.add_edge(x, t).unwrap();
        sb.add_edge(s, t).unwrap();
        let spec = sb.build().unwrap();
        let mut rb = RunBuilder::new();
        let vs = rb.add_vertex(s);
        let vx = rb.add_vertex(x);
        let vt = rb.add_vertex(t);
        rb.add_edge(vs, vx);
        rb.add_edge(vx, vt);
        rb.add_edge(vs, vt);
        let run = rb.finish(&spec).unwrap();
        let plan = construct_plan(&spec, &run).unwrap();
        assert_eq!(plan.node_count(), 1);
        assert_eq!(plan.nonempty_plus_count(), 1);
        for v in run.vertices() {
            assert_eq!(plan.context(v), plan.root());
        }
    }

    #[test]
    fn single_edge_fork_produces_a_correct_multigraph_plan() {
        // s -> x -> t with a single-edge fork over (s, x): executing it k
        // times yields k parallel (s, x) edges — a genuine multigraph run.
        let mut sb = wfp_model::SpecBuilder::new();
        let s = sb.add_module("s").unwrap();
        let x = sb.add_module("x").unwrap();
        let t = sb.add_module("t").unwrap();
        let e_sx = sb.add_edge(s, x).unwrap();
        sb.add_edge(x, t).unwrap();
        let fork = sb.add_fork(vec![e_sx]);
        let spec = sb.build().unwrap();

        let mut rb = RunBuilder::new();
        let vs = rb.add_vertex(s);
        let vx = rb.add_vertex(x);
        let vt = rb.add_vertex(t);
        for _ in 0..3 {
            rb.add_edge(vs, vx); // three parallel fork copies
        }
        rb.add_edge(vx, vt);
        let run = rb.finish(&spec).unwrap();

        let plan = construct_plan(&spec, &run).unwrap();
        // root + one F- group + three F+ copies
        assert_eq!(plan.node_count(), 5);
        assert_eq!(plan.plus_node_count(), 4);
        // the fork has no internal vertices: every copy is an empty + node
        assert_eq!(plan.nonempty_plus_count(), 1);
        let f_minus = (0..plan.node_count() as u32)
            .find(|&n| plan.kind(n) == PlanNodeKind::Minus(fork))
            .unwrap();
        assert_eq!(plan.tree().children(f_minus).len(), 3);
        // reachability is unaffected by edge multiplicity
        let labeled = crate::label::LabeledRun::build(
            &spec,
            wfp_speclabel::SpecScheme::build(wfp_speclabel::SchemeKind::Tcm, spec.graph()),
            &run,
        )
        .unwrap();
        assert!(labeled.reaches(vs, vt));
        assert!(labeled.reaches(vs, vx));
        assert!(!labeled.reaches(vx, vs));
    }

    #[test]
    fn nested_loop_sharing_source_with_parent_loop() {
        // outer loop over {x, y, z}, inner loop over {x, y} sharing the
        // outer source x — the trickiest boundary-vertex case for context
        // assignment (deepest copy must claim the shared source).
        let mut sb = wfp_model::SpecBuilder::new();
        let s = sb.add_module("s").unwrap();
        let x = sb.add_module("x").unwrap();
        let y = sb.add_module("y").unwrap();
        let z = sb.add_module("z").unwrap();
        let t = sb.add_module("t").unwrap();
        sb.add_edge(s, x).unwrap();
        sb.add_edge(x, y).unwrap();
        sb.add_edge(y, z).unwrap();
        sb.add_edge(z, t).unwrap();
        let inner = sb.add_loop_over(&[x, y]);
        let outer = sb.add_loop_over(&[x, y, z]);
        let spec = sb.build().unwrap();
        assert_eq!(spec.hierarchy().parent_subgraph(inner), Some(outer));

        // run: outer twice; inner twice in the first outer copy
        let mut rb = RunBuilder::new();
        let vs = rb.add_vertex(s);
        let x1 = rb.add_vertex(x);
        let y1 = rb.add_vertex(y);
        let x2 = rb.add_vertex(x);
        let y2 = rb.add_vertex(y);
        let z1 = rb.add_vertex(z);
        let x3 = rb.add_vertex(x);
        let y3 = rb.add_vertex(y);
        let z2 = rb.add_vertex(z);
        let vt = rb.add_vertex(t);
        rb.add_edge(vs, x1);
        rb.add_edge(x1, y1);
        rb.add_edge(y1, x2); // inner connector
        rb.add_edge(x2, y2);
        rb.add_edge(y2, z1);
        rb.add_edge(z1, x3); // outer connector
        rb.add_edge(x3, y3);
        rb.add_edge(y3, z2);
        rb.add_edge(z2, vt);
        let run = rb.finish(&spec).unwrap();

        let plan = construct_plan(&spec, &run).unwrap();
        // x1 is claimed by the first *inner* copy (deepest dominator)
        assert_eq!(plan.kind(plan.context(x1)), PlanNodeKind::Plus(inner));
        assert_eq!(plan.context(x1), plan.context(y1));
        assert_eq!(plan.kind(plan.context(z1)), PlanNodeKind::Plus(outer));
        // semantics: serial chains reach forward only
        let labeled = crate::label::LabeledRun::build(
            &spec,
            wfp_speclabel::SpecScheme::build(wfp_speclabel::SchemeKind::Bfs, spec.graph()),
            &run,
        )
        .unwrap();
        let closure = wfp_graph::TransitiveClosure::build(run.graph());
        for u in run.vertices() {
            for v in run.vertices() {
                assert_eq!(labeled.reaches(u, v), closure.reaches(u.raw(), v.raw()));
            }
        }
    }

    #[test]
    fn run_identical_to_spec_gives_singleton_groups() {
        let spec = paper_spec();
        // the "run" that executes every fork/loop exactly once = G itself
        let mut rb = RunBuilder::new();
        for m in spec.modules() {
            rb.add_vertex(m);
        }
        for e in spec.edge_ids() {
            let (u, v) = spec.edge(e);
            rb.add_edge(RunVertexId(u.raw()), RunVertexId(v.raw()));
        }
        let run = rb.finish(&spec).unwrap();
        let plan = construct_plan(&spec, &run).unwrap();
        // 1 root + per subgraph one minus and one plus: 1 + 2*4 = 9
        assert_eq!(plan.node_count(), 9);
        assert_eq!(plan.plus_node_count(), 5);
    }
}
