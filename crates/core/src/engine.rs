//! High-throughput batched evaluation of the run predicate πr.
//!
//! The scalar [`predicate`](crate::predicate) answers one pair at a time
//! against an array-of-structs `Vec<RunLabel>`. Production query traffic
//! does not arrive that way: provenance workloads are bulk — millions of
//! (source, target) pairs over one labeled run (cf. the batch-oriented
//! provenance query engines surveyed in PAPERS.md). This module restructures
//! evaluation around that shape:
//!
//! * **Struct-of-arrays storage** ([`SoaLabels`]): the `q1`/`q2`/`q3`/
//!   `origin` coordinates live in four parallel `u32` columns, so the
//!   three-comparison fast path of Algorithm 3 streams through dense cache
//!   lines instead of striding over 16-byte structs.
//! * **Skeleton memoization** ([`SharedMemo`]):
//!   only `+`-LCA queries consult the skeleton, and their answer depends
//!   *only* on the two origin modules. Origins repeat heavily (every copy
//!   of a module shares one), so the memo turns repeated skeleton probes —
//!   a full BFS under the search schemes — into one atomic byte load.
//! * **Batched entry points** ([`QueryEngine::answer_batch`]) and a
//!   **sharded parallel evaluator** ([`QueryEngine::answer_batch_parallel`],
//!   mirroring [`crate::batch`]) for million-pair workloads.
//!
//! A [`QueryEngine`] is a thin view over the spec/run split of
//! [`crate::context`]: an `Arc`-shared [`SpecContext`] (skeleton + memo,
//! one per specification) paired with a slim per-run [`RunHandle`] (label
//! columns only). Engines built over the same context share its memo —
//! and [`crate::fleet::FleetEngine`] serves whole populations of runs over
//! one context.
//!
//! The engine is *exactly* πr: `answer_batch` agrees with the scalar
//! [`predicate`](crate::predicate) on every pair (see the differential
//! proptest suite in the facade crate's `tests/engine_differential.rs`).
//!
//! ```
//! use wfp_model::fixtures;
//! use wfp_skl::engine::QueryEngine;
//! use wfp_skl::LabeledRun;
//! use wfp_speclabel::{SchemeKind, SpecScheme};
//!
//! let spec = fixtures::paper_spec();
//! let run = fixtures::paper_run(&spec);
//! let skeleton = SpecScheme::build(SchemeKind::Tcm, spec.graph());
//! let labeled = LabeledRun::build(&spec, skeleton, &run).unwrap();
//!
//! let b1 = fixtures::paper_vertex(&spec, &run, "b1");
//! let c3 = fixtures::paper_vertex(&spec, &run, "c3");
//! let engine = QueryEngine::from_labeled(labeled);
//! assert_eq!(engine.answer_batch(&[(b1, c3), (c3, c3)]), vec![false, true]);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use wfp_model::RunVertexId;
use wfp_speclabel::SpecIndex;

use crate::context::{RunHandle, SharedMemo, SpecContext};
use crate::label::{context_fast_path, LabeledRun, QueryPath, RunLabel};

/// Struct-of-arrays label storage: three coordinate columns plus an origin
/// column, generic over the coordinate type.
///
/// `Q = u32` ([`SoaLabels`]) holds the offline scheme's preorder positions;
/// the live engine ([`crate::live`]) instantiates `Q = u64` with the
/// order-maintenance tags of the three bracket lists, which compare — and
/// therefore decide πr — exactly like positions. Indexed by
/// [`RunVertexId`], exactly like [`LabeledRun::labels`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoaColumns<Q> {
    q1: Vec<Q>,
    q2: Vec<Q>,
    q3: Vec<Q>,
    origin: Vec<u32>,
    /// exclusive upper bound on the stored origin ids (0 when empty)
    origin_bound: u32,
}

/// The offline engine's columns: `u32` preorder positions.
pub type SoaLabels = SoaColumns<u32>;

impl<Q> Default for SoaColumns<Q> {
    fn default() -> Self {
        SoaColumns {
            q1: Vec::new(),
            q2: Vec::new(),
            q3: Vec::new(),
            origin: Vec::new(),
            origin_bound: 0,
        }
    }
}

impl<Q: Copy + Ord> SoaColumns<Q> {
    /// Empty columns, ready for incremental [`push`](Self::push)es.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one label row — the incremental path used by the live
    /// engine, where labels arrive one `exec` event at a time.
    pub fn push(&mut self, q1: Q, q2: Q, q3: Q, origin: u32) {
        self.q1.push(q1);
        self.q2.push(q2);
        self.q3.push(q3);
        self.origin.push(origin);
        self.origin_bound = self.origin_bound.max(origin.saturating_add(1));
    }

    /// Number of stored labels.
    pub fn len(&self) -> usize {
        self.q1.len()
    }

    /// Whether no labels are stored.
    pub fn is_empty(&self) -> bool {
        self.q1.is_empty()
    }

    /// Exclusive upper bound on the origin ids appearing in the columns —
    /// the snapshot side a memo needs to keep them all in its dense tier.
    pub fn origin_bound(&self) -> u32 {
        self.origin_bound
    }

    /// Overwrites one coordinate column in place via `tag(row)` — the live
    /// engine's repair path when an order-maintenance list retags itself
    /// (`which` is 0/1/2 for `q1`/`q2`/`q3`).
    pub(crate) fn repair_column(&mut self, which: usize, tag: impl Fn(usize) -> Q) {
        let col = match which {
            0 => &mut self.q1,
            1 => &mut self.q2,
            2 => &mut self.q3,
            _ => unreachable!("three coordinate columns"),
        };
        for (row, slot) in col.iter_mut().enumerate() {
            *slot = tag(row);
        }
    }
}

impl SoaLabels {
    /// Transposes an array-of-structs label slice into columns.
    pub fn from_labels(labels: &[RunLabel]) -> Self {
        let mut cols = SoaLabels::new();
        cols.q1.reserve(labels.len());
        cols.q2.reserve(labels.len());
        cols.q3.reserve(labels.len());
        cols.origin.reserve(labels.len());
        for l in labels {
            cols.push(l.q1, l.q2, l.q3, l.origin.raw());
        }
        cols
    }

    /// The four raw columns `(q1, q2, q3, origin)` — the zero-copy view
    /// the snapshot layer ([`crate::snapshot::write_run_columns`]) writes
    /// to disk.
    pub fn raw_columns(&self) -> (&[u32], &[u32], &[u32], &[u32]) {
        (&self.q1, &self.q2, &self.q3, &self.origin)
    }

    /// Rebuilds a column store from four equal-length columns (the inverse
    /// of [`raw_columns`](Self::raw_columns)); `None` when the lengths
    /// disagree. The origin bound is recomputed, so a store restored from
    /// untrusted bytes sizes its memo honestly.
    pub fn from_raw_columns(
        q1: Vec<u32>,
        q2: Vec<u32>,
        q3: Vec<u32>,
        origin: Vec<u32>,
    ) -> Option<Self> {
        if q1.len() != q2.len() || q1.len() != q3.len() || q1.len() != origin.len() {
            return None;
        }
        let origin_bound = origin
            .iter()
            .map(|&o| o.saturating_add(1))
            .max()
            .unwrap_or(0);
        Some(SoaLabels {
            q1,
            q2,
            q3,
            origin,
            origin_bound,
        })
    }

    /// Re-gathers the label of vertex `v` (for spot checks; the batch paths
    /// never materialize a `RunLabel`).
    pub fn label(&self, v: RunVertexId) -> RunLabel {
        let i = v.index();
        RunLabel {
            q1: self.q1[i],
            q2: self.q2[i],
            q3: self.q3[i],
            origin: wfp_model::ModuleId(self.origin[i]),
        }
    }
}

/// πr (Algorithm 3) with the skeleton branch memoized through a
/// [`SharedMemo`].
///
/// Byte-for-byte the same decision procedure as [`crate::predicate`]; the
/// memo only caches the `skeleton.reaches(origin_a, origin_b)` sub-answers,
/// and is bypassed entirely for skeletons whose probes are already
/// constant-time ([`SpecIndex::constant_time_queries`], e.g. TCM) — there
/// the memo round trip costs more than the probe it would save. The memo
/// is interior-mutable (`&self`), so callers can share one across threads.
#[inline]
pub fn predicate_memo<S: SpecIndex>(
    a: &RunLabel,
    b: &RunLabel,
    skeleton: &S,
    memo: &SharedMemo,
) -> bool {
    predicate_memo_traced(a, b, skeleton, memo).0
}

/// [`predicate_memo`] plus which path decided it.
#[inline]
pub fn predicate_memo_traced<S: SpecIndex>(
    a: &RunLabel,
    b: &RunLabel,
    skeleton: &S,
    memo: &SharedMemo,
) -> (bool, QueryPath) {
    match context_fast_path((a.q1, a.q2, a.q3), (b.q1, b.q2, b.q3)) {
        Some(ans) => (ans, QueryPath::ContextOnly),
        None if skeleton.constant_time_queries() => (
            skeleton.reaches(a.origin.raw(), b.origin.raw()),
            QueryPath::Skeleton,
        ),
        None => (
            memo.reaches(a.origin.raw(), b.origin.raw(), skeleton),
            QueryPath::Skeleton,
        ),
    }
}

/// Counters describing how a batch was decided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Pairs decided by the context encoding alone (`F−`/`L−` LCA).
    pub context_only: u64,
    /// Pairs delegated to the skeleton (`+` LCA), memoized or not.
    pub skeleton: u64,
    /// Skeleton probes actually performed (shared-memo misses). Counted on
    /// the run's [`SpecContext`], so engines sharing one context report
    /// context-wide totals.
    pub skeleton_probes: u64,
    /// Skeleton probes answered from the shared memo.
    pub memo_hits: u64,
}

impl EngineStats {
    /// Total pairs answered.
    pub fn total(&self) -> u64 {
        self.context_only + self.skeleton
    }
}

/// A batched reachability engine over one labeled run — a thin view
/// pairing an `Arc`-shared [`SpecContext`] (skeleton + concurrent memo,
/// one per specification) with a slim per-run [`RunHandle`] (label
/// columns).
///
/// Engines built from a common context — by [`QueryEngine::from_parts`],
/// by [`crate::live::LiveRun::freeze`], or inside a
/// [`crate::fleet::FleetEngine`] — duplicate *no* spec-level state: the
/// skeleton and its warm memo are stored once and shared by reference
/// count. Convenience constructors ([`from_labeled`](Self::from_labeled),
/// [`from_labels`](Self::from_labels)) create a fresh single-run context.
pub struct QueryEngine<S> {
    ctx: Arc<SpecContext<S>>,
    run: RunHandle,
}

impl<S: SpecIndex> QueryEngine<S> {
    /// Builds the engine from a labeled run, taking over its skeleton into
    /// a fresh single-run context.
    pub fn from_labeled(labeled: LabeledRun<S>) -> Self {
        let (labels, skeleton) = labeled.into_parts();
        Self::from_labels(&labels, skeleton)
    }

    /// Builds the engine from raw labels (e.g. decoded from a label file)
    /// plus the skeleton index they delegate to, wrapped in a fresh
    /// context whose memo snapshot covers every origin in the labels.
    pub fn from_labels(labels: &[RunLabel], skeleton: S) -> Self {
        let run = RunHandle::from_labels(labels);
        let ctx = SpecContext::new(skeleton, run.columns().origin_bound()).shared();
        QueryEngine { ctx, run }
    }

    /// The spec/run split made explicit: a view over an already-shared
    /// context and a standalone run handle. This is how the live engine's
    /// freeze handoff and the fleet serve runs without duplicating the
    /// skeleton or losing the warm memo.
    pub fn from_parts(ctx: Arc<SpecContext<S>>, run: RunHandle) -> Self {
        QueryEngine { ctx, run }
    }

    /// Number of labeled vertices.
    pub fn vertex_count(&self) -> usize {
        self.run.vertex_count()
    }

    /// The SoA label columns.
    pub fn columns(&self) -> &SoaLabels {
        self.run.columns()
    }

    /// The shared spec-level state this engine answers through.
    pub fn context(&self) -> &Arc<SpecContext<S>> {
        &self.ctx
    }

    /// The per-run label columns and counters.
    pub fn run(&self) -> &RunHandle {
        &self.run
    }

    /// The skeleton index queries delegate to.
    pub fn skeleton(&self) -> &S {
        self.ctx.skeleton()
    }

    /// Cumulative decision statistics: this run's decisions plus the
    /// shared context's memo counters (context-wide when the context
    /// serves several runs).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            context_only: self.run.context_only(),
            skeleton: self.run.skeleton_queries(),
            skeleton_probes: self.ctx.memo().probes(),
            memo_hits: self.ctx.memo().hits(),
        }
    }

    /// Whether `u ⇝ v` — the scalar entry point, sharing the context memo.
    /// Allocation-free (unlike the batch paths, which fill a vector).
    #[inline]
    pub fn answer(&self, u: RunVertexId, v: RunVertexId) -> bool {
        let (ans, path) = answer_one(self.run.columns(), &self.ctx, u, v);
        match path {
            QueryPath::ContextOnly => self.run.count(1, 0),
            QueryPath::Skeleton => self.run.count(0, 1),
        }
        ans
    }

    /// Answers every pair of `pairs` in order.
    pub fn answer_batch(&self, pairs: &[(RunVertexId, RunVertexId)]) -> Vec<bool> {
        let mut out = Vec::new();
        self.answer_batch_into(pairs, &mut out);
        out
    }

    /// [`answer_batch`](Self::answer_batch) into a caller-owned buffer
    /// (cleared first), returning it as a slice. Lets steady-state callers
    /// reuse one allocation across batches.
    pub fn answer_batch_into<'o>(
        &self,
        pairs: &[(RunVertexId, RunVertexId)],
        out: &'o mut Vec<bool>,
    ) -> &'o [bool] {
        out.clear();
        out.reserve(pairs.len());
        let (ctx, skel) = answer_into(
            self.run.columns(),
            self.ctx.skeleton(),
            self.ctx.probe_memo(),
            pairs,
            out,
        );
        self.run.count(ctx, skel);
        out
    }

    /// Answers `pairs` with up to `threads` shards (clamped to 64). Every
    /// shard reads the **same** shared memo (it is concurrent by design —
    /// sub-answers warmed by one shard are hits for all others) and owns a
    /// clone of the skeleton for per-probe scratch space (the search
    /// schemes carry non-`Sync` scratch buffers; cloning an index is a
    /// memcpy of its label arrays, cf. [`crate::batch`]). Results are in
    /// input order and identical to [`answer_batch`](Self::answer_batch) —
    /// the evaluation is deterministic regardless of scheduling.
    pub fn answer_batch_parallel(
        &self,
        pairs: &[(RunVertexId, RunVertexId)],
        threads: usize,
    ) -> Vec<bool>
    where
        S: Clone + Send,
    {
        // Clamp the user-supplied shard count: each shard costs an OS
        // thread and a skeleton clone, and a runaway value (a CLI typo)
        // must degrade to a bounded fan-out, not a spawn failure.
        const MAX_SHARDS: usize = 64;
        let threads = threads.clamp(1, MAX_SHARDS).min(pairs.len().max(1));
        // Fixed-size chunks pulled from a shared queue: big enough to
        // amortize the per-chunk claim, small enough to balance shards.
        let chunk = (pairs.len().div_ceil(threads.max(1) * 8)).clamp(1024, 1 << 20);
        let chunk_count = pairs.len().div_ceil(chunk);
        // A shard beyond the chunk count would clone a skeleton only to
        // find the queue already exhausted.
        let threads = threads.min(chunk_count);
        if threads <= 1 {
            return self.answer_batch(pairs);
        }
        let cols = self.run.columns();
        let memo = self.ctx.probe_memo();
        let mut out = vec![false; pairs.len()];
        let ctx_total = AtomicU64::new(0);
        let skel_total = AtomicU64::new(0);
        {
            // Shards claim (input-chunk, output-window) work items from one
            // shared queue and sweep answers straight into their disjoint
            // window of the preallocated output — no per-chunk buffer
            // allocation and no funnel copy. The two chunkings are
            // identical, so the zip hands each input chunk exactly its own
            // output window; chunks are ≥1024 pairs, so the queue lock is
            // touched at most once per ~1k answers.
            let work = Mutex::new(pairs.chunks(chunk).zip(out.chunks_mut(chunk)));
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let work = &work;
                    let (ctx_total, skel_total) = (&ctx_total, &skel_total);
                    let skeleton = self.ctx.skeleton().clone();
                    scope.spawn(move || {
                        let (mut ctx_sum, mut skel_sum) = (0u64, 0u64);
                        loop {
                            let claimed = work.lock().expect("work queue poisoned").next();
                            let Some((chunk_pairs, window)) = claimed else {
                                break;
                            };
                            let (c, s) =
                                sweep_into_slice(cols, &skeleton, memo, chunk_pairs, window);
                            ctx_sum += c;
                            skel_sum += s;
                        }
                        ctx_total.fetch_add(ctx_sum, Ordering::Relaxed);
                        skel_total.fetch_add(skel_sum, Ordering::Relaxed);
                    });
                }
            });
        }
        self.run.count(ctx_total.into_inner(), skel_total.into_inner());
        out
    }

    /// [`answer_batch_into`](Self::answer_batch_into) through the reference
    /// **scalar** kernel — the per-lane branch chain the column sweep
    /// replaced. Kept public as the A/B baseline for the kernel bench and
    /// the differential suite; answers and decision counters are
    /// byte-identical to the sweep paths.
    pub fn answer_batch_scalar_into<'o>(
        &self,
        pairs: &[(RunVertexId, RunVertexId)],
        out: &'o mut Vec<bool>,
    ) -> &'o [bool] {
        out.clear();
        out.reserve(pairs.len());
        let (ctx, skel) = answer_into_scalar(
            self.run.columns(),
            self.ctx.skeleton(),
            self.ctx.probe_memo(),
            pairs,
            out,
        );
        self.run.count(ctx, skel);
        out
    }
}

/// The allocation-free scalar kernel: one pair over `u32` columns through
/// the context's memo policy. Shared by [`QueryEngine::answer`] and the
/// fleet's scalar probe path.
#[inline]
pub(crate) fn answer_one<S: SpecIndex>(
    cols: &SoaLabels,
    ctx: &SpecContext<S>,
    u: RunVertexId,
    v: RunVertexId,
) -> (bool, QueryPath) {
    let (a, b) = (cols.label(u), cols.label(v));
    match ctx.probe_memo() {
        Some(memo) => predicate_memo_traced(&a, &b, ctx.skeleton(), memo),
        None => crate::label::predicate_traced(&a, &b, ctx.skeleton()),
    }
}

/// A column store the sweep kernel can gather lanes from. Implemented by
/// the raw [`SoaColumns`] (direct column loads) and by the bit-packed
/// [`crate::packed::PackedColumns`] (shift-and-mask decode of the same
/// lanes) — both run the identical two-phase kernel, which is what
/// makes the packed-resident serving path answer byte-identically.
pub(crate) trait ColumnGather {
    /// Coordinate type the context fast path compares.
    type Coord: Copy + Ord;
    /// Number of labeled vertices.
    fn lane_count(&self) -> usize;
    /// `(q1, q2, q3)` of vertex `i`.
    fn coords(&self, i: usize) -> (Self::Coord, Self::Coord, Self::Coord);
    /// Origin module of vertex `i`.
    fn origin_of(&self, i: usize) -> u32;
    /// Exclusive upper bound on the origin ids stored in the columns —
    /// sizes the sweep's per-batch probe table.
    fn origin_bound(&self) -> u32;

    /// Phase-1 block kernel: evaluates the branchless context fast path of
    /// Algorithm 3 over up to [`BLOCK`] lanes of `chunk`, returning the
    /// `(resolved, answer)` bit masks. Panics (`"query vertex out of
    /// range"`) on the first out-of-range lane, before gathering it.
    ///
    /// The default body gathers one lane at a time via
    /// [`coords`](Self::coords); implementations override it when they can
    /// prove the per-column bounds checks away (see [`SoaColumns`]).
    #[inline]
    fn block_masks(&self, chunk: &[(RunVertexId, RunVertexId)]) -> (u64, u64) {
        debug_assert!(chunk.len() <= BLOCK);
        let n = self.lane_count();
        let (mut resolved_mask, mut answer_mask) = (0u64, 0u64);
        for (i, &(u, v)) in chunk.iter().enumerate() {
            let (a, b) = (u.index(), v.index());
            assert!(a < n && b < n, "query vertex out of range");
            let (a1, a2, a3) = self.coords(a);
            let (b1, b2, b3) = self.coords(b);
            let split = (a2 < b2) != (a3 < b3);
            let resolved = (split & (a2 != b2) & (a3 != b3)) as u64;
            let ans = ((a1 < b1) & (a3 > b3)) as u64;
            resolved_mask |= resolved << i;
            answer_mask |= (resolved & ans) << i;
        }
        (resolved_mask, answer_mask)
    }
}

impl<Q: Copy + Ord> ColumnGather for SoaColumns<Q> {
    type Coord = Q;

    #[inline(always)]
    fn lane_count(&self) -> usize {
        self.q1.len()
    }

    #[inline(always)]
    fn coords(&self, i: usize) -> (Q, Q, Q) {
        (self.q1[i], self.q2[i], self.q3[i])
    }

    #[inline(always)]
    fn origin_of(&self, i: usize) -> u32 {
        self.origin[i]
    }

    #[inline(always)]
    fn origin_bound(&self) -> u32 {
        SoaColumns::origin_bound(self)
    }

    /// Override: equal-length sub-slices plus the per-lane range assert
    /// let the compiler elide all six per-column bounds checks, so the
    /// block body is pure straight-line compare/mask arithmetic.
    #[inline]
    fn block_masks(&self, chunk: &[(RunVertexId, RunVertexId)]) -> (u64, u64) {
        debug_assert!(chunk.len() <= BLOCK);
        let n = self.q1.len();
        let (q1, q2, q3) = (&self.q1[..n], &self.q2[..n], &self.q3[..n]);
        let (mut resolved_mask, mut answer_mask) = (0u64, 0u64);
        for (i, &(u, v)) in chunk.iter().enumerate() {
            let (a, b) = (u.index(), v.index());
            assert!(a < n && b < n, "query vertex out of range");
            let (a1, a2, a3) = (q1[a], q2[a], q3[a]);
            let (b1, b2, b3) = (q1[b], q2[b], q3[b]);
            let split = (a2 < b2) != (a3 < b3);
            let resolved = (split & (a2 != b2) & (a3 != b3)) as u64;
            let ans = ((a1 < b1) & (a3 > b3)) as u64;
            resolved_mask |= resolved << i;
            answer_mask |= (resolved & ans) << i;
        }
        (resolved_mask, answer_mask)
    }
}

/// Lanes per sweep block: one machine word of resolved/answer mask bits.
pub(crate) const BLOCK: usize = 64;

/// Cap on the sweep's per-batch probe table: `origin_bound²` one-byte
/// cells, at most 1 MiB. That covers specifications up to 1024 modules —
/// the paper's largest has 200 — while an untrusted origin bound can never
/// size an unbounded allocation (the same posture as
/// [`SharedMemo::SIDE_CAP`]).
const PROBE_TABLE_CAP: usize = 1 << 20;

/// The two-phase column-sweep batch kernel, writing answers into a
/// caller-provided slice (`out.len() == pairs.len()`). Returns
/// `(context_only, skeleton)` decision counts.
///
/// **Phase 1** walks `pairs` in blocks of [`BLOCK`] lanes
/// ([`ColumnGather::block_masks`]): both endpoints' `(q1,q2,q3)` are
/// gathered and the context fast path of Algorithm 3 is evaluated as
/// branchless compare/mask arithmetic — no `Option`, no early exit, one
/// resolved bit and one answer bit per lane accumulated into two
/// block-wide machine words — so the lanes are independent straight-line
/// code and a mispredicted `+`-LCA lane never stalls its neighbours. The
/// complemented resolved mask *is* the compact emission of unresolved
/// lanes.
///
/// **Phase 2** drains each block's unresolved bits and groups the probes
/// by their `(origin_a, origin_b)` key in a dense per-batch table, so
/// every distinct skeleton probe is answered once: the first lane of a
/// group goes through the [`SharedMemo`] (warming its cell exactly like
/// the scalar kernel would), repeat lanes are local table loads whose
/// avoided probes are credited to the memo in bulk
/// ([`SharedMemo::note_hits`]) — final probe/hit counters match the scalar
/// kernel lane for lane. Specifications too wide for the table, or batches
/// too small to amortize zeroing it, fall back to per-lane memo probes:
/// the scalar kernel's exact path.
///
/// `memo` carries the policy decided by [`SpecContext::probe_memo`]:
/// `None` for skeletons whose probes are already constant-time bit lookups
/// ([`SpecIndex::constant_time_queries`]), `Some(shared)` otherwise.
/// Direct probes under `None` do not appear in the memo's counters.
pub(crate) fn sweep_into_slice<C: ColumnGather, S: SpecIndex>(
    cols: &C,
    skeleton: &S,
    memo: Option<&SharedMemo>,
    pairs: &[(RunVertexId, RunVertexId)],
    out: &mut [bool],
) -> (u64, u64) {
    assert_eq!(out.len(), pairs.len(), "output slice must match the batch");
    let bound = cols.origin_bound() as usize;
    let mut table = match bound.checked_mul(bound) {
        Some(cells)
            if cells <= PROBE_TABLE_CAP && cells <= pairs.len().saturating_mul(BLOCK) =>
        {
            vec![0u8; cells]
        }
        _ => Vec::new(),
    };
    let mut ctx = 0u64;
    let mut skel = 0u64;
    let mut repeat_hits = 0u64;
    for (blk, chunk) in pairs.chunks(BLOCK).enumerate() {
        let off = blk * BLOCK;
        let k = chunk.len();
        let (resolved_mask, answer_mask) = cols.block_masks(chunk);
        ctx += u64::from(resolved_mask.count_ones());
        for (i, slot) in out[off..off + k].iter_mut().enumerate() {
            *slot = (answer_mask >> i) & 1 == 1;
        }
        let live = if k == BLOCK { u64::MAX } else { (1u64 << k) - 1 };
        let mut rest = !resolved_mask & live;
        skel += u64::from(rest.count_ones());
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let (u, v) = chunk[i];
            let (oa, ob) = (cols.origin_of(u.index()), cols.origin_of(v.index()));
            let ans = if table.is_empty() {
                match memo {
                    Some(memo) => memo.reaches(oa, ob, skeleton),
                    None => skeleton.reaches(oa, ob),
                }
            } else {
                let cell = &mut table[oa as usize * bound + ob as usize];
                match *cell {
                    0 => {
                        let ans = match memo {
                            Some(memo) => memo.reaches(oa, ob, skeleton),
                            None => skeleton.reaches(oa, ob),
                        };
                        *cell = 1 + u8::from(ans);
                        ans
                    }
                    known => {
                        repeat_hits += 1;
                        known == 2
                    }
                }
            };
            out[off + i] = ans;
        }
    }
    if let Some(memo) = memo {
        // Repeat lanes the table absorbed would each have been a memo hit
        // under the scalar kernel (their first lane just warmed the cell);
        // credit them in bulk so the counters stay identical.
        memo.note_hits(repeat_hits);
    }
    (ctx, skel)
}

/// The shared batch kernel: answers `pairs` over the columns via the
/// two-phase sweep ([`sweep_into_slice`]), appending to `out`. Returns
/// `(context_only, skeleton)` decision counts.
#[inline]
pub(crate) fn answer_into<Q: Copy + Ord, S: SpecIndex>(
    cols: &SoaColumns<Q>,
    skeleton: &S,
    memo: Option<&SharedMemo>,
    pairs: &[(RunVertexId, RunVertexId)],
    out: &mut Vec<bool>,
) -> (u64, u64) {
    let base = out.len();
    out.resize(base + pairs.len(), false);
    sweep_into_slice(cols, skeleton, memo, pairs, &mut out[base..])
}

/// The reference scalar kernel the sweep replaced: one data-dependent
/// branch chain per lane, appending to `out`. Kept as the A/B baseline
/// ([`QueryEngine::answer_batch_scalar_into`]) and the differential
/// suite's independent oracle.
pub(crate) fn answer_into_scalar<Q: Copy + Ord, S: SpecIndex>(
    cols: &SoaColumns<Q>,
    skeleton: &S,
    memo: Option<&SharedMemo>,
    pairs: &[(RunVertexId, RunVertexId)],
    out: &mut Vec<bool>,
) -> (u64, u64) {
    // Equal-length sub-slices + one explicit range check per pair let the
    // compiler elide the per-column bounds checks in the gathers below.
    let n = cols.q1.len();
    let (q1, q2, q3, origin) = (
        &cols.q1[..n],
        &cols.q2[..n],
        &cols.q3[..n],
        &cols.origin[..n],
    );
    let mut ctx = 0u64;
    let mut skel = 0u64;
    out.extend(pairs.iter().map(|&(u, v)| {
        let (a, b) = (u.index(), v.index());
        assert!(a < n && b < n, "query vertex out of range");
        match context_fast_path((q1[a], q2[a], q3[a]), (q1[b], q2[b], q3[b])) {
            Some(ans) => {
                ctx += 1;
                ans
            }
            None => {
                skel += 1;
                match memo {
                    Some(memo) => memo.reaches(origin[a], origin[b], skeleton),
                    None => skeleton.reaches(origin[a], origin[b]),
                }
            }
        }
    }));
    (ctx, skel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::predicate;
    use wfp_graph::TransitiveClosure;
    use wfp_model::fixtures::{paper_run, paper_spec};
    use wfp_speclabel::{SchemeKind, SpecScheme};

    fn paper_engine(kind: SchemeKind) -> (wfp_model::Run, QueryEngine<SpecScheme>) {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let labeled =
            LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
        (run, QueryEngine::from_labeled(labeled))
    }

    fn all_pairs(run: &wfp_model::Run) -> Vec<(RunVertexId, RunVertexId)> {
        run.vertices()
            .flat_map(|u| run.vertices().map(move |v| (u, v)))
            .collect()
    }

    #[test]
    fn batch_matches_the_bfs_oracle_under_every_scheme() {
        for &kind in &SchemeKind::ALL {
            let (run, engine) = paper_engine(kind);
            let oracle = TransitiveClosure::build(run.graph());
            let pairs = all_pairs(&run);
            let answers = engine.answer_batch(&pairs);
            for (&(u, v), &ans) in pairs.iter().zip(&answers) {
                assert_eq!(ans, oracle.reaches(u.raw(), v.raw()), "{kind} ({u},{v})");
            }
        }
    }

    #[test]
    fn batch_matches_scalar_predicate_and_scalar_answer() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let labeled = LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Dfs, spec.graph()),
            &run,
        )
        .unwrap();
        let pairs = all_pairs(&run);
        let scalar: Vec<bool> = pairs
            .iter()
            .map(|&(u, v)| predicate(labeled.label(u), labeled.label(v), labeled.skeleton()))
            .collect();
        let engine = QueryEngine::from_labeled(labeled);
        assert_eq!(engine.answer_batch(&pairs), scalar);
        for (&(u, v), &expected) in pairs.iter().zip(&scalar) {
            assert_eq!(engine.answer(u, v), expected);
        }
    }

    #[test]
    fn memo_amortizes_repeated_origin_pairs() {
        let (run, engine) = paper_engine(SchemeKind::Bfs);
        let pairs = all_pairs(&run);
        engine.answer_batch(&pairs);
        let first = engine.stats();
        assert_eq!(first.total(), pairs.len() as u64);
        assert!(first.skeleton_probes > 0);
        // A warm second pass probes the skeleton zero more times.
        engine.answer_batch(&pairs);
        let second = engine.stats();
        assert_eq!(second.total(), 2 * pairs.len() as u64);
        assert_eq!(second.skeleton_probes, first.skeleton_probes);
        assert!(second.memo_hits > first.memo_hits);
    }

    #[test]
    fn parallel_matches_sequential_and_is_deterministic() {
        // TCM bypasses the shared memo, BFS exercises it concurrently:
        // both paths must agree with the sequential batch across
        // interleaved chunks.
        for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
            let (run, engine) = paper_engine(kind);
            // Repeat the pair set to cross the chunking threshold.
            let mut pairs = Vec::new();
            for _ in 0..40 {
                pairs.extend(all_pairs(&run));
            }
            let sequential = engine.answer_batch(&pairs);
            for threads in [2usize, 3, 8] {
                let parallel = engine.answer_batch_parallel(&pairs, threads);
                assert_eq!(parallel, sequential, "{kind}, threads = {threads}");
            }
        }
    }

    #[test]
    fn scalar_reference_kernel_matches_the_sweep_exactly() {
        // Answers AND decision counters must agree between the branchless
        // sweep and the per-lane reference kernel, memoized (BFS) or not
        // (TCM), including partial trailing blocks.
        for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
            let (run, engine) = paper_engine(kind);
            let mut pairs = all_pairs(&run);
            pairs.truncate(pairs.len() - pairs.len() % BLOCK + 3);
            let sweep = engine.answer_batch(&pairs);
            let after_sweep = engine.stats();
            let mut buf = Vec::new();
            assert_eq!(engine.answer_batch_scalar_into(&pairs, &mut buf), sweep, "{kind}");
            let after_scalar = engine.stats();
            assert_eq!(
                after_scalar.context_only - after_sweep.context_only,
                after_sweep.context_only,
                "{kind}: scalar context-only count diverged"
            );
            assert_eq!(
                after_scalar.skeleton - after_sweep.skeleton,
                after_sweep.skeleton,
                "{kind}: scalar skeleton count diverged"
            );
        }
    }

    #[test]
    fn empty_batch_and_empty_labels() {
        let (_, engine) = paper_engine(SchemeKind::Tcm);
        assert!(engine.answer_batch(&[]).is_empty());
        assert_eq!(engine.stats().total(), 0);

        let g = wfp_graph::DiGraph::with_vertices(1);
        let empty = QueryEngine::from_labels(&[], SpecScheme::build(SchemeKind::Tcm, &g));
        assert_eq!(empty.vertex_count(), 0);
        assert!(empty.columns().is_empty());
        assert_eq!(empty.columns().origin_bound(), 0);
        assert!(empty.answer_batch(&[]).is_empty());
    }

    #[test]
    fn from_labels_round_trips_columns() {
        let (run, engine) = paper_engine(SchemeKind::Chain);
        let spec = paper_spec();
        let labeled = LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Chain, spec.graph()),
            &run,
        )
        .unwrap();
        for v in run.vertices() {
            assert_eq!(&engine.columns().label(v), labeled.label(v));
        }
        assert_eq!(engine.vertex_count(), run.vertex_count());
    }

    #[test]
    fn engines_over_one_context_share_the_memo() {
        // Two engines viewing one Arc<SpecContext>: pairs warmed by the
        // first are memo hits for the second — the spec/run split's point.
        let spec = paper_spec();
        let run = paper_run(&spec);
        let labeled = LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Bfs, spec.graph()),
            &run,
        )
        .unwrap();
        let (labels, skeleton) = labeled.into_parts();
        let ctx = SpecContext::for_spec(&spec, skeleton).shared();
        let a = QueryEngine::from_parts(Arc::clone(&ctx), RunHandle::from_labels(&labels));
        let b = QueryEngine::from_parts(Arc::clone(&ctx), RunHandle::from_labels(&labels));
        assert_eq!(Arc::strong_count(&ctx), 3);

        let pairs = all_pairs(&run);
        let first = a.answer_batch(&pairs);
        let probes_after_a = ctx.memo().probes();
        assert!(probes_after_a > 0);
        assert_eq!(b.answer_batch(&pairs), first);
        assert_eq!(
            ctx.memo().probes(),
            probes_after_a,
            "engine b re-probed the skeleton despite the shared warm memo"
        );
    }
}
