//! High-throughput batched evaluation of the run predicate πr.
//!
//! The scalar [`predicate`](crate::predicate) answers one pair at a time
//! against an array-of-structs `Vec<RunLabel>`. Production query traffic
//! does not arrive that way: provenance workloads are bulk — millions of
//! (source, target) pairs over one labeled run (cf. the batch-oriented
//! provenance query engines surveyed in PAPERS.md). This module restructures
//! evaluation around that shape:
//!
//! * **Struct-of-arrays storage** ([`SoaLabels`]): the `q1`/`q2`/`q3`/
//!   `origin` coordinates live in four parallel `u32` columns, so the
//!   three-comparison fast path of Algorithm 3 streams through dense cache
//!   lines instead of striding over 16-byte structs.
//! * **Skeleton memoization** ([`SkeletonMemo`]): only `+`-LCA queries
//!   consult the skeleton, and their answer depends *only* on the two origin
//!   modules. Origins repeat heavily (every copy of a module shares one), so
//!   a dense `n_G × n_G` memo turns repeated skeleton probes — a full BFS
//!   under the search schemes — into one byte load.
//! * **Batched entry points** ([`QueryEngine::answer_batch`]) and a
//!   **sharded parallel evaluator** ([`QueryEngine::answer_batch_parallel`],
//!   mirroring [`crate::batch`]) for million-pair workloads.
//!
//! The engine is *exactly* πr: `answer_batch` agrees with the scalar
//! [`predicate`](crate::predicate) on every pair (see the differential
//! proptest suite in the facade crate's `tests/engine_differential.rs`).
//!
//! ```
//! use wfp_model::fixtures;
//! use wfp_skl::engine::QueryEngine;
//! use wfp_skl::LabeledRun;
//! use wfp_speclabel::{SchemeKind, SpecScheme};
//!
//! let spec = fixtures::paper_spec();
//! let run = fixtures::paper_run(&spec);
//! let skeleton = SpecScheme::build(SchemeKind::Tcm, spec.graph());
//! let labeled = LabeledRun::build(&spec, skeleton, &run).unwrap();
//!
//! let b1 = fixtures::paper_vertex(&spec, &run, "b1");
//! let c3 = fixtures::paper_vertex(&spec, &run, "c3");
//! let engine = QueryEngine::from_labeled(labeled);
//! assert_eq!(engine.answer_batch(&[(b1, c3), (c3, c3)]), vec![false, true]);
//! ```

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};

use wfp_model::RunVertexId;
use wfp_speclabel::SpecIndex;

use crate::label::{context_fast_path, LabeledRun, QueryPath, RunLabel};

/// Struct-of-arrays label storage: three coordinate columns plus an origin
/// column, generic over the coordinate type.
///
/// `Q = u32` ([`SoaLabels`]) holds the offline scheme's preorder positions;
/// the live engine ([`crate::live`]) instantiates `Q = u64` with the
/// order-maintenance tags of the three bracket lists, which compare — and
/// therefore decide πr — exactly like positions. Indexed by
/// [`RunVertexId`], exactly like [`LabeledRun::labels`].
#[derive(Clone, Debug)]
pub struct SoaColumns<Q> {
    q1: Vec<Q>,
    q2: Vec<Q>,
    q3: Vec<Q>,
    origin: Vec<u32>,
    /// exclusive upper bound on the stored origin ids (0 when empty)
    origin_bound: u32,
}

/// The offline engine's columns: `u32` preorder positions.
pub type SoaLabels = SoaColumns<u32>;

impl<Q> Default for SoaColumns<Q> {
    fn default() -> Self {
        SoaColumns {
            q1: Vec::new(),
            q2: Vec::new(),
            q3: Vec::new(),
            origin: Vec::new(),
            origin_bound: 0,
        }
    }
}

impl<Q: Copy + Ord> SoaColumns<Q> {
    /// Empty columns, ready for incremental [`push`](Self::push)es.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one label row — the incremental path used by the live
    /// engine, where labels arrive one `exec` event at a time.
    pub fn push(&mut self, q1: Q, q2: Q, q3: Q, origin: u32) {
        self.q1.push(q1);
        self.q2.push(q2);
        self.q3.push(q3);
        self.origin.push(origin);
        self.origin_bound = self.origin_bound.max(origin.saturating_add(1));
    }

    /// Number of stored labels.
    pub fn len(&self) -> usize {
        self.q1.len()
    }

    /// Whether no labels are stored.
    pub fn is_empty(&self) -> bool {
        self.q1.is_empty()
    }

    /// Exclusive upper bound on the origin ids appearing in the columns —
    /// the side of the dense [`SkeletonMemo`] that covers them.
    pub fn origin_bound(&self) -> u32 {
        self.origin_bound
    }

    /// Overwrites one coordinate column in place via `tag(row)` — the live
    /// engine's repair path when an order-maintenance list retags itself
    /// (`which` is 0/1/2 for `q1`/`q2`/`q3`).
    pub(crate) fn repair_column(&mut self, which: usize, tag: impl Fn(usize) -> Q) {
        let col = match which {
            0 => &mut self.q1,
            1 => &mut self.q2,
            2 => &mut self.q3,
            _ => unreachable!("three coordinate columns"),
        };
        for (row, slot) in col.iter_mut().enumerate() {
            *slot = tag(row);
        }
    }
}

impl SoaLabels {
    /// Transposes an array-of-structs label slice into columns.
    pub fn from_labels(labels: &[RunLabel]) -> Self {
        let mut cols = SoaLabels::new();
        cols.q1.reserve(labels.len());
        cols.q2.reserve(labels.len());
        cols.q3.reserve(labels.len());
        cols.origin.reserve(labels.len());
        for l in labels {
            cols.push(l.q1, l.q2, l.q3, l.origin.raw());
        }
        cols
    }

    /// Re-gathers the label of vertex `v` (for spot checks; the batch paths
    /// never materialize a `RunLabel`).
    pub fn label(&self, v: RunVertexId) -> RunLabel {
        let i = v.index();
        RunLabel {
            q1: self.q1[i],
            q2: self.q2[i],
            q3: self.q3[i],
            origin: wfp_model::ModuleId(self.origin[i]),
        }
    }
}

/// Answer of one memo cell: unknown / known-false / known-true.
const MEMO_UNKNOWN: u8 = 0;
const MEMO_FALSE: u8 = 1;
const MEMO_TRUE: u8 = 2;

/// A dense memo over `(origin_a, origin_b)` skeleton probes.
///
/// The skeleton-delegated branch of πr depends only on the two origin
/// modules, and `n_G` is small (the paper's specifications have 58–200
/// modules), so a byte matrix amortizes *every* repeated probe — crucial
/// for the search schemes, where one probe is a BFS over the specification.
///
/// Pairs outside the configured bound fall through to a direct probe, so a
/// memo never changes answers, only their cost.
#[derive(Clone, Debug)]
pub struct SkeletonMemo {
    side: u32,
    cells: Vec<u8>,
    probes: u64,
    hits: u64,
}

impl SkeletonMemo {
    /// Hard cap on the memo side: the matrix costs `side²` bytes, and
    /// origin ids can come from *untrusted* label bytes (a decoded label
    /// file, a deserialized provenance store), so the requested bound must
    /// not size an allocation. 4096 (a 16 MiB matrix) covers every
    /// realistic specification — the paper's largest has 200 modules —
    /// while out-of-bound pairs simply fall through to direct probes.
    pub const SIDE_CAP: u32 = 4096;

    /// A memo covering origins `0..bound.min(SIDE_CAP)` (at most
    /// `SIDE_CAP²` bytes); pairs beyond the side are probed directly.
    pub fn new(bound: u32) -> Self {
        let side = bound.min(Self::SIDE_CAP);
        SkeletonMemo {
            side,
            cells: vec![MEMO_UNKNOWN; side as usize * side as usize],
            probes: 0,
            hits: 0,
        }
    }

    /// Exclusive upper bound on the origins of `labels` — the side a memo
    /// needs to cover them all.
    pub fn origin_bound_of<'a>(labels: impl IntoIterator<Item = &'a RunLabel>) -> u32 {
        labels
            .into_iter()
            .map(|l| l.origin.raw().saturating_add(1))
            .max()
            .unwrap_or(0)
    }

    /// A memo sized to cover every origin of `labels` (up to the cap).
    pub fn for_labels(labels: &[RunLabel]) -> Self {
        SkeletonMemo::new(Self::origin_bound_of(labels))
    }

    /// The memo `skeleton` wants: empty when its probes are already
    /// constant-time ([`SpecIndex::constant_time_queries`] — evaluators
    /// never consult the memo then, so neither the `bound()` scan nor the
    /// matrix allocation runs), otherwise sized by `bound()`. The single
    /// home of the bypass policy for every batch evaluator in the stack.
    pub fn for_skeleton<S: SpecIndex>(skeleton: &S, bound: impl FnOnce() -> u32) -> Self {
        if skeleton.constant_time_queries() {
            SkeletonMemo::new(0)
        } else {
            SkeletonMemo::new(bound())
        }
    }

    /// `skeleton.reaches(a, b)`, memoized.
    #[inline]
    pub fn reaches<S: SpecIndex>(&mut self, a: u32, b: u32, skeleton: &S) -> bool {
        if a >= self.side || b >= self.side {
            self.probes += 1;
            return skeleton.reaches(a, b);
        }
        let idx = a as usize * self.side as usize + b as usize; // side ≤ SIDE_CAP: no overflow
        match self.cells[idx] {
            MEMO_TRUE => {
                self.hits += 1;
                true
            }
            MEMO_FALSE => {
                self.hits += 1;
                false
            }
            _ => {
                self.probes += 1;
                let ans = skeleton.reaches(a, b);
                self.cells[idx] = if ans { MEMO_TRUE } else { MEMO_FALSE };
                ans
            }
        }
    }

    /// The covered side (exclusive origin bound) of the matrix.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Grows the matrix to cover origins `0..bound.min(SIDE_CAP)`,
    /// preserving every already-memoized cell — the live engine's lazy
    /// extension path, taken when a newly executed vertex introduces an
    /// origin beyond the current side. No-op when the memo already covers
    /// `bound`.
    pub fn grow(&mut self, bound: u32) {
        let side = bound.min(Self::SIDE_CAP);
        if side <= self.side {
            return;
        }
        let mut cells = vec![MEMO_UNKNOWN; side as usize * side as usize];
        for a in 0..self.side as usize {
            let old = a * self.side as usize;
            let new = a * side as usize;
            cells[new..new + self.side as usize]
                .copy_from_slice(&self.cells[old..old + self.side as usize]);
        }
        self.cells = cells;
        self.side = side;
    }

    /// Skeleton probes actually performed (memo misses + out-of-bound pairs).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probes avoided by the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// πr (Algorithm 3) with the skeleton branch memoized.
///
/// Byte-for-byte the same decision procedure as [`crate::predicate`]; the
/// memo only caches the `skeleton.reaches(origin_a, origin_b)` sub-answers,
/// and is bypassed entirely for skeletons whose probes are already
/// constant-time ([`SpecIndex::constant_time_queries`], e.g. TCM) — there
/// the memo round trip costs more than the probe it would save.
#[inline]
pub fn predicate_memo<S: SpecIndex>(
    a: &RunLabel,
    b: &RunLabel,
    skeleton: &S,
    memo: &mut SkeletonMemo,
) -> bool {
    predicate_memo_traced(a, b, skeleton, memo).0
}

/// [`predicate_memo`] plus which path decided it.
#[inline]
pub fn predicate_memo_traced<S: SpecIndex>(
    a: &RunLabel,
    b: &RunLabel,
    skeleton: &S,
    memo: &mut SkeletonMemo,
) -> (bool, QueryPath) {
    match context_fast_path((a.q1, a.q2, a.q3), (b.q1, b.q2, b.q3)) {
        Some(ans) => (ans, QueryPath::ContextOnly),
        None if skeleton.constant_time_queries() => (
            skeleton.reaches(a.origin.raw(), b.origin.raw()),
            QueryPath::Skeleton,
        ),
        None => (
            memo.reaches(a.origin.raw(), b.origin.raw(), skeleton),
            QueryPath::Skeleton,
        ),
    }
}

/// Counters describing how a batch was decided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Pairs decided by the context encoding alone (`F−`/`L−` LCA).
    pub context_only: u64,
    /// Pairs delegated to the skeleton (`+` LCA), memoized or not.
    pub skeleton: u64,
    /// Skeleton probes actually performed.
    pub skeleton_probes: u64,
    /// Skeleton probes answered from the memo.
    pub memo_hits: u64,
}

impl EngineStats {
    /// Total pairs answered.
    pub fn total(&self) -> u64 {
        self.context_only + self.skeleton
    }
}

/// A batched reachability engine over one labeled run.
///
/// Owns the SoA columns, the skeleton index and a persistent skeleton memo;
/// answers accumulate into [`QueryEngine::stats`]. Like [`LabeledRun`], an
/// engine is cheap to share within a thread but not `Sync` — the parallel
/// evaluator gives each shard its own skeleton and memo instead.
pub struct QueryEngine<S> {
    cols: SoaLabels,
    skeleton: S,
    memo: RefCell<SkeletonMemo>,
    context_only: Cell<u64>,
    skeleton_queries: Cell<u64>,
}

impl<S: SpecIndex> QueryEngine<S> {
    /// Builds the engine from a labeled run, taking over its skeleton.
    pub fn from_labeled(labeled: LabeledRun<S>) -> Self {
        let (labels, skeleton) = labeled.into_parts();
        Self::from_labels(&labels, skeleton)
    }

    /// Builds the engine from raw labels (e.g. decoded from a label file)
    /// plus the skeleton index they delegate to. The memo is left empty
    /// when the skeleton's probes are already constant-time — the batch
    /// kernel never consults it in that case.
    pub fn from_labels(labels: &[RunLabel], skeleton: S) -> Self {
        let cols = SoaLabels::from_labels(labels);
        let memo = SkeletonMemo::for_skeleton(&skeleton, || cols.origin_bound());
        QueryEngine {
            cols,
            skeleton,
            memo: RefCell::new(memo),
            context_only: Cell::new(0),
            skeleton_queries: Cell::new(0),
        }
    }

    /// [`from_labels`](Self::from_labels) adopting an already-warm skeleton
    /// memo — the [`crate::live::LiveRun::freeze`] handoff, which carries
    /// every `(origin, origin)` sub-answer accumulated during the run into
    /// the frozen engine instead of re-probing the skeleton. The memo must
    /// have been filled against the *same* skeleton; it is grown (never
    /// shrunk) to cover the labels' origins.
    pub fn from_labels_with_memo(
        labels: &[RunLabel],
        skeleton: S,
        mut memo: SkeletonMemo,
    ) -> Self {
        let cols = SoaLabels::from_labels(labels);
        if !skeleton.constant_time_queries() {
            memo.grow(cols.origin_bound());
        }
        QueryEngine {
            cols,
            skeleton,
            memo: RefCell::new(memo),
            context_only: Cell::new(0),
            skeleton_queries: Cell::new(0),
        }
    }

    /// Number of labeled vertices.
    pub fn vertex_count(&self) -> usize {
        self.cols.len()
    }

    /// The SoA label columns.
    pub fn columns(&self) -> &SoaLabels {
        &self.cols
    }

    /// The skeleton index queries delegate to.
    pub fn skeleton(&self) -> &S {
        &self.skeleton
    }

    /// Cumulative decision statistics (all batches plus scalar answers).
    pub fn stats(&self) -> EngineStats {
        let memo = self.memo.borrow();
        EngineStats {
            context_only: self.context_only.get(),
            skeleton: self.skeleton_queries.get(),
            skeleton_probes: memo.probes(),
            memo_hits: memo.hits(),
        }
    }

    /// Whether `u ⇝ v` — the scalar entry point, sharing the engine's memo.
    #[inline]
    pub fn answer(&self, u: RunVertexId, v: RunVertexId) -> bool {
        let (ans, path) = predicate_memo_traced(
            &self.cols.label(u),
            &self.cols.label(v),
            &self.skeleton,
            &mut self.memo.borrow_mut(),
        );
        match path {
            QueryPath::ContextOnly => self.context_only.set(self.context_only.get() + 1),
            QueryPath::Skeleton => self.skeleton_queries.set(self.skeleton_queries.get() + 1),
        }
        ans
    }

    /// Answers every pair of `pairs` in order.
    pub fn answer_batch(&self, pairs: &[(RunVertexId, RunVertexId)]) -> Vec<bool> {
        let mut out = Vec::new();
        self.answer_batch_into(pairs, &mut out);
        out
    }

    /// [`answer_batch`](Self::answer_batch) into a caller-owned buffer
    /// (cleared first), returning it as a slice. Lets steady-state callers
    /// reuse one allocation across batches.
    pub fn answer_batch_into<'o>(
        &self,
        pairs: &[(RunVertexId, RunVertexId)],
        out: &'o mut Vec<bool>,
    ) -> &'o [bool] {
        out.clear();
        out.reserve(pairs.len());
        let memo = &mut *self.memo.borrow_mut();
        let (ctx, skel) = answer_into(&self.cols, &self.skeleton, memo, pairs, out);
        self.context_only.set(self.context_only.get() + ctx);
        self.skeleton_queries.set(self.skeleton_queries.get() + skel);
        out
    }

    /// Answers `pairs` with up to `threads` shards (clamped to 64), each
    /// owning a clone of the engine's skeleton and a private memo (cloning
    /// an index is a memcpy of its label arrays; rebuilding one would
    /// repeat the full construction sweep per shard, cf. [`crate::batch`]).
    /// Results are in input
    /// order and identical to [`answer_batch`](Self::answer_batch) — the
    /// evaluation is deterministic regardless of scheduling. The
    /// scheduling-independent decision counts fold into
    /// [`stats`](Self::stats); shard-private memo probe/hit counts do not.
    pub fn answer_batch_parallel(
        &self,
        pairs: &[(RunVertexId, RunVertexId)],
        threads: usize,
    ) -> Vec<bool>
    where
        S: Clone + Send,
    {
        // Clamp the user-supplied shard count: each shard costs an OS
        // thread, a skeleton index and a memo, and a runaway value (a CLI
        // typo) must degrade to a bounded fan-out, not a spawn failure.
        const MAX_SHARDS: usize = 64;
        let threads = threads.clamp(1, MAX_SHARDS).min(pairs.len().max(1));
        // Fixed-size chunks pulled from a shared cursor: big enough to
        // amortize the per-chunk send, small enough to balance shards.
        let chunk = (pairs.len().div_ceil(threads.max(1) * 8)).clamp(1024, 1 << 20);
        let chunk_count = pairs.len().div_ceil(chunk);
        // A shard beyond the chunk count would clone a skeleton and build
        // a memo only to find the cursor already exhausted.
        let threads = threads.min(chunk_count);
        if threads <= 1 {
            return self.answer_batch(pairs);
        }
        let cursor = AtomicUsize::new(0);
        let cols = &self.cols;
        let (tx, rx) = std::sync::mpsc::channel();
        let (mut ctx_total, mut skel_total) = (0u64, 0u64);
        let mut out = vec![false; pairs.len()];
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let cursor = &cursor;
                let skeleton = self.skeleton.clone();
                scope.spawn(move || {
                    let mut memo =
                        SkeletonMemo::for_skeleton(&skeleton, || cols.origin_bound());
                    let mut buf: Vec<bool> = Vec::with_capacity(chunk);
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= chunk_count {
                            break;
                        }
                        let start = idx * chunk;
                        let end = (start + chunk).min(pairs.len());
                        buf.clear();
                        let (ctx, skel) =
                            answer_into(cols, &skeleton, &mut memo, &pairs[start..end], &mut buf);
                        if tx.send((start, std::mem::take(&mut buf), ctx, skel)).is_err() {
                            break;
                        }
                        buf = Vec::with_capacity(chunk);
                    }
                });
            }
            drop(tx);
            for (start, answers, ctx, skel) in rx {
                out[start..start + answers.len()].copy_from_slice(&answers);
                ctx_total += ctx;
                skel_total += skel;
            }
        });
        // Shard-private memo probe/hit counts die with their shards; only
        // the scheduling-independent decision counts fold into the stats.
        self.context_only.set(self.context_only.get() + ctx_total);
        self.skeleton_queries
            .set(self.skeleton_queries.get() + skel_total);
        out
    }
}

/// The shared batch kernel: answers `pairs` over the columns, appending to
/// `out`. Returns `(context_only, skeleton)` decision counts.
///
/// Skeletons whose probes are already constant-time bit lookups
/// ([`SpecIndex::constant_time_queries`], e.g. TCM) are probed directly —
/// for them the memo's byte-matrix round trip costs more than the probe it
/// would save. Those direct probes do not appear in the memo's
/// probe/hit counters.
#[inline]
pub(crate) fn answer_into<Q: Copy + Ord, S: SpecIndex>(
    cols: &SoaColumns<Q>,
    skeleton: &S,
    memo: &mut SkeletonMemo,
    pairs: &[(RunVertexId, RunVertexId)],
    out: &mut Vec<bool>,
) -> (u64, u64) {
    // Equal-length sub-slices + one explicit range check per pair let the
    // compiler elide the per-column bounds checks in the gathers below.
    let n = cols.q1.len();
    let (q1, q2, q3, origin) = (
        &cols.q1[..n],
        &cols.q2[..n],
        &cols.q3[..n],
        &cols.origin[..n],
    );
    let mut ctx = 0u64;
    let mut skel = 0u64;
    let memoize = !skeleton.constant_time_queries();
    out.extend(pairs.iter().map(|&(u, v)| {
        let (a, b) = (u.index(), v.index());
        assert!(a < n && b < n, "query vertex out of range");
        match context_fast_path((q1[a], q2[a], q3[a]), (q1[b], q2[b], q3[b])) {
            Some(ans) => {
                ctx += 1;
                ans
            }
            None if memoize => {
                skel += 1;
                memo.reaches(origin[a], origin[b], skeleton)
            }
            None => {
                skel += 1;
                skeleton.reaches(origin[a], origin[b])
            }
        }
    }));
    (ctx, skel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::predicate;
    use wfp_graph::TransitiveClosure;
    use wfp_model::fixtures::{paper_run, paper_spec};
    use wfp_speclabel::{SchemeKind, SpecScheme};

    fn paper_engine(kind: SchemeKind) -> (wfp_model::Run, QueryEngine<SpecScheme>) {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let labeled =
            LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
        (run, QueryEngine::from_labeled(labeled))
    }

    fn all_pairs(run: &wfp_model::Run) -> Vec<(RunVertexId, RunVertexId)> {
        run.vertices()
            .flat_map(|u| run.vertices().map(move |v| (u, v)))
            .collect()
    }

    #[test]
    fn batch_matches_the_bfs_oracle_under_every_scheme() {
        for &kind in &SchemeKind::ALL {
            let (run, engine) = paper_engine(kind);
            let oracle = TransitiveClosure::build(run.graph());
            let pairs = all_pairs(&run);
            let answers = engine.answer_batch(&pairs);
            for (&(u, v), &ans) in pairs.iter().zip(&answers) {
                assert_eq!(ans, oracle.reaches(u.raw(), v.raw()), "{kind} ({u},{v})");
            }
        }
    }

    #[test]
    fn batch_matches_scalar_predicate_and_scalar_answer() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let labeled = LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Dfs, spec.graph()),
            &run,
        )
        .unwrap();
        let pairs = all_pairs(&run);
        let scalar: Vec<bool> = pairs
            .iter()
            .map(|&(u, v)| predicate(labeled.label(u), labeled.label(v), labeled.skeleton()))
            .collect();
        let engine = QueryEngine::from_labeled(labeled);
        assert_eq!(engine.answer_batch(&pairs), scalar);
        for (&(u, v), &expected) in pairs.iter().zip(&scalar) {
            assert_eq!(engine.answer(u, v), expected);
        }
    }

    #[test]
    fn memo_amortizes_repeated_origin_pairs() {
        let (run, engine) = paper_engine(SchemeKind::Bfs);
        let pairs = all_pairs(&run);
        engine.answer_batch(&pairs);
        let first = engine.stats();
        assert_eq!(first.total(), pairs.len() as u64);
        assert!(first.skeleton_probes > 0);
        // A warm second pass probes the skeleton zero more times.
        engine.answer_batch(&pairs);
        let second = engine.stats();
        assert_eq!(second.total(), 2 * pairs.len() as u64);
        assert_eq!(second.skeleton_probes, first.skeleton_probes);
        assert!(second.memo_hits > first.memo_hits);
    }

    #[test]
    fn parallel_matches_sequential_and_is_deterministic() {
        // TCM bypasses the shard memos, BFS exercises them: both paths
        // must agree with the sequential batch across interleaved chunks.
        for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
            let (run, engine) = paper_engine(kind);
            // Repeat the pair set to cross the chunking threshold.
            let mut pairs = Vec::new();
            for _ in 0..40 {
                pairs.extend(all_pairs(&run));
            }
            let sequential = engine.answer_batch(&pairs);
            for threads in [2usize, 3, 8] {
                let parallel = engine.answer_batch_parallel(&pairs, threads);
                assert_eq!(parallel, sequential, "{kind}, threads = {threads}");
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_labels() {
        let (_, engine) = paper_engine(SchemeKind::Tcm);
        assert!(engine.answer_batch(&[]).is_empty());
        assert_eq!(engine.stats().total(), 0);

        let g = wfp_graph::DiGraph::with_vertices(1);
        let empty = QueryEngine::from_labels(&[], SpecScheme::build(SchemeKind::Tcm, &g));
        assert_eq!(empty.vertex_count(), 0);
        assert!(empty.columns().is_empty());
        assert_eq!(empty.columns().origin_bound(), 0);
        assert!(empty.answer_batch(&[]).is_empty());
    }

    #[test]
    fn from_labels_round_trips_columns() {
        let (run, engine) = paper_engine(SchemeKind::Chain);
        let spec = paper_spec();
        let labeled = LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Chain, spec.graph()),
            &run,
        )
        .unwrap();
        for v in run.vertices() {
            assert_eq!(&engine.columns().label(v), labeled.label(v));
        }
        assert_eq!(engine.vertex_count(), run.vertex_count());
    }

    #[test]
    fn memo_out_of_bound_pairs_probe_directly() {
        let mut g = wfp_graph::DiGraph::with_vertices(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let skeleton = SpecScheme::build(SchemeKind::Tcm, &g);
        let mut memo = SkeletonMemo::new(1); // covers only origin 0
        assert!(memo.reaches(0, 0, &skeleton));
        assert!(memo.reaches(1, 2, &skeleton)); // out of bound: direct probe
        assert!(memo.reaches(1, 2, &skeleton)); // probed again, not memoized
        assert_eq!(memo.probes(), 3);
        assert_eq!(memo.hits(), 0);
        assert!(memo.reaches(0, 0, &skeleton));
        assert_eq!(memo.hits(), 1);
    }
}
