//! The spec/run split: shared per-specification state ([`SpecContext`])
//! and slim per-run state ([`RunHandle`]).
//!
//! The paper's headline result is that a run label factors into a tiny
//! per-run part (three order positions) plus a *skeleton* part that depends
//! only on the specification (§4, §7) — which is what makes the scheme
//! amortize: all runs of one workflow spec share a single skeleton index.
//! This module makes that factoring explicit in the type system:
//!
//! * [`SpecContext<S>`] owns everything that is a function of the
//!   specification alone — the skeleton index and a **concurrent-read**
//!   skeleton memo ([`SharedMemo`]) — and is `Arc`-shareable across every
//!   engine, live run and fleet serving that specification.
//! * [`RunHandle`] owns everything that is a function of one run — the
//!   struct-of-arrays label columns — and nothing else: ~16 bytes per
//!   executed vertex, no skeleton, no memo.
//! * [`crate::engine::QueryEngine`] is a thin view over one
//!   `(Arc<SpecContext>, RunHandle)` pair; [`crate::fleet::FleetEngine`]
//!   serves many `RunHandle`s (and in-flight [`crate::live::LiveRun`]s)
//!   over one context.
//!
//! [`SharedMemo`] replaces the former `&mut`-access dense memo with a
//! two-tier interior-mutable design:
//!
//! * **warm snapshot** — a dense `side × side` matrix of atomic bytes over
//!   the origin pairs `(a, b)` with `a, b < side` (sized to the
//!   specification's module count, so every valid origin pair lands here).
//!   Reads and writes are single relaxed atomic byte operations — the same
//!   cost as the old memo's plain byte load, but safe under concurrent
//!   readers. Writes are idempotent (every writer computes the same
//!   deterministic sub-answer), so races only waste a probe, never change
//!   an answer.
//! * **miss shards** — origin pairs beyond the snapshot (labels decoded
//!   from untrusted bytes, or a snapshot deliberately sized small) fall
//!   through to a small array of mutex-guarded hash maps sharded by pair,
//!   so even out-of-snapshot traffic memoizes without serializing readers
//!   behind one lock. The old design probed such pairs directly every
//!   time.

use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use wfp_graph::FxHashMap;
use wfp_model::{RunVertexId, Specification};
use wfp_speclabel::SpecIndex;

use crate::engine::SoaLabels;
use crate::label::RunLabel;
use crate::packed::{PackedColumns, PackedStore};

/// Cell states of the warm snapshot tier.
const MEMO_UNKNOWN: u8 = 0;
const MEMO_FALSE: u8 = 1;
const MEMO_TRUE: u8 = 2;

/// Number of miss shards (a power of two; pairs hash across them).
const MISS_SHARDS: usize = 16;

/// A concurrent-read memo over `(origin_a, origin_b)` skeleton probes —
/// the shared-memo half of the spec/run split. See the module docs for the
/// two-tier design.
///
/// All methods take `&self`; the memo is `Sync`, so one instance (inside
/// an `Arc`-shared [`SpecContext`]) serves any number of concurrent
/// readers. A memo never changes answers, only their cost.
pub struct SharedMemo {
    side: u32,
    /// dense warm tier: `side × side` atomic cells
    cells: Vec<AtomicU8>,
    /// miss tier: pairs beyond the snapshot, sharded by pair hash
    shards: Box<[Mutex<FxHashMap<u64, bool>>]>,
    /// skeleton probes actually performed (either tier's misses)
    probes: AtomicU64,
    /// probes avoided (either tier's hits)
    hits: AtomicU64,
}

impl SharedMemo {
    /// Hard cap on the snapshot side: the dense tier costs `side²` bytes,
    /// and origin ids can come from *untrusted* label bytes (a decoded
    /// label file, a deserialized provenance store), so a requested bound
    /// must not size an unbounded allocation. 4096 (a 16 MiB matrix)
    /// covers every realistic specification — the paper's largest has 200
    /// modules — while pairs beyond the side land in the miss shards.
    pub const SIDE_CAP: u32 = 4096;

    /// Cap on the entries one miss shard will hold. Untrusted origin ids
    /// must not drive unbounded allocation any more than the snapshot
    /// side may: once a shard is full, further out-of-snapshot pairs are
    /// probed directly (correct, just unamortized — exactly the old dense
    /// memo's behavior for every out-of-bound pair).
    pub const MISS_SHARD_CAP: usize = 1 << 16;

    /// A memo whose warm snapshot covers origins `0..bound.min(SIDE_CAP)`;
    /// pairs beyond the side memoize through the miss shards.
    pub fn new(bound: u32) -> Self {
        let side = bound.min(Self::SIDE_CAP);
        let cells = (0..side as usize * side as usize)
            .map(|_| AtomicU8::new(MEMO_UNKNOWN))
            .collect();
        let shards = (0..MISS_SHARDS)
            .map(|_| Mutex::new(FxHashMap::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SharedMemo {
            side,
            cells,
            shards,
            probes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Exclusive upper bound on the origins of `labels` — the snapshot
    /// side a memo needs to keep them all in the dense tier.
    pub fn origin_bound_of<'a>(labels: impl IntoIterator<Item = &'a RunLabel>) -> u32 {
        labels
            .into_iter()
            .map(|l| l.origin.raw().saturating_add(1))
            .max()
            .unwrap_or(0)
    }

    /// The memo `skeleton` wants: empty when its probes are already
    /// constant-time ([`SpecIndex::constant_time_queries`] — evaluators
    /// never consult the memo then, so neither the `bound()` scan nor the
    /// matrix allocation runs), otherwise sized by `bound()`. The single
    /// home of the bypass policy for every batch evaluator in the stack.
    pub fn for_skeleton<S: SpecIndex>(skeleton: &S, bound: impl FnOnce() -> u32) -> Self {
        if skeleton.constant_time_queries() {
            SharedMemo::new(0)
        } else {
            SharedMemo::new(bound())
        }
    }

    /// `skeleton.reaches(a, b)`, memoized — concurrent-read, `&self`.
    #[inline]
    pub fn reaches<S: SpecIndex>(&self, a: u32, b: u32, skeleton: &S) -> bool {
        if a < self.side && b < self.side {
            let cell = &self.cells[a as usize * self.side as usize + b as usize];
            match cell.load(Ordering::Relaxed) {
                MEMO_TRUE => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    true
                }
                MEMO_FALSE => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    false
                }
                _ => {
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    let ans = skeleton.reaches(a, b);
                    // Idempotent: every racer stores the same value.
                    cell.store(if ans { MEMO_TRUE } else { MEMO_FALSE }, Ordering::Relaxed);
                    ans
                }
            }
        } else {
            let key = (a as u64) << 32 | b as u64;
            let shard =
                &self.shards[(a.wrapping_mul(0x9E37_79B1) ^ b) as usize % MISS_SHARDS];
            if let Some(&ans) = shard.lock().expect("memo shard poisoned").get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return ans;
            }
            // Probe outside the lock: a skeleton probe may be a whole BFS,
            // and racing probes of the same pair agree anyway.
            self.probes.fetch_add(1, Ordering::Relaxed);
            let ans = skeleton.reaches(a, b);
            let mut shard = shard.lock().expect("memo shard poisoned");
            // bounded: a full shard stops caching, never stops answering
            if shard.len() < Self::MISS_SHARD_CAP {
                shard.insert(key, ans);
            }
            ans
        }
    }

    /// Credits `n` avoided probes to the hit counter without touching the
    /// cells. The sweep kernel's per-batch probe table answers repeated
    /// `(a, b)` lanes locally after their first lane warmed the memo cell
    /// through [`reaches`](Self::reaches); each such lane would have been
    /// a memo hit under per-lane probing, so the kernel accounts for them
    /// here in bulk — one atomic add per batch instead of one per lane —
    /// keeping the probe/hit counters identical to the scalar kernel's.
    #[inline]
    pub fn note_hits(&self, n: u64) {
        if n != 0 {
            self.hits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The covered side (exclusive origin bound) of the warm snapshot.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Skeleton probes actually performed (misses in either tier).
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Probes avoided by the memo (hits in either tier).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Dumps the dense warm tier as one byte per cell (`side²` bytes) —
    /// the payload of a [`crate::snapshot::seg::MEMO_WARM`] segment.
    /// Relaxed reads: concurrent writers at most turn an *unknown* cell
    /// into a known one, so any interleaving dumps a valid snapshot.
    pub fn warm_cells(&self) -> Vec<u8> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Rebuilds a memo whose dense tier starts from `cells` (the output of
    /// [`warm_cells`](Self::warm_cells)) instead of all-unknown — the warm
    /// hand-me-down that lets a restarted service skip its warm-up probes.
    /// `None` when the cell count does not match `side²`, the side exceeds
    /// [`SIDE_CAP`](Self::SIDE_CAP), or a cell holds an undefined state.
    pub fn from_warm_cells(side: u32, cells: &[u8]) -> Option<Self> {
        if side > Self::SIDE_CAP || cells.len() != side as usize * side as usize {
            return None;
        }
        if cells.iter().any(|&c| c > MEMO_TRUE) {
            return None;
        }
        let mut memo = SharedMemo::new(side);
        for (cell, &v) in memo.cells.iter_mut().zip(cells) {
            *cell.get_mut() = v;
        }
        Some(memo)
    }

    /// Decided (non-unknown) cells in the dense warm tier — how much
    /// warm-up a snapshot carries across a restart.
    pub fn warm_entries(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) != MEMO_UNKNOWN)
            .count()
    }

    /// Entries currently held by the miss shards.
    pub fn miss_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum()
    }

    /// Approximate heap footprint in bytes (snapshot matrix plus miss-shard
    /// entries), for the fleet's shared-vs-duplicated memory accounting.
    pub fn memory_bytes(&self) -> usize {
        // each miss entry: u64 key + bool + hash-table overhead (~2x)
        self.cells.len() + self.miss_entries() * 2 * (std::mem::size_of::<u64>() + 1)
    }
}

impl std::fmt::Debug for SharedMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemo")
            .field("side", &self.side)
            .field("probes", &self.probes())
            .field("hits", &self.hits())
            .field("miss_entries", &self.miss_entries())
            .finish()
    }
}

/// Everything that depends on the *specification* alone: the skeleton
/// index plus the shared skeleton memo. One instance serves every run of
/// the spec — wrap it in an [`std::sync::Arc`] and hand clones to engines,
/// live runs and fleets (see the module docs).
///
/// `SpecContext<S>` itself implements [`SpecIndex`] (probing through the
/// memo), so `Arc<SpecContext<S>>` can stand in wherever a skeleton index
/// is expected.
pub struct SpecContext<S> {
    skeleton: S,
    memo: SharedMemo,
    /// false when the skeleton's probes are already constant-time — then
    /// the memo is pure overhead and every evaluator bypasses it
    memoize: bool,
}

impl<S: SpecIndex> SpecContext<S> {
    /// A context whose memo snapshot covers origins `0..origin_bound`
    /// (e.g. the specification's module count). The memo is left empty
    /// when `skeleton`'s probes are already constant-time.
    pub fn new(skeleton: S, origin_bound: u32) -> Self {
        let memo = SharedMemo::for_skeleton(&skeleton, || origin_bound);
        let memoize = !skeleton.constant_time_queries();
        SpecContext {
            skeleton,
            memo,
            memoize,
        }
    }

    /// [`new`](Self::new) sized for `spec`: every module of the
    /// specification is a valid origin, so the whole origin space lands in
    /// the warm snapshot.
    pub fn for_spec(spec: &Specification, skeleton: S) -> Self {
        SpecContext::new(skeleton, spec.module_count() as u32)
    }

    /// A context around a memo restored from a snapshot
    /// ([`crate::snapshot::read_spec_context`]); the bypass policy is
    /// re-derived from the (rebuilt) skeleton, exactly as in
    /// [`new`](Self::new).
    pub(crate) fn from_restored(skeleton: S, memo: SharedMemo) -> Self {
        let memoize = !skeleton.constant_time_queries();
        SpecContext {
            skeleton,
            memo,
            memoize,
        }
    }

    /// Wraps the context for sharing — the canonical way to obtain the
    /// `Arc` that engines, live runs and fleets hold.
    ///
    /// (Lint note: `Arc<SpecContext<S>>` is deliberate even when `S` is
    /// not `Sync` — the search schemes carry single-thread scratch
    /// buffers, and such contexts are shared across *owners* within one
    /// thread; `Sync` skeletons additionally share across threads.)
    #[allow(clippy::arc_with_non_send_sync)]
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The skeleton index queries delegate to.
    pub fn skeleton(&self) -> &S {
        &self.skeleton
    }

    /// The shared skeleton memo.
    pub fn memo(&self) -> &SharedMemo {
        &self.memo
    }

    /// The memo evaluators should thread through the batch kernel: `None`
    /// under constant-time skeletons (the memo round trip costs more than
    /// the probe it would save), `Some` otherwise.
    #[inline]
    pub fn probe_memo(&self) -> Option<&SharedMemo> {
        self.memoize.then_some(&self.memo)
    }

    /// `skeleton.reaches(a, b)` through the shared memo (bypassed for
    /// constant-time skeletons).
    #[inline]
    pub fn reaches(&self, a: u32, b: u32) -> bool {
        if self.memoize {
            self.memo.reaches(a, b, &self.skeleton)
        } else {
            self.skeleton.reaches(a, b)
        }
    }

    /// Approximate heap footprint in bytes of the spec-level state
    /// (skeleton labels plus memo) — the amount *saved per additional run*
    /// by sharing one context instead of duplicating it.
    pub fn memory_bytes(&self) -> usize {
        self.skeleton.total_bits().div_ceil(8) + self.memo.memory_bytes()
    }
}

impl<S: SpecIndex> SpecIndex for SpecContext<S> {
    fn build(graph: &wfp_graph::DiGraph) -> Self {
        let skeleton = S::build(graph);
        let bound = graph.vertex_count() as u32;
        SpecContext::new(skeleton, bound)
    }

    #[inline]
    fn reaches(&self, u: u32, v: u32) -> bool {
        SpecContext::reaches(self, u, v)
    }

    fn constant_time_queries(&self) -> bool {
        // probes through the warm memo are themselves one atomic byte load
        self.skeleton.constant_time_queries()
    }

    fn label_bits(&self, v: u32) -> usize {
        self.skeleton.label_bits(v)
    }

    fn name(&self) -> &'static str {
        self.skeleton.name()
    }

    fn total_bits(&self) -> usize {
        self.skeleton.total_bits()
    }
}

/// The per-run half of the spec/run split: the struct-of-arrays label
/// columns of one labeled run, and nothing else. ~16 bytes per vertex;
/// pair it with an `Arc<SpecContext>` to query (via
/// [`crate::engine::QueryEngine`] or [`crate::fleet::FleetEngine`]).
pub struct RunHandle {
    cols: SoaLabels,
    /// decision counters, shaped like [`crate::engine::EngineStats`]'s
    /// first two fields; atomic so fleets can account per run under `&self`
    context_only: AtomicU64,
    skeleton_queries: AtomicU64,
}

impl RunHandle {
    /// Transposes a label slice into a run handle.
    pub fn from_labels(labels: &[RunLabel]) -> Self {
        Self::from_columns(SoaLabels::from_labels(labels))
    }

    /// Wraps already-transposed columns.
    pub fn from_columns(cols: SoaLabels) -> Self {
        RunHandle {
            cols,
            context_only: AtomicU64::new(0),
            skeleton_queries: AtomicU64::new(0),
        }
    }

    /// Number of labeled vertices.
    pub fn vertex_count(&self) -> usize {
        self.cols.len()
    }

    /// The SoA label columns.
    pub fn columns(&self) -> &SoaLabels {
        &self.cols
    }

    /// Re-gathers the label of vertex `v` (spot checks only).
    pub fn label(&self, v: RunVertexId) -> RunLabel {
        self.cols.label(v)
    }

    /// Pairs decided by the context encoding alone, over this run.
    pub fn context_only(&self) -> u64 {
        self.context_only.load(Ordering::Relaxed)
    }

    /// Pairs delegated to the skeleton, over this run.
    pub fn skeleton_queries(&self) -> u64 {
        self.skeleton_queries.load(Ordering::Relaxed)
    }

    /// Folds one batch's decision counts into the run's counters.
    #[inline]
    pub(crate) fn count(&self, context_only: u64, skeleton: u64) {
        self.context_only.fetch_add(context_only, Ordering::Relaxed);
        self.skeleton_queries.fetch_add(skeleton, Ordering::Relaxed);
    }

    /// Approximate heap footprint in bytes: four `u32` columns.
    pub fn memory_bytes(&self) -> usize {
        self.cols.len() * 4 * std::mem::size_of::<u32>()
    }
}

impl std::fmt::Debug for RunHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHandle")
            .field("vertices", &self.cols.len())
            .finish()
    }
}

/// A [`RunHandle`] whose label columns stay bit-packed
/// ([`PackedStore`]): the packed-resident form a fleet serves when a
/// run is sealed cold ([`crate::fleet::FleetEngine::seal_packed`]) or the
/// registry's packed tier compresses it under memory pressure. The store
/// is either decoded heap frames ([`PackedColumns`]) or a zero-copy view
/// into a shared snapshot buffer ([`crate::PackedColumnsView`]). Queries
/// decode inside the sweep kernel's gather — answers and counters are
/// byte-identical to the raw handle, at a fraction of the footprint.
pub struct PackedRunHandle {
    cols: PackedStore,
    context_only: AtomicU64,
    skeleton_queries: AtomicU64,
}

impl PackedRunHandle {
    /// Packs a raw run handle, carrying its decision counters over so
    /// fleet statistics stay continuous across a seal.
    pub fn pack(handle: &RunHandle) -> Self {
        let packed = Self::from_columns(PackedColumns::pack(handle.columns()));
        packed.count(handle.context_only(), handle.skeleton_queries());
        packed
    }

    /// Wraps already-packed owned columns (fresh counters — the snapshot
    /// layer restores persisted counters separately).
    pub fn from_columns(cols: PackedColumns) -> Self {
        Self::from_store(PackedStore::Owned(cols))
    }

    /// Wraps either resident form of packed columns (fresh counters).
    pub fn from_store(cols: PackedStore) -> Self {
        PackedRunHandle {
            cols,
            context_only: AtomicU64::new(0),
            skeleton_queries: AtomicU64::new(0),
        }
    }

    /// Decodes back to a raw run handle, counters included — the inverse
    /// of [`pack`](Self::pack), byte-identical columns guaranteed.
    pub fn unpack(&self) -> RunHandle {
        let handle = RunHandle::from_columns(self.cols.unpack());
        handle.count(self.context_only(), self.skeleton_queries());
        handle
    }

    /// Number of labeled vertices.
    pub fn vertex_count(&self) -> usize {
        self.cols.len()
    }

    /// The packed label columns (owned or zero-copy).
    pub fn columns(&self) -> &PackedStore {
        &self.cols
    }

    /// Re-gathers the label of vertex `v` (spot checks only).
    pub fn label(&self, v: RunVertexId) -> RunLabel {
        self.cols.label(v)
    }

    /// Pairs decided by the context encoding alone, over this run.
    pub fn context_only(&self) -> u64 {
        self.context_only.load(Ordering::Relaxed)
    }

    /// Pairs delegated to the skeleton, over this run.
    pub fn skeleton_queries(&self) -> u64 {
        self.skeleton_queries.load(Ordering::Relaxed)
    }

    /// Folds one batch's decision counts into the run's counters.
    #[inline]
    pub(crate) fn count(&self, context_only: u64, skeleton: u64) {
        self.context_only.fetch_add(context_only, Ordering::Relaxed);
        self.skeleton_queries.fetch_add(skeleton, Ordering::Relaxed);
    }

    /// Approximate heap footprint in bytes: the packed frames.
    pub fn memory_bytes(&self) -> usize {
        self.cols.memory_bytes()
    }
}

impl std::fmt::Debug for PackedRunHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedRunHandle")
            .field("vertices", &self.cols.len())
            .field("bytes", &self.cols.memory_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_model::fixtures::{paper_run, paper_spec};
    use wfp_speclabel::{SchemeKind, SpecScheme};

    #[test]
    fn shared_memo_caches_both_tiers() {
        let mut g = wfp_graph::DiGraph::with_vertices(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let skeleton = SpecScheme::build(SchemeKind::Bfs, &g);
        let memo = SharedMemo::new(1); // snapshot covers only origin 0
        assert!(memo.reaches(0, 0, &skeleton));
        assert!(memo.reaches(1, 2, &skeleton)); // beyond the snapshot: miss shard
        assert_eq!(memo.probes(), 2);
        assert_eq!(memo.hits(), 0);
        // second probes of both pairs hit their tiers
        assert!(memo.reaches(0, 0, &skeleton));
        assert!(memo.reaches(1, 2, &skeleton));
        assert_eq!(memo.probes(), 2);
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.miss_entries(), 1);
        assert!(memo.memory_bytes() > 0);
    }

    #[test]
    fn shared_memo_is_safe_under_concurrent_readers() {
        let mut g = wfp_graph::DiGraph::with_vertices(8);
        for v in 1..8 {
            g.add_edge(v - 1, v);
        }
        let oracle = wfp_graph::TransitiveClosure::build(&g);
        let skeleton = SpecScheme::build(SchemeKind::Bfs, &g);
        let memo = SharedMemo::new(4); // half snapshot, half miss shards
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let memo = &memo;
                let oracle = &oracle;
                // each thread gets its own scratch-carrying skeleton clone
                let skeleton = skeleton.clone();
                scope.spawn(move || {
                    for pass in 0..3 {
                        for a in 0..8u32 {
                            for b in 0..8u32 {
                                assert_eq!(
                                    memo.reaches(a, b, &skeleton),
                                    oracle.reaches(a, b),
                                    "({a},{b}) pass {pass}"
                                );
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(memo.probes() + memo.hits(), 4 * 3 * 64);
        assert!(memo.hits() > 0);
    }

    #[test]
    fn spec_context_is_an_index_and_bypasses_for_tcm() {
        let spec = paper_spec();
        let bfs = SpecContext::for_spec(&spec, SpecScheme::build(SchemeKind::Bfs, spec.graph()));
        assert!(bfs.probe_memo().is_some());
        assert!(bfs.reaches(0, 0));
        assert!(bfs.memo().probes() + bfs.memo().hits() > 0);
        let tcm = SpecContext::for_spec(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
        assert!(tcm.probe_memo().is_none());
        assert!(tcm.reaches(0, 0));
        assert_eq!(tcm.memo().probes(), 0, "constant-time probes bypass the memo");
        assert!(tcm.memory_bytes() > 0);
        // the SpecIndex impl answers identically to the wrapped skeleton
        use wfp_speclabel::SpecIndex as _;
        let n = spec.module_count() as u32;
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    SpecIndex::reaches(&bfs, a, b),
                    tcm.skeleton().reaches(a, b),
                    "({a},{b})"
                );
            }
        }
        assert_eq!(bfs.name(), "BFS");
    }

    #[test]
    fn run_handle_round_trips_labels() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let labeled = crate::LabeledRun::build(
            &spec,
            SpecScheme::build(SchemeKind::Tcm, spec.graph()),
            &run,
        )
        .unwrap();
        let handle = RunHandle::from_labels(labeled.labels());
        assert_eq!(handle.vertex_count(), run.vertex_count());
        for v in run.vertices() {
            assert_eq!(&handle.label(v), labeled.label(v));
        }
        assert_eq!(handle.memory_bytes(), run.vertex_count() * 16);
        assert_eq!(handle.context_only(), 0);
    }
}
