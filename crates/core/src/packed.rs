//! Bit-packed label columns: the compressed resident form of a frozen run.
//!
//! The raw [`SoaLabels`] store spends a full
//! `u32` per coordinate — 16 bytes per vertex — even though the paper's
//! point is that run labels are *short*: `q1/q2/q3` are preorder positions
//! in `[0, 3n)` and `origin` is a module id in `[0, n_G)`. This module
//! packs each column independently with frame-of-reference encoding (store
//! `min`, then `value − min` at the smallest bit width covering
//! `max − min`), chosen per column when a run is sealed:
//!
//! * **Resident footprint** — a packed run costs `Σ widths / 8` bytes per
//!   vertex (typically ~6–7 instead of 16), so cold, evicted, or
//!   memory-pressured fleets can stay *serving* in packed form instead of
//!   being dropped to disk ([`crate::fleet::FleetEngine::seal_packed`],
//!   the registry's packed tier).
//! * **Snapshot size** — the same frames are the
//!   [`seg::PACKED_COLUMNS`](crate::snapshot::seg::PACKED_COLUMNS) segment
//!   payload, CRC-guarded like every segment, with the raw `RUN_COLUMNS`
//!   encoding still decoding for old snapshots.
//! * **Direct serving** — queries do **not** unpack the run: the two-phase
//!   sweep kernel ([`crate::engine`]) gathers 64-lane blocks through a
//!   shift-and-mask decode into the same stack scratch the raw columns
//!   use, so answers are byte-identical and the unpack cost is a handful
//!   of ALU ops per lane against a column that now fits deeper in cache.
//!
//! [`PackedEngine`] is the single-run packed counterpart of
//! [`QueryEngine`]; fleets mix packed and raw
//! slots freely.

use std::sync::Arc;

use wfp_model::RunVertexId;
use wfp_speclabel::SpecIndex;

use crate::context::{PackedRunHandle, SpecContext};
use crate::engine::{ColumnGather, EngineStats, QueryEngine, SoaLabels};
use crate::label::{QueryPath, RunLabel};
use crate::snapshot::{put_varint, Cursor, FormatError};

/// Version byte leading every packed-columns payload, bumped independently
/// of the container version so the encoding can evolve without invalidating
/// whole snapshots.
pub const PACKED_VERSION: u8 = 1;

/// One frame-of-reference packed column: `base + deltas` at a fixed bit
/// width, deltas stored little-endian-contiguous in 64-bit words.
#[derive(Clone, Debug, PartialEq, Eq)]
struct PackedColumn {
    /// The column minimum; every stored delta is relative to it.
    base: u32,
    /// Bits per delta, `0..=32`. Width 0 means the column is constant.
    width: u32,
    /// Packed deltas plus one trailing zero pad word, so a two-word
    /// straddling read at the last element never indexes past the end.
    words: Vec<u64>,
}

impl PackedColumn {
    fn pack(vals: &[u32]) -> Self {
        let base = vals.iter().copied().min().unwrap_or(0);
        let spread = vals.iter().copied().max().unwrap_or(0) - base;
        let width = if spread == 0 {
            0
        } else {
            32 - spread.leading_zeros()
        };
        let mut words = vec![0u64; Self::word_count(vals.len() as u64, width) + 1];
        for (i, &v) in vals.iter().enumerate() {
            let delta = u64::from(v - base);
            let bit = i as u64 * u64::from(width);
            let (w, s) = ((bit >> 6) as usize, (bit & 63) as u32);
            words[w] |= delta << s;
            if s + width > 64 {
                words[w + 1] |= delta >> (64 - s);
            }
        }
        PackedColumn { base, width, words }
    }

    /// Packed words needed for `len` deltas of `width` bits (pad excluded).
    fn word_count(len: u64, width: u32) -> usize {
        ((len * u64::from(width)).div_ceil(64)) as usize
    }

    /// Decodes element `i`. The caller guards `i < len`; a two-word window
    /// makes the extraction branchless for every alignment.
    #[inline(always)]
    fn get(&self, i: usize) -> u32 {
        if self.width == 0 {
            return self.base;
        }
        let bit = i as u64 * u64::from(self.width);
        let (w, s) = ((bit >> 6) as usize, (bit & 63) as u32);
        // Branchless two-word window without 128-bit shifts: the straddle
        // contribution is `words[w+1] << (64 - s)`, computed as a double
        // shift so `s == 0` degenerates to zero instead of an overflow.
        let lo = self.words[w] >> s;
        let hi = (self.words[w + 1] << 1) << (63 - s);
        let mask = (1u64 << self.width) - 1;
        self.base + ((lo | hi) & mask) as u32
    }

    fn memory_bytes(&self) -> usize {
        self.words.len() * 8 + std::mem::size_of::<u32>() * 2
    }
}

/// Bit-packed struct-of-arrays label storage for one frozen run: the four
/// columns of [`SoaLabels`], each frame-of-reference encoded at its own
/// width. Serves the sweep kernel directly (no unpacking step) and
/// round-trips losslessly via [`unpack`](Self::unpack).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedColumns {
    len: usize,
    q1: PackedColumn,
    q2: PackedColumn,
    q3: PackedColumn,
    origin: PackedColumn,
    origin_bound: u32,
}

impl PackedColumns {
    /// Packs raw label columns, choosing each column's base and bit width
    /// from its actual value range.
    pub fn pack(cols: &SoaLabels) -> Self {
        let (q1, q2, q3, origin) = cols.raw_columns();
        PackedColumns {
            len: cols.len(),
            q1: PackedColumn::pack(q1),
            q2: PackedColumn::pack(q2),
            q3: PackedColumn::pack(q3),
            origin: PackedColumn::pack(origin),
            origin_bound: cols.origin_bound(),
        }
    }

    /// Decodes back to raw `u32` columns — byte-identical to the columns
    /// that were packed.
    pub fn unpack(&self) -> SoaLabels {
        let col = |c: &PackedColumn| (0..self.len).map(|i| c.get(i)).collect::<Vec<u32>>();
        SoaLabels::from_raw_columns(col(&self.q1), col(&self.q2), col(&self.q3), col(&self.origin))
            .expect("packed columns share one length")
    }

    /// Number of packed labels.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no labels are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive upper bound on the stored origin ids (0 when empty).
    pub fn origin_bound(&self) -> u32 {
        self.origin_bound
    }

    /// The four per-column bit widths `(q1, q2, q3, origin)`.
    pub fn widths(&self) -> (u32, u32, u32, u32) {
        (
            self.q1.width,
            self.q2.width,
            self.q3.width,
            self.origin.width,
        )
    }

    /// Re-gathers the label of vertex `v` (spot checks and the scalar
    /// probe path; the batch paths decode inside the sweep).
    pub fn label(&self, v: RunVertexId) -> RunLabel {
        let i = v.index();
        assert!(i < self.len, "query vertex out of range");
        RunLabel {
            q1: self.q1.get(i),
            q2: self.q2.get(i),
            q3: self.q3.get(i),
            origin: wfp_model::ModuleId(self.origin.get(i)),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.q1.memory_bytes()
            + self.q2.memory_bytes()
            + self.q3.memory_bytes()
            + self.origin.memory_bytes()
    }

    /// Serializes as a [`seg::PACKED_COLUMNS`] payload: version byte, four
    /// `(base, width)` column headers, the vertex count, then the packed
    /// words of each column back to back (pad words excluded).
    ///
    /// [`seg::PACKED_COLUMNS`]: crate::snapshot::seg::PACKED_COLUMNS
    pub(crate) fn to_payload(&self) -> Vec<u8> {
        let cols = [&self.q1, &self.q2, &self.q3, &self.origin];
        let mut out = Vec::with_capacity(32 + self.memory_bytes());
        out.push(PACKED_VERSION);
        for c in cols {
            out.extend_from_slice(&c.base.to_le_bytes());
            out.push(c.width as u8);
        }
        put_varint(&mut out, self.len as u64);
        for c in cols {
            let exact = PackedColumn::word_count(self.len as u64, c.width);
            for &w in &c.words[..exact] {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Parses a [`to_payload`](Self::to_payload) buffer, rejecting
    /// inconsistent headers before sizing any allocation: widths above 32
    /// bits, `base + mask` overflowing the `u32` value space, vertex
    /// counts beyond the id space or beyond what the stored words can
    /// back. The origin bound is recomputed from the decoded deltas, so a
    /// forged payload cannot promise a smaller bound than it stores.
    pub(crate) fn from_payload(payload: &[u8]) -> Result<Self, FormatError> {
        let mut cur = Cursor::new(payload);
        let version = cur.u8()?;
        if version != PACKED_VERSION {
            return Err(FormatError::UnsupportedVersion(u16::from(version)));
        }
        let mut headers = [(0u32, 0u32); 4];
        for h in &mut headers {
            let base = cur.u32()?;
            let width = u32::from(cur.u8()?);
            if width > 32 {
                return Err(FormatError::Malformed("packed column width exceeds 32 bits"));
            }
            let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
            if u64::from(base) + mask > u64::from(u32::MAX) {
                return Err(FormatError::Malformed("packed column range overflows u32"));
            }
            *h = (base, width);
        }
        let len = cur.varint()?;
        if len > u64::from(u32::MAX) {
            return Err(FormatError::Malformed(
                "packed columns exceed the vertex id space",
            ));
        }
        let mut read_col = |&(base, width): &(u32, u32)| -> Result<PackedColumn, FormatError> {
            let exact = PackedColumn::word_count(len, width);
            let raw = cur.bytes(exact * 8)?;
            let mut words = Vec::with_capacity(exact + 1);
            words.extend(
                raw.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
            );
            words.push(0);
            Ok(PackedColumn { base, width, words })
        };
        let q1 = read_col(&headers[0])?;
        let q2 = read_col(&headers[1])?;
        let q3 = read_col(&headers[2])?;
        let origin = read_col(&headers[3])?;
        cur.finish()?;
        let len = len as usize;
        // Recompute the origin bound honestly. A zero-width origin column
        // is closed-form; otherwise the scan is bounded by the stored
        // words (len ≤ words·64/width), so a forged count cannot buy
        // unbounded work.
        let origin_bound = if len == 0 {
            0
        } else if origin.width == 0 {
            origin.base.saturating_add(1)
        } else {
            (0..len)
                .map(|i| origin.get(i).saturating_add(1))
                .max()
                .unwrap_or(0)
        };
        Ok(PackedColumns {
            len,
            q1,
            q2,
            q3,
            origin,
            origin_bound,
        })
    }
}

impl ColumnGather for PackedColumns {
    type Coord = u32;

    #[inline(always)]
    fn lane_count(&self) -> usize {
        self.len
    }

    #[inline(always)]
    fn coords(&self, i: usize) -> (u32, u32, u32) {
        (self.q1.get(i), self.q2.get(i), self.q3.get(i))
    }

    #[inline(always)]
    fn origin_of(&self, i: usize) -> u32 {
        self.origin.get(i)
    }

    #[inline(always)]
    fn origin_bound(&self) -> u32 {
        PackedColumns::origin_bound(self)
    }
}

/// A batched reachability engine over one **packed** run — the
/// [`QueryEngine`] counterpart for packed-resident serving: same shared
/// [`SpecContext`], same two-phase sweep kernel, same counters, with the
/// label columns staying in their compressed frames the whole time.
pub struct PackedEngine<S> {
    ctx: Arc<SpecContext<S>>,
    run: PackedRunHandle,
}

impl<S: SpecIndex> PackedEngine<S> {
    /// A view over an already-shared context and a packed run handle.
    pub fn from_parts(ctx: Arc<SpecContext<S>>, run: PackedRunHandle) -> Self {
        PackedEngine { ctx, run }
    }

    /// Number of labeled vertices.
    pub fn vertex_count(&self) -> usize {
        self.run.vertex_count()
    }

    /// The packed label columns.
    pub fn columns(&self) -> &PackedColumns {
        self.run.columns()
    }

    /// The shared spec-level state this engine answers through.
    pub fn context(&self) -> &Arc<SpecContext<S>> {
        &self.ctx
    }

    /// The per-run packed columns and counters.
    pub fn run(&self) -> &PackedRunHandle {
        &self.run
    }

    /// Cumulative decision statistics (shaped like
    /// [`QueryEngine::stats`]).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            context_only: self.run.context_only(),
            skeleton: self.run.skeleton_queries(),
            skeleton_probes: self.ctx.memo().probes(),
            memo_hits: self.ctx.memo().hits(),
        }
    }

    /// Whether `u ⇝ v` — the scalar entry point over packed labels.
    #[inline]
    pub fn answer(&self, u: RunVertexId, v: RunVertexId) -> bool {
        let (ans, path) = answer_one_packed(self.run.columns(), &self.ctx, u, v);
        match path {
            QueryPath::ContextOnly => self.run.count(1, 0),
            QueryPath::Skeleton => self.run.count(0, 1),
        }
        ans
    }

    /// Answers every pair of `pairs` in order through the packed sweep.
    pub fn answer_batch(&self, pairs: &[(RunVertexId, RunVertexId)]) -> Vec<bool> {
        let mut out = Vec::new();
        self.answer_batch_into(pairs, &mut out);
        out
    }

    /// [`answer_batch`](Self::answer_batch) into a caller-owned buffer
    /// (cleared first), returning it as a slice.
    pub fn answer_batch_into<'o>(
        &self,
        pairs: &[(RunVertexId, RunVertexId)],
        out: &'o mut Vec<bool>,
    ) -> &'o [bool] {
        out.clear();
        out.resize(pairs.len(), false);
        let (ctx, skel) = crate::engine::sweep_into_slice(
            self.run.columns(),
            self.ctx.skeleton(),
            self.ctx.probe_memo(),
            pairs,
            out,
        );
        self.run.count(ctx, skel);
        out
    }
}

/// The allocation-free scalar kernel over packed columns: decode both
/// labels, then the same memoized predicate as the raw path.
#[inline]
pub(crate) fn answer_one_packed<S: SpecIndex>(
    cols: &PackedColumns,
    ctx: &SpecContext<S>,
    u: RunVertexId,
    v: RunVertexId,
) -> (bool, QueryPath) {
    let (a, b) = (cols.label(u), cols.label(v));
    match ctx.probe_memo() {
        Some(memo) => crate::engine::predicate_memo_traced(&a, &b, ctx.skeleton(), memo),
        None => crate::label::predicate_traced(&a, &b, ctx.skeleton()),
    }
}

impl<S: SpecIndex> QueryEngine<S> {
    /// Seals this engine's run into a [`PackedEngine`] over the **same**
    /// shared context: the label columns are re-encoded into per-column
    /// frames, decision counters carry over, and answers stay
    /// byte-identical (the sweep decodes inside its gather).
    pub fn seal_packed(&self) -> PackedEngine<S> {
        PackedEngine {
            ctx: Arc::clone(self.context()),
            run: PackedRunHandle::pack(self.run()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabeledRun;
    use wfp_model::fixtures::{paper_run, paper_spec};
    use wfp_speclabel::{SchemeKind, SpecScheme};

    fn paper_columns(kind: SchemeKind) -> SoaLabels {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let labeled = LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
        SoaLabels::from_labels(labeled.labels())
    }

    #[test]
    fn pack_round_trips_every_scheme_and_shrinks() {
        for &kind in &SchemeKind::ALL {
            let cols = paper_columns(kind);
            let packed = PackedColumns::pack(&cols);
            assert_eq!(packed.len(), cols.len());
            assert_eq!(packed.origin_bound(), cols.origin_bound());
            let back = packed.unpack();
            assert_eq!(back.raw_columns(), cols.raw_columns(), "{kind}");
            assert!(
                packed.memory_bytes() < cols.len() * 16,
                "{kind}: packed columns did not shrink"
            );
        }
    }

    #[test]
    fn payload_round_trips_and_preserves_every_value() {
        let cols = paper_columns(SchemeKind::Bfs);
        let packed = PackedColumns::pack(&cols);
        let bytes = packed.to_payload();
        let decoded = PackedColumns::from_payload(&bytes).unwrap();
        assert_eq!(decoded.unpack().raw_columns(), cols.raw_columns());
        assert_eq!(decoded.origin_bound(), packed.origin_bound());
        assert_eq!(decoded.widths(), packed.widths());
    }

    #[test]
    fn degenerate_widths_zero_one_and_full() {
        // width 0 (constant column), width 1 (two values), width 32
        // (extremes of the u32 range) all pack and round-trip.
        let n = 130; // crosses two 64-lane blocks with a partial tail
        let q1: Vec<u32> = (0..n).collect();
        let q2: Vec<u32> = (0..n).map(|i| 7 + (i & 1)).collect();
        let q3: Vec<u32> = (0..n).map(|i| if i == 13 { u32::MAX } else { 0 }).collect();
        let origin: Vec<u32> = vec![5; n as usize];
        let cols =
            SoaLabels::from_raw_columns(q1, q2, q3, origin).expect("equal lengths");
        let packed = PackedColumns::pack(&cols);
        assert_eq!(packed.widths().1, 1);
        assert_eq!(packed.widths().2, 32);
        assert_eq!(packed.widths().3, 0);
        assert_eq!(packed.origin_bound(), 6);
        let bytes = packed.to_payload();
        let decoded = PackedColumns::from_payload(&bytes).unwrap();
        assert_eq!(decoded.unpack().raw_columns(), cols.raw_columns());
        assert_eq!(decoded.origin_bound(), 6);

        let empty = PackedColumns::pack(&SoaLabels::new());
        let bytes = empty.to_payload();
        let decoded = PackedColumns::from_payload(&bytes).unwrap();
        assert_eq!(decoded.len(), 0);
        assert_eq!(decoded.origin_bound(), 0);
    }

    #[test]
    fn forged_headers_are_rejected() {
        let cols = paper_columns(SchemeKind::Dfs);
        let good = PackedColumns::pack(&cols).to_payload();

        // Unknown payload version.
        let mut bad = good.clone();
        bad[0] = PACKED_VERSION + 1;
        assert_eq!(
            PackedColumns::from_payload(&bad),
            Err(FormatError::UnsupportedVersion(u16::from(PACKED_VERSION + 1)))
        );

        // Width beyond 32 bits (first column header's width byte).
        let mut bad = good.clone();
        bad[5] = 33;
        assert_eq!(
            PackedColumns::from_payload(&bad),
            Err(FormatError::Malformed("packed column width exceeds 32 bits"))
        );

        // base + mask overflowing u32: max base with a wide column.
        let mut bad = good.clone();
        bad[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            PackedColumns::from_payload(&bad),
            Err(FormatError::Malformed("packed column range overflows u32"))
        );

        // Truncation anywhere inside the words must error, never panic.
        for cut in 0..good.len() {
            assert!(
                PackedColumns::from_payload(&good[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }

        // Trailing garbage is rejected.
        let mut bad = good.clone();
        bad.push(0);
        assert!(PackedColumns::from_payload(&bad).is_err());
    }

    #[test]
    fn packed_engine_matches_raw_and_carries_counters() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
            let labeled =
                LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
            let engine = QueryEngine::from_labeled(labeled);
            let pairs: Vec<_> = run
                .vertices()
                .flat_map(|u| run.vertices().map(move |v| (u, v)))
                .collect();
            let raw = engine.answer_batch(&pairs);
            let raw_stats = engine.stats();
            let packed = engine.seal_packed();
            assert_eq!(packed.vertex_count(), engine.vertex_count());
            // Counters carried over by the seal.
            assert_eq!(packed.stats().context_only, raw_stats.context_only);
            assert_eq!(packed.answer_batch(&pairs), raw, "{kind}");
            for (&(u, v), &expected) in pairs.iter().zip(&raw) {
                assert_eq!(packed.answer(u, v), expected, "{kind} scalar ({u},{v})");
            }
            // Decision mix identical to the raw engine's first pass.
            let after = packed.stats();
            assert_eq!(after.context_only, 3 * raw_stats.context_only);
            assert_eq!(after.skeleton, 3 * raw_stats.skeleton);
        }
    }
}
