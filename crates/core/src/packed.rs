//! Bit-packed label columns: the compressed resident form of a frozen run.
//!
//! The raw [`SoaLabels`] store spends a full
//! `u32` per coordinate — 16 bytes per vertex — even though the paper's
//! point is that run labels are *short*: `q1/q2/q3` are preorder positions
//! in `[0, 3n)` and `origin` is a module id in `[0, n_G)`. This module
//! packs each column independently with frame-of-reference encoding (store
//! `min`, then `value − min` at the smallest bit width covering
//! `max − min`), chosen per column when a run is sealed:
//!
//! * **Resident footprint** — a packed run costs `Σ widths / 8` bytes per
//!   vertex (typically ~6–7 instead of 16), so cold, evicted, or
//!   memory-pressured fleets can stay *serving* in packed form instead of
//!   being dropped to disk ([`crate::fleet::FleetEngine::seal_packed`],
//!   the registry's packed tier).
//! * **Snapshot size** — the same frames are the
//!   [`seg::PACKED_COLUMNS`](crate::snapshot::seg::PACKED_COLUMNS) segment
//!   payload, CRC-guarded like every segment, with the raw `RUN_COLUMNS`
//!   encoding still decoding for old snapshots.
//! * **Direct serving** — queries do **not** unpack the run: the two-phase
//!   sweep kernel ([`crate::engine`]) gathers 64-lane blocks through a
//!   shift-and-mask decode into the same stack scratch the raw columns
//!   use, so answers are byte-identical and the unpack cost is a handful
//!   of ALU ops per lane against a column that now fits deeper in cache.
//!
//! [`PackedEngine`] is the single-run packed counterpart of
//! [`QueryEngine`]; fleets mix packed and raw
//! slots freely.

use std::sync::Arc;

use wfp_model::RunVertexId;
use wfp_speclabel::SpecIndex;

use crate::context::{PackedRunHandle, SpecContext};
use crate::engine::{ColumnGather, EngineStats, QueryEngine, SoaLabels};
use crate::label::{QueryPath, RunLabel};
use crate::snapshot::{put_varint, Cursor, FormatError};

/// Version byte leading every packed-columns payload, bumped independently
/// of the container version so the encoding can evolve without invalidating
/// whole snapshots.
pub const PACKED_VERSION: u8 = 1;

/// Version byte leading every *aligned* packed-columns payload
/// ([`seg::PACKED_COLUMNS_ALIGNED`](crate::snapshot::seg::PACKED_COLUMNS_ALIGNED)).
pub const PACKED_ALIGNED_VERSION: u8 = 1;

/// Fixed size of the aligned payload header: version byte, four
/// `(base, width)` column frames, zero padding to an 8-byte boundary, the
/// vertex count, the origin bound, and trailing zero padding — so every
/// column's word region starts at a multiple of 8 from the payload start.
const ALIGNED_HEADER_BYTES: usize = 40;

/// One frame-of-reference packed column: `base + deltas` at a fixed bit
/// width, deltas stored little-endian-contiguous in 64-bit words.
#[derive(Clone, Debug, PartialEq, Eq)]
struct PackedColumn {
    /// The column minimum; every stored delta is relative to it.
    base: u32,
    /// Bits per delta, `0..=32`. Width 0 means the column is constant.
    width: u32,
    /// Packed deltas plus one trailing zero pad word, so a two-word
    /// straddling read at the last element never indexes past the end.
    words: Vec<u64>,
}

impl PackedColumn {
    fn pack(vals: &[u32]) -> Self {
        let base = vals.iter().copied().min().unwrap_or(0);
        let spread = vals.iter().copied().max().unwrap_or(0) - base;
        let width = if spread == 0 {
            0
        } else {
            32 - spread.leading_zeros()
        };
        let mut words = vec![0u64; Self::word_count(vals.len() as u64, width) + 1];
        for (i, &v) in vals.iter().enumerate() {
            let delta = u64::from(v - base);
            let bit = i as u64 * u64::from(width);
            let (w, s) = ((bit >> 6) as usize, (bit & 63) as u32);
            words[w] |= delta << s;
            if s + width > 64 {
                words[w + 1] |= delta >> (64 - s);
            }
        }
        PackedColumn { base, width, words }
    }

    /// Packed words needed for `len` deltas of `width` bits (pad excluded).
    fn word_count(len: u64, width: u32) -> usize {
        ((len * u64::from(width)).div_ceil(64)) as usize
    }

    /// Decodes element `i`. The caller guards `i < len`; a two-word window
    /// makes the extraction branchless for every alignment.
    #[inline(always)]
    fn get(&self, i: usize) -> u32 {
        if self.width == 0 {
            return self.base;
        }
        let bit = i as u64 * u64::from(self.width);
        let (w, s) = ((bit >> 6) as usize, (bit & 63) as u32);
        // Branchless two-word window without 128-bit shifts: the straddle
        // contribution is `words[w+1] << (64 - s)`, computed as a double
        // shift so `s == 0` degenerates to zero instead of an overflow.
        let lo = self.words[w] >> s;
        let hi = (self.words[w + 1] << 1) << (63 - s);
        let mask = (1u64 << self.width) - 1;
        self.base + ((lo | hi) & mask) as u32
    }

    fn memory_bytes(&self) -> usize {
        self.words.len() * 8 + std::mem::size_of::<u32>() * 2
    }
}

/// Bit-packed struct-of-arrays label storage for one frozen run: the four
/// columns of [`SoaLabels`], each frame-of-reference encoded at its own
/// width. Serves the sweep kernel directly (no unpacking step) and
/// round-trips losslessly via [`unpack`](Self::unpack).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedColumns {
    len: usize,
    q1: PackedColumn,
    q2: PackedColumn,
    q3: PackedColumn,
    origin: PackedColumn,
    origin_bound: u32,
}

impl PackedColumns {
    /// Packs raw label columns, choosing each column's base and bit width
    /// from its actual value range.
    pub fn pack(cols: &SoaLabels) -> Self {
        let (q1, q2, q3, origin) = cols.raw_columns();
        PackedColumns {
            len: cols.len(),
            q1: PackedColumn::pack(q1),
            q2: PackedColumn::pack(q2),
            q3: PackedColumn::pack(q3),
            origin: PackedColumn::pack(origin),
            origin_bound: cols.origin_bound(),
        }
    }

    /// Decodes back to raw `u32` columns — byte-identical to the columns
    /// that were packed.
    pub fn unpack(&self) -> SoaLabels {
        let col = |c: &PackedColumn| (0..self.len).map(|i| c.get(i)).collect::<Vec<u32>>();
        SoaLabels::from_raw_columns(col(&self.q1), col(&self.q2), col(&self.q3), col(&self.origin))
            .expect("packed columns share one length")
    }

    /// Number of packed labels.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no labels are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive upper bound on the stored origin ids (0 when empty).
    pub fn origin_bound(&self) -> u32 {
        self.origin_bound
    }

    /// The four per-column bit widths `(q1, q2, q3, origin)`.
    pub fn widths(&self) -> (u32, u32, u32, u32) {
        (
            self.q1.width,
            self.q2.width,
            self.q3.width,
            self.origin.width,
        )
    }

    /// Re-gathers the label of vertex `v` (spot checks and the scalar
    /// probe path; the batch paths decode inside the sweep).
    pub fn label(&self, v: RunVertexId) -> RunLabel {
        let i = v.index();
        assert!(i < self.len, "query vertex out of range");
        RunLabel {
            q1: self.q1.get(i),
            q2: self.q2.get(i),
            q3: self.q3.get(i),
            origin: wfp_model::ModuleId(self.origin.get(i)),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.q1.memory_bytes()
            + self.q2.memory_bytes()
            + self.q3.memory_bytes()
            + self.origin.memory_bytes()
    }

    /// Serializes as a [`seg::PACKED_COLUMNS`] payload: version byte, four
    /// `(base, width)` column headers, the vertex count, then the packed
    /// words of each column back to back (pad words excluded).
    ///
    /// [`seg::PACKED_COLUMNS`]: crate::snapshot::seg::PACKED_COLUMNS
    pub(crate) fn to_payload(&self) -> Vec<u8> {
        let cols = [&self.q1, &self.q2, &self.q3, &self.origin];
        let mut out = Vec::with_capacity(32 + self.memory_bytes());
        out.push(PACKED_VERSION);
        for c in cols {
            out.extend_from_slice(&c.base.to_le_bytes());
            out.push(c.width as u8);
        }
        put_varint(&mut out, self.len as u64);
        for c in cols {
            let exact = PackedColumn::word_count(self.len as u64, c.width);
            for &w in &c.words[..exact] {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Parses a [`to_payload`](Self::to_payload) buffer, rejecting
    /// inconsistent headers before sizing any allocation: widths above 32
    /// bits, `base + mask` overflowing the `u32` value space, vertex
    /// counts beyond the id space or beyond what the stored words can
    /// back. The origin bound is recomputed from the decoded deltas, so a
    /// forged payload cannot promise a smaller bound than it stores.
    pub(crate) fn from_payload(payload: &[u8]) -> Result<Self, FormatError> {
        let mut cur = Cursor::new(payload);
        let version = cur.u8()?;
        if version != PACKED_VERSION {
            return Err(FormatError::UnsupportedVersion(u16::from(version)));
        }
        let mut headers = [(0u32, 0u32); 4];
        for h in &mut headers {
            let base = cur.u32()?;
            let width = u32::from(cur.u8()?);
            if width > 32 {
                return Err(FormatError::Malformed("packed column width exceeds 32 bits"));
            }
            let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
            if u64::from(base) + mask > u64::from(u32::MAX) {
                return Err(FormatError::Malformed("packed column range overflows u32"));
            }
            *h = (base, width);
        }
        let len = cur.varint()?;
        if len > u64::from(u32::MAX) {
            return Err(FormatError::Malformed(
                "packed columns exceed the vertex id space",
            ));
        }
        let mut read_col = |&(base, width): &(u32, u32)| -> Result<PackedColumn, FormatError> {
            let exact = PackedColumn::word_count(len, width);
            let raw = cur.bytes(exact * 8)?;
            let mut words = Vec::with_capacity(exact + 1);
            words.extend(
                raw.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
            );
            words.push(0);
            Ok(PackedColumn { base, width, words })
        };
        let q1 = read_col(&headers[0])?;
        let q2 = read_col(&headers[1])?;
        let q3 = read_col(&headers[2])?;
        let origin = read_col(&headers[3])?;
        cur.finish()?;
        let len = len as usize;
        // Recompute the origin bound honestly. A zero-width origin column
        // is closed-form; otherwise the scan is bounded by the stored
        // words (len ≤ words·64/width), so a forged count cannot buy
        // unbounded work.
        let origin_bound = if len == 0 {
            0
        } else if origin.width == 0 {
            origin.base.saturating_add(1)
        } else {
            (0..len)
                .map(|i| origin.get(i).saturating_add(1))
                .max()
                .unwrap_or(0)
        };
        Ok(PackedColumns {
            len,
            q1,
            q2,
            q3,
            origin,
            origin_bound,
        })
    }

    /// Serializes as a [`seg::PACKED_COLUMNS_ALIGNED`] payload: a fixed
    /// 40-byte header (version, four `(base, width)` frames, zero padding,
    /// vertex count, origin bound, zero padding), then each column's packed
    /// words *including* its trailing zero pad word — so every column
    /// region is a multiple of 8 bytes, starts 8-byte-aligned relative to
    /// the payload, and a borrowed two-word straddling read at the last
    /// element stays inside the region. This is the layout
    /// [`PackedColumnsView`] serves without decoding.
    ///
    /// [`seg::PACKED_COLUMNS_ALIGNED`]: crate::snapshot::seg::PACKED_COLUMNS_ALIGNED
    pub(crate) fn to_aligned_payload(&self) -> Vec<u8> {
        let cols = [&self.q1, &self.q2, &self.q3, &self.origin];
        let words: usize = cols
            .iter()
            .map(|c| PackedColumn::word_count(self.len as u64, c.width) + 1)
            .sum();
        let mut out = Vec::with_capacity(ALIGNED_HEADER_BYTES + words * 8);
        out.push(PACKED_ALIGNED_VERSION);
        for c in cols {
            out.extend_from_slice(&c.base.to_le_bytes());
            out.push(c.width as u8);
        }
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&self.origin_bound.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        for c in cols {
            let exact = PackedColumn::word_count(self.len as u64, c.width);
            for &w in &c.words[..exact] {
                out.extend_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&0u64.to_le_bytes()); // pad word
        }
        out
    }

    /// Parses a [`to_aligned_payload`](Self::to_aligned_payload) buffer
    /// into **owned** columns — the decode path for callers without a
    /// shareable load buffer (and the baseline the zero-copy bind is
    /// benchmarked against). On top of the header validation shared with
    /// [`PackedColumnsView::bind`], the origin bound is recomputed from the
    /// decoded deltas and must match the stored one, since the owned
    /// gather path has no per-probe clamp.
    pub(crate) fn from_aligned_payload(payload: &[u8]) -> Result<Self, FormatError> {
        let h = parse_aligned_header(payload)?;
        let col = |slot: usize| -> PackedColumn {
            let (base, width) = h.frames[slot];
            let exact = PackedColumn::word_count(h.len as u64, width);
            let raw = &payload[h.col_offs[slot]..h.col_offs[slot] + exact * 8];
            let mut words = Vec::with_capacity(exact + 1);
            words.extend(
                raw.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
            );
            words.push(0);
            PackedColumn { base, width, words }
        };
        let origin = col(3);
        let honest = if h.len == 0 {
            0
        } else if origin.width == 0 {
            origin.base.saturating_add(1)
        } else {
            (0..h.len)
                .map(|i| origin.get(i).saturating_add(1))
                .max()
                .unwrap_or(0)
        };
        if honest != h.origin_bound {
            return Err(FormatError::Malformed(
                "aligned origin bound does not match the stored column",
            ));
        }
        Ok(PackedColumns {
            len: h.len,
            q1: col(0),
            q2: col(1),
            q3: col(2),
            origin,
            origin_bound: h.origin_bound,
        })
    }
}

/// A validated aligned-payload header: per-column `(base, width)` frames,
/// the vertex count and origin bound, and each column's byte offset
/// relative to the payload start.
struct AlignedHeader {
    frames: [(u32, u32); 4],
    len: usize,
    origin_bound: u32,
    col_offs: [usize; 4],
    total: usize,
}

/// Validates an aligned payload's fixed header and exact layout without
/// touching the packed words (beyond each column's pad word): version,
/// frame ranges, zero padding, a range-checked origin bound, and the total
/// size implied by `len × widths` matching the buffer byte for byte. Both
/// the owned decode and the zero-copy bind go through this, so a forged
/// header is the same typed error on either path.
fn parse_aligned_header(payload: &[u8]) -> Result<AlignedHeader, FormatError> {
    if payload.len() < ALIGNED_HEADER_BYTES {
        return Err(FormatError::Truncated {
            offset: payload.len(),
        });
    }
    let version = payload[0];
    if version != PACKED_ALIGNED_VERSION {
        return Err(FormatError::UnsupportedVersion(u16::from(version)));
    }
    let mut frames = [(0u32, 0u32); 4];
    for (slot, f) in frames.iter_mut().enumerate() {
        let at = 1 + slot * 5;
        let base = u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes"));
        let width = u32::from(payload[at + 4]);
        if width > 32 {
            return Err(FormatError::Malformed("packed column width exceeds 32 bits"));
        }
        let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
        if u64::from(base) + mask > u64::from(u32::MAX) {
            return Err(FormatError::Malformed("packed column range overflows u32"));
        }
        *f = (base, width);
    }
    if payload[21..24] != [0, 0, 0] || payload[36..40] != [0, 0, 0, 0] {
        return Err(FormatError::Malformed("aligned header padding is not zero"));
    }
    let len = u64::from_le_bytes(payload[24..32].try_into().expect("8 bytes"));
    if len > u64::from(u32::MAX) {
        return Err(FormatError::Malformed(
            "packed columns exceed the vertex id space",
        ));
    }
    let origin_bound = u32::from_le_bytes(payload[32..36].try_into().expect("4 bytes"));
    // Range-check the stored origin bound instead of recomputing it: the
    // zero-copy bind must stay O(columns), and [`PackedColumnsView`]'s
    // per-probe clamp makes any in-range bound safe to serve under.
    let (obase, owidth) = frames[3];
    let omask = if owidth == 0 { 0 } else { (1u64 << owidth) - 1 };
    let bound_ok = if len == 0 {
        origin_bound == 0
    } else if owidth == 0 {
        origin_bound == obase.saturating_add(1)
    } else {
        u64::from(origin_bound) > u64::from(obase)
            && u64::from(origin_bound) <= u64::from(obase) + omask + 1
    };
    if !bound_ok {
        return Err(FormatError::Malformed("aligned origin bound out of range"));
    }
    let mut col_offs = [0usize; 4];
    let mut total = ALIGNED_HEADER_BYTES as u64;
    for (slot, &(_, width)) in frames.iter().enumerate() {
        col_offs[slot] = total as usize;
        total += (PackedColumn::word_count(len, width) as u64 + 1) * 8;
    }
    match (payload.len() as u64).cmp(&total) {
        std::cmp::Ordering::Less => {
            return Err(FormatError::Truncated {
                offset: payload.len(),
            })
        }
        std::cmp::Ordering::Greater => {
            return Err(FormatError::TrailingBytes {
                extra: (payload.len() as u64 - total) as usize,
            })
        }
        std::cmp::Ordering::Equal => {}
    }
    let total = total as usize;
    for (slot, &(_, width)) in frames.iter().enumerate() {
        let pad = col_offs[slot] + PackedColumn::word_count(len, width) * 8;
        if payload[pad..pad + 8] != [0u8; 8] {
            return Err(FormatError::Malformed("aligned column padding is not zero"));
        }
    }
    Ok(AlignedHeader {
        frames,
        len: len as usize,
        origin_bound,
        col_offs,
        total,
    })
}

impl ColumnGather for PackedColumns {
    type Coord = u32;

    #[inline(always)]
    fn lane_count(&self) -> usize {
        self.len
    }

    #[inline(always)]
    fn coords(&self, i: usize) -> (u32, u32, u32) {
        (self.q1.get(i), self.q2.get(i), self.q3.get(i))
    }

    #[inline(always)]
    fn origin_of(&self, i: usize) -> u32 {
        self.origin.get(i)
    }

    #[inline(always)]
    fn origin_bound(&self) -> u32 {
        PackedColumns::origin_bound(self)
    }
}

/// One column of a [`PackedColumnsView`]: the frame header plus the
/// column's absolute byte offset inside the shared buffer.
#[derive(Clone, Copy, Debug)]
struct ViewCol {
    base: u32,
    width: u32,
    /// Absolute byte offset of the column's first packed word in `buf`.
    off: usize,
}

/// A **zero-copy view** over an aligned packed-columns payload
/// ([`seg::PACKED_COLUMNS_ALIGNED`]): the same four frame-of-reference
/// columns as [`PackedColumns`], except the packed `u64` words stay in the
/// shared load buffer they were validated in. Binding costs O(header) —
/// no per-word decode, no allocation proportional to the run — so a
/// snapshot fault-in through this type is read + checksum, and an
/// evict→reload cycle of an unmodified fleet can rebind the retained
/// buffer without touching storage at all.
///
/// Trust posture: [`bind`](Self::bind) validates the header exactly like
/// the owned decode (version, frame ranges, padding, byte-exact layout)
/// and *range-checks* the stored origin bound against the origin column's
/// frame instead of rescanning every element — rescanning would
/// reintroduce the O(n) pass the view exists to avoid. Every origin
/// served out of the view is then clamped under that bound, so honest
/// payloads (whose origins are always below their bound) are unaffected,
/// while a forged in-range bound can only yield wrong answers for the
/// forged payload, never an out-of-range index into the sweep's probe
/// table.
///
/// [`seg::PACKED_COLUMNS_ALIGNED`]: crate::snapshot::seg::PACKED_COLUMNS_ALIGNED
#[derive(Clone)]
pub struct PackedColumnsView {
    buf: Arc<[u8]>,
    start: usize,
    total: usize,
    len: usize,
    cols: [ViewCol; 4],
    origin_bound: u32,
}

impl PackedColumnsView {
    /// Binds a view to the aligned payload at `buf[start .. start + len_bytes]`,
    /// validating the header and exact layout without decoding any words.
    /// The caller vouches that the buffer's *contents* passed container
    /// CRC; this constructor re-establishes every structural invariant the
    /// gather path relies on, so a corrupt or forged payload is a typed
    /// [`FormatError`], never a panic or wild read.
    pub fn bind(buf: Arc<[u8]>, start: usize, len_bytes: usize) -> Result<Self, FormatError> {
        let end = start
            .checked_add(len_bytes)
            .filter(|&e| e <= buf.len())
            .ok_or(FormatError::Truncated { offset: buf.len() })?;
        let h = parse_aligned_header(&buf[start..end])?;
        let mut cols = [ViewCol {
            base: 0,
            width: 0,
            off: 0,
        }; 4];
        for (slot, c) in cols.iter_mut().enumerate() {
            let (base, width) = h.frames[slot];
            *c = ViewCol {
                base,
                width,
                off: start + h.col_offs[slot],
            };
        }
        Ok(PackedColumnsView {
            buf,
            start,
            total: h.total,
            len: h.len,
            cols,
            origin_bound: h.origin_bound,
        })
    }

    /// Decodes element `i` of one column straight out of the shared
    /// buffer with a single unaligned 8-byte load: the element starts at
    /// in-byte shift `bit & 7` (at most 7) and is at most 32 bits wide,
    /// so it always fits inside the `u64` loaded at byte `bit / 8`. The
    /// trailing pad word keeps that load inside the column region for
    /// every `i < len`, and `u64::from_le_bytes` makes machine alignment
    /// irrelevant.
    #[inline(always)]
    fn col_get(&self, c: ViewCol, i: usize) -> u32 {
        if c.width == 0 {
            return c.base;
        }
        let bit = i * c.width as usize;
        let at = c.off + (bit >> 3);
        let word = u64::from_le_bytes(self.buf[at..at + 8].try_into().expect("8 bytes"));
        let mask = (1u64 << c.width) - 1;
        c.base + ((word >> (bit & 7)) & mask) as u32
    }

    /// Number of labels served by the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no labels are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive upper bound on the served origin ids (0 when empty).
    pub fn origin_bound(&self) -> u32 {
        self.origin_bound
    }

    /// The four per-column bit widths `(q1, q2, q3, origin)`.
    pub fn widths(&self) -> (u32, u32, u32, u32) {
        (
            self.cols[0].width,
            self.cols[1].width,
            self.cols[2].width,
            self.cols[3].width,
        )
    }

    /// Re-gathers the label of vertex `v` from the shared buffer. The
    /// origin is clamped under the validated bound (see the type docs).
    pub fn label(&self, v: RunVertexId) -> RunLabel {
        let i = v.index();
        assert!(i < self.len, "query vertex out of range");
        let origin = self
            .col_get(self.cols[3], i)
            .min(self.origin_bound.saturating_sub(1));
        RunLabel {
            q1: self.col_get(self.cols[0], i),
            q2: self.col_get(self.cols[1], i),
            q3: self.col_get(self.cols[2], i),
            origin: wfp_model::ModuleId(origin),
        }
    }

    /// Bytes of the shared buffer this view spans (header + columns) —
    /// the resident cost attributed to the run while the buffer is held.
    pub fn memory_bytes(&self) -> usize {
        self.total
    }

    /// The exact aligned payload this view was bound to.
    pub(crate) fn payload_bytes(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.total]
    }

    /// Decodes back to raw `u32` columns, byte-identical to what the
    /// owned decode of the same payload would unpack.
    pub fn unpack(&self) -> SoaLabels {
        let col = |c: ViewCol| (0..self.len).map(|i| self.col_get(c, i)).collect::<Vec<u32>>();
        // origins ride through the same clamp as `origin_of`: a forged
        // in-range bound must not let an out-of-bound origin escape into
        // decoded form either
        let cap = self.origin_bound.saturating_sub(1);
        let origins = (0..self.len)
            .map(|i| self.col_get(self.cols[3], i).min(cap))
            .collect::<Vec<u32>>();
        SoaLabels::from_raw_columns(
            col(self.cols[0]),
            col(self.cols[1]),
            col(self.cols[2]),
            origins,
        )
        .expect("view columns share one length")
    }
}

impl std::fmt::Debug for PackedColumnsView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedColumnsView")
            .field("len", &self.len)
            .field("origin_bound", &self.origin_bound)
            .field("widths", &self.widths())
            .field("payload_bytes", &self.total)
            .finish_non_exhaustive()
    }
}

impl ColumnGather for PackedColumnsView {
    type Coord = u32;

    #[inline(always)]
    fn lane_count(&self) -> usize {
        self.len
    }

    #[inline(always)]
    fn coords(&self, i: usize) -> (u32, u32, u32) {
        (
            self.col_get(self.cols[0], i),
            self.col_get(self.cols[1], i),
            self.col_get(self.cols[2], i),
        )
    }

    #[inline(always)]
    fn origin_of(&self, i: usize) -> u32 {
        // Clamp under the validated bound so a forged payload can never
        // index past the sweep's probe table; honest origins are always
        // below the bound and pass through unchanged.
        self.col_get(self.cols[3], i)
            .min(self.origin_bound.saturating_sub(1))
    }

    #[inline(always)]
    fn origin_bound(&self) -> u32 {
        self.origin_bound
    }
}

/// Either resident form of one frozen run's packed label columns:
/// **owned** (decoded `Vec<u64>` frames, [`PackedColumns`]) or a
/// **zero-copy view** into a shared snapshot buffer
/// ([`PackedColumnsView`]). Fleet slots, the registry, and the serving
/// loops handle both through one type, and the sweep kernel runs the same
/// monomorphized block bodies for each — answers are byte-identical by
/// construction.
#[derive(Clone, Debug)]
pub enum PackedStore {
    /// Decoded, heap-owned packed columns.
    Owned(PackedColumns),
    /// Borrowed packed words in a validated shared snapshot buffer.
    View(PackedColumnsView),
}

impl PackedStore {
    /// Number of packed labels.
    pub fn len(&self) -> usize {
        match self {
            PackedStore::Owned(c) => c.len(),
            PackedStore::View(v) => v.len(),
        }
    }

    /// Whether no labels are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exclusive upper bound on the stored origin ids (0 when empty).
    pub fn origin_bound(&self) -> u32 {
        match self {
            PackedStore::Owned(c) => c.origin_bound(),
            PackedStore::View(v) => v.origin_bound(),
        }
    }

    /// The four per-column bit widths `(q1, q2, q3, origin)`.
    pub fn widths(&self) -> (u32, u32, u32, u32) {
        match self {
            PackedStore::Owned(c) => c.widths(),
            PackedStore::View(v) => v.widths(),
        }
    }

    /// Re-gathers the label of vertex `v`.
    pub fn label(&self, v: RunVertexId) -> RunLabel {
        match self {
            PackedStore::Owned(c) => c.label(v),
            PackedStore::View(v_) => v_.label(v),
        }
    }

    /// Resident bytes attributed to the run: heap frames when owned, the
    /// spanned slice of the shared buffer when viewed.
    pub fn memory_bytes(&self) -> usize {
        match self {
            PackedStore::Owned(c) => c.memory_bytes(),
            PackedStore::View(v) => v.memory_bytes(),
        }
    }

    /// Whether the run is served zero-copy out of a shared snapshot
    /// buffer rather than from decoded heap frames.
    pub fn is_zero_copy(&self) -> bool {
        matches!(self, PackedStore::View(_))
    }

    /// Decodes back to raw `u32` columns.
    pub fn unpack(&self) -> SoaLabels {
        match self {
            PackedStore::Owned(c) => c.unpack(),
            PackedStore::View(v) => v.unpack(),
        }
    }

    /// The aligned snapshot payload for this store: a view hands back its
    /// validated payload verbatim (still no decode), owned columns encode
    /// their frames.
    pub(crate) fn to_aligned_payload(&self) -> Vec<u8> {
        match self {
            PackedStore::Owned(c) => c.to_aligned_payload(),
            PackedStore::View(v) => v.payload_bytes().to_vec(),
        }
    }
}

impl From<PackedColumns> for PackedStore {
    fn from(cols: PackedColumns) -> Self {
        PackedStore::Owned(cols)
    }
}

impl From<PackedColumnsView> for PackedStore {
    fn from(view: PackedColumnsView) -> Self {
        PackedStore::View(view)
    }
}

impl ColumnGather for PackedStore {
    type Coord = u32;

    #[inline(always)]
    fn lane_count(&self) -> usize {
        self.len()
    }

    #[inline(always)]
    fn coords(&self, i: usize) -> (u32, u32, u32) {
        match self {
            PackedStore::Owned(c) => c.coords(i),
            PackedStore::View(v) => v.coords(i),
        }
    }

    #[inline(always)]
    fn origin_of(&self, i: usize) -> u32 {
        match self {
            PackedStore::Owned(c) => c.origin_of(i),
            PackedStore::View(v) => v.origin_of(i),
        }
    }

    #[inline(always)]
    fn origin_bound(&self) -> u32 {
        PackedStore::origin_bound(self)
    }

    /// Delegates whole 64-lane blocks to the inner store, so the enum is
    /// matched once per block and the monomorphized inner loop stays pure
    /// straight-line arithmetic — no per-lane dispatch.
    #[inline]
    fn block_masks(&self, chunk: &[(RunVertexId, RunVertexId)]) -> (u64, u64) {
        match self {
            PackedStore::Owned(c) => c.block_masks(chunk),
            PackedStore::View(v) => v.block_masks(chunk),
        }
    }
}

/// A batched reachability engine over one **packed** run — the
/// [`QueryEngine`] counterpart for packed-resident serving: same shared
/// [`SpecContext`], same two-phase sweep kernel, same counters, with the
/// label columns staying in their compressed frames the whole time.
pub struct PackedEngine<S> {
    ctx: Arc<SpecContext<S>>,
    run: PackedRunHandle,
}

impl<S: SpecIndex> PackedEngine<S> {
    /// A view over an already-shared context and a packed run handle.
    pub fn from_parts(ctx: Arc<SpecContext<S>>, run: PackedRunHandle) -> Self {
        PackedEngine { ctx, run }
    }

    /// Number of labeled vertices.
    pub fn vertex_count(&self) -> usize {
        self.run.vertex_count()
    }

    /// The packed label columns (owned or zero-copy).
    pub fn columns(&self) -> &PackedStore {
        self.run.columns()
    }

    /// The shared spec-level state this engine answers through.
    pub fn context(&self) -> &Arc<SpecContext<S>> {
        &self.ctx
    }

    /// The per-run packed columns and counters.
    pub fn run(&self) -> &PackedRunHandle {
        &self.run
    }

    /// Cumulative decision statistics (shaped like
    /// [`QueryEngine::stats`]).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            context_only: self.run.context_only(),
            skeleton: self.run.skeleton_queries(),
            skeleton_probes: self.ctx.memo().probes(),
            memo_hits: self.ctx.memo().hits(),
        }
    }

    /// Whether `u ⇝ v` — the scalar entry point over packed labels.
    #[inline]
    pub fn answer(&self, u: RunVertexId, v: RunVertexId) -> bool {
        let (ans, path) = answer_one_packed(self.run.columns(), &self.ctx, u, v);
        match path {
            QueryPath::ContextOnly => self.run.count(1, 0),
            QueryPath::Skeleton => self.run.count(0, 1),
        }
        ans
    }

    /// Answers every pair of `pairs` in order through the packed sweep.
    pub fn answer_batch(&self, pairs: &[(RunVertexId, RunVertexId)]) -> Vec<bool> {
        let mut out = Vec::new();
        self.answer_batch_into(pairs, &mut out);
        out
    }

    /// [`answer_batch`](Self::answer_batch) into a caller-owned buffer
    /// (cleared first), returning it as a slice.
    pub fn answer_batch_into<'o>(
        &self,
        pairs: &[(RunVertexId, RunVertexId)],
        out: &'o mut Vec<bool>,
    ) -> &'o [bool] {
        out.clear();
        out.resize(pairs.len(), false);
        let (ctx, skel) = crate::engine::sweep_into_slice(
            self.run.columns(),
            self.ctx.skeleton(),
            self.ctx.probe_memo(),
            pairs,
            out,
        );
        self.run.count(ctx, skel);
        out
    }
}

/// The allocation-free scalar kernel over packed columns: decode both
/// labels, then the same memoized predicate as the raw path.
#[inline]
pub(crate) fn answer_one_packed<S: SpecIndex>(
    cols: &PackedStore,
    ctx: &SpecContext<S>,
    u: RunVertexId,
    v: RunVertexId,
) -> (bool, QueryPath) {
    let (a, b) = (cols.label(u), cols.label(v));
    match ctx.probe_memo() {
        Some(memo) => crate::engine::predicate_memo_traced(&a, &b, ctx.skeleton(), memo),
        None => crate::label::predicate_traced(&a, &b, ctx.skeleton()),
    }
}

impl<S: SpecIndex> QueryEngine<S> {
    /// Seals this engine's run into a [`PackedEngine`] over the **same**
    /// shared context: the label columns are re-encoded into per-column
    /// frames, decision counters carry over, and answers stay
    /// byte-identical (the sweep decodes inside its gather).
    pub fn seal_packed(&self) -> PackedEngine<S> {
        PackedEngine {
            ctx: Arc::clone(self.context()),
            run: PackedRunHandle::pack(self.run()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabeledRun;
    use wfp_model::fixtures::{paper_run, paper_spec};
    use wfp_speclabel::{SchemeKind, SpecScheme};

    fn paper_columns(kind: SchemeKind) -> SoaLabels {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let labeled = LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
        SoaLabels::from_labels(labeled.labels())
    }

    #[test]
    fn pack_round_trips_every_scheme_and_shrinks() {
        for &kind in &SchemeKind::ALL {
            let cols = paper_columns(kind);
            let packed = PackedColumns::pack(&cols);
            assert_eq!(packed.len(), cols.len());
            assert_eq!(packed.origin_bound(), cols.origin_bound());
            let back = packed.unpack();
            assert_eq!(back.raw_columns(), cols.raw_columns(), "{kind}");
            assert!(
                packed.memory_bytes() < cols.len() * 16,
                "{kind}: packed columns did not shrink"
            );
        }
    }

    #[test]
    fn payload_round_trips_and_preserves_every_value() {
        let cols = paper_columns(SchemeKind::Bfs);
        let packed = PackedColumns::pack(&cols);
        let bytes = packed.to_payload();
        let decoded = PackedColumns::from_payload(&bytes).unwrap();
        assert_eq!(decoded.unpack().raw_columns(), cols.raw_columns());
        assert_eq!(decoded.origin_bound(), packed.origin_bound());
        assert_eq!(decoded.widths(), packed.widths());
    }

    #[test]
    fn degenerate_widths_zero_one_and_full() {
        // width 0 (constant column), width 1 (two values), width 32
        // (extremes of the u32 range) all pack and round-trip.
        let n = 130; // crosses two 64-lane blocks with a partial tail
        let q1: Vec<u32> = (0..n).collect();
        let q2: Vec<u32> = (0..n).map(|i| 7 + (i & 1)).collect();
        let q3: Vec<u32> = (0..n).map(|i| if i == 13 { u32::MAX } else { 0 }).collect();
        let origin: Vec<u32> = vec![5; n as usize];
        let cols =
            SoaLabels::from_raw_columns(q1, q2, q3, origin).expect("equal lengths");
        let packed = PackedColumns::pack(&cols);
        assert_eq!(packed.widths().1, 1);
        assert_eq!(packed.widths().2, 32);
        assert_eq!(packed.widths().3, 0);
        assert_eq!(packed.origin_bound(), 6);
        let bytes = packed.to_payload();
        let decoded = PackedColumns::from_payload(&bytes).unwrap();
        assert_eq!(decoded.unpack().raw_columns(), cols.raw_columns());
        assert_eq!(decoded.origin_bound(), 6);

        let empty = PackedColumns::pack(&SoaLabels::new());
        let bytes = empty.to_payload();
        let decoded = PackedColumns::from_payload(&bytes).unwrap();
        assert_eq!(decoded.len(), 0);
        assert_eq!(decoded.origin_bound(), 0);
    }

    #[test]
    fn forged_headers_are_rejected() {
        let cols = paper_columns(SchemeKind::Dfs);
        let good = PackedColumns::pack(&cols).to_payload();

        // Unknown payload version.
        let mut bad = good.clone();
        bad[0] = PACKED_VERSION + 1;
        assert_eq!(
            PackedColumns::from_payload(&bad),
            Err(FormatError::UnsupportedVersion(u16::from(PACKED_VERSION + 1)))
        );

        // Width beyond 32 bits (first column header's width byte).
        let mut bad = good.clone();
        bad[5] = 33;
        assert_eq!(
            PackedColumns::from_payload(&bad),
            Err(FormatError::Malformed("packed column width exceeds 32 bits"))
        );

        // base + mask overflowing u32: max base with a wide column.
        let mut bad = good.clone();
        bad[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            PackedColumns::from_payload(&bad),
            Err(FormatError::Malformed("packed column range overflows u32"))
        );

        // Truncation anywhere inside the words must error, never panic.
        for cut in 0..good.len() {
            assert!(
                PackedColumns::from_payload(&good[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }

        // Trailing garbage is rejected.
        let mut bad = good.clone();
        bad.push(0);
        assert!(PackedColumns::from_payload(&bad).is_err());
    }

    #[test]
    fn aligned_payload_round_trips_every_scheme() {
        for &kind in &SchemeKind::ALL {
            let cols = paper_columns(kind);
            let packed = PackedColumns::pack(&cols);
            let bytes = packed.to_aligned_payload();
            assert_eq!(bytes.len() % 8, 0, "{kind}: payload not word-sized");
            let decoded = PackedColumns::from_aligned_payload(&bytes).unwrap();
            assert_eq!(decoded, packed, "{kind}");
            assert_eq!(decoded.unpack().raw_columns(), cols.raw_columns(), "{kind}");
        }
    }

    #[test]
    fn view_serves_byte_identical_to_owned() {
        for &kind in &SchemeKind::ALL {
            let cols = paper_columns(kind);
            let packed = PackedColumns::pack(&cols);
            let buf: Arc<[u8]> = Arc::from(packed.to_aligned_payload());
            let view = PackedColumnsView::bind(Arc::clone(&buf), 0, buf.len()).unwrap();
            assert_eq!(view.len(), packed.len());
            assert_eq!(view.origin_bound(), packed.origin_bound());
            assert_eq!(view.widths(), packed.widths());
            assert_eq!(view.memory_bytes(), buf.len());
            assert_eq!(view.unpack().raw_columns(), cols.raw_columns(), "{kind}");
            for i in 0..packed.len() {
                let v = RunVertexId(i as u32);
                assert_eq!(view.label(v), packed.label(v), "{kind} label {i}");
                assert_eq!(view.coords(i), packed.coords(i), "{kind} coords {i}");
                assert_eq!(view.origin_of(i), packed.origin_of(i), "{kind} origin {i}");
            }
            // A view handed back as a store re-serializes verbatim.
            let store = PackedStore::from(view);
            assert!(store.is_zero_copy());
            assert_eq!(store.to_aligned_payload(), &buf[..]);
        }
    }

    #[test]
    fn view_binds_at_nonzero_offset_inside_a_larger_buffer() {
        let cols = paper_columns(SchemeKind::Hop2);
        let packed = PackedColumns::pack(&cols);
        let payload = packed.to_aligned_payload();
        let mut framed = vec![0xAAu8; 16];
        framed.extend_from_slice(&payload);
        framed.extend_from_slice(&[0xBB; 24]);
        let buf: Arc<[u8]> = Arc::from(framed);
        let view = PackedColumnsView::bind(Arc::clone(&buf), 16, payload.len()).unwrap();
        assert_eq!(view.unpack().raw_columns(), cols.raw_columns());
        assert_eq!(view.payload_bytes(), &payload[..]);
        // A span that runs past the buffer is a typed error, not a panic.
        assert_eq!(
            PackedColumnsView::bind(Arc::clone(&buf), 16, buf.len()).unwrap_err(),
            FormatError::Truncated { offset: buf.len() }
        );
        assert_eq!(
            PackedColumnsView::bind(buf.clone(), usize::MAX, 8).unwrap_err(),
            FormatError::Truncated { offset: buf.len() }
        );
    }

    #[test]
    fn aligned_degenerate_widths_and_empty() {
        let n = 130u32;
        let q1: Vec<u32> = (0..n).collect();
        let q2: Vec<u32> = (0..n).map(|i| 7 + (i & 1)).collect();
        let q3: Vec<u32> = (0..n).map(|i| if i == 13 { u32::MAX } else { 0 }).collect();
        let origin: Vec<u32> = vec![5; n as usize];
        let cols = SoaLabels::from_raw_columns(q1, q2, q3, origin).expect("equal lengths");
        let packed = PackedColumns::pack(&cols);
        let bytes = packed.to_aligned_payload();
        let plen = bytes.len();
        let decoded = PackedColumns::from_aligned_payload(&bytes).unwrap();
        assert_eq!(decoded.unpack().raw_columns(), cols.raw_columns());
        let view = PackedColumnsView::bind(Arc::from(bytes), 0, plen).unwrap();
        assert_eq!(view.unpack().raw_columns(), cols.raw_columns());
        assert_eq!(view.origin_bound(), 6);

        let empty = PackedColumns::pack(&SoaLabels::new());
        let bytes = empty.to_aligned_payload();
        // Empty columns are header + four pad words only.
        assert_eq!(bytes.len(), 40 + 4 * 8);
        let decoded = PackedColumns::from_aligned_payload(&bytes).unwrap();
        assert_eq!(decoded.len(), 0);
        let view = PackedColumnsView::bind(Arc::from(bytes), 0, 72).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.origin_bound(), 0);
    }

    #[test]
    fn aligned_forged_headers_are_typed_errors_on_both_paths() {
        let cols = paper_columns(SchemeKind::Dfs);
        let packed = PackedColumns::pack(&cols);
        let good = packed.to_aligned_payload();
        let both = |bytes: &[u8]| {
            let owned = PackedColumns::from_aligned_payload(bytes);
            let bound = PackedColumnsView::bind(Arc::from(bytes.to_vec()), 0, bytes.len())
                .map(|v| v.unpack());
            (owned, bound)
        };

        // Unknown payload version.
        let mut bad = good.clone();
        bad[0] = PACKED_ALIGNED_VERSION + 1;
        let want = FormatError::UnsupportedVersion(u16::from(PACKED_ALIGNED_VERSION + 1));
        let (owned, view) = both(&bad);
        assert_eq!(owned.unwrap_err(), want);
        assert_eq!(view.unwrap_err(), want);

        // Width beyond 32 bits (first frame's width byte).
        let mut bad = good.clone();
        bad[5] = 33;
        let (owned, view) = both(&bad);
        assert_eq!(
            owned.unwrap_err(),
            FormatError::Malformed("packed column width exceeds 32 bits")
        );
        assert_eq!(
            view.unwrap_err(),
            FormatError::Malformed("packed column width exceeds 32 bits")
        );

        // base + mask overflowing the u32 value space.
        let mut bad = good.clone();
        bad[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        let (owned, view) = both(&bad);
        assert_eq!(
            owned.unwrap_err(),
            FormatError::Malformed("packed column range overflows u32")
        );
        assert_eq!(
            view.unwrap_err(),
            FormatError::Malformed("packed column range overflows u32")
        );

        // Non-zero header padding (both pad runs).
        for at in [21usize, 22, 23, 36, 37, 38, 39] {
            let mut bad = good.clone();
            bad[at] = 1;
            let (owned, view) = both(&bad);
            assert_eq!(
                owned.unwrap_err(),
                FormatError::Malformed("aligned header padding is not zero"),
                "pad byte {at}"
            );
            assert_eq!(
                view.unwrap_err(),
                FormatError::Malformed("aligned header padding is not zero"),
                "pad byte {at}"
            );
        }

        // Non-zero column pad word (corrupt the last 8 bytes: every
        // column region ends in its pad word, the last one ends the
        // payload).
        let mut bad = good.clone();
        let end = bad.len();
        bad[end - 1] = 0x80;
        let (owned, view) = both(&bad);
        assert_eq!(
            owned.unwrap_err(),
            FormatError::Malformed("aligned column padding is not zero")
        );
        assert_eq!(
            view.unwrap_err(),
            FormatError::Malformed("aligned column padding is not zero")
        );

        // Origin bound outside the frame's representable range: rejected
        // by the shared header check on both paths.
        let mut bad = good.clone();
        bad[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        let (owned, view) = both(&bad);
        assert_eq!(
            owned.unwrap_err(),
            FormatError::Malformed("aligned origin bound out of range")
        );
        assert_eq!(
            view.unwrap_err(),
            FormatError::Malformed("aligned origin bound out of range")
        );

        // Origin bound in range but *wrong*: the owned decode's honest
        // rescan rejects it; the view accepts (it cannot afford the scan)
        // but clamps, so every served origin still lands under the forged
        // bound. Synthetic columns keep the frame's slack explicit:
        // origins {3,5} pack at width 2 (mask 3), honest bound 6, so 7 is
        // in range but a lie.
        let synth = SoaLabels::from_raw_columns(
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![2, 1, 0],
            vec![3, 5, 3],
        )
        .expect("equal lengths");
        let synth_packed = PackedColumns::pack(&synth);
        assert_eq!(synth_packed.origin_bound(), 6);
        let synth_good = synth_packed.to_aligned_payload();
        for forged in [7u32, 4] {
            let mut bad = synth_good.clone();
            bad[32..36].copy_from_slice(&forged.to_le_bytes());
            let (owned, view) = both(&bad);
            assert_eq!(
                owned.unwrap_err(),
                FormatError::Malformed("aligned origin bound does not match the stored column"),
                "forged bound {forged}"
            );
            let served = view.expect("in-range bound binds");
            assert!(
                served.raw_columns().3.iter().all(|&o| o < forged),
                "forged bound {forged}: a served origin escaped the clamp"
            );
        }

        // Truncation at every offset: typed error, never a panic, on both
        // paths.
        for cut in 0..good.len() {
            let (owned, view) = both(&good[..cut]);
            assert!(owned.is_err(), "owned decoded a prefix of {cut} bytes");
            assert!(view.is_err(), "view bound a prefix of {cut} bytes");
        }

        // Trailing bytes are rejected with the exact surplus.
        let mut bad = good.clone();
        bad.extend_from_slice(&[0u8; 8]);
        let (owned, view) = both(&bad);
        assert_eq!(owned.unwrap_err(), FormatError::TrailingBytes { extra: 8 });
        assert_eq!(view.unwrap_err(), FormatError::TrailingBytes { extra: 8 });
    }

    #[test]
    fn packed_engine_matches_raw_and_carries_counters() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
            let labeled =
                LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
            let engine = QueryEngine::from_labeled(labeled);
            let pairs: Vec<_> = run
                .vertices()
                .flat_map(|u| run.vertices().map(move |v| (u, v)))
                .collect();
            let raw = engine.answer_batch(&pairs);
            let raw_stats = engine.stats();
            let packed = engine.seal_packed();
            assert_eq!(packed.vertex_count(), engine.vertex_count());
            // Counters carried over by the seal.
            assert_eq!(packed.stats().context_only, raw_stats.context_only);
            assert_eq!(packed.answer_batch(&pairs), raw, "{kind}");
            for (&(u, v), &expected) in pairs.iter().zip(&raw) {
                assert_eq!(packed.answer(u, v), expected, "{kind} scalar ({u},{v})");
            }
            // Decision mix identical to the raw engine's first pass.
            let after = packed.stats();
            assert_eq!(after.context_only, 3 * raw_stats.context_only);
            assert_eq!(after.skeleton, 3 * raw_stats.skeleton);
        }
    }
}
