//! Request/response serving loop over a [`ServiceRegistry`] — the async
//! front-end that turns the synchronous batch kernel into a traffic server.
//!
//! # Shape
//!
//! One **dispatch thread** owns the registry outright (the batch API takes
//! `&mut self`, and the search schemes carry `RefCell` scratch, so the
//! registry is deliberately not shared across threads — ownership *is* the
//! locking design). Clients hold cheap cloneable [`ServeHandle`]s and
//! submit `(SpecId, RunId, u, v)` probes — single ([`ServeHandle::probe`])
//! or small vectors ([`ServeHandle::probe_vec`]) — through a bounded mpsc
//! queue. The dispatcher coalesces concurrent submissions inside an
//! **admission window** (flush at [`ServeConfig::max_batch`] probes or
//! after [`ServeConfig::window`], whichever first) into one mixed-spec
//! batch, drives [`ServiceRegistry::answer_batch`] /
//! [`answer_batch_parallel`](ServiceRegistry::answer_batch_parallel) —
//! which shard it per fleet and per run — and routes each caller's answers
//! back in submission order over its own oneshot-style channel.
//!
//! * **Backpressure** — the admission queue is bounded
//!   ([`ServeConfig::queue_cap`] requests); a full queue rejects the
//!   submission immediately with the typed [`ServeError::Overloaded`],
//!   never blocking the client.
//! * **Graceful shutdown** — [`Server::shutdown`] drains: every request
//!   admitted before the queue closed is answered, then the dispatcher
//!   stops and the final [`ServeStats`] comes back. Submissions after
//!   shutdown get the typed [`ServeError::ShuttingDown`].
//! * **Control plane** — [`Server::control`] runs a closure on the
//!   dispatch thread against the registry itself (freeze a live run,
//!   resize the budget, snapshot stats) without ever exposing the `&mut`
//!   across threads. Controls execute between batches, so a client batch
//!   always sees a registry in a consistent state.
//! * **Accounting** — [`ServeStats`] snapshots per-scheme request latency
//!   (p50/p99 over log-bucketed histograms) and the admitted batch-size
//!   histogram, live ([`Server::stats`]) or at shutdown.
//!
//! Because the search schemes are `!Sync`, a registry cannot be *moved*
//! into the dispatch thread from outside — instead the caller hands
//! [`serve`] a **builder** closure and the registry is constructed on the
//! dispatch thread itself, living and dying there:
//!
//! ```
//! use wfp_model::fixtures;
//! use wfp_skl::serve::{serve, ServeConfig};
//! use wfp_skl::{label_run, ServiceRegistry};
//! use wfp_speclabel::SchemeKind;
//!
//! let server = serve(ServeConfig::default(), || {
//!     let spec = fixtures::paper_spec();
//!     let run = fixtures::paper_run(&spec);
//!     let (labels, _) = label_run(&spec, &run).unwrap();
//!     let mut reg = ServiceRegistry::new();
//!     let id = reg.register_spec(&spec, SchemeKind::Tcm)?;
//!     reg.register_labels(id, &labels)?;
//!     Ok((reg, id))
//! })
//! .unwrap();
//! let id = *server.context();
//! let handle = server.handle();
//! let yes = handle
//!     .probe(id, wfp_skl::RunId(0), wfp_model::RunVertexId(0), wfp_model::RunVertexId(0))
//!     .unwrap();
//! assert!(yes, "reachability is reflexive");
//! let stats = server.shutdown().unwrap();
//! assert_eq!(stats.probes_answered, 1);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use wfp_model::RunVertexId;
use wfp_speclabel::SchemeKind;

use crate::fleet::RunId;
use crate::registry::{RegistryError, ServiceRegistry, SpecId};

/// One client probe: `(spec, run, u, v)` — does vertex `u` reach `v` in
/// run `run` of spec `spec`?
pub type Probe = (SpecId, RunId, RunVertexId, RunVertexId);

// ======================================================================
// configuration & errors
// ======================================================================

/// Admission-loop tuning knobs. The defaults favor throughput at serving
/// batch sizes; latency-sensitive deployments shrink `window`.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Flush the admission window once this many probes have coalesced.
    pub max_batch: usize,
    /// Flush the admission window this long after its first probe arrived,
    /// even if `max_batch` was not reached.
    pub window: Duration,
    /// Bounded admission-queue capacity in *requests*; a full queue turns
    /// submissions into [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Worker threads per registry batch (`<= 1` serves sequentially; more
    /// drives [`ServiceRegistry::answer_batch_parallel`]).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8192,
            window: Duration::from_micros(200),
            queue_cap: 1024,
            threads: 1,
        }
    }
}

/// Typed serving-path errors, as seen by clients.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// The bounded admission queue is full; resubmit after backing off.
    Overloaded,
    /// The server is shutting down (or already gone); the probe was not
    /// admitted.
    ShuttingDown,
    /// The dispatch thread died before answering (a panic in a registry
    /// builder or batch kernel — never part of normal operation).
    Disconnected,
    /// The registry rejected this request's probes (unknown spec/run,
    /// snapshot failure...). Other requests in the same admitted batch are
    /// unaffected: a failing batch is re-driven per request so only the
    /// faulty submission sees its error.
    Registry(Arc<RegistryError>),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "admission queue full (overloaded)"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Disconnected => write!(f, "dispatch thread gone"),
            ServeError::Registry(e) => write!(f, "registry: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

// ======================================================================
// latency accounting
// ======================================================================

/// Log-bucketed latency/size histogram: exact below 8, then four
/// sub-buckets per octave (≤ ~12% relative error) — enough resolution for
/// honest p50/p99 without per-sample storage.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
            count: 0,
            max: 0,
        }
    }
}

impl Histogram {
    const BUCKETS: usize = 256;

    fn bucket_of(v: u64) -> usize {
        if v < 8 {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros() as u64; // >= 3
        let sub = (v >> (octave - 2)) & 3;
        (((octave - 3) * 4 + sub) as usize + 8).min(Self::BUCKETS - 1)
    }

    fn bucket_floor(idx: usize) -> u64 {
        if idx < 8 {
            return idx as u64;
        }
        let octave = (idx - 8) as u64 / 4 + 3;
        let sub = (idx - 8) as u64 % 4;
        (1u64 << octave) + (sub << (octave - 2))
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (lower bucket bound; `None`
    /// when empty).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

/// Latency digest for one specification scheme.
#[derive(Clone, Debug, Default)]
pub struct SchemeLatency {
    /// Probes answered under this scheme.
    pub probes: u64,
    /// Per-probe submit→reply latency histogram, microseconds.
    pub latency_us: Histogram,
}

impl SchemeLatency {
    /// Median latency in µs (`None` when no probes were served).
    pub fn p50_us(&self) -> Option<u64> {
        self.latency_us.quantile(0.50)
    }

    /// 99th-percentile latency in µs.
    pub fn p99_us(&self) -> Option<u64> {
        self.latency_us.quantile(0.99)
    }
}

/// A consistent snapshot of serving-loop accounting
/// ([`Server::stats`] live, or the final state from [`Server::shutdown`]).
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Requests admitted into the queue (each carries ≥ 1 probe).
    pub requests: u64,
    /// Probes admitted.
    pub probes_submitted: u64,
    /// Probes answered successfully.
    pub probes_answered: u64,
    /// Probes that came back with a registry error.
    pub probes_failed: u64,
    /// Admission windows flushed.
    pub batches: u64,
    /// ... because `max_batch` filled.
    pub batches_full: u64,
    /// ... because the time window lapsed (or the queue went idle).
    pub batches_timer: u64,
    /// ... while draining at shutdown.
    pub batches_drain: u64,
    /// Control closures executed on the dispatch thread.
    pub controls: u64,
    /// Admitted batch sizes, in probes per flush.
    pub batch_probes: Histogram,
    /// Per-scheme latency, indexed like [`SchemeKind::ALL`].
    pub per_scheme: [SchemeLatency; SchemeKind::ALL.len()],
}

impl ServeStats {
    /// The latency digest for `kind`.
    pub fn scheme(&self, kind: SchemeKind) -> &SchemeLatency {
        let i = SchemeKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("ALL is total");
        &self.per_scheme[i]
    }
}

// ======================================================================
// wire types
// ======================================================================

type Reply = Result<Vec<bool>, ServeError>;

struct Request {
    probes: Vec<Probe>,
    submitted: Instant,
    reply: mpsc::Sender<Reply>,
}

type ControlFn = Box<dyn FnOnce(&mut ServiceRegistry<'static>) + Send>;

enum Msg {
    Request(Request),
    Control(ControlFn),
    Shutdown,
}

/// A pending answer: [`ServeHandle::submit`] returns immediately with a
/// ticket; [`wait`](Ticket::wait) blocks until the dispatch thread replies.
#[must_use = "a ticket holds the only route to this request's answers"]
pub struct Ticket {
    rx: Receiver<Reply>,
}

impl Ticket {
    /// Blocks until the answers arrive (in submission order, one `bool`
    /// per probe). A dispatch thread that died without replying — possible
    /// only for probes racing a shutdown's final drain — reports
    /// [`ServeError::ShuttingDown`].
    pub fn wait(self) -> Result<Vec<bool>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the batch is still in flight.
    pub fn try_wait(&mut self) -> Option<Result<Vec<bool>, ServeError>> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

// ======================================================================
// client handle
// ======================================================================

/// A cloneable client endpoint. Handles are cheap (two `Arc`-sized
/// fields); clone one per client thread.
#[derive(Clone)]
pub struct ServeHandle {
    tx: SyncSender<Msg>,
    closed: Arc<AtomicBool>,
}

impl ServeHandle {
    /// Submits a probe vector without blocking for the answer; pair with
    /// [`Ticket::wait`]. Typed failures: [`ServeError::Overloaded`] when
    /// the bounded queue is full, [`ServeError::ShuttingDown`] after
    /// shutdown.
    pub fn submit(&self, probes: Vec<Probe>) -> Result<Ticket, ServeError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let (reply, rx) = mpsc::channel();
        let req = Request {
            probes,
            submitted: Instant::now(),
            reply,
        };
        match self.tx.try_send(Msg::Request(req)) {
            Ok(()) => Ok(Ticket { rx }),
            Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submits and waits: one round trip for a small probe vector.
    pub fn probe_vec(&self, probes: Vec<Probe>) -> Result<Vec<bool>, ServeError> {
        self.submit(probes)?.wait()
    }

    /// Submits and waits for a single probe.
    pub fn probe(
        &self,
        spec: SpecId,
        run: RunId,
        u: RunVertexId,
        v: RunVertexId,
    ) -> Result<bool, ServeError> {
        Ok(self.probe_vec(vec![(spec, run, u, v)])?[0])
    }
}

// ======================================================================
// server
// ======================================================================

/// The running serving loop: owns the dispatch thread, hands out
/// [`ServeHandle`]s, exposes the control plane, and shuts down gracefully.
///
/// `C` is whatever context the registry builder chose to surface (spec
/// ids, run books, ...) — constructed on the dispatch thread, returned to
/// the caller by value.
pub struct Server<C = ()> {
    tx: SyncSender<Msg>,
    closed: Arc<AtomicBool>,
    stats: Arc<Mutex<ServeStats>>,
    worker: std::thread::JoinHandle<()>,
    context: C,
}

impl<C> Server<C> {
    /// A new client endpoint.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            tx: self.tx.clone(),
            closed: Arc::clone(&self.closed),
        }
    }

    /// The builder's context value (e.g. the registered spec ids).
    pub fn context(&self) -> &C {
        &self.context
    }

    /// A live accounting snapshot (consistent as of the last flush).
    pub fn stats(&self) -> ServeStats {
        self.stats.lock().expect("stats lock").clone()
    }

    /// Runs `f` against the registry on the dispatch thread — between
    /// batches, never concurrently with one — and returns its result.
    /// This is how callers freeze live runs, adjust budgets, or read
    /// registry stats mid-serve without sharing the `&mut` registry.
    pub fn control<R, F>(&self, f: F) -> Result<R, ServeError>
    where
        R: Send + 'static,
        F: FnOnce(&mut ServiceRegistry<'static>) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let boxed: ControlFn = Box::new(move |reg| {
            let _ = tx.send(f(reg));
        });
        // a control rides the same ordered queue as requests; blocking
        // send (not try_send) — controls are rare and must not be shed
        self.tx
            .send(Msg::Control(boxed))
            .map_err(|_| ServeError::ShuttingDown)?;
        rx.recv().map_err(|_| ServeError::ShuttingDown)
    }

    /// Drain-then-stop: closes admission (new submissions fail with
    /// [`ServeError::ShuttingDown`]), answers every request already in the
    /// queue, joins the dispatch thread, and returns the final stats. A
    /// dispatcher that panicked surfaces as [`ServeError::Disconnected`].
    pub fn shutdown(self) -> Result<ServeStats, ServeError> {
        self.closed.store(true, Ordering::Release);
        // the marker may block while the queue drains — that is the point
        let _ = self.tx.send(Msg::Shutdown);
        self.worker.join().map_err(|_| ServeError::Disconnected)?;
        let stats = self.stats.lock().expect("stats lock").clone();
        Ok(stats)
    }
}

/// Spawns the serving loop. `build` runs **on the dispatch thread** and
/// constructs the registry there (the search schemes' scratch state is
/// single-threaded by design, so the registry must be born where it
/// serves); whatever context it returns next to the registry comes back in
/// the [`Server`]. A builder error tears the loop down and is returned
/// here instead.
pub fn serve<C, F>(config: ServeConfig, build: F) -> Result<Server<C>, RegistryError>
where
    C: Send + 'static,
    F: FnOnce() -> Result<(ServiceRegistry<'static>, C), RegistryError> + Send + 'static,
{
    let (tx, rx) = mpsc::sync_channel::<Msg>(config.queue_cap.max(1));
    let closed = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(Mutex::new(ServeStats::default()));
    let stats_worker = Arc::clone(&stats);
    let (ready_tx, ready_rx) = mpsc::channel();
    let worker = std::thread::Builder::new()
        .name("wfp-serve".into())
        .spawn(move || {
            let (registry, context) = match build() {
                Ok(pair) => pair,
                Err(e) => {
                    let _ = ready_tx.send(Err(e));
                    return;
                }
            };
            let _ = ready_tx.send(Ok(context));
            dispatch(registry, rx, config, stats_worker);
        })
        .expect("spawn dispatch thread");
    match ready_rx.recv() {
        Ok(Ok(context)) => Ok(Server {
            tx,
            closed,
            stats,
            worker,
            context,
        }),
        Ok(Err(e)) => {
            let _ = worker.join();
            Err(e)
        }
        Err(_) => {
            // builder panicked before reporting; surface as a format-ish
            // error rather than poisoning the caller
            let _ = worker.join();
            Err(RegistryError::Io {
                path: std::path::PathBuf::from("<serve builder>"),
                message: "registry builder panicked".into(),
            })
        }
    }
}

// ======================================================================
// dispatch loop
// ======================================================================

/// Why an admission window closed.
enum Flush {
    Full,
    Timer,
    Drain,
}

fn dispatch(
    mut registry: ServiceRegistry<'static>,
    rx: Receiver<Msg>,
    config: ServeConfig,
    stats: Arc<Mutex<ServeStats>>,
) {
    let max_batch = config.max_batch.max(1);
    let mut draining = false;
    'serve: loop {
        // idle: block for the first message of the next window
        let first = if draining {
            match rx.try_recv() {
                Ok(m) => m,
                Err(_) => break 'serve,
            }
        } else {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break 'serve, // every handle and the server gone
            }
        };
        let mut batch: Vec<Request> = Vec::new();
        let mut probes = 0usize;
        let mut controls: Vec<ControlFn> = Vec::new();
        match first {
            Msg::Request(r) => {
                probes += r.probes.len();
                batch.push(r);
            }
            Msg::Control(c) => controls.push(c),
            Msg::Shutdown => draining = true,
        }
        // admission window: coalesce until full, lapsed, or shutting
        // down. The window only opens for probe traffic — a lone control
        // (or the shutdown marker) executes immediately rather than
        // waiting out a timer with nothing to coalesce.
        let deadline = Instant::now() + config.window;
        let mut cause = Flush::Timer;
        while !draining && !batch.is_empty() && probes < max_batch {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match rx.recv_timeout(left) {
                Ok(Msg::Request(r)) => {
                    probes += r.probes.len();
                    batch.push(r);
                }
                Ok(Msg::Control(c)) => controls.push(c),
                Ok(Msg::Shutdown) => draining = true,
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    draining = true;
                }
            }
        }
        if probes >= max_batch {
            cause = Flush::Full;
        }
        if draining {
            cause = Flush::Drain;
        }
        if !batch.is_empty() {
            service_batch(&mut registry, batch, probes, cause, &config, &stats);
        }
        // controls run between batches: a consistent registry, no probe
        // in flight
        if !controls.is_empty() {
            let mut s = stats.lock().expect("stats lock");
            s.controls += controls.len() as u64;
            drop(s);
            for c in controls {
                c(&mut registry);
            }
        }
    }
    // the queue is closed (or the server hung up): nothing left to answer
}

fn service_batch(
    registry: &mut ServiceRegistry<'static>,
    batch: Vec<Request>,
    probes: usize,
    cause: Flush,
    config: &ServeConfig,
    stats: &Arc<Mutex<ServeStats>>,
) {
    // flatten the coalesced requests into one mixed-spec batch
    let mut flat: Vec<Probe> = Vec::with_capacity(probes);
    for r in &batch {
        flat.extend_from_slice(&r.probes);
    }
    let combined = registry.answer_batch_parallel(&flat, config.threads);
    let replied = Instant::now();

    let mut s = stats.lock().expect("stats lock");
    s.requests += batch.len() as u64;
    s.probes_submitted += probes as u64;
    s.batches += 1;
    match cause {
        Flush::Full => s.batches_full += 1,
        Flush::Timer => s.batches_timer += 1,
        Flush::Drain => s.batches_drain += 1,
    }
    s.batch_probes.record(probes as u64);

    match combined {
        Ok(answers) => {
            let mut off = 0usize;
            for r in batch {
                let n = r.probes.len();
                let slice = answers[off..off + n].to_vec();
                off += n;
                record_latency(&mut s, registry, &r, replied);
                s.probes_answered += n as u64;
                let _ = r.reply.send(Ok(slice));
            }
        }
        Err(_) => {
            // one faulty request must not fail its neighbors: re-drive the
            // batch per request so each caller gets its own verdict
            drop(s);
            for r in batch {
                let verdict = registry
                    .answer_batch_parallel(&r.probes, config.threads)
                    .map_err(|e| ServeError::Registry(Arc::new(e)));
                let mut s = stats.lock().expect("stats lock");
                match &verdict {
                    Ok(_) => {
                        record_latency(&mut s, registry, &r, Instant::now());
                        s.probes_answered += r.probes.len() as u64;
                    }
                    Err(_) => s.probes_failed += r.probes.len() as u64,
                }
                drop(s);
                let _ = r.reply.send(verdict);
            }
        }
    }
}

/// Credits `r`'s submit→reply latency to each probe's scheme.
fn record_latency(
    s: &mut ServeStats,
    registry: &ServiceRegistry<'static>,
    r: &Request,
    replied: Instant,
) {
    let us = replied.duration_since(r.submitted).as_micros() as u64;
    for &(spec, ..) in &r.probes {
        let Some(kind) = registry.scheme(spec) else {
            continue;
        };
        let i = SchemeKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("ALL is total");
        s.per_scheme[i].probes += 1;
        s.per_scheme[i].latency_us.record(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabeledRun;
    use wfp_model::fixtures::{paper_run, paper_spec};
    use wfp_speclabel::SpecScheme;

    /// Serves the paper spec under `kinds`, two frozen runs each; context
    /// is the spec-id list plus each run's vertex count.
    fn paper_server(
        config: ServeConfig,
        kinds: &'static [SchemeKind],
    ) -> Server<(Vec<SpecId>, usize)> {
        serve(config, move || {
            let spec = paper_spec();
            let run = paper_run(&spec);
            let n = run.vertex_count();
            let mut reg = ServiceRegistry::new();
            let mut ids = Vec::new();
            for &kind in kinds {
                let labels = LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run)
                    .unwrap()
                    .labels()
                    .to_vec();
                let id = reg.register_spec(&spec, kind)?;
                reg.register_labels(id, &labels)?;
                reg.register_labels(id, &labels)?;
                ids.push(id);
            }
            Ok((reg, (ids, n)))
        })
        .expect("paper registry builds")
    }

    fn all_pairs(ids: &[SpecId], n: usize) -> Vec<Probe> {
        let mut probes = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    probes.push((
                        id,
                        RunId(((u as usize + i) % 2) as u32),
                        RunVertexId(u),
                        RunVertexId(v),
                    ));
                }
            }
        }
        probes
    }

    #[test]
    fn served_answers_match_direct_calls() {
        const KINDS: &[SchemeKind] = &[SchemeKind::Tcm, SchemeKind::Bfs];
        let server = paper_server(ServeConfig::default(), KINDS);
        let (ids, n) = server.context().clone();
        let probes = all_pairs(&ids, n);
        let want = server
            .control({
                let probes = probes.clone();
                move |reg| reg.answer_batch(&probes).unwrap()
            })
            .unwrap();
        let handle = server.handle();
        let got = handle.probe_vec(probes.clone()).unwrap();
        assert_eq!(got, want);
        // singles agree too
        for (p, w) in probes.iter().take(40).zip(&want) {
            assert_eq!(handle.probe(p.0, p.1, p.2, p.3).unwrap(), *w);
        }
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.probes_failed, 0);
        assert_eq!(stats.probes_answered, probes.len() as u64 + 40);
        assert!(stats.scheme(SchemeKind::Tcm).probes > 0);
        assert!(stats.scheme(SchemeKind::Tcm).p99_us().is_some());
    }

    #[test]
    fn shutdown_drains_every_admitted_probe() {
        const KINDS: &[SchemeKind] = &[SchemeKind::Tcm];
        // an hour-long window and a huge batch: nothing flushes on its
        // own, so every answer below is produced by the shutdown drain
        let server = paper_server(
            ServeConfig {
                window: Duration::from_secs(3600),
                max_batch: usize::MAX,
                ..ServeConfig::default()
            },
            KINDS,
        );
        let (ids, n) = server.context().clone();
        let probes = all_pairs(&ids, n);
        let want = server
            .control({
                let probes = probes.clone();
                move |reg| reg.answer_batch(&probes).unwrap()
            })
            .unwrap();
        let handle = server.handle();
        let tickets: Vec<(usize, Ticket)> = (0..10)
            .map(|i| (i, handle.submit(probes.clone()).unwrap()))
            .collect();
        let stats = server.shutdown().unwrap();
        assert_eq!(
            stats.probes_answered,
            (probes.len() * tickets.len()) as u64,
            "drain answers every admitted probe"
        );
        assert!(stats.batches_drain >= 1);
        for (_, t) in tickets {
            assert_eq!(t.wait().unwrap(), want);
        }
        // post-shutdown submissions get the typed error
        assert!(matches!(
            handle.probe_vec(probes),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn overflow_is_typed_and_never_deadlocks() {
        const KINDS: &[SchemeKind] = &[SchemeKind::Tcm];
        let server = paper_server(
            ServeConfig {
                queue_cap: 1,
                window: Duration::from_micros(50),
                ..ServeConfig::default()
            },
            KINDS,
        );
        let (ids, _) = server.context().clone();
        let handle = server.handle();
        // stall the dispatcher inside a control closure (issued from a
        // helper thread — `control` blocks until executed) so the bounded
        // queue visibly backs up
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let mut admitted = Vec::new();
        std::thread::scope(|scope| {
            let srv = &server;
            scope.spawn(move || {
                srv.control(move |_| {
                    let _ = started_tx.send(());
                    let _ = hold_rx.recv_timeout(Duration::from_secs(10));
                })
                .unwrap();
            });
            started_rx.recv().expect("dispatcher reached the control");
            // the dispatcher is stalled: fill the 1-slot queue, then
            // observe an immediate typed rejection — never a block
            let one = vec![(ids[0], RunId(0), RunVertexId(0), RunVertexId(0))];
            let mut saw_overload = false;
            for _ in 0..512 {
                match handle.submit(one.clone()) {
                    Ok(t) => admitted.push(t),
                    Err(ServeError::Overloaded) => {
                        saw_overload = true;
                        break;
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            assert!(
                saw_overload,
                "a 1-slot queue behind a stalled dispatcher must shed load"
            );
            hold_tx.send(()).expect("release the dispatcher");
        });
        // no deadlock: every admitted ticket still resolves (reflexive
        // probe → true)
        for t in admitted {
            assert!(t.wait().unwrap()[0]);
        }
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.controls, 1);
        assert_eq!(stats.probes_failed, 0);
    }

    #[test]
    fn faulty_requests_fail_alone() {
        const KINDS: &[SchemeKind] = &[SchemeKind::Tcm, SchemeKind::Dfs];
        // a long window so both requests coalesce into one batch
        let server = paper_server(
            ServeConfig {
                window: Duration::from_millis(200),
                ..ServeConfig::default()
            },
            KINDS,
        );
        let (ids, n) = server.context().clone();
        let handle = server.handle();
        let good = all_pairs(&ids, n);
        let bad = vec![(ids[1], RunId(99), RunVertexId(0), RunVertexId(0))];
        let t_good = handle.submit(good.clone()).unwrap();
        let t_bad = handle.submit(bad).unwrap();
        let got = t_good.wait().unwrap();
        assert!(matches!(
            t_bad.wait(),
            Err(ServeError::Registry(e))
                if matches!(&*e, RegistryError::Fleet { .. })
        ));
        let want = server
            .control(move |reg| reg.answer_batch(&good).unwrap())
            .unwrap();
        assert_eq!(got, want, "the healthy neighbor is unaffected");
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.probes_failed, 1);
    }

    #[test]
    fn builder_errors_surface_to_the_caller() {
        let bogus = SpecId(0xDEAD);
        let err = serve(ServeConfig::default(), move || {
            let mut reg = ServiceRegistry::new();
            reg.ensure_resident(bogus)?;
            Ok((reg, ()))
        });
        assert!(matches!(
            err.map(|_| ()),
            Err(RegistryError::UnknownSpec(id)) if id == bogus
        ));
    }

    #[test]
    fn histogram_quantiles_bracket_their_samples() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 900, 1000, 1000, 1000, 1000, 1000, 40_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 40_000);
        let p50 = h.quantile(0.5).unwrap();
        assert!((768..=1024).contains(&p50), "p50 {p50} near the mode");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 32_768, "p99 {p99} reaches the tail bucket");
        assert!(p99 <= 40_000);
        // exact small values
        let mut small = Histogram::default();
        for v in 0..8 {
            small.record(v);
        }
        assert_eq!(small.quantile(0.0).unwrap(), 0);
        assert_eq!(small.quantile(1.0).unwrap(), 7);
    }
}
