//! Request/response serving loop over [`ServiceRegistry`] shards — the
//! async front-end that turns the synchronous batch kernel into a traffic
//! server.
//!
//! # Shape
//!
//! A **router thread** plus N **shard workers**. Each worker *builds and
//! owns* one registry shard outright (the batch API takes `&mut self`, and
//! the search schemes carry `RefCell` scratch, so a registry is
//! deliberately not shared across threads — ownership *is* the locking
//! design; the shard builder runs on the worker thread itself, exactly as
//! the single dispatcher of old). Specs are partitioned across shards by
//! [`SpecId`] hash, or pinned explicitly through a [`ShardPlan`].
//!
//! Clients hold cheap cloneable [`ServeHandle`]s and submit
//! `(SpecId, RunId, u, v)` probes — single ([`ServeHandle::probe`], which
//! never allocates on the submission path) or vectors
//! ([`ServeHandle::probe_vec`]) — through one bounded admission queue. The
//! router classifies each submitted vector by spec, fans per-shard
//! sub-batches out to bounded shard queues, and replies are reassembled in
//! submission order through a **preallocated ticket slab**: workers write
//! answer *bits* into disjoint index windows of the request's slot (the
//! allocation-free idiom the column kernel established), so the reply path
//! allocates nothing per request once the slab is warm — no oneshot
//! channel, no per-request `Vec` churn.
//!
//! Each worker coalesces its sub-batches inside an **admission window**
//! (flush at [`ServeConfig::max_batch`] probes or after
//! [`ServeConfig::window`], whichever first) into one mixed-spec batch and
//! drives [`ServiceRegistry::answer_batch`] /
//! [`answer_batch_parallel`](ServiceRegistry::answer_batch_parallel).
//! Because every spec lives on exactly one shard, each shard's memo and
//! scratch state stay local to its worker.
//!
//! * **Backpressure** — the admission queue is bounded
//!   ([`ServeConfig::queue_cap`] requests); a full queue rejects the
//!   submission immediately with the typed [`ServeError::Overloaded`],
//!   never blocking the client. Admission is atomic: a request is either
//!   admitted whole or not at all (the router, not the client, fans out).
//! * **Graceful shutdown** — [`ShardedServer::shutdown`] drains: every
//!   request admitted before the queue closed is answered, then the router
//!   and every worker stop and the final merged [`ServeStats`] (plus the
//!   per-shard breakdown) comes back. Submissions after shutdown get the
//!   typed [`ServeError::ShuttingDown`].
//! * **Control plane** — [`ShardedServer::control`] broadcasts a closure
//!   to every shard (freeze a live run, resize budgets, snapshot stats)
//!   without ever exposing a `&mut` registry across threads;
//!   [`ShardedServer::control_shard`] targets one shard. Controls ride the
//!   same ordered queues as requests and execute between batches, so a
//!   client batch always sees a registry in a consistent state.
//! * **Fault isolation** — a registry error on one shard fails only the
//!   submissions that touched that shard (the failing window is re-driven
//!   per sub-batch); other shards, and other requests on the same shard,
//!   are unaffected. A worker that panics poisons only its own shard:
//!   every pending or future sub-batch routed to it resolves with
//!   [`ServeError::Disconnected`] instead of hanging its client.
//! * **Accounting** — per-shard [`ServeStats`] (batch shape, flush causes,
//!   per-scheme p50/p99 latency over log-bucketed histograms with an exact
//!   sub-128 range) merge into one report, live ([`ShardedServer::stats`])
//!   or at shutdown.
//!
//! The single-shard façade of previous revisions is intact: [`serve`]
//! builds a one-shard server behind the same [`Server`] type, driven by
//! the identical router/worker machinery.
//!
//! ```
//! use wfp_model::fixtures;
//! use wfp_skl::serve::{serve, ServeConfig};
//! use wfp_skl::{label_run, ServiceRegistry};
//! use wfp_speclabel::SchemeKind;
//!
//! let server = serve(ServeConfig::default(), || {
//!     let spec = fixtures::paper_spec();
//!     let run = fixtures::paper_run(&spec);
//!     let (labels, _) = label_run(&spec, &run).unwrap();
//!     let mut reg = ServiceRegistry::new();
//!     let id = reg.register_spec(&spec, SchemeKind::Tcm)?;
//!     reg.register_labels(id, &labels)?;
//!     Ok((reg, id))
//! })
//! .unwrap();
//! let id = *server.context();
//! let handle = server.handle();
//! let yes = handle
//!     .probe(id, wfp_skl::RunId(0), wfp_model::RunVertexId(0), wfp_model::RunVertexId(0))
//!     .unwrap();
//! assert!(yes, "reachability is reflexive");
//! let stats = server.shutdown().unwrap();
//! assert_eq!(stats.probes_answered, 1);
//! ```

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wfp_model::RunVertexId;
use wfp_speclabel::SchemeKind;

use crate::fleet::RunId;
use crate::registry::{RegistryError, ServiceRegistry, SpecId};

/// One client probe: `(spec, run, u, v)` — does vertex `u` reach `v` in
/// run `run` of spec `spec`?
pub type Probe = (SpecId, RunId, RunVertexId, RunVertexId);

// ======================================================================
// configuration & errors
// ======================================================================

/// Admission-loop tuning knobs. The defaults favor throughput at serving
/// batch sizes; latency-sensitive deployments shrink `window`.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Flush a shard's admission window once this many probes have
    /// coalesced on it.
    pub max_batch: usize,
    /// Flush the admission window this long after its first probe arrived,
    /// even if `max_batch` was not reached.
    pub window: Duration,
    /// Bounded queue capacity in *requests* (the admission queue, and each
    /// per-shard queue); a full admission queue turns submissions into
    /// [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Worker threads per registry batch (`<= 1` serves sequentially; more
    /// drives [`ServiceRegistry::answer_batch_parallel`]).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8192,
            window: Duration::from_micros(200),
            queue_cap: 1024,
            threads: 1,
        }
    }
}

/// Typed serving-path errors, as seen by clients.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// The bounded admission queue is full; resubmit after backing off.
    Overloaded,
    /// The server is shutting down (or already gone); the probe was not
    /// admitted.
    ShuttingDown,
    /// A serving thread died before answering (a panic in a registry
    /// builder or batch kernel — never part of normal operation). Only
    /// submissions routed to the dead shard see this.
    Disconnected,
    /// The registry rejected this request's probes (unknown spec/run,
    /// snapshot failure...). Other requests in the same admitted batch are
    /// unaffected: a failing shard window is re-driven per sub-batch so
    /// only the faulty submission sees its error.
    Registry(Arc<RegistryError>),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "admission queue full (overloaded)"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Disconnected => write!(f, "serving thread gone"),
            ServeError::Registry(e) => write!(f, "registry: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

// ======================================================================
// shard placement
// ======================================================================

/// Spec-to-shard placement: every spec hashes to a home shard, with
/// explicit pins overriding the hash for hot specs that need manual
/// balancing. The same plan must be shared by the router and whoever
/// builds the shard registries, so [`serve_sharded`] passes it to the
/// builder implicitly via the shard index.
#[derive(Clone, Debug, Default)]
pub struct ShardPlan {
    pins: Vec<(SpecId, usize)>,
}

impl ShardPlan {
    /// The default hash placement with no pins.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins `spec` to `shard` (interpreted modulo the shard count),
    /// overriding hash placement.
    pub fn pin(mut self, spec: SpecId, shard: usize) -> Self {
        self.pins.retain(|(id, _)| *id != spec);
        self.pins.push((spec, shard));
        self
    }

    /// The home shard for `spec` under `shards` shards: the explicit pin
    /// when present, else a mix of the content hash. Deterministic, so
    /// shard registries can be constructed to hold exactly the specs that
    /// will be routed to them.
    pub fn shard_of(&self, spec: SpecId, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        if let Some(&(_, s)) = self.pins.iter().find(|(id, _)| *id == spec) {
            return s % shards;
        }
        // SpecId is already a content hash; fold the high half in so a
        // biased low word cannot alias every spec onto one shard
        let h = spec.0 ^ (spec.0 >> 32) ^ (spec.0 >> 17);
        (h % shards as u64) as usize
    }
}

// ======================================================================
// latency accounting
// ======================================================================

/// Log-bucketed latency/size histogram: **exact below 128**, then four
/// sub-buckets per octave (≤ ~12% relative error) — µs-scale medians come
/// back exact, larger values with honest p50/p99 resolution and no
/// per-sample storage.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
            count: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Values below this are recorded in exact unit buckets.
    pub const EXACT: u64 = 128;
    // 128 exact buckets + 4 sub-buckets for each octave 7..=63
    const BUCKETS: usize = 128 + (64 - 7) * 4;

    fn bucket_of(v: u64) -> usize {
        if v < Self::EXACT {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros() as u64; // >= 7
        let sub = (v >> (octave - 2)) & 3;
        ((octave - 7) * 4 + sub) as usize + Self::EXACT as usize
    }

    fn bucket_floor(idx: usize) -> u64 {
        if idx < Self::EXACT as usize {
            return idx as u64;
        }
        let octave = (idx - Self::EXACT as usize) as u64 / 4 + 7;
        let sub = (idx - Self::EXACT as usize) as u64 % 4;
        (1u64 << octave) + (sub << (octave - 2))
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Folds `other`'s samples into `self` (bucket-wise; exact counts stay
    /// exact) — how per-shard digests merge into one report.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (lower bucket bound — exact
    /// for values below [`Histogram::EXACT`]; `None` when empty).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

/// Latency digest for one specification scheme.
#[derive(Clone, Debug, Default)]
pub struct SchemeLatency {
    /// Probes answered under this scheme.
    pub probes: u64,
    /// Per-probe submit→reply latency histogram, microseconds.
    pub latency_us: Histogram,
}

impl SchemeLatency {
    /// Median latency in µs (`None` when no probes were served).
    pub fn p50_us(&self) -> Option<u64> {
        self.latency_us.quantile(0.50)
    }

    /// 99th-percentile latency in µs.
    pub fn p99_us(&self) -> Option<u64> {
        self.latency_us.quantile(0.99)
    }
}

/// A consistent snapshot of serving-loop accounting
/// ([`ShardedServer::stats`] live — merged across shards — or the final
/// state from [`ShardedServer::shutdown`]).
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Requests admitted into the queue (each carries ≥ 0 probes).
    pub requests: u64,
    /// Probes admitted.
    pub probes_submitted: u64,
    /// Probes answered successfully.
    pub probes_answered: u64,
    /// Probes that came back with a registry error.
    pub probes_failed: u64,
    /// Admission windows flushed.
    pub batches: u64,
    /// ... because `max_batch` filled.
    pub batches_full: u64,
    /// ... because the time window lapsed (or the queue went idle).
    pub batches_timer: u64,
    /// ... while draining at shutdown.
    pub batches_drain: u64,
    /// Control closures executed on worker threads.
    pub controls: u64,
    /// Admitted batch sizes, in probes per flush.
    pub batch_probes: Histogram,
    /// Per-scheme latency, indexed like [`SchemeKind::ALL`].
    pub per_scheme: [SchemeLatency; SchemeKind::ALL.len()],
}

impl ServeStats {
    /// The latency digest for `kind`.
    pub fn scheme(&self, kind: SchemeKind) -> &SchemeLatency {
        let i = SchemeKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("ALL is total");
        &self.per_scheme[i]
    }

    /// Folds `other` into `self`: counters add, histograms merge
    /// bucket-wise — how per-shard stats become the one merged report.
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.probes_submitted += other.probes_submitted;
        self.probes_answered += other.probes_answered;
        self.probes_failed += other.probes_failed;
        self.batches += other.batches;
        self.batches_full += other.batches_full;
        self.batches_timer += other.batches_timer;
        self.batches_drain += other.batches_drain;
        self.controls += other.controls;
        self.batch_probes.merge(&other.batch_probes);
        for (mine, theirs) in self.per_scheme.iter_mut().zip(&other.per_scheme) {
            mine.probes += theirs.probes;
            mine.latency_us.merge(&theirs.latency_us);
        }
    }
}

/// The final accounting from [`ShardedServer::shutdown`]: the merged view
/// plus the per-shard breakdown the merge came from.
#[derive(Clone, Debug)]
pub struct ShardedStats {
    /// All shards (and the router's admission counters) folded together.
    pub merged: ServeStats,
    /// One entry per shard, in shard order.
    pub per_shard: Vec<ServeStats>,
}

// ======================================================================
// ticket slab — the preallocated, reusable reply path
// ======================================================================

/// Completion state for one pending submission. Workers write answer bits
/// into `bits` at each probe's original position (disjoint windows per
/// shard — no coordination beyond the slot mutex), decrement `remaining`,
/// and the last shard wakes the waiting client.
struct SlotState {
    /// Sub-batches still in flight (set by the router before fan-out).
    remaining: u32,
    /// Probes in the originating request.
    nprobes: u32,
    /// Answer bits, bit *i* = probe *i*'s verdict; length `⌈nprobes/64⌉`.
    /// The buffer is reused across the slot's lifetimes, so a warm slab
    /// answers without allocating.
    bits: Vec<u64>,
    /// First error any shard reported for this request.
    error: Option<ServeError>,
    /// Every sub-batch resolved; the ticket may collect.
    done: bool,
    /// The client dropped its ticket; whoever completes the slot frees it.
    client_gone: bool,
}

struct ReplySlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> Self {
        ReplySlot {
            state: Mutex::new(SlotState {
                remaining: 0,
                nprobes: 0,
                bits: Vec::new(),
                error: None,
                done: false,
                client_gone: false,
            }),
            cv: Condvar::new(),
        }
    }
}

struct SlabInner {
    slots: Vec<Arc<ReplySlot>>,
    free: Vec<u32>,
}

/// Grow-only slab of reusable reply slots. Slots are recycled through a
/// free list, so steady-state traffic reuses a warm working set and the
/// reply path stops allocating entirely.
struct TicketSlab {
    inner: Mutex<SlabInner>,
}

impl TicketSlab {
    fn new(prealloc: usize) -> Self {
        let slots: Vec<Arc<ReplySlot>> = (0..prealloc).map(|_| Arc::new(ReplySlot::new())).collect();
        let free = (0..prealloc as u32).rev().collect();
        TicketSlab {
            inner: Mutex::new(SlabInner { slots, free }),
        }
    }

    /// Claims a slot sized for `nprobes`, resetting it for a new request.
    fn alloc(&self, nprobes: usize) -> (u32, Arc<ReplySlot>) {
        let (idx, slot) = {
            let mut inner = self.inner.lock().expect("slab lock");
            match inner.free.pop() {
                Some(idx) => {
                    let slot = Arc::clone(&inner.slots[idx as usize]);
                    (idx, slot)
                }
                None => {
                    let idx = inner.slots.len() as u32;
                    let slot = Arc::new(ReplySlot::new());
                    inner.slots.push(Arc::clone(&slot));
                    (idx, slot)
                }
            }
        };
        let mut st = slot.state.lock().expect("slot lock");
        st.remaining = 0;
        st.nprobes = nprobes as u32;
        st.bits.clear();
        st.bits.resize(nprobes.div_ceil(64), 0);
        st.error = None;
        st.done = false;
        st.client_gone = false;
        drop(st);
        (idx, slot)
    }

    fn release(&self, idx: u32) {
        self.inner.lock().expect("slab lock").free.push(idx);
    }
}

/// Resolves one sub-batch against its slot: `fill` writes bits or the
/// error, then the in-flight count drops and the last resolver either
/// wakes the client or (client gone) recycles the slot.
fn finish_sub(
    slot: &ReplySlot,
    idx: u32,
    slab: &TicketSlab,
    fill: impl FnOnce(&mut SlotState),
) {
    let mut st = slot.state.lock().expect("slot lock");
    fill(&mut st);
    st.remaining = st.remaining.saturating_sub(1);
    if st.remaining == 0 && !st.done {
        st.done = true;
        let gone = st.client_gone;
        drop(st);
        if gone {
            slab.release(idx);
        } else {
            slot.cv.notify_all();
        }
    }
}

fn fail_sub(slot: &ReplySlot, idx: u32, err: ServeError, slab: &TicketSlab) {
    finish_sub(slot, idx, slab, move |st| {
        if st.error.is_none() {
            st.error = Some(err);
        }
    });
}

// ======================================================================
// wire types
// ======================================================================

/// A submission's probes: the single-probe case rides inline so
/// [`ServeHandle::probe`] never allocates on the way in.
enum Payload {
    One(Probe),
    Many(Vec<Probe>),
}

impl Payload {
    fn len(&self) -> usize {
        match self {
            Payload::One(_) => 1,
            Payload::Many(v) => v.len(),
        }
    }

    fn as_slice(&self) -> &[Probe] {
        match self {
            Payload::One(p) => std::slice::from_ref(p),
            Payload::Many(v) => v,
        }
    }
}

struct Request {
    payload: Payload,
    submitted: Instant,
    slot: Arc<ReplySlot>,
    slot_idx: u32,
}

/// One shard's share of a request: probes plus their positions in the
/// originating vector (`None` = the whole request landed on this shard,
/// positions are the identity — the common case under spec-affine
/// traffic, moved through without copying).
struct SubBatch {
    slot: Arc<ReplySlot>,
    slot_idx: u32,
    submitted: Instant,
    positions: Option<Vec<u32>>,
    probes: Payload,
}

type ControlFn = Box<dyn FnOnce(&mut ServiceRegistry<'static>) + Send>;
/// Stamps one [`ControlFn`] per shard for a broadcast control.
type ControlFactory = Box<dyn FnMut(usize) -> ControlFn + Send>;

enum Msg {
    Request(Request),
    ControlOne(usize, ControlFn),
    ControlAll(ControlFactory),
    Shutdown,
}

enum ShardMsg {
    Batch(SubBatch),
    Control(ControlFn),
    Shutdown,
}

// ======================================================================
// tickets
// ======================================================================

/// A pending answer: [`ServeHandle::submit`] returns immediately with a
/// ticket; [`wait`](Ticket::wait) blocks until every shard touched by the
/// request has written its bits.
#[must_use = "a ticket holds the only route to this request's answers"]
pub struct Ticket {
    slab: Arc<TicketSlab>,
    slot: Arc<ReplySlot>,
    idx: u32,
    waited: bool,
}

impl Ticket {
    /// Blocks until the answers arrive (in submission order, one `bool`
    /// per probe).
    pub fn wait(mut self) -> Result<Vec<bool>, ServeError> {
        let mut out = Vec::new();
        self.wait_into(&mut out)?;
        Ok(out)
    }

    /// Blocks like [`wait`](Self::wait) but reuses the caller's buffer —
    /// the allocation-free collection path for closed-loop clients.
    pub fn wait_into(&mut self, out: &mut Vec<bool>) -> Result<(), ServeError> {
        if self.waited {
            return Err(ServeError::ShuttingDown);
        }
        let mut st = self.slot.state.lock().expect("slot lock");
        while !st.done {
            st = self.slot.cv.wait(st).expect("slot lock");
        }
        let verdict = st.error.take();
        out.clear();
        if verdict.is_none() {
            out.reserve(st.nprobes as usize);
            for i in 0..st.nprobes as usize {
                out.push((st.bits[i / 64] >> (i % 64)) & 1 == 1);
            }
        }
        drop(st);
        self.waited = true;
        self.slab.release(self.idx);
        match verdict {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Blocks and returns the first probe's verdict without building a
    /// `Vec` — pairs with [`ServeHandle::submit_one`] for an entirely
    /// allocation-free round trip.
    pub fn wait_one(mut self) -> Result<bool, ServeError> {
        if self.waited {
            return Err(ServeError::ShuttingDown);
        }
        let mut st = self.slot.state.lock().expect("slot lock");
        while !st.done {
            st = self.slot.cv.wait(st).expect("slot lock");
        }
        let verdict = st.error.take();
        let answer = st.bits.first().is_some_and(|w| w & 1 == 1);
        drop(st);
        self.waited = true;
        self.slab.release(self.idx);
        match verdict {
            Some(e) => Err(e),
            None => Ok(answer),
        }
    }

    /// Non-blocking poll: `None` while any shard's share is still in
    /// flight.
    pub fn try_wait(&mut self) -> Option<Result<Vec<bool>, ServeError>> {
        if self.waited {
            return Some(Err(ServeError::ShuttingDown));
        }
        let mut st = self.slot.state.lock().expect("slot lock");
        if !st.done {
            return None;
        }
        let verdict = st.error.take();
        let result = match verdict {
            Some(e) => Err(e),
            None => {
                let mut out = Vec::with_capacity(st.nprobes as usize);
                for i in 0..st.nprobes as usize {
                    out.push((st.bits[i / 64] >> (i % 64)) & 1 == 1);
                }
                Ok(out)
            }
        };
        drop(st);
        self.waited = true;
        self.slab.release(self.idx);
        Some(result)
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if self.waited {
            return;
        }
        let mut st = self.slot.state.lock().expect("slot lock");
        if st.done {
            drop(st);
            self.slab.release(self.idx);
        } else {
            // workers still hold sub-batches: the last one frees the slot
            st.client_gone = true;
        }
    }
}

// ======================================================================
// client handle
// ======================================================================

/// A cloneable client endpoint. Handles are cheap (three `Arc`-sized
/// fields); clone one per client thread.
#[derive(Clone)]
pub struct ServeHandle {
    tx: SyncSender<Msg>,
    closed: Arc<AtomicBool>,
    slab: Arc<TicketSlab>,
}

impl ServeHandle {
    fn submit_payload(&self, payload: Payload) -> Result<Ticket, ServeError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let (idx, slot) = self.slab.alloc(payload.len());
        let req = Request {
            payload,
            submitted: Instant::now(),
            slot: Arc::clone(&slot),
            slot_idx: idx,
        };
        match self.tx.try_send(Msg::Request(req)) {
            Ok(()) => Ok(Ticket {
                slab: Arc::clone(&self.slab),
                slot,
                idx,
                waited: false,
            }),
            Err(TrySendError::Full(_)) => {
                self.slab.release(idx);
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.slab.release(idx);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Submits a probe vector without blocking for the answer; pair with
    /// [`Ticket::wait`]. Typed failures: [`ServeError::Overloaded`] when
    /// the bounded queue is full, [`ServeError::ShuttingDown`] after
    /// shutdown.
    pub fn submit(&self, probes: Vec<Probe>) -> Result<Ticket, ServeError> {
        self.submit_payload(Payload::Many(probes))
    }

    /// Submits a single probe without allocating; pair with
    /// [`Ticket::wait_one`].
    pub fn submit_one(&self, probe: Probe) -> Result<Ticket, ServeError> {
        self.submit_payload(Payload::One(probe))
    }

    /// Submits and waits: one round trip for a small probe vector.
    pub fn probe_vec(&self, probes: Vec<Probe>) -> Result<Vec<bool>, ServeError> {
        self.submit(probes)?.wait()
    }

    /// Submits and waits for a single probe. Allocation-free end to end:
    /// the probe rides the message inline and the verdict comes back as a
    /// bit out of the reply slot.
    pub fn probe(
        &self,
        spec: SpecId,
        run: RunId,
        u: RunVertexId,
        v: RunVertexId,
    ) -> Result<bool, ServeError> {
        self.submit_one((spec, run, u, v))?.wait_one()
    }
}

// ======================================================================
// servers
// ======================================================================

/// The running sharded serving loop: owns the router and every shard
/// worker, hands out [`ServeHandle`]s, exposes the control plane, and
/// shuts down gracefully.
///
/// `C` is whatever context each shard's builder chose to surface (spec
/// ids, run books, ...) — constructed on the worker thread, returned to
/// the caller by value, one per shard in shard order.
pub struct ShardedServer<C = ()> {
    tx: SyncSender<Msg>,
    closed: Arc<AtomicBool>,
    slab: Arc<TicketSlab>,
    router_stats: Arc<Mutex<ServeStats>>,
    shard_stats: Vec<Arc<Mutex<ServeStats>>>,
    router: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
    contexts: Vec<C>,
    shards: usize,
}

impl<C> ShardedServer<C> {
    /// Number of shards serving.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// A new client endpoint.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            tx: self.tx.clone(),
            closed: Arc::clone(&self.closed),
            slab: Arc::clone(&self.slab),
        }
    }

    /// The per-shard builder contexts, in shard order.
    pub fn contexts(&self) -> &[C] {
        &self.contexts
    }

    /// A live merged accounting snapshot across the router and every
    /// shard (consistent per shard as of its last flush).
    pub fn stats(&self) -> ServeStats {
        let mut merged = self.router_stats.lock().expect("stats lock").clone();
        for s in &self.shard_stats {
            merged.merge(&s.lock().expect("stats lock"));
        }
        merged
    }

    /// A live per-shard snapshot, in shard order.
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.shard_stats
            .iter()
            .map(|s| s.lock().expect("stats lock").clone())
            .collect()
    }

    /// Broadcasts `f` to every shard — each worker runs it against its own
    /// registry between batches — and returns the results in shard order.
    /// This is how callers freeze live runs, adjust budgets, or read
    /// registry stats mid-serve without sharing a `&mut` registry.
    pub fn control<R, F>(&self, f: F) -> Result<Vec<R>, ServeError>
    where
        R: Send + 'static,
        F: Fn(&mut ServiceRegistry<'static>) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let (rtx, rrx) = mpsc::channel::<(usize, R)>();
        let factory: ControlFactory = Box::new(move |shard| {
            let f = Arc::clone(&f);
            let rtx = rtx.clone();
            Box::new(move |reg: &mut ServiceRegistry<'static>| {
                let _ = rtx.send((shard, f(reg)));
            })
        });
        // controls ride the same ordered queues as requests; blocking send
        // (not try_send) — controls are rare and must not be shed
        self.tx
            .send(Msg::ControlAll(factory))
            .map_err(|_| ServeError::ShuttingDown)?;
        let mut out: Vec<(usize, R)> = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            match rrx.recv() {
                Ok(pair) => out.push(pair),
                Err(_) => break,
            }
        }
        if out.len() != self.shards {
            return Err(ServeError::Disconnected);
        }
        out.sort_by_key(|&(s, _)| s);
        Ok(out.into_iter().map(|(_, r)| r).collect())
    }

    /// Runs `f` against one shard's registry, on that shard's worker
    /// thread, and returns its result.
    pub fn control_shard<R, F>(&self, shard: usize, f: F) -> Result<R, ServeError>
    where
        R: Send + 'static,
        F: FnOnce(&mut ServiceRegistry<'static>) -> R + Send + 'static,
    {
        assert!(shard < self.shards, "shard {shard} out of range");
        let (rtx, rrx) = mpsc::channel();
        let boxed: ControlFn = Box::new(move |reg| {
            let _ = rtx.send(f(reg));
        });
        self.tx
            .send(Msg::ControlOne(shard, boxed))
            .map_err(|_| ServeError::ShuttingDown)?;
        rrx.recv().map_err(|_| ServeError::ShuttingDown)
    }

    /// Drain-then-stop: closes admission (new submissions fail with
    /// [`ServeError::ShuttingDown`]), answers every request already
    /// admitted on every shard, joins the router and all workers, and
    /// returns the final merged + per-shard stats. A thread that panicked
    /// surfaces as [`ServeError::Disconnected`] (its pending submissions
    /// were error-completed, never left hanging).
    pub fn shutdown(self) -> Result<ShardedStats, ServeError> {
        let ShardedServer {
            tx,
            closed,
            router_stats,
            shard_stats,
            router,
            workers,
            ..
        } = self;
        closed.store(true, Ordering::Release);
        // the marker may block while the queue drains — that is the point
        let _ = tx.send(Msg::Shutdown);
        drop(tx);
        let mut panicked = router.join().is_err();
        for w in workers {
            panicked |= w.join().is_err();
        }
        if panicked {
            return Err(ServeError::Disconnected);
        }
        let per_shard: Vec<ServeStats> = shard_stats
            .iter()
            .map(|s| s.lock().expect("stats lock").clone())
            .collect();
        let mut merged = router_stats.lock().expect("stats lock").clone();
        for s in &per_shard {
            merged.merge(s);
        }
        Ok(ShardedStats { merged, per_shard })
    }
}

/// The single-shard façade: the [`serve`] entry point of previous
/// revisions, now a thin wrapper over a one-shard [`ShardedServer`] —
/// same router/worker machinery, same semantics, `FnOnce` builder.
pub struct Server<C = ()> {
    inner: ShardedServer<C>,
}

impl<C> Server<C> {
    /// A new client endpoint.
    pub fn handle(&self) -> ServeHandle {
        self.inner.handle()
    }

    /// The builder's context value (e.g. the registered spec ids).
    pub fn context(&self) -> &C {
        &self.inner.contexts()[0]
    }

    /// A live accounting snapshot (consistent as of the last flush).
    pub fn stats(&self) -> ServeStats {
        self.inner.stats()
    }

    /// Runs `f` against the registry on its worker thread — between
    /// batches, never concurrently with one — and returns its result.
    pub fn control<R, F>(&self, f: F) -> Result<R, ServeError>
    where
        R: Send + 'static,
        F: FnOnce(&mut ServiceRegistry<'static>) -> R + Send + 'static,
    {
        self.inner.control_shard(0, f)
    }

    /// Drain-then-stop; see [`ShardedServer::shutdown`].
    pub fn shutdown(self) -> Result<ServeStats, ServeError> {
        self.inner.shutdown().map(|s| s.merged)
    }
}

/// Spawns the sharded serving loop. `build` runs **on each worker
/// thread** as `build(shard, shards)` and constructs that shard's
/// registry there (the search schemes' scratch state is single-threaded
/// by design, so a registry must be born where it serves). It must
/// register exactly the specs that `plan` routes to `shard` — probes for
/// a spec the home shard doesn't know come back as that shard's
/// [`RegistryError::UnknownSpec`]. Any builder error tears the whole loop
/// down and is returned here instead.
pub fn serve_sharded<C, F>(
    config: ServeConfig,
    shards: usize,
    plan: ShardPlan,
    build: F,
) -> Result<ShardedServer<C>, RegistryError>
where
    C: Send + 'static,
    F: Fn(usize, usize) -> Result<(ServiceRegistry<'static>, C), RegistryError>
        + Send
        + Sync
        + 'static,
{
    let shards = shards.max(1);
    let queue_cap = config.queue_cap.max(1);
    let (tx, rx) = mpsc::sync_channel::<Msg>(queue_cap);
    let closed = Arc::new(AtomicBool::new(false));
    let slab = Arc::new(TicketSlab::new(queue_cap.min(4096)));
    let router_stats = Arc::new(Mutex::new(ServeStats::default()));
    let build = Arc::new(build);
    let (ready_tx, ready_rx) = mpsc::channel();

    let mut shard_txs = Vec::with_capacity(shards);
    let mut shard_stats = Vec::with_capacity(shards);
    let mut workers = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (stx, srx) = mpsc::sync_channel::<ShardMsg>(queue_cap);
        let stats = Arc::new(Mutex::new(ServeStats::default()));
        shard_txs.push(stx);
        shard_stats.push(Arc::clone(&stats));
        let build = Arc::clone(&build);
        let ready = ready_tx.clone();
        let slab = Arc::clone(&slab);
        let worker = std::thread::Builder::new()
            .name(format!("wfp-serve-{shard}"))
            .spawn(move || {
                let (registry, context) = match build(shard, shards) {
                    Ok(pair) => pair,
                    Err(e) => {
                        let _ = ready.send((shard, Err(e)));
                        return;
                    }
                };
                let _ = ready.send((shard, Ok(context)));
                drop(ready);
                shard_loop(registry, srx, config, stats, slab);
            })
            .expect("spawn shard worker");
        workers.push(worker);
    }
    drop(ready_tx);

    let router = {
        let slab = Arc::clone(&slab);
        let stats = Arc::clone(&router_stats);
        let plan = plan.clone();
        std::thread::Builder::new()
            .name("wfp-serve-router".into())
            .spawn(move || router_loop(rx, shard_txs, shards, plan, slab, stats))
            .expect("spawn serve router")
    };

    let mut contexts: Vec<Option<C>> = (0..shards).map(|_| None).collect();
    let mut first_err: Option<RegistryError> = None;
    for _ in 0..shards {
        match ready_rx.recv() {
            Ok((shard, Ok(c))) => contexts[shard] = Some(c),
            Ok((_, Err(e))) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            Err(_) => {
                // a builder panicked before reporting; surface as a
                // format-ish error rather than poisoning the caller
                if first_err.is_none() {
                    first_err = Some(RegistryError::Io {
                        path: std::path::PathBuf::from("<serve builder>"),
                        message: "registry builder panicked".into(),
                    });
                }
                break;
            }
        }
    }
    if let Some(e) = first_err {
        closed.store(true, Ordering::Release);
        let _ = tx.send(Msg::Shutdown);
        drop(tx);
        let _ = router.join();
        for w in workers {
            let _ = w.join();
        }
        return Err(e);
    }

    Ok(ShardedServer {
        tx,
        closed,
        slab,
        router_stats,
        shard_stats,
        router,
        workers,
        contexts: contexts
            .into_iter()
            .map(|c| c.expect("every shard reported"))
            .collect(),
        shards,
    })
}

/// Spawns a single-shard serving loop. `build` runs **on the worker
/// thread** and constructs the registry there; whatever context it
/// returns next to the registry comes back in the [`Server`]. A builder
/// error tears the loop down and is returned here instead.
pub fn serve<C, F>(config: ServeConfig, build: F) -> Result<Server<C>, RegistryError>
where
    C: Send + 'static,
    F: FnOnce() -> Result<(ServiceRegistry<'static>, C), RegistryError> + Send + 'static,
{
    let once = Mutex::new(Some(build));
    let inner = serve_sharded(config, 1, ShardPlan::default(), move |_, _| {
        let build = once
            .lock()
            .expect("builder lock")
            .take()
            .expect("a single-shard builder runs exactly once");
        build()
    })?;
    Ok(Server { inner })
}

// ======================================================================
// router
// ======================================================================

fn router_loop(
    rx: Receiver<Msg>,
    shard_txs: Vec<SyncSender<ShardMsg>>,
    shards: usize,
    plan: ShardPlan,
    slab: Arc<TicketSlab>,
    stats: Arc<Mutex<ServeStats>>,
) {
    let mut draining = false;
    loop {
        let msg = if draining {
            match rx.try_recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        } else {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break, // every handle and the server gone
            }
        };
        match msg {
            Msg::Request(req) => route_request(req, &shard_txs, shards, &plan, &slab, &stats),
            Msg::ControlOne(shard, c) => {
                // a dead shard drops the closure; the caller's reply
                // channel hangs up and control() reports ShuttingDown
                let _ = shard_txs[shard].send(ShardMsg::Control(c));
            }
            Msg::ControlAll(mut factory) => {
                for (shard, stx) in shard_txs.iter().enumerate() {
                    let _ = stx.send(ShardMsg::Control(factory(shard)));
                }
            }
            Msg::Shutdown => draining = true,
        }
    }
    for stx in &shard_txs {
        let _ = stx.send(ShardMsg::Shutdown);
    }
}

fn route_request(
    req: Request,
    shard_txs: &[SyncSender<ShardMsg>],
    shards: usize,
    plan: &ShardPlan,
    slab: &TicketSlab,
    stats: &Mutex<ServeStats>,
) {
    let n = req.payload.len();
    {
        let mut s = stats.lock().expect("stats lock");
        s.requests += 1;
        s.probes_submitted += n as u64;
    }
    let Request {
        payload,
        submitted,
        slot,
        slot_idx,
    } = req;
    if n == 0 {
        // an empty request completes vacuously, touching no shard
        let mut st = slot.state.lock().expect("slot lock");
        st.done = true;
        let gone = st.client_gone;
        drop(st);
        if gone {
            slab.release(slot_idx);
        } else {
            slot.cv.notify_all();
        }
        return;
    }
    let probes = payload.as_slice();
    let home = plan.shard_of(probes[0].0, shards);
    let split = probes.iter().any(|p| plan.shard_of(p.0, shards) != home);
    if !split {
        // whole request on one shard: positions are the identity, the
        // payload moves through untouched
        slot.state.lock().expect("slot lock").remaining = 1;
        send_sub(
            shard_txs,
            home,
            SubBatch {
                slot,
                slot_idx,
                submitted,
                positions: None,
                probes: payload,
            },
            slab,
        );
        return;
    }
    let Payload::Many(probes) = payload else {
        unreachable!("a single probe lives on a single shard");
    };
    let mut parts: Vec<(Vec<u32>, Vec<Probe>)> =
        (0..shards).map(|_| (Vec::new(), Vec::new())).collect();
    for (i, p) in probes.into_iter().enumerate() {
        let s = plan.shard_of(p.0, shards);
        parts[s].0.push(i as u32);
        parts[s].1.push(p);
    }
    let touched = parts.iter().filter(|(_, v)| !v.is_empty()).count();
    // remaining is set before any fan-out so a fast shard cannot complete
    // the slot while siblings are still unrouted
    slot.state.lock().expect("slot lock").remaining = touched as u32;
    for (shard, (positions, probes)) in parts.into_iter().enumerate() {
        if probes.is_empty() {
            continue;
        }
        send_sub(
            shard_txs,
            shard,
            SubBatch {
                slot: Arc::clone(&slot),
                slot_idx,
                submitted,
                positions: Some(positions),
                probes: Payload::Many(probes),
            },
            slab,
        );
    }
}

fn send_sub(shard_txs: &[SyncSender<ShardMsg>], shard: usize, sub: SubBatch, slab: &TicketSlab) {
    // blocking send: workers always drain, so this only stalls under
    // honest backpressure. A dead worker bounces the sub-batch back and
    // its share resolves as Disconnected instead of hanging the client.
    if let Err(mpsc::SendError(ShardMsg::Batch(sub))) = shard_txs[shard].send(ShardMsg::Batch(sub))
    {
        fail_sub(&sub.slot, sub.slot_idx, ServeError::Disconnected, slab);
    }
}

// ======================================================================
// shard workers
// ======================================================================

/// Why an admission window closed.
enum Flush {
    Full,
    Timer,
    Drain,
}

fn shard_loop(
    mut registry: ServiceRegistry<'static>,
    rx: Receiver<ShardMsg>,
    config: ServeConfig,
    stats: Arc<Mutex<ServeStats>>,
    slab: Arc<TicketSlab>,
) {
    let max_batch = config.max_batch.max(1);
    let mut flat: Vec<Probe> = Vec::new();
    let mut draining = false;
    'serve: loop {
        // idle: block for the first message of the next window
        let first = if draining {
            match rx.try_recv() {
                Ok(m) => m,
                Err(_) => break 'serve,
            }
        } else {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break 'serve, // router gone
            }
        };
        let mut batch: Vec<SubBatch> = Vec::new();
        let mut probes = 0usize;
        let mut controls: Vec<ControlFn> = Vec::new();
        match first {
            ShardMsg::Batch(b) => {
                probes += b.probes.len();
                batch.push(b);
            }
            ShardMsg::Control(c) => controls.push(c),
            ShardMsg::Shutdown => draining = true,
        }
        // admission window: coalesce until full, lapsed, or shutting
        // down. The window only opens for probe traffic — a lone control
        // (or the shutdown marker) executes immediately rather than
        // waiting out a timer with nothing to coalesce.
        let deadline = Instant::now() + config.window;
        let mut cause = Flush::Timer;
        while !draining && !batch.is_empty() && probes < max_batch {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match rx.recv_timeout(left) {
                Ok(ShardMsg::Batch(b)) => {
                    probes += b.probes.len();
                    batch.push(b);
                }
                Ok(ShardMsg::Control(c)) => controls.push(c),
                Ok(ShardMsg::Shutdown) => draining = true,
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    draining = true;
                }
            }
        }
        if probes >= max_batch {
            cause = Flush::Full;
        }
        if draining {
            cause = Flush::Drain;
        }
        if !batch.is_empty() {
            // a panicking kernel must not leave clients waiting on slots
            // this worker already claimed: on unwind, every sub-batch not
            // yet resolved is error-completed, the queue is drained the
            // same way, and the shard retires
            let pending: Vec<(Arc<ReplySlot>, u32)> = batch
                .iter()
                .map(|b| (Arc::clone(&b.slot), b.slot_idx))
                .collect();
            let progress = Cell::new(0usize);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                service_shard_batch(
                    &mut registry,
                    &mut flat,
                    batch,
                    probes,
                    cause,
                    &config,
                    &stats,
                    &slab,
                    &progress,
                );
            }));
            if outcome.is_err() {
                for (slot, idx) in pending.iter().skip(progress.get()) {
                    fail_sub(slot, *idx, ServeError::Disconnected, &slab);
                }
                poison_loop(&rx, &slab);
                break 'serve;
            }
        }
        // controls run between batches: a consistent registry, no probe
        // in flight
        if !controls.is_empty() {
            {
                let mut s = stats.lock().expect("stats lock");
                s.controls += controls.len() as u64;
            }
            for c in controls {
                if catch_unwind(AssertUnwindSafe(|| c(&mut registry))).is_err() {
                    poison_loop(&rx, &slab);
                    break 'serve;
                }
            }
        }
    }
    // the queue is closed (or the router hung up): nothing left to answer
}

/// A poisoned shard's terminal state: fail every incoming sub-batch fast
/// (instead of hanging its client) until the router closes the queue.
fn poison_loop(rx: &Receiver<ShardMsg>, slab: &TicketSlab) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(sub) => {
                fail_sub(&sub.slot, sub.slot_idx, ServeError::Disconnected, slab)
            }
            ShardMsg::Control(c) => drop(c), // hangs up the caller's reply
            ShardMsg::Shutdown => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn service_shard_batch(
    registry: &mut ServiceRegistry<'static>,
    flat: &mut Vec<Probe>,
    batch: Vec<SubBatch>,
    probes: usize,
    cause: Flush,
    config: &ServeConfig,
    stats: &Arc<Mutex<ServeStats>>,
    slab: &TicketSlab,
    progress: &Cell<usize>,
) {
    // flatten the coalesced sub-batches into one mixed-spec batch,
    // reusing the worker's flat buffer across windows
    flat.clear();
    flat.reserve(probes);
    for b in &batch {
        flat.extend_from_slice(b.probes.as_slice());
    }
    let combined = registry.answer_batch_parallel(flat, config.threads);
    let replied = Instant::now();

    let mut s = stats.lock().expect("stats lock");
    s.batches += 1;
    match cause {
        Flush::Full => s.batches_full += 1,
        Flush::Timer => s.batches_timer += 1,
        Flush::Drain => s.batches_drain += 1,
    }
    s.batch_probes.record(probes as u64);

    match combined {
        Ok(answers) => {
            let mut off = 0usize;
            for b in &batch {
                let n = b.probes.len();
                let slice = &answers[off..off + n];
                off += n;
                record_latency(&mut s, registry, b, replied);
                s.probes_answered += n as u64;
                complete_sub(b, slice, slab);
                progress.set(progress.get() + 1);
            }
        }
        Err(_) => {
            // one faulty sub-batch must not fail its neighbors: re-drive
            // the window per sub-batch so each submission gets its own
            // verdict
            drop(s);
            for b in &batch {
                let verdict = registry.answer_batch_parallel(b.probes.as_slice(), config.threads);
                let replied = Instant::now();
                let mut s = stats.lock().expect("stats lock");
                match verdict {
                    Ok(answers) => {
                        record_latency(&mut s, registry, b, replied);
                        s.probes_answered += b.probes.len() as u64;
                        drop(s);
                        complete_sub(b, &answers, slab);
                    }
                    Err(e) => {
                        s.probes_failed += b.probes.len() as u64;
                        drop(s);
                        fail_sub(
                            &b.slot,
                            b.slot_idx,
                            ServeError::Registry(Arc::new(e)),
                            slab,
                        );
                    }
                }
                progress.set(progress.get() + 1);
            }
        }
    }
}

/// Writes one sub-batch's answers into its slot as bits at the probes'
/// original positions — the zero-copy reply: no `Vec` is built or sent,
/// the client reads the bits out of the shared slot.
fn complete_sub(b: &SubBatch, answers: &[bool], slab: &TicketSlab) {
    finish_sub(&b.slot, b.slot_idx, slab, |st| match &b.positions {
        None => {
            for (i, &a) in answers.iter().enumerate() {
                if a {
                    st.bits[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        Some(pos) => {
            for (&p, &a) in pos.iter().zip(answers) {
                if a {
                    st.bits[p as usize / 64] |= 1u64 << (p as usize % 64);
                }
            }
        }
    });
}

/// Credits `b`'s submit→reply latency to each probe's scheme.
fn record_latency(
    s: &mut ServeStats,
    registry: &ServiceRegistry<'static>,
    b: &SubBatch,
    replied: Instant,
) {
    let us = replied.duration_since(b.submitted).as_micros() as u64;
    for &(spec, ..) in b.probes.as_slice() {
        let Some(kind) = registry.scheme(spec) else {
            continue;
        };
        let i = SchemeKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("ALL is total");
        s.per_scheme[i].probes += 1;
        s.per_scheme[i].latency_us.record(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabeledRun;
    use wfp_model::fixtures::{paper_run, paper_spec};
    use wfp_speclabel::SpecScheme;

    /// Serves the paper spec under `kinds`, two frozen runs each; context
    /// is the spec-id list plus each run's vertex count.
    fn paper_server(
        config: ServeConfig,
        kinds: &'static [SchemeKind],
    ) -> Server<(Vec<SpecId>, usize)> {
        serve(config, move || {
            let spec = paper_spec();
            let run = paper_run(&spec);
            let n = run.vertex_count();
            let mut reg = ServiceRegistry::new();
            let mut ids = Vec::new();
            for &kind in kinds {
                let labels = LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run)
                    .unwrap()
                    .labels()
                    .to_vec();
                let id = reg.register_spec(&spec, kind)?;
                reg.register_labels(id, &labels)?;
                reg.register_labels(id, &labels)?;
                ids.push(id);
            }
            Ok((reg, (ids, n)))
        })
        .expect("paper registry builds")
    }

    /// A sharded paper server: every scheme's spec lands on its hash-home
    /// shard, each worker registering exactly its own specs.
    fn paper_server_sharded(
        config: ServeConfig,
        shards: usize,
        kinds: &'static [SchemeKind],
    ) -> ShardedServer<(Vec<SpecId>, usize)> {
        let plan = ShardPlan::new();
        serve_sharded(config, shards, plan.clone(), move |shard, shards| {
            let spec = paper_spec();
            let run = paper_run(&spec);
            let n = run.vertex_count();
            let mut reg = ServiceRegistry::new();
            let mut ids = Vec::new();
            for &kind in kinds {
                let id = SpecId::of(kind, spec.graph());
                if plan.shard_of(id, shards) != shard {
                    continue;
                }
                let labels = LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run)
                    .unwrap()
                    .labels()
                    .to_vec();
                let got = reg.register_spec(&spec, kind)?;
                assert_eq!(got, id, "content-hashed ids are deterministic");
                reg.register_labels(id, &labels)?;
                reg.register_labels(id, &labels)?;
                ids.push(id);
            }
            Ok((reg, (ids, n)))
        })
        .expect("sharded paper registry builds")
    }

    fn all_pairs(ids: &[SpecId], n: usize) -> Vec<Probe> {
        let mut probes = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    probes.push((
                        id,
                        RunId(((u as usize + i) % 2) as u32),
                        RunVertexId(u),
                        RunVertexId(v),
                    ));
                }
            }
        }
        probes
    }

    #[test]
    fn served_answers_match_direct_calls() {
        const KINDS: &[SchemeKind] = &[SchemeKind::Tcm, SchemeKind::Bfs];
        let server = paper_server(ServeConfig::default(), KINDS);
        let (ids, n) = server.context().clone();
        let probes = all_pairs(&ids, n);
        let want = server
            .control({
                let probes = probes.clone();
                move |reg| reg.answer_batch(&probes).unwrap()
            })
            .unwrap();
        let handle = server.handle();
        let got = handle.probe_vec(probes.clone()).unwrap();
        assert_eq!(got, want);
        // singles agree too
        for (p, w) in probes.iter().take(40).zip(&want) {
            assert_eq!(handle.probe(p.0, p.1, p.2, p.3).unwrap(), *w);
        }
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.probes_failed, 0);
        assert_eq!(stats.probes_answered, probes.len() as u64 + 40);
        assert!(stats.scheme(SchemeKind::Tcm).probes > 0);
        assert!(stats.scheme(SchemeKind::Tcm).p99_us().is_some());
    }

    #[test]
    fn sharded_answers_match_direct_calls_across_shards() {
        const KINDS: &[SchemeKind] = &[
            SchemeKind::Tcm,
            SchemeKind::Bfs,
            SchemeKind::Dfs,
            SchemeKind::TreeCover,
        ];
        const SHARDS: usize = 4;
        let server = paper_server_sharded(ServeConfig::default(), SHARDS, KINDS);
        let mut ids = Vec::new();
        let mut n = 0;
        for (shard_ids, vn) in server.contexts() {
            ids.extend_from_slice(shard_ids);
            n = *vn;
        }
        assert_eq!(ids.len(), KINDS.len(), "every spec found a home shard");
        let probes = all_pairs(&ids, n);
        // oracle: one direct registry holding everything
        let mut direct = ServiceRegistry::new();
        let spec = paper_spec();
        let run = paper_run(&spec);
        for &kind in KINDS {
            let labels = LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run)
                .unwrap()
                .labels()
                .to_vec();
            let id = direct.register_spec(&spec, kind).unwrap();
            direct.register_labels(id, &labels).unwrap();
            direct.register_labels(id, &labels).unwrap();
        }
        let want = direct.answer_batch(&probes).unwrap();
        let handle = server.handle();
        // the mixed-spec vector splits across shards and reassembles in
        // submission order
        let got = handle.probe_vec(probes.clone()).unwrap();
        assert_eq!(got, want, "cross-shard reassembly is order-preserving");
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.merged.probes_failed, 0);
        assert_eq!(stats.merged.probes_answered, probes.len() as u64);
        assert_eq!(stats.per_shard.len(), SHARDS);
        let shards_hit = stats
            .per_shard
            .iter()
            .filter(|s| s.probes_answered > 0)
            .count();
        assert!(shards_hit >= 2, "traffic spread across shards");
    }

    #[test]
    fn broadcast_control_reaches_every_shard() {
        const KINDS: &[SchemeKind] = &[SchemeKind::Tcm, SchemeKind::Bfs, SchemeKind::Dfs];
        const SHARDS: usize = 3;
        let server = paper_server_sharded(ServeConfig::default(), SHARDS, KINDS);
        let lens = server.control(|reg| reg.len()).unwrap();
        assert_eq!(lens.len(), SHARDS);
        assert_eq!(
            lens.iter().sum::<usize>(),
            KINDS.len(),
            "each spec registered on exactly one shard"
        );
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.merged.controls, SHARDS as u64);
    }

    #[test]
    fn shutdown_drains_every_admitted_probe() {
        const KINDS: &[SchemeKind] = &[SchemeKind::Tcm];
        // an hour-long window and a huge batch: nothing flushes on its
        // own, so every answer below is produced by the shutdown drain
        let server = paper_server(
            ServeConfig {
                window: Duration::from_secs(3600),
                max_batch: usize::MAX,
                ..ServeConfig::default()
            },
            KINDS,
        );
        let (ids, n) = server.context().clone();
        let probes = all_pairs(&ids, n);
        let want = server
            .control({
                let probes = probes.clone();
                move |reg| reg.answer_batch(&probes).unwrap()
            })
            .unwrap();
        let handle = server.handle();
        let tickets: Vec<(usize, Ticket)> = (0..10)
            .map(|i| (i, handle.submit(probes.clone()).unwrap()))
            .collect();
        let stats = server.shutdown().unwrap();
        assert_eq!(
            stats.probes_answered,
            (probes.len() * tickets.len()) as u64,
            "drain answers every admitted probe"
        );
        assert!(stats.batches_drain >= 1);
        for (_, t) in tickets {
            assert_eq!(t.wait().unwrap(), want);
        }
        // post-shutdown submissions get the typed error
        assert!(matches!(
            handle.probe_vec(probes),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn overflow_is_typed_and_never_deadlocks() {
        const KINDS: &[SchemeKind] = &[SchemeKind::Tcm];
        let server = paper_server(
            ServeConfig {
                queue_cap: 1,
                window: Duration::from_micros(50),
                ..ServeConfig::default()
            },
            KINDS,
        );
        let (ids, _) = server.context().clone();
        let handle = server.handle();
        // stall the worker inside a control closure (issued from a
        // helper thread — `control` blocks until executed) so the bounded
        // queues visibly back up
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let mut admitted = Vec::new();
        std::thread::scope(|scope| {
            let srv = &server;
            scope.spawn(move || {
                srv.control(move |_| {
                    let _ = started_tx.send(());
                    let _ = hold_rx.recv_timeout(Duration::from_secs(10));
                })
                .unwrap();
            });
            started_rx.recv().expect("worker reached the control");
            // the worker is stalled: fill the 1-slot queues, then
            // observe an immediate typed rejection — never a block
            let one = (ids[0], RunId(0), RunVertexId(0), RunVertexId(0));
            let mut saw_overload = false;
            for _ in 0..512 {
                match handle.submit_one(one) {
                    Ok(t) => admitted.push(t),
                    Err(ServeError::Overloaded) => {
                        saw_overload = true;
                        break;
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            assert!(
                saw_overload,
                "a 1-slot queue behind a stalled worker must shed load"
            );
            hold_tx.send(()).expect("release the worker");
        });
        // no deadlock: every admitted ticket still resolves (reflexive
        // probe → true)
        for t in admitted {
            assert!(t.wait_one().unwrap());
        }
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.controls, 1);
        assert_eq!(stats.probes_failed, 0);
    }

    #[test]
    fn faulty_requests_fail_alone() {
        const KINDS: &[SchemeKind] = &[SchemeKind::Tcm, SchemeKind::Dfs];
        // a long window so both requests coalesce into one batch
        let server = paper_server(
            ServeConfig {
                window: Duration::from_millis(200),
                ..ServeConfig::default()
            },
            KINDS,
        );
        let (ids, n) = server.context().clone();
        let handle = server.handle();
        let good = all_pairs(&ids, n);
        let bad = vec![(ids[1], RunId(99), RunVertexId(0), RunVertexId(0))];
        let t_good = handle.submit(good.clone()).unwrap();
        let t_bad = handle.submit(bad).unwrap();
        let got = t_good.wait().unwrap();
        assert!(matches!(
            t_bad.wait(),
            Err(ServeError::Registry(e))
                if matches!(&*e, RegistryError::Fleet { .. })
        ));
        let want = server
            .control(move |reg| reg.answer_batch(&good).unwrap())
            .unwrap();
        assert_eq!(got, want, "the healthy neighbor is unaffected");
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.probes_failed, 1);
    }

    #[test]
    fn cross_shard_request_with_one_faulty_shard_reports_the_error() {
        const KINDS: &[SchemeKind] = &[
            SchemeKind::Tcm,
            SchemeKind::Bfs,
            SchemeKind::Dfs,
            SchemeKind::TreeCover,
        ];
        const SHARDS: usize = 4;
        let server = paper_server_sharded(ServeConfig::default(), SHARDS, KINDS);
        let mut ids = Vec::new();
        let mut n = 0;
        for (shard_ids, vn) in server.contexts() {
            ids.extend_from_slice(shard_ids);
            n = *vn;
        }
        let handle = server.handle();
        // pick two specs with *different* home shards so the bad request
        // provably spans shards, with the fault confined to one of them
        let plan = ShardPlan::new();
        let (a, b) = ids
            .iter()
            .flat_map(|&x| ids.iter().map(move |&y| (x, y)))
            .find(|&(x, y)| plan.shard_of(x, SHARDS) != plan.shard_of(y, SHARDS))
            .expect("specs spread over at least two shards");
        // a healthy cross-shard request and one whose probes include a
        // bogus run on a single shard
        let good = all_pairs(&ids, n);
        let bad = vec![
            (a, RunId(0), RunVertexId(0), RunVertexId(0)),
            (b, RunId(99), RunVertexId(0), RunVertexId(0)),
        ];
        let t_good = handle.submit(good).unwrap();
        let t_bad = handle.submit(bad).unwrap();
        assert!(t_good.wait().is_ok(), "healthy request unaffected");
        assert!(matches!(t_bad.wait(), Err(ServeError::Registry(_))));
        let stats = server.shutdown().unwrap();
        // only the faulty sub-batch's probes count as failed
        assert_eq!(stats.merged.probes_failed, 1);
    }

    #[test]
    fn builder_errors_surface_to_the_caller() {
        let bogus = SpecId(0xDEAD);
        let err = serve(ServeConfig::default(), move || {
            let mut reg = ServiceRegistry::new();
            reg.ensure_resident(bogus)?;
            Ok((reg, ()))
        });
        assert!(matches!(
            err.map(|_| ()),
            Err(RegistryError::UnknownSpec(id)) if id == bogus
        ));
    }

    #[test]
    fn sharded_builder_error_on_one_shard_tears_down_cleanly() {
        let bogus = SpecId(0xDEAD);
        let err = serve_sharded(ServeConfig::default(), 4, ShardPlan::new(), move |shard, _| {
            let mut reg = ServiceRegistry::new();
            if shard == 2 {
                reg.ensure_resident(bogus)?;
            }
            Ok((reg, ()))
        });
        assert!(matches!(
            err.map(|_| ()),
            Err(RegistryError::UnknownSpec(id)) if id == bogus
        ));
    }

    #[test]
    fn histogram_quantiles_bracket_their_samples() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 900, 1000, 1000, 1000, 1000, 1000, 40_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 40_000);
        let p50 = h.quantile(0.5).unwrap();
        assert!((768..=1024).contains(&p50), "p50 {p50} near the mode");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 32_768, "p99 {p99} reaches the tail bucket");
        assert!(p99 <= 40_000);
        // exact small values
        let mut small = Histogram::default();
        for v in 0..8 {
            small.record(v);
        }
        assert_eq!(small.quantile(0.0).unwrap(), 0);
        assert_eq!(small.quantile(1.0).unwrap(), 7);
    }

    #[test]
    fn histogram_is_exact_below_128() {
        // every value below EXACT sits in its own bucket: quantiles over
        // the 0..128 ramp come back exactly
        let mut h = Histogram::default();
        for v in 0..Histogram::EXACT {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0).unwrap(), 0);
        assert_eq!(h.quantile(0.25).unwrap(), 31);
        assert_eq!(h.quantile(0.5).unwrap(), 63);
        assert_eq!(h.quantile(0.75).unwrap(), 95);
        assert_eq!(h.quantile(1.0).unwrap(), 127);
        // µs-scale medians: a pile at 97 reports exactly 97, not a bucket
        // floor 12% away
        let mut m = Histogram::default();
        for _ in 0..101 {
            m.record(97);
        }
        assert_eq!(m.quantile(0.5).unwrap(), 97);
        assert_eq!(m.quantile(0.99).unwrap(), 97);
    }

    #[test]
    fn histogram_boundary_at_128_enters_the_log_range() {
        // 127 is the last exact bucket; 128 opens octave 7
        let mut h = Histogram::default();
        h.record(127);
        h.record(128);
        h.record(159); // still the first sub-bucket of octave 7 (128..160)
        h.record(160); // second sub-bucket
        assert_eq!(h.quantile(0.25).unwrap(), 127, "exact side of the seam");
        assert_eq!(h.quantile(0.5).unwrap(), 128, "first log bucket floor");
        assert_eq!(h.quantile(0.75).unwrap(), 128, "159 shares 128's bucket");
        assert_eq!(h.quantile(1.0).unwrap(), 160, "next sub-bucket floor");
        // the top of u64 still lands in a real bucket (floor reported,
        // capped by the exact max)
        let mut top = Histogram::default();
        top.record(u64::MAX);
        assert!(top.quantile(1.0).unwrap() >= 1 << 63);
        assert_eq!(top.max(), u64::MAX);
    }

    #[test]
    fn histograms_and_stats_merge_bucketwise() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [5u64, 100, 1000] {
            a.record(v);
        }
        for v in [5u64, 7, 100_000] {
            b.record(v);
        }
        let mut whole = Histogram::default();
        for v in [5u64, 100, 1000, 5, 7, 100_000] {
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "quantile {q}");
        }
        // ServeStats::merge folds counters and digests
        let mut s1 = ServeStats {
            requests: 3,
            probes_submitted: 10,
            probes_answered: 9,
            probes_failed: 1,
            ..ServeStats::default()
        };
        let s2 = ServeStats {
            requests: 2,
            probes_submitted: 5,
            probes_answered: 5,
            controls: 4,
            ..ServeStats::default()
        };
        s1.merge(&s2);
        assert_eq!(s1.requests, 5);
        assert_eq!(s1.probes_submitted, 15);
        assert_eq!(s1.probes_answered, 14);
        assert_eq!(s1.probes_failed, 1);
        assert_eq!(s1.controls, 4);
    }

    #[test]
    fn shard_plan_pins_override_the_hash() {
        let a = SpecId(0x1111_2222_3333_4444);
        let b = SpecId(0x5555_6666_7777_8888);
        let plan = ShardPlan::new().pin(a, 3);
        assert_eq!(plan.shard_of(a, 4), 3);
        let hashed = ShardPlan::new().shard_of(b, 4);
        assert_eq!(plan.shard_of(b, 4), hashed, "unpinned specs still hash");
        assert_eq!(plan.shard_of(a, 1), 0, "one shard takes everything");
        // re-pinning replaces, and pins wrap modulo the shard count
        let plan = plan.pin(a, 9);
        assert_eq!(plan.shard_of(a, 4), 1);
    }

    #[test]
    fn dropped_tickets_recycle_their_slots() {
        const KINDS: &[SchemeKind] = &[SchemeKind::Tcm];
        let server = paper_server(ServeConfig::default(), KINDS);
        let (ids, _) = server.context().clone();
        let handle = server.handle();
        let one = (ids[0], RunId(0), RunVertexId(0), RunVertexId(0));
        // fire-and-forget: drop every ticket unwaited; slots must come
        // back to the free list and the server must drain cleanly
        for _ in 0..256 {
            let _ = handle.submit_one(one).unwrap();
        }
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.probes_answered, 256);
        assert_eq!(stats.probes_failed, 0);
        let free = server_slab_free_len(&handle);
        let total = server_slab_len(&handle);
        assert_eq!(free, total, "every slot returned to the free list");
    }

    fn server_slab_free_len(handle: &ServeHandle) -> usize {
        handle.slab.inner.lock().unwrap().free.len()
    }

    fn server_slab_len(handle: &ServeHandle) -> usize {
        handle.slab.inner.lock().unwrap().slots.len()
    }
}
