//! **wfp-skl** — the skeleton-based reachability labeling scheme for
//! workflow runs: the core contribution of *"An Optimal Labeling Scheme for
//! Workflow Provenance Using Skeleton Labels"* (Bao, Davidson, Khanna, Roy —
//! SIGMOD 2010).
//!
//! Given a specification labeled by *any* reachability scheme (the
//! *skeleton labels*, crate `wfp-speclabel`), a run conforming to that
//! specification is labeled with:
//!
//! * logarithmic-length labels — `3·log n⁺ + log n_G` bits,
//! * linear construction time — one bottom-up contraction sweep recovers
//!   the execution plan and per-vertex contexts with no per-copy ids in the
//!   input ([`construct_plan`], paper §5),
//! * constant query time — three integer comparisons classify the context
//!   LCA; only `+`-LCA queries consult the skeleton ([`predicate`],
//!   Algorithm 3).
//!
//! ```
//! use wfp_model::fixtures;
//! use wfp_skl::LabeledRun;
//! use wfp_speclabel::{SchemeKind, SpecScheme};
//!
//! let spec = fixtures::paper_spec();
//! let run = fixtures::paper_run(&spec);
//! let skeleton = SpecScheme::build(SchemeKind::Tcm, spec.graph());
//! let labeled = LabeledRun::build(&spec, skeleton, &run).unwrap();
//!
//! let b1 = fixtures::paper_vertex(&spec, &run, "b1");
//! let c3 = fixtures::paper_vertex(&spec, &run, "c3");
//! assert!(!labeled.reaches(b1, c3)); // parallel fork copies
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod bits;
pub mod construct;
pub mod context;
pub mod engine;
pub mod fleet;
pub mod label;
pub mod live;
pub mod online;
pub mod orders;
pub mod origin;
pub mod packed;
pub mod registry;
pub mod serve;
pub mod snapshot;

pub use batch::label_runs_parallel;
pub use construct::{
    construct_plan, construct_plan_with_stats, ConstructError, ConstructStats, Issue,
};
pub use context::{PackedRunHandle, RunHandle, SharedMemo, SpecContext};
pub use engine::{predicate_memo, EngineStats, QueryEngine, SoaColumns, SoaLabels};
pub use fleet::{FleetEngine, FleetError, FleetLoadProfile, FleetStats, RunId};
pub use live::{LiveRun, LiveStats};
pub use label::{
    label_run, predicate, predicate_traced, DecodeError, EncodedLabels, LabeledRun, QueryPath,
    RunLabel,
};
pub use online::{OnlineError, OnlineLabeler};
pub use orders::{generate_three_orders, ContextEncoding};
pub use origin::{compute_origins, compute_origins_numbered, OriginError};
pub use packed::{PackedColumns, PackedColumnsView, PackedEngine, PackedStore};
pub use registry::{RegistryError, RegistryStats, ServiceRegistry, SpecId};
pub use serve::{
    serve, serve_sharded, Histogram, Probe, SchemeLatency, ServeConfig, ServeError, ServeHandle,
    ServeStats, Server, ShardPlan, ShardedServer, ShardedStats, Ticket,
};
pub use snapshot::{FormatError, SnapshotReader, SnapshotWriter};
