//! `ComputeOrigin` (paper §4.1, Definition 8; Algorithm 2, step 1).
//!
//! A run vertex's *origin* is the specification module with the same name.
//! Inside this workspace runs store origin ids directly; this module is the
//! boundary adapter for external run logs that carry module-name strings
//! (optionally with the paper's occurrence subscripts, e.g. `b3`).

use wfp_model::{ModuleId, Specification};

/// Name-resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginError {
    /// Index of the offending vertex in the input slice.
    pub vertex: usize,
    /// The name that resolved to no module.
    pub name: String,
}

impl std::fmt::Display for OriginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "run vertex #{} executes unknown module {:?}",
            self.vertex, self.name
        )
    }
}

impl std::error::Error for OriginError {}

/// Resolves exact module names to origins. `O(n_R)` expected time.
pub fn compute_origins(
    spec: &Specification,
    names: &[impl AsRef<str>],
) -> Result<Vec<ModuleId>, OriginError> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            spec.module_by_name(n.as_ref()).ok_or_else(|| OriginError {
                vertex: i,
                name: n.as_ref().to_string(),
            })
        })
        .collect()
}

/// Resolves names that may carry a trailing numeric occurrence subscript
/// (`b3` → module `b`), as in the paper's figures. An exact match wins over
/// suffix stripping, so a module literally named `b3` still resolves.
pub fn compute_origins_numbered(
    spec: &Specification,
    names: &[impl AsRef<str>],
) -> Result<Vec<ModuleId>, OriginError> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let name = n.as_ref();
            if let Some(m) = spec.module_by_name(name) {
                return Ok(m);
            }
            let stripped = name.trim_end_matches(|c: char| c.is_ascii_digit());
            if !stripped.is_empty() && stripped.len() < name.len() {
                if let Some(m) = spec.module_by_name(stripped) {
                    return Ok(m);
                }
            }
            Err(OriginError {
                vertex: i,
                name: name.to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_model::fixtures::paper_spec;

    #[test]
    fn exact_names_resolve() {
        let spec = paper_spec();
        let origins = compute_origins(&spec, &["a", "b", "b", "h"]).unwrap();
        assert_eq!(origins.len(), 4);
        assert_eq!(spec.name(origins[0]), "a");
        assert_eq!(origins[1], origins[2]);
    }

    #[test]
    fn unknown_names_error_with_position() {
        let spec = paper_spec();
        let err = compute_origins(&spec, &["a", "zz"]).unwrap_err();
        assert_eq!(err.vertex, 1);
        assert_eq!(err.name, "zz");
        assert!(err.to_string().contains("zz"));
    }

    #[test]
    fn numbered_names_strip_subscripts() {
        let spec = paper_spec();
        let origins = compute_origins_numbered(&spec, &["a1", "b3", "c12", "h1"]).unwrap();
        let names: Vec<&str> = origins.iter().map(|&m| spec.name(m)).collect();
        assert_eq!(names, vec!["a", "b", "c", "h"]);
    }

    #[test]
    fn numbered_prefers_exact_match() {
        let mut b = wfp_model::SpecBuilder::new();
        let s = b.add_module("s").unwrap();
        let b3 = b.add_module("b3").unwrap();
        let t = b.add_module("t").unwrap();
        b.add_edge(s, b3).unwrap();
        b.add_edge(b3, t).unwrap();
        let spec = b.build().unwrap();
        let origins = compute_origins_numbered(&spec, &["b3"]).unwrap();
        assert_eq!(origins[0], b3);
    }

    #[test]
    fn numbered_rejects_pure_digits_and_unknown() {
        let spec = paper_spec();
        assert!(compute_origins_numbered(&spec, &["123"]).is_err());
        assert!(compute_origins_numbered(&spec, &["zz9"]).is_err());
    }
}
