//! `GenerateThreeOrders` (paper §4.3, Algorithm 1).
//!
//! Three preorder traversals of the execution plan assign every *nonempty*
//! `+` node three positions `(q1, q2, q3)`:
//!
//! * `O1` visits children left-to-right everywhere;
//! * `O2` reverses the children of `F−` nodes;
//! * `O3` reverses the children of `L−` nodes.
//!
//! Lemma 4.5 then classifies the least common ancestor of two `+` nodes by
//! sign comparisons alone: an `F−` LCA flips the relative order in `O2`
//! only, an `L−` LCA flips it in `O3` only, and a `+` LCA keeps all three
//! orders aligned.

use wfp_graph::tree::ChildOrder;
use wfp_model::plan::{ExecutionPlan, PlanNodeKind};
use wfp_model::{Specification, SubgraphKind};

/// The three-dimensional context encoding: positions of every nonempty `+`
/// node in the three total orders (1-based; 0 for nodes that receive no
/// position).
pub struct ContextEncoding {
    pos: [Vec<u32>; 3],
    n_plus: u32,
}

impl ContextEncoding {
    /// Positions `(q1, q2, q3)` of plan node `x`. Only nonempty `+` nodes
    /// carry meaningful positions; others return `(0, 0, 0)`.
    #[inline]
    pub fn positions(&self, x: u32) -> (u32, u32, u32) {
        (
            self.pos[0][x as usize],
            self.pos[1][x as usize],
            self.pos[2][x as usize],
        )
    }

    /// Number of nonempty `+` nodes `n⁺_T` (positions run `1..=n_plus`).
    pub fn nonempty_plus_count(&self) -> u32 {
        self.n_plus
    }
}

/// Runs the three preorder traversals of Algorithm 1.
pub fn generate_three_orders(plan: &ExecutionPlan, spec: &Specification) -> ContextEncoding {
    let nonempty = plan.nonempty_plus_flags();
    let n = plan.node_count();
    let tree = plan.tree();
    let mut pos = [vec![0u32; n], vec![0u32; n], vec![0u32; n]];
    let mut n_plus = 0u32;

    // Child-order policies for the three traversals.
    let reverse_at = |which: usize, x: u32| -> ChildOrder {
        match (which, plan.kind(x)) {
            (1, PlanNodeKind::Minus(sg)) if spec.subgraph(sg).kind == SubgraphKind::Fork => {
                ChildOrder::Reverse
            }
            (2, PlanNodeKind::Minus(sg)) if spec.subgraph(sg).kind == SubgraphKind::Loop => {
                ChildOrder::Reverse
            }
            _ => ChildOrder::Forward,
        }
    };

    for (which, slots) in pos.iter_mut().enumerate() {
        let mut counter = 0u32;
        tree.preorder_by(
            plan.root(),
            |x| reverse_at(which, x),
            |x| {
                if nonempty[x as usize] {
                    counter += 1;
                    slots[x as usize] = counter;
                }
            },
        );
        if which == 0 {
            n_plus = counter;
        } else {
            debug_assert_eq!(counter, n_plus, "all traversals cover the same nodes");
        }
    }

    ContextEncoding { pos, n_plus }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_plan;
    use wfp_graph::fxhash::FxHashMap;
    use wfp_graph::tree::Ancestry;
    use wfp_model::fixtures::{paper_run, paper_spec};
    use wfp_model::RunVertexId;

    #[test]
    fn paper_encoding_has_nine_positions() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let plan = construct_plan(&spec, &run).unwrap();
        let enc = generate_three_orders(&plan, &spec);
        assert_eq!(enc.nonempty_plus_count(), 9, "Figure 9 numbers 9 nodes");
        // every nonempty + node holds a distinct position triple
        let flags = plan.nonempty_plus_flags();
        let mut seen = [vec![], vec![], vec![]];
        for x in 0..plan.node_count() as u32 {
            let (q1, q2, q3) = enc.positions(x);
            if flags[x as usize] {
                assert!(q1 >= 1 && q2 >= 1 && q3 >= 1);
                seen[0].push(q1);
                seen[1].push(q2);
                seen[2].push(q3);
            } else {
                assert_eq!((q1, q2, q3), (0, 0, 0));
            }
        }
        for s in &mut seen {
            s.sort_unstable();
            assert_eq!(*s, (1..=9).collect::<Vec<u32>>());
        }
    }

    #[test]
    #[allow(clippy::nonminimal_bool)] // the negated forms mirror Lemma 4.5's statement
    fn paper_root_is_position_one_and_first_loop_copy_precedes_second() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let plan = construct_plan(&spec, &run).unwrap();
        let enc = generate_three_orders(&plan, &spec);
        assert_eq!(enc.positions(plan.root()), (1, 1, 1), "Figure 9: x1 = (1,1,1)");

        let names = run.numbered_names(&spec);
        let ctx: FxHashMap<&str, u32> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), plan.context(RunVertexId(i as u32))))
            .collect();
        // serial order: first L2 copy before the second in O1 and O2, after
        // it in O3 (Lemma 4.5's L− signature)
        let (a1, a2, a3) = enc.positions(ctx["b1"]);
        let (b1p, b2p, b3p) = enc.positions(ctx["b2"]);
        assert!(a1 < b1p && a2 < b2p && a3 > b3p);
        // parallel F2 copies flip in O2 only
        let (f2a, f2b, f2c) = enc.positions(ctx["f2"]);
        let (f3a, f3b, f3c) = enc.positions(ctx["f3"]);
        assert_eq!((f2a < f3a), (f2c < f3c), "O1 and O3 agree for fork siblings");
        assert_eq!((f2a < f3a), !(f2b < f3b), "O2 flips for fork siblings");
    }

    /// Lemma 4.5 checked exhaustively against an Euler-tour LCA oracle.
    #[test]
    #[allow(clippy::nonminimal_bool)] // the negated forms mirror Lemma 4.5's statement
    fn lemma_4_5_trichotomy_matches_lca_oracle() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let plan = construct_plan(&spec, &run).unwrap();
        let enc = generate_three_orders(&plan, &spec);
        let anc = Ancestry::build(plan.tree(), plan.root());
        let flags = plan.nonempty_plus_flags();
        let nodes: Vec<u32> =
            (0..plan.node_count() as u32).filter(|&x| flags[x as usize]).collect();
        for &x in &nodes {
            for &y in &nodes {
                if x == y {
                    continue;
                }
                let (x1, x2, x3) = enc.positions(x);
                let (y1, y2, y3) = enc.positions(y);
                let lca = anc.lca(x, y);
                match plan.kind(lca) {
                    PlanNodeKind::Minus(sg) => {
                        match spec.subgraph(sg).kind {
                            SubgraphKind::Fork => {
                                // order flips in O2 only
                                assert_eq!((x1 < y1), (x3 < y3));
                                assert_eq!((x1 < y1), !(x2 < y2));
                            }
                            SubgraphKind::Loop => {
                                assert_eq!((x1 < y1), (x2 < y2));
                                assert_eq!((x1 < y1), !(x3 < y3));
                            }
                        }
                    }
                    _ => {
                        // + LCA (including ancestor relations): all agree
                        assert_eq!((x1 < y1), (x2 < y2));
                        assert_eq!((x1 < y1), (x3 < y3));
                    }
                }
            }
        }
    }
}
