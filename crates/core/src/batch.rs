//! Parallel bulk labeling of many runs sharing one specification.
//!
//! The paper's amortization argument (§1, §7) assumes the common production
//! pattern: one specification, executed over and over. Labeling different
//! runs is embarrassingly parallel — the specification and its hierarchy
//! are read-only — so a provenance store ingesting a backlog of runs can
//! use every core. Workers pull runs from a shared cursor (work stealing
//! by index); each worker builds **one** skeleton index via the caller's
//! factory and clones it per run — cloning an index is a memcpy of its
//! (small) label arrays, while rebuilding one repeats the full construction
//! sweep (for `TCM`, an `O(n_G·m_G)` closure) for every run.

use std::sync::atomic::{AtomicUsize, Ordering};

use wfp_model::{Run, Specification};
use wfp_speclabel::SpecIndex;

use crate::construct::ConstructError;
use crate::label::LabeledRun;

/// Labels every run of `runs` against `spec`, using up to `threads` worker
/// threads. `make_scheme` builds one skeleton index **per worker**; each of
/// that worker's runs receives a clone of it (every [`LabeledRun`] still
/// owns its own index, as [`LabeledRun::build`] requires).
///
/// Results are returned in input order. The function is deterministic: the
/// same inputs produce the same labels regardless of scheduling.
pub fn label_runs_parallel<S, F>(
    spec: &Specification,
    make_scheme: F,
    runs: &[Run],
    threads: usize,
) -> Vec<Result<LabeledRun<S>, ConstructError>>
where
    S: SpecIndex + Clone + Send,
    F: Fn() -> S + Sync,
{
    if runs.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(runs.len());
    if threads == 1 {
        let scheme = make_scheme();
        return runs
            .iter()
            .map(|run| LabeledRun::build(spec, scheme.clone(), run))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let make_scheme = &make_scheme;
            scope.spawn(move || {
                let scheme = make_scheme();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= runs.len() {
                        break;
                    }
                    let result = LabeledRun::build(spec, scheme.clone(), &runs[idx]);
                    if tx.send((idx, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Result<LabeledRun<S>, ConstructError>>> =
            (0..runs.len()).map(|_| None).collect();
        for (idx, result) in rx {
            slots[idx] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index is processed exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_model::fixtures::{paper_run, paper_spec};
    use wfp_model::RunBuilder;
    use wfp_speclabel::{SchemeKind, SpecScheme};

    fn many_runs(spec: &Specification, n: usize) -> Vec<Run> {
        // the paper run plus trivial spec-shaped runs, interleaved
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    paper_run(spec)
                } else {
                    let mut rb = RunBuilder::new();
                    for m in spec.modules() {
                        rb.add_vertex(m);
                    }
                    for e in spec.edge_ids() {
                        let (u, v) = spec.edge(e);
                        rb.add_edge(
                            wfp_model::RunVertexId(u.raw()),
                            wfp_model::RunVertexId(v.raw()),
                        );
                    }
                    rb.finish(spec).unwrap()
                }
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let spec = paper_spec();
        let runs = many_runs(&spec, 9);
        let make = || SpecScheme::build(SchemeKind::Tcm, spec.graph());
        let sequential = label_runs_parallel(&spec, make, &runs, 1);
        for threads in [2usize, 4, 16] {
            let parallel = label_runs_parallel(&spec, make, &runs, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (s, p) in sequential.iter().zip(&parallel) {
                let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
                assert_eq!(s.labels(), p.labels(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn errors_are_reported_per_run() {
        let spec = paper_spec();
        let mut runs = many_runs(&spec, 3);
        // sabotage run #1 with a foreign edge
        let a = spec.module_by_name("a").unwrap();
        let h = spec.module_by_name("h").unwrap();
        let mut rb = RunBuilder::new();
        let va = rb.add_vertex(a);
        let vh = rb.add_vertex(h);
        rb.add_edge(va, vh);
        runs[1] = rb.finish(&spec).unwrap();
        let results = label_runs_parallel(
            &spec,
            || SpecScheme::build(SchemeKind::Bfs, spec.graph()),
            &runs,
            4,
        );
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ConstructError::ForeignEdge { .. })));
        assert!(results[2].is_ok());
    }

    #[test]
    fn empty_input_and_single_thread() {
        let spec = paper_spec();
        let results = label_runs_parallel(
            &spec,
            || SpecScheme::build(SchemeKind::Dfs, spec.graph()),
            &[],
            8,
        );
        assert!(results.is_empty());
    }
}
