//! Bit-level packing for run labels.
//!
//! The paper measures label length in *bits* (Figure 12 plots maximum and
//! average label length against the `3·log n_R` bound). To report honest
//! numbers, labels are actually packed:
//!
//! * fixed-width — every `q` uses `⌈log₂(n⁺+1)⌉` bits and the skeleton
//!   pointer `⌈log₂ n_G⌉` bits; this realizes the paper's maximum-length
//!   bound;
//! * Elias-γ — self-delimiting variable-length codes for the `q`s; this is
//!   what the paper's "average label length ... measured only for the
//!   variable-size labels" refers to.

/// Append-only bit buffer.
#[derive(Default, Clone)]
pub struct BitWriter {
    words: Vec<u64>,
    /// total bits written
    len: usize,
}

impl BitWriter {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends the low `width` bits of `value` (LSB first). `width ≤ 64`.
    pub fn write_bits(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} > 64");
        if width == 0 {
            return;
        }
        debug_assert!(width == 64 || value < (1u64 << width), "value does not fit width");
        let bit = self.len % 64;
        let word = self.len / 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= value << bit;
        if bit + width > 64 {
            self.words.push(value >> (64 - bit));
        }
        self.len += width;
    }

    /// Appends `n ≥ 1` in Elias-γ: `⌊log₂ n⌋` zero bits, then `n`'s binary
    /// digits MSB-first. Costs `2⌊log₂ n⌋ + 1` bits.
    pub fn write_gamma(&mut self, n: u64) {
        assert!(n >= 1, "Elias gamma encodes positive integers");
        let bits = 64 - n.leading_zeros() as usize; // position of MSB + 1
        for _ in 0..bits - 1 {
            self.write_bits(0, 1);
        }
        for i in (0..bits).rev() {
            self.write_bits((n >> i) & 1, 1);
        }
    }

    /// Finishes and returns the raw little-endian words.
    pub fn into_words(self) -> (Vec<u64>, usize) {
        (self.words, self.len)
    }

    /// Serializes to bytes (length-prefixed externally by the caller).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(self.len.div_ceil(8));
        out
    }
}

/// Bit cost of Elias-γ for `n ≥ 1`, without writing.
pub fn gamma_bits(n: u64) -> usize {
    assert!(n >= 1);
    2 * (63 - n.leading_zeros() as usize) + 1
}

/// Sequential reader over a [`BitWriter`]'s output.
pub struct BitReader<'a> {
    words: &'a [u64],
    len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `words` holding `len` valid bits.
    pub fn new(words: &'a [u64], len: usize) -> Self {
        BitReader { words, len, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Reads `width` bits (LSB-first order matching the writer).
    pub fn read_bits(&mut self, width: usize) -> u64 {
        assert!(width <= 64);
        assert!(self.pos + width <= self.len, "bit stream exhausted");
        if width == 0 {
            return 0;
        }
        let bit = self.pos % 64;
        let word = self.pos / 64;
        let mut value = self.words[word] >> bit;
        if bit + width > 64 {
            value |= self.words[word + 1] << (64 - bit);
        }
        self.pos += width;
        if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        }
    }

    /// Reads an Elias-γ encoded integer.
    pub fn read_gamma(&mut self) -> u64 {
        let mut zeros = 0;
        while self.read_bits(1) == 0 {
            zeros += 1;
            assert!(zeros < 64, "corrupt gamma code");
        }
        let mut n = 1u64;
        for _ in 0..zeros {
            n = (n << 1) | self.read_bits(1);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_graph::rng::Xoshiro256;

    #[test]
    fn fixed_width_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 1);
        w.write_bits(u64::MAX, 64);
        w.write_bits(42, 7);
        assert_eq!(w.len(), 3 + 16 + 1 + 64 + 7);
        let (words, len) = w.into_words();
        let mut r = BitReader::new(&words, len);
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(16), 0xFFFF);
        assert_eq!(r.read_bits(1), 0);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.read_bits(7), 42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn gamma_round_trip_small_and_large() {
        let mut w = BitWriter::new();
        let values = [1u64, 2, 3, 4, 7, 8, 100, 1023, 1024, 1_000_000, u32::MAX as u64];
        for &v in &values {
            w.write_gamma(v);
        }
        let (words, len) = w.into_words();
        let mut r = BitReader::new(&words, len);
        for &v in &values {
            assert_eq!(r.read_gamma(), v);
        }
    }

    #[test]
    fn gamma_bit_cost_is_logarithmic() {
        assert_eq!(gamma_bits(1), 1);
        assert_eq!(gamma_bits(2), 3);
        assert_eq!(gamma_bits(3), 3);
        assert_eq!(gamma_bits(4), 5);
        assert_eq!(gamma_bits(1 << 20), 41);
        // writer length matches the cost function
        for n in [1u64, 5, 17, 100, 12345] {
            let mut w = BitWriter::new();
            w.write_gamma(n);
            assert_eq!(w.len(), gamma_bits(n), "n={n}");
        }
    }

    #[test]
    fn randomized_mixed_round_trip() {
        let mut rng = Xoshiro256::seed_from_u64(77);
        for _ in 0..50 {
            let mut w = BitWriter::new();
            let mut expected = Vec::new();
            for _ in 0..200 {
                if rng.gen_bool(0.5) {
                    let width = 1 + rng.gen_usize(63);
                    let value = rng.next_u64() & ((1u64 << width) - 1);
                    w.write_bits(value, width);
                    expected.push((true, value, width));
                } else {
                    let value = 1 + rng.gen_below(1 << 30);
                    w.write_gamma(value);
                    expected.push((false, value, 0));
                }
            }
            let (words, len) = w.into_words();
            let mut r = BitReader::new(&words, len);
            for (fixed, value, width) in expected {
                let got = if fixed { r.read_bits(width) } else { r.read_gamma() };
                assert_eq!(got, value);
            }
        }
    }

    #[test]
    fn to_bytes_truncates_to_bit_length() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        assert_eq!(w.to_bytes().len(), 1);
        w.write_bits(0xFF, 8);
        assert_eq!(w.to_bytes().len(), 2);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn over_read_panics() {
        let w = BitWriter::new();
        let (words, len) = w.into_words();
        let mut r = BitReader::new(&words, len);
        r.read_bits(1);
    }
}
