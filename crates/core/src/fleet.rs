//! Multi-run serving: one [`SpecContext`] answering probe traffic for a
//! whole fleet of runs.
//!
//! The paper's amortization argument (§1, §7) is that the skeleton labels
//! are paid **once per specification**, not once per run. Production
//! provenance services see exactly that shape: one workflow spec, executed
//! thousands of times, queried across runs. A [`FleetEngine`] is the
//! registry that serves it:
//!
//! * it holds a single `Arc`-shared [`SpecContext`] (skeleton index +
//!   concurrent skeleton memo) and any number of **frozen** runs (slim
//!   [`RunHandle`] label columns, ~16 bytes/vertex) and **in-flight**
//!   [`LiveRun`]s — all registered under [`RunId`]s;
//! * it answers `(run, u, v)` probes scalar or batched; a batch may mix
//!   runs freely — traffic is sharded **by run** internally (each run's
//!   probes stream through the SoA kernel together) and results come back
//!   in input order, deterministically;
//! * runs can be frozen in place ([`FleetEngine::freeze_run`], the
//!   zero-re-labeling handoff) and evicted ([`FleetEngine::evict`]);
//!   evicted ids stay tombstoned so late probes fail loudly instead of
//!   hitting a recycled slot;
//! * [`FleetEngine::stats`] accounts the shared-vs-duplicated memory: what
//!   the fleet holds once versus what `K` independent engines would hold.
//!
//! ```
//! use wfp_model::fixtures;
//! use wfp_skl::fleet::FleetEngine;
//! use wfp_skl::LabeledRun;
//! use wfp_speclabel::{SchemeKind, SpecScheme};
//!
//! let spec = fixtures::paper_spec();
//! let mut fleet = FleetEngine::for_spec(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
//! let run = fixtures::paper_run(&spec);
//! let labeled = LabeledRun::build(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()), &run)
//!     .unwrap();
//! let a = fleet.register_labels(labeled.labels());
//! let b = fleet.register_labels(labeled.labels()); // another run, same spec
//!
//! let b1 = fixtures::paper_vertex(&spec, &run, "b1");
//! let c3 = fixtures::paper_vertex(&spec, &run, "c3");
//! let answers = fleet
//!     .answer_batch(&[(a, c3, c3), (b, b1, c3)])
//!     .unwrap();
//! assert_eq!(answers, vec![true, false]);
//! assert_eq!(fleet.stats().frozen, 2);
//! ```

use std::sync::{Arc, Mutex};

use wfp_model::{RunVertexId, Specification};
use wfp_speclabel::SpecIndex;

use wfp_speclabel::SpecScheme;

use crate::context::{PackedRunHandle, RunHandle, SpecContext};
use crate::engine::{answer_into, sweep_into_slice, EngineStats};
use crate::label::{LabeledRun, RunLabel};
use crate::live::LiveRun;
use crate::online::OnlineError;
use crate::snapshot;

/// Identifier of a run registered in a [`FleetEngine`]. Ids are assigned
/// densely in registration order and never reused, even after eviction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(pub u32);

impl RunId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "run#{}", self.0)
    }
}

/// Errors of the fleet registry.
#[derive(Debug)]
pub enum FleetError {
    /// The run id was never registered in this fleet.
    UnknownRun(RunId),
    /// The run was registered but has since been evicted.
    Evicted(RunId),
    /// The operation requires an in-flight run, but this one is frozen.
    NotLive(RunId),
    /// A [`LiveRun`] built over a *different* [`SpecContext`] was offered
    /// for registration; its memo and skeleton are not this fleet's.
    ForeignContext,
    /// The run is registered, but it has no item with this index (used by
    /// item-keyed layers such as `wfp_provenance`'s fleet index).
    UnknownItem {
        /// The (valid) run the item was looked up in.
        run: RunId,
        /// The out-of-range item index.
        item: u32,
    },
    /// Freezing an in-flight run failed (the event stream is incomplete).
    FreezeFailed(RunId, OnlineError),
    /// A snapshot or a packed seal was requested while this run is still
    /// in-flight: live order-maintenance state is neither persistable nor
    /// packable — freeze (or evict) the run first.
    StillLive(RunId),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownRun(r) => write!(f, "{r} was never registered"),
            FleetError::Evicted(r) => write!(f, "{r} has been evicted"),
            FleetError::NotLive(r) => write!(f, "{r} is frozen, not in-flight"),
            FleetError::ForeignContext => {
                write!(f, "live run belongs to a different specification context")
            }
            FleetError::UnknownItem { run, item } => {
                write!(f, "{run} has no data item #{item}")
            }
            FleetError::FreezeFailed(r, e) => write!(f, "cannot freeze {r}: {e}"),
            FleetError::StillLive(r) => {
                write!(
                    f,
                    "cannot snapshot or seal {r}: it is still in-flight (freeze it first)"
                )
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::FreezeFailed(_, e) => Some(e),
            _ => None,
        }
    }
}

/// One registry slot.
enum Slot<'s, S> {
    Frozen(RunHandle),
    /// A frozen run sealed into bit-packed columns
    /// ([`FleetEngine::seal_packed`]): still serving, at a fraction of the
    /// resident footprint — the tier between "raw frozen" and "evicted".
    FrozenPacked(PackedRunHandle),
    Live(Box<LiveRun<'s, S>>),
    Evicted,
}

/// Shared-vs-duplicated accounting plus aggregate decision counters for
/// one fleet. See [`FleetEngine::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Frozen runs currently registered with raw (full-width) columns.
    pub frozen: usize,
    /// Frozen runs currently serving in bit-packed form
    /// ([`FleetEngine::seal_packed`]).
    pub packed: usize,
    /// In-flight live runs currently registered.
    pub live: usize,
    /// Runs evicted over the fleet's lifetime.
    pub evicted: usize,
    /// Strong references to the shared [`SpecContext`] (the fleet itself,
    /// each live run's labeler, plus any external holders) — direct proof
    /// that one instance serves every run.
    pub context_refs: usize,
    /// Bytes of spec-level state (skeleton + memo), held **once**.
    pub spec_bytes: usize,
    /// What the same runs would hold as independent engines: one skeleton
    /// + memo copy per active run.
    pub spec_bytes_if_per_run: usize,
    /// Bytes of per-run label columns across all active runs.
    pub run_bytes: usize,
    /// Packed runs served **zero-copy** out of a shared snapshot buffer
    /// ([`crate::PackedColumnsView`]) rather than from decoded heap
    /// frames — a subset of [`packed`](Self::packed).
    pub zero_copy: usize,
    /// Decision counters summed over all runs; memo counters are the
    /// shared context's.
    pub engine: EngineStats,
}

impl FleetStats {
    /// Active (non-evicted) runs, raw, packed, or live.
    pub fn active(&self) -> usize {
        self.frozen + self.packed + self.live
    }

    /// Bytes saved by sharing the spec-level state instead of duplicating
    /// it per run.
    pub fn bytes_saved(&self) -> usize {
        self.spec_bytes_if_per_run.saturating_sub(self.spec_bytes)
    }
}

/// A registry of runs — frozen and in-flight — served by one shared
/// [`SpecContext`]. See the module docs.
///
/// The lifetime `'s` is the specification borrow of registered live runs;
/// a frozen-only fleet can use any lifetime (e.g. the spec's own).
pub struct FleetEngine<'s, S> {
    ctx: Arc<SpecContext<S>>,
    slots: Vec<Slot<'s, S>>,
    evicted: usize,
}

impl<'s, S: SpecIndex> FleetEngine<'s, S> {
    /// A fleet over an already-shared context.
    pub fn new(ctx: Arc<SpecContext<S>>) -> Self {
        FleetEngine {
            ctx,
            slots: Vec::new(),
            evicted: 0,
        }
    }

    /// A fleet over a fresh context sized for `spec` (see
    /// [`SpecContext::for_spec`]).
    pub fn for_spec(spec: &Specification, skeleton: S) -> Self {
        Self::new(SpecContext::for_spec(spec, skeleton).shared())
    }

    /// The shared spec-level state every registered run answers through.
    pub fn context(&self) -> &Arc<SpecContext<S>> {
        &self.ctx
    }

    // ---------------- registration -------------------------------------

    fn push(&mut self, slot: Slot<'s, S>) -> RunId {
        let id = RunId(self.slots.len() as u32);
        self.slots.push(slot);
        id
    }

    /// Registers a frozen run.
    pub fn register(&mut self, run: RunHandle) -> RunId {
        self.push(Slot::Frozen(run))
    }

    /// Registers a frozen run from raw labels.
    pub fn register_labels(&mut self, labels: &[RunLabel]) -> RunId {
        self.register(RunHandle::from_labels(labels))
    }

    /// Registers a frozen run from a [`LabeledRun`], **discarding** its
    /// privately-owned skeleton in favor of the fleet's shared context —
    /// the migration path for callers coming from the one-engine-per-run
    /// world. The labels must have been built against the same
    /// specification (answers delegate to this fleet's skeleton).
    pub fn register_labeled(&mut self, labeled: LabeledRun<S>) -> RunId {
        let (labels, _duplicate_skeleton) = labeled.into_parts();
        self.register_labels(&labels)
    }

    /// Registers an in-flight run. The live run must have been created
    /// over **this fleet's** context ([`LiveRun::with_context`] /
    /// [`FleetEngine::begin_live`]); a run carrying a foreign context is
    /// rejected, because its answers would consult a different skeleton.
    pub fn register_live(&mut self, live: LiveRun<'s, S>) -> Result<RunId, FleetError> {
        if !Arc::ptr_eq(live.context(), &self.ctx) {
            return Err(FleetError::ForeignContext);
        }
        Ok(self.push(Slot::Live(Box::new(live))))
    }

    /// Starts a new in-flight run of `spec` under the shared context and
    /// registers it immediately. Feed it events via
    /// [`live_mut`](Self::live_mut).
    pub fn begin_live(&mut self, spec: &'s Specification) -> RunId {
        let live = LiveRun::with_context(spec, Arc::clone(&self.ctx));
        self.push(Slot::Live(Box::new(live)))
    }

    fn slot(&self, run: RunId) -> Result<&Slot<'s, S>, FleetError> {
        match self.slots.get(run.index()) {
            None => Err(FleetError::UnknownRun(run)),
            Some(Slot::Evicted) => Err(FleetError::Evicted(run)),
            Some(slot) => Ok(slot),
        }
    }

    /// Mutable access to an in-flight run, for event ingestion.
    pub fn live_mut(&mut self, run: RunId) -> Result<&mut LiveRun<'s, S>, FleetError> {
        match self.slots.get_mut(run.index()) {
            None => Err(FleetError::UnknownRun(run)),
            Some(Slot::Evicted) => Err(FleetError::Evicted(run)),
            Some(Slot::Frozen(_) | Slot::FrozenPacked(_)) => Err(FleetError::NotLive(run)),
            Some(Slot::Live(live)) => Ok(live),
        }
    }

    /// Freezes an in-flight run in place: the exact offline labels replace
    /// the tag columns (zero re-labeling, [`LiveRun::freeze_handle`]), the
    /// run id stays valid, and the shared context is untouched. Fails if
    /// the event stream is structurally incomplete — the run then remains
    /// registered and live.
    pub fn freeze_run(&mut self, run: RunId) -> Result<(), FleetError> {
        let slot = match self.slots.get_mut(run.index()) {
            None => return Err(FleetError::UnknownRun(run)),
            Some(Slot::Evicted) => return Err(FleetError::Evicted(run)),
            Some(Slot::Frozen(_) | Slot::FrozenPacked(_)) => {
                return Err(FleetError::NotLive(run))
            }
            Some(slot) => slot,
        };
        if let Slot::Live(live) = &*slot {
            // check before consuming, so a failed freeze leaves the run
            // registered and live
            live.check_complete()
                .map_err(|e| FleetError::FreezeFailed(run, e))?;
        }
        let live = match std::mem::replace(slot, Slot::Evicted) {
            Slot::Live(live) => live,
            _ => unreachable!("matched Live above"),
        };
        // carry the decision counters across the freeze
        let decisions = live.stats().engine;
        let (handle, _ctx) = live
            .freeze_handle()
            .expect("completeness checked just above");
        handle.count(decisions.context_only, decisions.skeleton);
        *slot = Slot::Frozen(handle);
        Ok(())
    }

    /// Seals a frozen run's columns into their bit-packed form
    /// ([`PackedRunHandle`]): the run keeps serving — the sweep kernel
    /// decodes inside its gather, answers stay byte-identical, decision
    /// counters carry over — at a fraction of the resident footprint. The
    /// tier between "raw frozen" and "evicted" for cold or
    /// memory-pressured fleets. Idempotent on already-packed runs; an
    /// in-flight run must be frozen first ([`FleetError::StillLive`]).
    pub fn seal_packed(&mut self, run: RunId) -> Result<(), FleetError> {
        let slot = match self.slots.get_mut(run.index()) {
            None => return Err(FleetError::UnknownRun(run)),
            Some(Slot::Evicted) => return Err(FleetError::Evicted(run)),
            Some(Slot::Live(_)) => return Err(FleetError::StillLive(run)),
            Some(Slot::FrozenPacked(_)) => return Ok(()),
            Some(slot) => slot,
        };
        let handle = match std::mem::replace(slot, Slot::Evicted) {
            Slot::Frozen(h) => h,
            _ => unreachable!("matched Frozen above"),
        };
        *slot = Slot::FrozenPacked(PackedRunHandle::pack(&handle));
        Ok(())
    }

    /// [`seal_packed`](Self::seal_packed) for every raw frozen run,
    /// returning how many were sealed (live runs and tombstones are left
    /// alone).
    pub fn seal_packed_all(&mut self) -> usize {
        let mut sealed = 0;
        for slot in &mut self.slots {
            if matches!(slot, Slot::Frozen(_)) {
                let handle = match std::mem::replace(slot, Slot::Evicted) {
                    Slot::Frozen(h) => h,
                    _ => unreachable!("matched Frozen above"),
                };
                *slot = Slot::FrozenPacked(PackedRunHandle::pack(&handle));
                sealed += 1;
            }
        }
        sealed
    }

    /// Evicts a run, releasing its label columns. The id stays tombstoned:
    /// later probes fail with [`FleetError::Evicted`] instead of silently
    /// hitting a recycled slot.
    pub fn evict(&mut self, run: RunId) -> Result<(), FleetError> {
        match self.slots.get_mut(run.index()) {
            None => Err(FleetError::UnknownRun(run)),
            Some(Slot::Evicted) => Err(FleetError::Evicted(run)),
            Some(slot) => {
                *slot = Slot::Evicted;
                self.evicted += 1;
                Ok(())
            }
        }
    }

    /// Whether `run` is registered and not evicted.
    pub fn contains(&self, run: RunId) -> bool {
        self.slot(run).is_ok()
    }

    /// Ids of all active (non-evicted) runs, in registration order.
    pub fn run_ids(&self) -> impl Iterator<Item = RunId> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            (!matches!(s, Slot::Evicted)).then_some(RunId(i as u32))
        })
    }

    /// Number of active runs.
    pub fn run_count(&self) -> usize {
        self.slots.len() - self.evicted
    }

    /// Total registry slots ever allocated (active runs plus eviction
    /// tombstones) — the exclusive upper bound on issued [`RunId`]s.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Executed-vertex count of a registered run.
    pub fn vertex_count(&self, run: RunId) -> Result<usize, FleetError> {
        Ok(match self.slot(run)? {
            Slot::Frozen(h) => h.vertex_count(),
            Slot::FrozenPacked(h) => h.vertex_count(),
            Slot::Live(l) => l.vertex_count(),
            Slot::Evicted => unreachable!("slot() filtered"),
        })
    }

    // ---------------- probes -------------------------------------------

    /// Whether `u ⇝ v` within `run` — the scalar entry point
    /// (allocation-free for frozen runs).
    pub fn answer(&self, run: RunId, u: RunVertexId, v: RunVertexId) -> Result<bool, FleetError> {
        Ok(match self.slot(run)? {
            Slot::Frozen(h) => {
                let (ans, path) = crate::engine::answer_one(h.columns(), &self.ctx, u, v);
                match path {
                    crate::label::QueryPath::ContextOnly => h.count(1, 0),
                    crate::label::QueryPath::Skeleton => h.count(0, 1),
                }
                ans
            }
            Slot::FrozenPacked(h) => {
                let (ans, path) = crate::packed::answer_one_packed(h.columns(), &self.ctx, u, v);
                match path {
                    crate::label::QueryPath::ContextOnly => h.count(1, 0),
                    crate::label::QueryPath::Skeleton => h.count(0, 1),
                }
                ans
            }
            Slot::Live(l) => l.answer(u, v),
            Slot::Evicted => unreachable!("slot() filtered"),
        })
    }

    /// Groups probe indexes by run slot, validating every id up front (a
    /// batch containing one bad id fails as a whole, before any work).
    fn group(
        &self,
        probes: &[(RunId, RunVertexId, RunVertexId)],
    ) -> Result<Vec<(usize, Vec<usize>)>, FleetError> {
        let mut per_slot: Vec<Vec<usize>> = vec![Vec::new(); self.slots.len()];
        for (i, &(run, _, _)) in probes.iter().enumerate() {
            self.slot(run)?; // validate
            per_slot[run.index()].push(i);
        }
        Ok(per_slot
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect())
    }

    /// Answers a batch of cross-run probes, **sharded by run**: each run's
    /// probes stream through the SoA batch kernel together (one cache-warm
    /// pass per run), and answers return in input order regardless of the
    /// internal grouping — deterministic, byte-identical to answering each
    /// probe against its run's own engine.
    pub fn answer_batch(
        &self,
        probes: &[(RunId, RunVertexId, RunVertexId)],
    ) -> Result<Vec<bool>, FleetError> {
        let groups = self.group(probes)?;
        let mut out = vec![false; probes.len()];
        let mut pairs: Vec<(RunVertexId, RunVertexId)> = Vec::new();
        let mut buf: Vec<bool> = Vec::new();
        for (slot_idx, idxs) in groups {
            pairs.clear();
            pairs.extend(idxs.iter().map(|&i| (probes[i].1, probes[i].2)));
            buf.clear();
            match &self.slots[slot_idx] {
                Slot::Frozen(h) => {
                    let (c, s) = answer_into(
                        h.columns(),
                        self.ctx.skeleton(),
                        self.ctx.probe_memo(),
                        &pairs,
                        &mut buf,
                    );
                    h.count(c, s);
                }
                Slot::FrozenPacked(h) => {
                    buf.resize(pairs.len(), false);
                    let (c, s) = sweep_into_slice(
                        h.columns(),
                        self.ctx.skeleton(),
                        self.ctx.probe_memo(),
                        &pairs,
                        &mut buf,
                    );
                    h.count(c, s);
                }
                Slot::Live(l) => {
                    let (c, s) = answer_into(
                        l.columns(),
                        self.ctx.skeleton(),
                        self.ctx.probe_memo(),
                        &pairs,
                        &mut buf,
                    );
                    l.count(c, s);
                }
                Slot::Evicted => unreachable!("group() filtered"),
            }
            for (&i, &ans) in idxs.iter().zip(&buf) {
                out[i] = ans;
            }
        }
        Ok(out)
    }

    /// [`answer_batch`](Self::answer_batch) with frozen-run groups
    /// fanned out over up to `threads` worker threads (each worker clones
    /// the skeleton for scratch space and reads the **same** shared memo);
    /// live-run groups are answered on the calling thread, since an
    /// in-flight run's column store is single-threaded by design. Results
    /// are byte-identical to the sequential path, in input order.
    pub fn answer_batch_parallel(
        &self,
        probes: &[(RunId, RunVertexId, RunVertexId)],
        threads: usize,
    ) -> Result<Vec<bool>, FleetError>
    where
        S: Clone + Send,
    {
        const MAX_SHARDS: usize = 64;
        let groups = self.group(probes)?;
        // Workers only ever touch frozen runs (a live run's column store is
        // deliberately single-threaded), so partition into plain handle
        // references — raw or packed — and the worker closures never see
        // the registry itself.
        #[derive(Clone, Copy)]
        enum FrozenRef<'a> {
            Raw(&'a RunHandle),
            Packed(&'a PackedRunHandle),
        }
        // One work unit: a frozen run, its slice of the flattened pair
        // buffer, and its disjoint window of the answer buffer.
        type WorkUnit<'a, 'b> =
            (FrozenRef<'a>, &'b [(RunVertexId, RunVertexId)], &'b mut [bool]);
        let mut frozen_groups: Vec<(FrozenRef<'_>, Vec<usize>)> = Vec::new();
        let mut live_groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (slot_idx, idxs) in groups {
            match &self.slots[slot_idx] {
                Slot::Frozen(h) => frozen_groups.push((FrozenRef::Raw(h), idxs)),
                Slot::FrozenPacked(h) => frozen_groups.push((FrozenRef::Packed(h), idxs)),
                Slot::Live(_) => live_groups.push((slot_idx, idxs)),
                Slot::Evicted => unreachable!("group() filtered"),
            }
        }
        // Split each run's probe list into bounded chunks, so one hot run
        // (skewed traffic, or a single-run fleet) still fans out across
        // workers instead of degrading to one work unit per run.
        const UNIT: usize = 1 << 15;
        let units: Vec<(FrozenRef<'_>, &[usize])> = frozen_groups
            .iter()
            .flat_map(|&(handle, ref idxs)| idxs.chunks(UNIT).map(move |c| (handle, c)))
            .collect();
        let threads = threads.clamp(1, MAX_SHARDS).min(units.len().max(1));
        let mut out = vec![false; probes.len()];

        if threads <= 1 || units.len() <= 1 {
            // not worth a fan-out: fall back to the sequential path
            return self.answer_batch(probes);
        }

        // Frozen units run permuted: their pairs are flattened unit by
        // unit into one contiguous buffer, each unit gets the matching
        // disjoint window of one preallocated answer buffer, and workers
        // sweep straight into their window — no per-unit allocation, no
        // result funnel. A single linear pass scatters the permuted
        // answers back to input order afterwards.
        let total: usize = units.iter().map(|(_, idxs)| idxs.len()).sum();
        let mut flat_pairs: Vec<(RunVertexId, RunVertexId)> = Vec::with_capacity(total);
        for (_, idxs) in &units {
            flat_pairs.extend(idxs.iter().map(|&i| (probes[i].1, probes[i].2)));
        }
        let mut perm_out = vec![false; total];
        let memo = self.ctx.probe_memo();
        {
            let mut work: Vec<WorkUnit<'_, '_>> = Vec::with_capacity(units.len());
            let mut pairs_rest: &[(RunVertexId, RunVertexId)] = &flat_pairs;
            let mut out_rest: &mut [bool] = &mut perm_out;
            for &(handle, idxs) in &units {
                let (unit_pairs, pr) = pairs_rest.split_at(idxs.len());
                let (window, or) = out_rest.split_at_mut(idxs.len());
                pairs_rest = pr;
                out_rest = or;
                work.push((handle, unit_pairs, window));
            }
            let queue = Mutex::new(work.into_iter());
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let queue = &queue;
                    let skeleton = self.ctx.skeleton().clone();
                    scope.spawn(move || loop {
                        let claimed = queue.lock().expect("work queue poisoned").next();
                        let Some((handle, unit_pairs, window)) = claimed else {
                            break;
                        };
                        match handle {
                            FrozenRef::Raw(h) => {
                                let (c, s) = sweep_into_slice(
                                    h.columns(),
                                    &skeleton,
                                    memo,
                                    unit_pairs,
                                    window,
                                );
                                h.count(c, s);
                            }
                            FrozenRef::Packed(h) => {
                                let (c, s) = sweep_into_slice(
                                    h.columns(),
                                    &skeleton,
                                    memo,
                                    unit_pairs,
                                    window,
                                );
                                h.count(c, s);
                            }
                        }
                    });
                }

                // live groups on the calling thread, overlapping the workers
                let mut pairs: Vec<(RunVertexId, RunVertexId)> = Vec::new();
                let mut buf: Vec<bool> = Vec::new();
                for (slot_idx, idxs) in &live_groups {
                    let live = match &self.slots[*slot_idx] {
                        Slot::Live(l) => l,
                        _ => unreachable!("partitioned as live"),
                    };
                    pairs.clear();
                    pairs.extend(idxs.iter().map(|&i| (probes[i].1, probes[i].2)));
                    buf.clear();
                    let (c, s) = answer_into(
                        live.columns(),
                        self.ctx.skeleton(),
                        self.ctx.probe_memo(),
                        &pairs,
                        &mut buf,
                    );
                    live.count(c, s);
                    for (&i, &ans) in idxs.iter().zip(&buf) {
                        out[i] = ans;
                    }
                }
            });
        }
        let mut offset = 0;
        for (_, idxs) in &units {
            for (&i, &ans) in idxs.iter().zip(&perm_out[offset..]) {
                out[i] = ans;
            }
            offset += idxs.len();
        }
        Ok(out)
    }

    // ---------------- accounting ---------------------------------------

    /// Shared-vs-duplicated memory accounting plus aggregate counters. The
    /// headline: `spec_bytes` is held once, where `K` independent engines
    /// would hold `spec_bytes_if_per_run = K × spec_bytes` — and
    /// `context_refs` (the `Arc` strong count) proves the sharing.
    pub fn stats(&self) -> FleetStats {
        let mut stats = FleetStats {
            evicted: self.evicted,
            context_refs: Arc::strong_count(&self.ctx),
            spec_bytes: self.ctx.memory_bytes(),
            ..FleetStats::default()
        };
        for slot in &self.slots {
            match slot {
                Slot::Frozen(h) => {
                    stats.frozen += 1;
                    stats.run_bytes += h.memory_bytes();
                    stats.engine.context_only += h.context_only();
                    stats.engine.skeleton += h.skeleton_queries();
                }
                Slot::FrozenPacked(h) => {
                    stats.packed += 1;
                    if h.columns().is_zero_copy() {
                        stats.zero_copy += 1;
                    }
                    stats.run_bytes += h.memory_bytes();
                    stats.engine.context_only += h.context_only();
                    stats.engine.skeleton += h.skeleton_queries();
                }
                Slot::Live(l) => {
                    stats.live += 1;
                    // u64 tag columns: three 8-byte + one 4-byte column
                    stats.run_bytes += l.vertex_count() * 28;
                    let e = l.stats().engine;
                    stats.engine.context_only += e.context_only;
                    stats.engine.skeleton += e.skeleton;
                }
                Slot::Evicted => {}
            }
        }
        stats.spec_bytes_if_per_run = stats.spec_bytes * stats.active().max(1);
        stats.engine.skeleton_probes = self.ctx.memo().probes();
        stats.engine.memo_hits = self.ctx.memo().hits();
        stats
    }
}

// ====================================================================
// Persistence (the unified snapshot layer, [`crate::snapshot`])
// ====================================================================

/// Slot states in the fleet-manifest segment.
const SLOT_EVICTED: u8 = 0;
const SLOT_FROZEN: u8 = 1;
/// A frozen run stored as a bit-packed [`snapshot::seg::PACKED_COLUMNS`]
/// segment (PR 7); readers that predate the state fail with
/// "unknown slot state" instead of misreading segments.
const SLOT_FROZEN_PACKED: u8 = 2;
/// A frozen run stored as an **aligned** bit-packed
/// [`snapshot::seg::PACKED_COLUMNS_ALIGNED`] segment (PR 10): loadable
/// either by decoding (copy path) or by binding a zero-copy
/// [`crate::PackedColumnsView`] straight over the validated load buffer
/// ([`FleetEngine::load_shared`]). New snapshots write this state; old
/// state-2 snapshots keep decoding unchanged.
const SLOT_FROZEN_PACKED_ALIGNED: u8 = 3;

/// How a fleet's runs came back from a snapshot: how many bound
/// **zero-copy** to the shared load buffer versus being **decoded** into
/// owned columns, and the total snapshot bytes behind the load. Returned
/// by [`FleetEngine::load_shared`] so the registry can attribute reload
/// cost ([`crate::RegistryStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetLoadProfile {
    /// Runs bound as zero-copy views over the load buffer.
    pub zero_copy_runs: usize,
    /// Runs decoded into owned columns (raw, legacy packed, or aligned
    /// loads without a shareable buffer).
    pub decoded_runs: usize,
    /// Total snapshot bytes the load was served from.
    pub bytes: usize,
}

impl<'s> FleetEngine<'s, SpecScheme> {
    /// Appends this fleet's segments to a container: the spec record
    /// (scheme kind + graph + warm-memo bytes, via
    /// [`snapshot::write_spec_context`]), a manifest of slot states and
    /// per-run decision counters, and one [`snapshot::seg::RUN_COLUMNS`]
    /// segment per frozen run. Evicted slots persist as tombstones so a
    /// restored fleet rejects stale [`RunId`]s exactly like the original.
    ///
    /// Fails with [`FleetError::StillLive`] if any run is in-flight —
    /// live order-maintenance state is deliberately not persistable.
    /// Layers above (e.g. `wfp-provenance`'s fleet index) call this and
    /// then append their own segments to the same container.
    pub fn write_snapshot(
        &self,
        graph: &wfp_graph::DiGraph,
        w: &mut snapshot::SnapshotWriter,
    ) -> Result<(), FleetError> {
        for (i, slot) in self.slots.iter().enumerate() {
            if matches!(slot, Slot::Live(_)) {
                return Err(FleetError::StillLive(RunId(i as u32)));
            }
        }
        snapshot::write_spec_context(w, &self.ctx, graph);
        let mut manifest = Vec::with_capacity(1 + self.slots.len());
        snapshot::put_varint(&mut manifest, self.slots.len() as u64);
        for slot in &self.slots {
            match slot {
                Slot::Frozen(h) => {
                    manifest.push(SLOT_FROZEN);
                    snapshot::put_varint(&mut manifest, h.context_only());
                    snapshot::put_varint(&mut manifest, h.skeleton_queries());
                }
                Slot::FrozenPacked(h) => {
                    manifest.push(SLOT_FROZEN_PACKED_ALIGNED);
                    snapshot::put_varint(&mut manifest, h.context_only());
                    snapshot::put_varint(&mut manifest, h.skeleton_queries());
                }
                Slot::Evicted => manifest.push(SLOT_EVICTED),
                Slot::Live(_) => unreachable!("rejected above"),
            }
        }
        w.push(snapshot::seg::FLEET_MANIFEST, manifest);
        for slot in &self.slots {
            match slot {
                Slot::Frozen(h) => w.push(
                    snapshot::seg::RUN_COLUMNS,
                    snapshot::write_run_columns(h.columns()),
                ),
                // the aligned layout since PR 10; a zero-copy view hands
                // its validated payload back verbatim (still no decode)
                Slot::FrozenPacked(h) => w.push(
                    snapshot::seg::PACKED_COLUMNS_ALIGNED,
                    h.columns().to_aligned_payload(),
                ),
                _ => {}
            }
        }
        Ok(())
    }

    /// Serializes the whole fleet — one spec record plus `K` run segments
    /// — into a standalone snapshot container. See
    /// [`write_snapshot`](Self::write_snapshot).
    pub fn save(&self, graph: &wfp_graph::DiGraph) -> Result<Vec<u8>, FleetError> {
        let mut w = snapshot::SnapshotWriter::new();
        self.write_snapshot(graph, &mut w)?;
        Ok(w.finish())
    }

    /// Restores a fleet from a parsed container: the skeleton index is
    /// rebuilt deterministically from the stored graph, the warm memo and
    /// every run's label columns are mapped back verbatim (no
    /// re-labeling), and slot states — including eviction tombstones and
    /// decision counters — are reinstated. Answers are byte-identical to
    /// the saved fleet's. Returns the fleet plus the specification graph
    /// it serves.
    pub fn read_snapshot(
        r: &snapshot::SnapshotReader<'_>,
    ) -> Result<(Self, wfp_graph::DiGraph), snapshot::FormatError> {
        Self::read_snapshot_with(r, None).map(|(fleet, graph, _)| (fleet, graph))
    }

    /// [`read_snapshot`](Self::read_snapshot), optionally binding aligned
    /// packed runs **zero-copy** over `bind` — the shared buffer the
    /// reader's payloads borrow from. With `bind`, every
    /// [`snapshot::seg::PACKED_COLUMNS_ALIGNED`] segment becomes a
    /// [`crate::PackedColumnsView`] over the buffer (O(header) per run);
    /// without it, the segment decodes into owned columns. The returned
    /// [`FleetLoadProfile`] says which path each run took.
    fn read_snapshot_with(
        r: &snapshot::SnapshotReader<'_>,
        bind: Option<&Arc<[u8]>>,
    ) -> Result<(Self, wfp_graph::DiGraph, FleetLoadProfile), snapshot::FormatError> {
        let (ctx, graph) = snapshot::read_spec_context(r)?;
        let mut cur = snapshot::Cursor::new(r.first(snapshot::seg::FLEET_MANIFEST)?);
        // each slot costs at least one state byte
        let slot_count = cur.guarded_count(1)?;
        let mut fleet = FleetEngine::new(ctx.shared());
        let mut profile = FleetLoadProfile::default();
        let mut runs = r.all(snapshot::seg::RUN_COLUMNS);
        let mut packed_runs = r.all(snapshot::seg::PACKED_COLUMNS);
        let mut aligned_runs = r.all(snapshot::seg::PACKED_COLUMNS_ALIGNED);
        for _ in 0..slot_count {
            let state = cur.u8()?;
            match state {
                SLOT_FROZEN | SLOT_FROZEN_PACKED | SLOT_FROZEN_PACKED_ALIGNED => {
                    let context_only = cur.varint()?;
                    let skeleton_queries = cur.varint()?;
                    // raw, legacy-packed and aligned runs ride separate
                    // segment kinds, so each manifest state consumes from
                    // its own stream and old snapshots keep decoding
                    // unchanged
                    let payload = match state {
                        SLOT_FROZEN => runs.next(),
                        SLOT_FROZEN_PACKED => packed_runs.next(),
                        _ => aligned_runs.next(),
                    }
                    .ok_or(snapshot::FormatError::Malformed(
                        "manifest promises more runs than stored",
                    ))?;
                    // origins index the skeleton's per-module arrays; a
                    // forged column must be a typed error, not an
                    // out-of-bounds panic on the first skeleton probe
                    let check_bound = |bound: u32| {
                        if bound as usize > graph.vertex_count() {
                            Err(snapshot::FormatError::Malformed(
                                "run origin outside the specification graph",
                            ))
                        } else {
                            Ok(())
                        }
                    };
                    match state {
                        SLOT_FROZEN => {
                            let cols = snapshot::read_run_columns(payload)?;
                            check_bound(cols.origin_bound())?;
                            let handle = RunHandle::from_columns(cols);
                            handle.count(context_only, skeleton_queries);
                            profile.decoded_runs += 1;
                            fleet.push(Slot::Frozen(handle));
                        }
                        SLOT_FROZEN_PACKED => {
                            let cols = snapshot::read_packed_columns(payload)?;
                            check_bound(cols.origin_bound())?;
                            let handle = PackedRunHandle::from_columns(cols);
                            handle.count(context_only, skeleton_queries);
                            profile.decoded_runs += 1;
                            fleet.push(Slot::FrozenPacked(handle));
                        }
                        _ => {
                            let store = match bind {
                                Some(buf) => {
                                    // the reader borrowed this payload from
                                    // the same allocation `buf` owns, so
                                    // the offset arithmetic cannot escape
                                    // the buffer
                                    let off =
                                        payload.as_ptr() as usize - buf.as_ptr() as usize;
                                    debug_assert!(off + payload.len() <= buf.len());
                                    let view = crate::packed::PackedColumnsView::bind(
                                        Arc::clone(buf),
                                        off,
                                        payload.len(),
                                    )?;
                                    profile.zero_copy_runs += 1;
                                    crate::packed::PackedStore::View(view)
                                }
                                None => {
                                    let cols =
                                        snapshot::read_packed_columns_aligned(payload)?;
                                    profile.decoded_runs += 1;
                                    crate::packed::PackedStore::Owned(cols)
                                }
                            };
                            check_bound(store.origin_bound())?;
                            let handle = PackedRunHandle::from_store(store);
                            handle.count(context_only, skeleton_queries);
                            fleet.push(Slot::FrozenPacked(handle));
                        }
                    }
                }
                SLOT_EVICTED => {
                    fleet.push(Slot::Evicted);
                    fleet.evicted += 1;
                }
                _ => return Err(snapshot::FormatError::Malformed("unknown slot state")),
            }
        }
        cur.finish()?;
        if runs.next().is_some() || packed_runs.next().is_some() || aligned_runs.next().is_some()
        {
            return Err(snapshot::FormatError::Malformed(
                "stored runs exceed the manifest",
            ));
        }
        Ok((fleet, graph, profile))
    }

    /// Parses and restores a [`save`](Self::save)d fleet. See
    /// [`read_snapshot`](Self::read_snapshot).
    pub fn load(bytes: &[u8]) -> Result<(Self, wfp_graph::DiGraph), snapshot::FormatError> {
        Self::read_snapshot(&snapshot::SnapshotReader::parse(bytes)?)
    }

    /// [`load`](Self::load) from a shared buffer, binding every aligned
    /// packed run **zero-copy** over it: the container is fully validated
    /// (structure + payload CRCs), then each
    /// [`snapshot::seg::PACKED_COLUMNS_ALIGNED`] segment is served
    /// straight out of `bytes` through a [`crate::PackedColumnsView`] —
    /// no per-word decode, no per-run allocation proportional to the run.
    /// Raw and legacy-packed segments still decode via the copy path. The
    /// profile reports the split and the buffer size.
    pub fn load_shared(
        bytes: Arc<[u8]>,
    ) -> Result<(Self, wfp_graph::DiGraph, FleetLoadProfile), snapshot::FormatError> {
        let r = snapshot::SnapshotReader::parse(&bytes)?;
        let (fleet, graph, mut profile) = Self::read_snapshot_with(&r, Some(&bytes))?;
        profile.bytes = bytes.len();
        Ok((fleet, graph, profile))
    }

    /// [`load_shared`](Self::load_shared) minus the per-payload CRC pass
    /// ([`snapshot::SnapshotReader`]'s trusted parse): for callers that
    /// can attest this *identical* buffer already passed a fully-validated
    /// load — the registry rebinding a retained `Arc` on an
    /// evict→reload cycle of an unmodified fleet, where the reload then
    /// costs O(segments) instead of O(bytes).
    pub(crate) fn load_shared_trusted(
        bytes: Arc<[u8]>,
    ) -> Result<(Self, wfp_graph::DiGraph, FleetLoadProfile), snapshot::FormatError> {
        let r = snapshot::SnapshotReader::parse_trusted(&bytes)?;
        let (fleet, graph, mut profile) = Self::read_snapshot_with(&r, Some(&bytes))?;
        profile.bytes = bytes.len();
        Ok((fleet, graph, profile))
    }

    /// Every slot's decision counters `(context_only, skeleton_queries)`,
    /// in slot order (zeros for live and evicted slots) — captured by the
    /// registry before dropping a resident fleet so a later reload can
    /// restore counter continuity without re-serializing.
    pub(crate) fn slot_counters(&self) -> Vec<(u64, u64)> {
        self.slots
            .iter()
            .map(|slot| match slot {
                Slot::Frozen(h) => (h.context_only(), h.skeleton_queries()),
                Slot::FrozenPacked(h) => (h.context_only(), h.skeleton_queries()),
                Slot::Live(_) | Slot::Evicted => (0, 0),
            })
            .collect()
    }

    /// Re-applies counters captured by [`slot_counters`](Self::slot_counters)
    /// on top of whatever the snapshot restored: counters only grow, so
    /// the saturating delta per slot brings the reloaded fleet back to
    /// the captured values without double-counting what the snapshot
    /// already carried.
    pub(crate) fn restore_counters(&self, saved: &[(u64, u64)]) {
        for (slot, &(ctx_saved, skel_saved)) in self.slots.iter().zip(saved) {
            match slot {
                Slot::Frozen(h) => h.count(
                    ctx_saved.saturating_sub(h.context_only()),
                    skel_saved.saturating_sub(h.skeleton_queries()),
                ),
                Slot::FrozenPacked(h) => h.count(
                    ctx_saved.saturating_sub(h.context_only()),
                    skel_saved.saturating_sub(h.skeleton_queries()),
                ),
                Slot::Live(_) | Slot::Evicted => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use wfp_model::fixtures::{paper_run, paper_spec, paper_subgraph};
    use wfp_speclabel::{SchemeKind, SpecScheme};

    fn labels(spec: &Specification, kind: SchemeKind) -> Vec<RunLabel> {
        let run = paper_run(spec);
        LabeledRun::build(spec, SpecScheme::build(kind, spec.graph()), &run)
            .unwrap()
            .labels()
            .to_vec()
    }

    fn all_probes(run: RunId, n: usize) -> Vec<(RunId, RunVertexId, RunVertexId)> {
        (0..n as u32)
            .flat_map(|u| {
                (0..n as u32).map(move |v| (run, RunVertexId(u), RunVertexId(v)))
            })
            .collect()
    }

    #[test]
    fn fleet_matches_independent_engines_and_shares_one_context() {
        let spec = paper_spec();
        for &kind in &SchemeKind::ALL {
            let labels = labels(&spec, kind);
            let mut fleet =
                FleetEngine::for_spec(&spec, SpecScheme::build(kind, spec.graph()));
            let k = 8;
            let ids: Vec<RunId> = (0..k).map(|_| fleet.register_labels(&labels)).collect();

            // interleave the runs' probes to exercise the per-run grouping
            let mut probes = Vec::new();
            for u in 0..labels.len() as u32 {
                for v in 0..labels.len() as u32 {
                    for &id in &ids {
                        probes.push((id, RunVertexId(u), RunVertexId(v)));
                    }
                }
            }
            let fleet_answers = fleet.answer_batch(&probes).unwrap();

            let engine = QueryEngine::from_labels(&labels, SpecScheme::build(kind, spec.graph()));
            for (&(_, u, v), &ans) in probes.iter().zip(&fleet_answers) {
                assert_eq!(ans, engine.answer(u, v), "{kind} ({u},{v})");
            }

            let stats = fleet.stats();
            assert_eq!(stats.frozen, k);
            assert_eq!(stats.context_refs, 1, "only the fleet holds the context");
            assert_eq!(stats.spec_bytes_if_per_run, k * stats.spec_bytes);
            assert_eq!(stats.engine.total(), probes.len() as u64);
        }
    }

    #[test]
    fn parallel_fleet_batches_are_deterministic() {
        let spec = paper_spec();
        for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
            let labels = labels(&spec, kind);
            let mut fleet =
                FleetEngine::for_spec(&spec, SpecScheme::build(kind, spec.graph()));
            let ids: Vec<RunId> = (0..10).map(|_| fleet.register_labels(&labels)).collect();
            let mut probes = Vec::new();
            for &id in &ids {
                probes.extend(all_probes(id, labels.len()));
            }
            let sequential = fleet.answer_batch(&probes).unwrap();
            for threads in [2usize, 4, 16] {
                let parallel = fleet.answer_batch_parallel(&probes, threads).unwrap();
                assert_eq!(parallel, sequential, "{kind}, {threads} threads");
            }
        }
    }

    #[test]
    fn mixed_frozen_and_live_runs_serve_under_one_context() {
        let spec = paper_spec();
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let mut fleet = FleetEngine::for_spec(&spec, SpecScheme::build(SchemeKind::Bfs, spec.graph()));
        let paper = paper_run(&spec);
        let frozen = fleet.register_labels(&labels(&spec, SchemeKind::Bfs));
        let pv = |name: &str| wfp_model::fixtures::paper_vertex(&spec, &paper, name);

        // an in-flight run, mid-stream
        let live = fleet.begin_live(&spec);
        let f1 = paper_subgraph(&spec, "F1");
        let l2 = paper_subgraph(&spec, "L2");
        {
            let run = fleet.live_mut(live).unwrap();
            run.exec(m("a")).unwrap();
            run.begin_group(f1).unwrap();
            run.begin_copy().unwrap();
            run.begin_group(l2).unwrap();
            run.begin_copy().unwrap();
            run.exec(m("b")).unwrap();
            run.exec(m("c")).unwrap();
            run.end_copy().unwrap();
        }
        assert_eq!(fleet.stats().live, 1);
        assert_eq!(fleet.stats().frozen, 1);
        // the live labeler holds a second context reference
        assert_eq!(fleet.stats().context_refs, 2);

        // a batch mixing frozen and live probes; the live run's vertices
        // are in exec order (a=0, b=1, c=2)
        let (a, b, c) = (RunVertexId(0), RunVertexId(1), RunVertexId(2));
        let answers = fleet
            .answer_batch(&[
                (frozen, pv("a1"), pv("h1")),
                (live, a, c),
                (live, c, b),
                (frozen, pv("c3"), pv("a1")),
            ])
            .unwrap();
        assert_eq!(answers, vec![true, true, false, false]);

        // freeze errors while incomplete; the run stays live and queryable
        assert!(matches!(
            fleet.freeze_run(live),
            Err(FleetError::FreezeFailed(_, _))
        ));
        assert!(fleet.answer(live, a, c).unwrap());
        assert_eq!(fleet.stats().live, 1);
    }

    #[test]
    fn freeze_run_in_place_keeps_answers_and_id() {
        let spec = paper_spec();
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let mut fleet =
            FleetEngine::for_spec(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
        let id = fleet.begin_live(&spec);
        {
            let run = fleet.live_mut(id).unwrap();
            // a complete (if minimal) paper run: stream everything
            let subgraphs = ["F1", "L2", "L1", "F2"];
            let [f1, l2, l1, f2] =
                subgraphs.map(|n| paper_subgraph(&spec, n));
            run.exec(m("a")).unwrap();
            run.begin_group(f1).unwrap();
            run.begin_copy().unwrap();
            run.begin_group(l2).unwrap();
            run.begin_copy().unwrap();
            run.exec(m("b")).unwrap();
            run.exec(m("c")).unwrap();
            run.end_copy().unwrap();
            run.end_group().unwrap();
            run.end_copy().unwrap();
            run.end_group().unwrap();
            run.exec(m("d")).unwrap();
            run.begin_group(l1).unwrap();
            run.begin_copy().unwrap();
            run.exec(m("e")).unwrap();
            run.begin_group(f2).unwrap();
            run.begin_copy().unwrap();
            run.exec(m("f")).unwrap();
            run.end_copy().unwrap();
            run.end_group().unwrap();
            run.exec(m("g")).unwrap();
            run.end_copy().unwrap();
            run.end_group().unwrap();
            run.exec(m("h")).unwrap();
        }
        let n = fleet.vertex_count(id).unwrap();
        let probes = all_probes(id, n);
        let live_answers = fleet.answer_batch(&probes).unwrap();
        let live_decisions = fleet.stats().engine.total();

        fleet.freeze_run(id).unwrap();
        assert_eq!(fleet.stats().live, 0);
        assert_eq!(fleet.stats().frozen, 1);
        assert_eq!(fleet.stats().context_refs, 1, "labeler reference released");
        assert_eq!(fleet.answer_batch(&probes).unwrap(), live_answers);
        // decision counters carried across the freeze, then kept growing
        assert_eq!(
            fleet.stats().engine.total(),
            live_decisions + probes.len() as u64
        );
        assert!(matches!(fleet.live_mut(id), Err(FleetError::NotLive(_))));
    }

    #[test]
    fn eviction_tombstones_ids_and_rejects_foreign_contexts() {
        let spec = paper_spec();
        let labels = labels(&spec, SchemeKind::Tcm);
        let mut fleet =
            FleetEngine::for_spec(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
        let a = fleet.register_labels(&labels);
        let b = fleet.register_labels(&labels);
        assert_eq!(fleet.run_count(), 2);
        assert_eq!(fleet.run_ids().collect::<Vec<_>>(), vec![a, b]);

        fleet.evict(a).unwrap();
        assert!(!fleet.contains(a));
        assert!(fleet.contains(b));
        assert_eq!(fleet.run_count(), 1);
        let v = RunVertexId(0);
        assert!(matches!(fleet.answer(a, v, v), Err(FleetError::Evicted(_))));
        assert!(matches!(fleet.evict(a), Err(FleetError::Evicted(_))));
        assert!(matches!(
            fleet.answer_batch(&[(b, v, v), (a, v, v)]),
            Err(FleetError::Evicted(_))
        ));
        // ids are never reused: a new registration gets a fresh id
        let c = fleet.register_labels(&labels);
        assert_ne!(c, a);
        assert!(fleet.answer(c, v, v).unwrap());
        // unknown ids are distinguished from evicted ones
        assert!(matches!(
            fleet.answer(RunId(99), v, v),
            Err(FleetError::UnknownRun(_))
        ));
        // a live run over its own private context is rejected
        let foreign = LiveRun::new(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
        assert!(matches!(
            fleet.register_live(foreign),
            Err(FleetError::ForeignContext)
        ));
        // error values render
        assert!(FleetError::Evicted(a).to_string().contains("run#0"));
    }

    #[test]
    fn save_load_round_trips_runs_tombstones_and_counters() {
        let spec = paper_spec();
        for &kind in &SchemeKind::ALL {
            let labels = labels(&spec, kind);
            let mut fleet =
                FleetEngine::for_spec(&spec, SpecScheme::build(kind, spec.graph()));
            let ids: Vec<RunId> = (0..4).map(|_| fleet.register_labels(&labels)).collect();
            fleet.evict(ids[1]).unwrap();
            // answer traffic so decision counters and the memo are warm
            let mut probes = Vec::new();
            for id in [ids[0], ids[2], ids[3]] {
                probes.extend(all_probes(id, labels.len()));
            }
            let original = fleet.answer_batch(&probes).unwrap();
            let warm_before = fleet.context().memo().warm_entries();

            let bytes = fleet.save(spec.graph()).unwrap();
            let (loaded, graph) = FleetEngine::load(&bytes).unwrap();
            assert_eq!(graph.vertex_count(), spec.graph().vertex_count());
            assert_eq!(graph.edges(), spec.graph().edges());

            // byte-identical answers, preserved ids and tombstones
            assert_eq!(loaded.answer_batch(&probes).unwrap(), original, "{kind}");
            assert!(matches!(
                loaded.answer(ids[1], RunVertexId(0), RunVertexId(0)),
                Err(FleetError::Evicted(_))
            ));
            let stats = loaded.stats();
            assert_eq!(stats.frozen, 3);
            assert_eq!(stats.evicted, 1);
            // decision counters carried across the restart
            assert_eq!(stats.engine.total(), 2 * probes.len() as u64);
            // the warm memo came back verbatim
            assert_eq!(loaded.context().memo().warm_entries(), warm_before, "{kind}");
            // new registrations continue after the restored slots
            let mut loaded = loaded;
            let fresh = loaded.register_labels(&labels);
            assert_eq!(fresh, RunId(4));
        }
    }

    #[test]
    fn warm_memo_survives_the_restart() {
        // BFS probes the skeleton per miss; a loaded fleet must answer the
        // same traffic from the restored memo without new skeleton probes.
        let spec = paper_spec();
        let labels = labels(&spec, SchemeKind::Bfs);
        let mut fleet =
            FleetEngine::for_spec(&spec, SpecScheme::build(SchemeKind::Bfs, spec.graph()));
        let id = fleet.register_labels(&labels);
        let probes = all_probes(id, labels.len());
        fleet.answer_batch(&probes).unwrap();
        assert!(fleet.stats().engine.skeleton_probes > 0);

        let bytes = fleet.save(spec.graph()).unwrap();
        let (loaded, _) = FleetEngine::load(&bytes).unwrap();
        loaded.answer_batch(&probes).unwrap();
        let stats = loaded.stats();
        assert_eq!(
            stats.engine.skeleton_probes, 0,
            "restart re-probed the skeleton despite the warm snapshot"
        );
        // every skeleton-delegated pair of the post-restart batch (half of
        // the restored-plus-new total) was a memo hit
        assert_eq!(stats.engine.memo_hits * 2, stats.engine.skeleton);
        assert!(stats.engine.memo_hits > 0);
    }

    #[test]
    fn sealed_packed_runs_serve_identically_and_persist() {
        let spec = paper_spec();
        for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
            let labels = labels(&spec, kind);
            let mut fleet = FleetEngine::for_spec(&spec, SpecScheme::build(kind, spec.graph()));
            let ids: Vec<RunId> = (0..4).map(|_| fleet.register_labels(&labels)).collect();
            let mut probes = Vec::new();
            for &id in &ids {
                probes.extend(all_probes(id, labels.len()));
            }
            let baseline = fleet.answer_batch(&probes).unwrap();
            let raw_bytes = fleet.stats().run_bytes;
            let raw_snapshot = fleet.save(spec.graph()).unwrap();

            // Seal half the fleet: mixed raw + packed serving.
            fleet.seal_packed(ids[1]).unwrap();
            fleet.seal_packed(ids[3]).unwrap();
            fleet.seal_packed(ids[3]).unwrap(); // idempotent
            let stats = fleet.stats();
            assert_eq!((stats.frozen, stats.packed), (2, 2), "{kind}");
            assert_eq!(stats.active(), 4);
            assert!(
                stats.run_bytes < raw_bytes,
                "{kind}: packing did not shrink resident bytes"
            );
            // Counters carried across the seal: the baseline batch is
            // still accounted in full.
            assert_eq!(stats.engine.total(), probes.len() as u64);

            // Scalar, batch and parallel all byte-identical to raw.
            assert_eq!(fleet.answer_batch(&probes).unwrap(), baseline, "{kind}");
            for threads in [2usize, 4] {
                assert_eq!(
                    fleet.answer_batch_parallel(&probes, threads).unwrap(),
                    baseline,
                    "{kind}, {threads} threads"
                );
            }
            let (_, u, v) = probes[7];
            assert_eq!(fleet.answer(ids[1], u, v).unwrap(), baseline[7]);

            // Mixed snapshot round trip: slot kinds, counters and answers
            // all survive.
            let bytes = fleet.save(spec.graph()).unwrap();
            let (loaded, _) = FleetEngine::load(&bytes).unwrap();
            let lstats = loaded.stats();
            assert_eq!((lstats.frozen, lstats.packed), (2, 2), "{kind}");
            assert_eq!(loaded.answer_batch(&probes).unwrap(), baseline, "{kind}");

            // An all-packed snapshot is measurably smaller than the raw one.
            fleet.seal_packed_all();
            assert_eq!(fleet.stats().frozen, 0);
            let packed_snapshot = fleet.save(spec.graph()).unwrap();
            assert!(
                packed_snapshot.len() < raw_snapshot.len(),
                "{kind}: packed snapshot {} !< raw {}",
                packed_snapshot.len(),
                raw_snapshot.len()
            );
            let (reloaded, _) = FleetEngine::load(&packed_snapshot).unwrap();
            assert_eq!(reloaded.answer_batch(&probes).unwrap(), baseline, "{kind}");
        }
    }

    #[test]
    fn seal_packed_rejects_live_and_evicted_runs() {
        let spec = paper_spec();
        let mut fleet =
            FleetEngine::for_spec(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
        let frozen = fleet.register_labels(&labels(&spec, SchemeKind::Tcm));
        let live = fleet.begin_live(&spec);
        assert!(matches!(
            fleet.seal_packed(live),
            Err(FleetError::StillLive(id)) if id == live
        ));
        assert!(matches!(
            fleet.seal_packed(RunId(99)),
            Err(FleetError::UnknownRun(_))
        ));
        fleet.evict(frozen).unwrap();
        assert!(matches!(
            fleet.seal_packed(frozen),
            Err(FleetError::Evicted(_))
        ));
        // seal_packed_all leaves live runs and tombstones alone
        assert_eq!(fleet.seal_packed_all(), 0);
        assert_eq!(fleet.stats().live, 1);
    }

    #[test]
    fn live_runs_refuse_to_snapshot() {
        let spec = paper_spec();
        let mut fleet =
            FleetEngine::for_spec(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
        fleet.register_labels(&labels(&spec, SchemeKind::Tcm));
        let live = fleet.begin_live(&spec);
        let err = fleet.save(spec.graph()).unwrap_err();
        assert!(matches!(err, FleetError::StillLive(id) if id == live));
        assert!(err.to_string().contains("in-flight"), "{err}");
        // freezing is impossible mid-structure here, so evict instead;
        // after that the snapshot succeeds and preserves the tombstone
        fleet.evict(live).unwrap();
        let (loaded, _) = FleetEngine::load(&fleet.save(spec.graph()).unwrap()).unwrap();
        assert_eq!(loaded.stats().frozen, 1);
        assert_eq!(loaded.stats().evicted, 1);
    }

    /// A pre-PR 10 snapshot — one raw [`snapshot::seg::RUN_COLUMNS`] run
    /// and one legacy [`snapshot::seg::PACKED_COLUMNS`] run, hand-written
    /// the way the old fleet writer laid them out — still loads through
    /// both public paths: labels come back byte-identical, answers match
    /// the live fleet, and the shared load honestly reports the legacy
    /// segments as *decoded* (the zero-copy bind is aligned-only).
    #[test]
    fn legacy_packed_and_raw_snapshots_still_round_trip() {
        let spec = paper_spec();
        let mut fleet =
            FleetEngine::for_spec(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
        let raw = fleet.register_labels(&labels(&spec, SchemeKind::Tcm));
        let packed = fleet.register_labels(&labels(&spec, SchemeKind::Tcm));
        fleet.seal_packed(packed).unwrap();
        let n = labels(&spec, SchemeKind::Tcm).len();

        // the old container: same spec record and manifest shape, but the
        // sealed run serialized as a legacy PACKED_COLUMNS payload under a
        // SLOT_FROZEN_PACKED state byte
        let mut w = snapshot::SnapshotWriter::new();
        snapshot::write_spec_context(&mut w, &fleet.ctx, spec.graph());
        let mut manifest = Vec::new();
        snapshot::put_varint(&mut manifest, fleet.slots.len() as u64);
        for slot in &fleet.slots {
            match slot {
                Slot::Frozen(h) => {
                    manifest.push(SLOT_FROZEN);
                    snapshot::put_varint(&mut manifest, h.context_only());
                    snapshot::put_varint(&mut manifest, h.skeleton_queries());
                }
                Slot::FrozenPacked(h) => {
                    manifest.push(SLOT_FROZEN_PACKED);
                    snapshot::put_varint(&mut manifest, h.context_only());
                    snapshot::put_varint(&mut manifest, h.skeleton_queries());
                }
                _ => unreachable!("both runs are frozen"),
            }
        }
        w.push(snapshot::seg::FLEET_MANIFEST, manifest);
        for slot in &fleet.slots {
            match slot {
                Slot::Frozen(h) => w.push(
                    snapshot::seg::RUN_COLUMNS,
                    snapshot::write_run_columns(h.columns()),
                ),
                Slot::FrozenPacked(h) => w.push(
                    snapshot::seg::PACKED_COLUMNS,
                    crate::PackedColumns::pack(&h.columns().unpack()).to_payload(),
                ),
                _ => unreachable!("both runs are frozen"),
            }
        }
        let legacy = w.finish();

        let probes = [raw, packed]
            .iter()
            .flat_map(|&r| all_probes(r, n))
            .collect::<Vec<_>>();
        let want = fleet.answer_batch(&probes).unwrap();
        let columns_of = |f: &FleetEngine<'_, SpecScheme>| -> Vec<crate::engine::SoaLabels> {
            f.slots
                .iter()
                .map(|slot| match slot {
                    Slot::Frozen(h) => h.columns().clone(),
                    Slot::FrozenPacked(h) => h.columns().unpack(),
                    _ => unreachable!("both runs are frozen"),
                })
                .collect()
        };
        let want_columns = columns_of(&fleet);

        let (owned, _) = FleetEngine::load(&legacy).unwrap();
        assert_eq!(owned.answer_batch(&probes).unwrap(), want);
        let (shared, _, profile) =
            FleetEngine::load_shared(std::sync::Arc::from(legacy.as_slice())).unwrap();
        assert_eq!(profile.decoded_runs, 2, "legacy segments ride the copy path");
        assert_eq!(profile.zero_copy_runs, 0);
        assert_eq!(shared.answer_batch(&probes).unwrap(), want);
        assert_eq!(columns_of(&owned), want_columns, "owned legacy labels diverged");
        assert_eq!(columns_of(&shared), want_columns, "shared legacy labels diverged");
    }
}
