//! Run labels, the labeling function φr and the predicate πr
//! (paper §4.4, Algorithms 2–3).
//!
//! A run label is the context's three-dimensional encoding `(q1, q2, q3)`
//! plus the skeleton label of the vertex's origin. We store the origin id
//! itself — exactly the paper's accounting, which charges `log n_G` bits
//! for the *pointer* to the (shared, amortized) skeleton label regardless
//! of that label's actual size (§7).

use wfp_model::{ModuleId, Run, RunVertexId, Specification};
use wfp_speclabel::SpecIndex;

use crate::bits::{gamma_bits, BitReader, BitWriter};
use crate::construct::{construct_plan_with_stats, ConstructError, ConstructStats};
use crate::orders::generate_three_orders;
use crate::snapshot::{self, FormatError};
use wfp_model::plan::ExecutionPlan;

/// The reachability label of one run vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLabel {
    /// Position of the vertex's context in the order `O1`.
    pub q1: u32,
    /// Position in `O2` (fork groups reversed).
    pub q2: u32,
    /// Position in `O3` (loop groups reversed).
    pub q3: u32,
    /// The origin module — the pointer to the skeleton label.
    pub origin: ModuleId,
}

/// How a query was decided — used by the §8.2 analysis ("reachability
/// queries on the run may frequently be answered using only the extended
/// labels").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryPath {
    /// Decided by the context encoding alone (an `F−`/`L−` LCA).
    ContextOnly,
    /// Delegated to the skeleton labels (a `+` LCA).
    Skeleton,
}

/// The predicate πr (Algorithm 3): does the vertex labeled `a` reach the
/// vertex labeled `b`?
#[inline]
pub fn predicate<S: SpecIndex>(a: &RunLabel, b: &RunLabel, skeleton: &S) -> bool {
    predicate_traced(a, b, skeleton).0
}

/// The context fast path of πr (Lemma 4.5), shared by every evaluator in
/// this crate (scalar, memoized, batched, live): `Some(answer)` when the
/// LCA of the contexts is an `F−`/`L−` node and the three-comparison test
/// decides the query, `None` when the query must consult the skeleton.
///
/// Generic over the coordinate type because the test only *compares*
/// coordinates: the offline scheme passes `u32` preorder positions, the
/// live engine ([`crate::live`]) passes the `u64` order-maintenance tags
/// of the three bracket lists, which order contexts identically.
#[inline]
pub(crate) fn context_fast_path<Q: Copy + Ord>(
    (a_q1, a_q2, a_q3): (Q, Q, Q),
    (b_q1, b_q2, b_q3): (Q, Q, Q),
) -> Option<bool> {
    // `d2 · d3 < 0` (Algorithm 3) expressed as a sign test: the products of
    // two full u32 deltas can exceed i64 (labels may come from untrusted
    // bytes), while the comparisons below are overflow-free and equivalent.
    let d2_neg = a_q2 < b_q2;
    let d3_neg = a_q3 < b_q3;
    if d2_neg != d3_neg && a_q2 != b_q2 && a_q3 != b_q3 {
        Some(a_q1 < b_q1 && a_q3 > b_q3)
    } else {
        None
    }
}

/// πr plus which path decided it.
#[inline]
pub fn predicate_traced<S: SpecIndex>(
    a: &RunLabel,
    b: &RunLabel,
    skeleton: &S,
) -> (bool, QueryPath) {
    match context_fast_path((a.q1, a.q2, a.q3), (b.q1, b.q2, b.q3)) {
        // The LCA of the contexts is an F− or L− node (Lemma 4.5): the
        // answer is decided without touching the skeleton labels.
        Some(ans) => (ans, QueryPath::ContextOnly),
        None => (
            skeleton.reaches(a.origin.raw(), b.origin.raw()),
            QueryPath::Skeleton,
        ),
    }
}

/// Labels `run` without materializing a [`LabeledRun`]: constructs the
/// execution plan and context (§5), builds the three orders (§4.3) and
/// returns the raw labels plus `n⁺`. This is the spec/run split's labeling
/// path — the labels carry only the *pointer* to the skeleton (the origin
/// id), so no skeleton index is needed or built; pair the result with a
/// shared `SpecContext` (e.g. via a `RunHandle` in a `FleetEngine`) to
/// query. [`LabeledRun::build`] is this function plus a privately-owned
/// skeleton.
pub fn label_run(spec: &Specification, run: &Run) -> Result<(Vec<RunLabel>, u32), ConstructError> {
    let (plan, _) = construct_plan_with_stats(spec, run)?;
    Ok(labels_from_plan(spec, run, &plan))
}

/// The core of φr: labels from a known plan (no skeleton involved).
fn labels_from_plan(
    spec: &Specification,
    run: &Run,
    plan: &ExecutionPlan,
) -> (Vec<RunLabel>, u32) {
    let enc = generate_three_orders(plan, spec);
    let labels = run
        .vertices()
        .map(|v| {
            let (q1, q2, q3) = enc.positions(plan.context(v));
            debug_assert!(q1 >= 1, "contexts are nonempty + nodes");
            RunLabel {
                q1,
                q2,
                q3,
                origin: run.origin(v),
            }
        })
        .collect();
    (labels, enc.nonempty_plus_count())
}

/// A fully labeled run: the output of the labeling function φr, owning the
/// skeleton index it delegates to.
pub struct LabeledRun<S> {
    labels: Vec<RunLabel>,
    skeleton: S,
    n_plus: u32,
    n_g: u32,
}

impl<S: SpecIndex> LabeledRun<S> {
    /// Labels `run` end to end: constructs the execution plan and context
    /// (§5), builds the three orders (§4.3) and assigns labels (Algorithm
    /// 2). Linear time in the size of the run.
    pub fn build(
        spec: &Specification,
        skeleton: S,
        run: &Run,
    ) -> Result<Self, ConstructError> {
        Self::build_with_stats(spec, skeleton, run).map(|(l, _)| l)
    }

    /// [`LabeledRun::build`] plus plan-construction statistics.
    pub fn build_with_stats(
        spec: &Specification,
        skeleton: S,
        run: &Run,
    ) -> Result<(Self, ConstructStats), ConstructError> {
        let (plan, stats) = construct_plan_with_stats(spec, run)?;
        Ok((Self::build_with_plan(spec, skeleton, run, &plan), stats))
    }

    /// Labels a run whose execution plan and context are already known —
    /// the paper's second Figure 13 setting ("the run is given along with
    /// its execution plan and context", e.g. extracted from a Taverna log).
    pub fn build_with_plan(
        spec: &Specification,
        skeleton: S,
        run: &Run,
        plan: &ExecutionPlan,
    ) -> Self {
        let (labels, n_plus) = labels_from_plan(spec, run, plan);
        LabeledRun {
            labels,
            skeleton,
            n_plus,
            n_g: spec.module_count() as u32,
        }
    }

    /// The label of vertex `v`.
    #[inline]
    pub fn label(&self, v: RunVertexId) -> &RunLabel {
        &self.labels[v.index()]
    }

    /// All labels, indexed by run vertex.
    pub fn labels(&self) -> &[RunLabel] {
        &self.labels
    }

    /// Number of labeled vertices.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// The skeleton index queries delegate to.
    pub fn skeleton(&self) -> &S {
        &self.skeleton
    }

    /// Decomposes the labeled run into its labels and skeleton — the raw
    /// material of a [`crate::engine::QueryEngine`].
    pub fn into_parts(self) -> (Vec<RunLabel>, S) {
        (self.labels, self.skeleton)
    }

    /// Number of nonempty `+` nodes `n⁺_T` in the underlying plan.
    pub fn nonempty_plus_count(&self) -> u32 {
        self.n_plus
    }

    /// Whether `u ⇝ v` in the run (reflexive), in `O(1) + t_G`.
    #[inline]
    pub fn reaches(&self, u: RunVertexId, v: RunVertexId) -> bool {
        predicate(self.label(u), self.label(v), &self.skeleton)
    }

    /// [`reaches`](Self::reaches) plus which path decided it.
    #[inline]
    pub fn reaches_traced(&self, u: RunVertexId, v: RunVertexId) -> (bool, QueryPath) {
        predicate_traced(self.label(u), self.label(v), &self.skeleton)
    }

    // ---------------- label-length accounting (Figure 12) -------------

    /// Bits per `q` coordinate under fixed-width packing.
    fn q_width(&self) -> usize {
        bits_for(self.n_plus as u64)
    }

    /// Bits for the skeleton pointer.
    fn origin_width(&self) -> usize {
        bits_for(self.n_g.saturating_sub(1).max(1) as u64)
    }

    /// Fixed-width label length in bits: `3⌈log₂(n⁺+1)⌉ + ⌈log₂ n_G⌉` —
    /// the paper's *maximum* label length.
    pub fn fixed_label_bits(&self) -> usize {
        3 * self.q_width() + self.origin_width()
    }

    /// Variable-size length of one vertex's label: each `q` in minimal
    /// binary (`⌊log₂ q⌋ + 1` bits) plus the skeleton pointer. This is the
    /// Figure 12 "average label length" accounting — always at most the
    /// fixed-width maximum. (For *self-delimiting* storage see
    /// [`crate::bits::gamma_bits`], which costs ~2× per coordinate.)
    pub fn variable_label_bits(&self, v: RunVertexId) -> usize {
        let l = self.label(v);
        let min_bits = |q: u32| 32 - q.max(1).leading_zeros() as usize;
        min_bits(l.q1) + min_bits(l.q2) + min_bits(l.q3) + self.origin_width()
    }

    /// Self-delimiting (Elias-γ) size of one vertex's label.
    pub fn gamma_label_bits(&self, v: RunVertexId) -> usize {
        let l = self.label(v);
        gamma_bits(l.q1 as u64) + gamma_bits(l.q2 as u64) + gamma_bits(l.q3 as u64)
            + self.origin_width()
    }

    /// Mean variable-size label length in bits (Figure 12's "average").
    pub fn average_label_bits(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        let total: usize = (0..self.labels.len())
            .map(|i| self.variable_label_bits(RunVertexId(i as u32)))
            .sum();
        total as f64 / self.labels.len() as f64
    }

    // ---------------- serialization ------------------------------------

    /// Packs all labels into a fixed-width bit stream.
    pub fn encode(&self) -> EncodedLabels {
        let qw = self.q_width();
        let ow = self.origin_width();
        let mut w = BitWriter::new();
        for l in &self.labels {
            w.write_bits(l.q1 as u64, qw);
            w.write_bits(l.q2 as u64, qw);
            w.write_bits(l.q3 as u64, qw);
            w.write_bits(l.origin.raw() as u64, ow);
        }
        let (words, bit_len) = w.into_words();
        EncodedLabels {
            words,
            bit_len,
            count: self.labels.len() as u32,
            n_plus: self.n_plus,
            n_g: self.n_g,
        }
    }
}

/// Smallest width holding values `0..=max` (at least 1 bit).
fn bits_for(max: u64) -> usize {
    (64 - max.leading_zeros() as usize).max(1)
}

/// Failures parsing a packed label file ([`EncodedLabels::from_bytes`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The bytes start with neither the snapshot-container magic nor the
    /// legacy `WFPL` magic (or are shorter than either fixed header).
    NotALabelFile,
    /// The payload is not a whole number of 64-bit words.
    MisalignedPayload {
        /// Payload length in bytes (after the fixed-width header fields).
        len: usize,
    },
    /// The header promises more label bits than the payload carries.
    TruncatedPayload {
        /// Bits promised by the header.
        declared_bits: usize,
        /// Bits actually present.
        available_bits: usize,
    },
    /// The snapshot container around the labels is invalid (truncated,
    /// corrupt, wrong version — see [`FormatError`]).
    Format(FormatError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::NotALabelFile => write!(f, "not a packed label file"),
            DecodeError::MisalignedPayload { len } => {
                write!(f, "label payload of {len} bytes is not word-aligned")
            }
            DecodeError::TruncatedPayload {
                declared_bits,
                available_bits,
            } => write!(
                f,
                "label payload truncated: header declares {declared_bits} bits, \
                 only {available_bits} present"
            ),
            DecodeError::Format(e) => write!(f, "invalid label snapshot: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for DecodeError {
    fn from(e: FormatError) -> Self {
        DecodeError::Format(e)
    }
}

/// A packed label array, decodable without the original run.
#[derive(Debug)]
pub struct EncodedLabels {
    words: Vec<u64>,
    bit_len: usize,
    count: u32,
    n_plus: u32,
    n_g: u32,
}

impl EncodedLabels {
    /// Total size in bits (labels only, excluding the 3-word header).
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no labels are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Decodes all labels.
    pub fn decode(&self) -> Vec<RunLabel> {
        let qw = bits_for(self.n_plus as u64);
        let ow = bits_for(self.n_g.saturating_sub(1).max(1) as u64);
        let mut r = BitReader::new(&self.words, self.bit_len);
        (0..self.count)
            .map(|_| {
                let q1 = r.read_bits(qw) as u32;
                let q2 = r.read_bits(qw) as u32;
                let q3 = r.read_bits(qw) as u32;
                let origin = ModuleId(r.read_bits(ow) as u32);
                RunLabel { q1, q2, q3, origin }
            })
            .collect()
    }

    /// Serializes the labels as a snapshot container (one
    /// [`snapshot::seg::PACKED_LABELS`] segment on the shared framing
    /// layer, CRC-protected), suitable for a label file on disk.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(20 + self.words.len() * 8);
        payload.extend_from_slice(&self.count.to_le_bytes());
        payload.extend_from_slice(&self.n_plus.to_le_bytes());
        payload.extend_from_slice(&self.n_g.to_le_bytes());
        payload.extend_from_slice(&(self.bit_len as u64).to_le_bytes());
        for w in &self.words {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        let mut w = snapshot::SnapshotWriter::new();
        w.push(snapshot::seg::PACKED_LABELS, payload);
        w.finish()
    }

    /// Serializes in the legacy (pre-snapshot) v0 framing: magic +
    /// fixed-width header + words, no checksum. Kept so interop with
    /// files written by older builds stays testable; new code writes
    /// [`to_bytes`](Self::to_bytes).
    pub fn to_bytes_v0(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(26 + self.words.len() * 8);
        out.extend_from_slice(b"WFPL\x01\x00");
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.n_plus.to_le_bytes());
        out.extend_from_slice(&self.n_g.to_le_bytes());
        out.extend_from_slice(&(self.bit_len as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Parses a label file: the snapshot container written by
    /// [`to_bytes`](Self::to_bytes), or — sniffed by magic — the legacy v0
    /// stream ([`to_bytes_v0`](Self::to_bytes_v0)), so label files from
    /// older builds keep decoding.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if snapshot::SnapshotReader::sniff(bytes) {
            let r = snapshot::SnapshotReader::parse(bytes)?;
            return Self::parse_payload(r.first(snapshot::seg::PACKED_LABELS)?, false);
        }
        // v0 compatibility path
        if bytes.len() < 26 || &bytes[..6] != b"WFPL\x01\x00" {
            return Err(DecodeError::NotALabelFile);
        }
        Self::parse_payload(&bytes[6..], true)
    }

    /// The shared fixed-width body parser: `count | n_plus | n_g | bit_len
    /// | words`, identical in the v0 stream (after its magic) and in the
    /// container segment payload. `v0` selects the error vocabulary: a
    /// short v0 body means the fixed label header itself is incomplete
    /// (`NotALabelFile`), while a short container segment is a format
    /// defect inside an otherwise valid snapshot.
    fn parse_payload(payload: &[u8], v0: bool) -> Result<Self, DecodeError> {
        let mut cur = snapshot::Cursor::new(payload);
        let header = |e| match e {
            FormatError::Truncated { .. } if v0 => DecodeError::NotALabelFile,
            e => DecodeError::Format(e),
        };
        let count = cur.u32().map_err(header)?;
        let n_plus = cur.u32().map_err(header)?;
        let n_g = cur.u32().map_err(header)?;
        let bit_len = cur.u64().map_err(header)? as usize;
        let words_bytes = cur.bytes(cur.remaining()).expect("remaining is in bounds");
        if words_bytes.len() % 8 != 0 {
            return Err(DecodeError::MisalignedPayload {
                len: words_bytes.len(),
            });
        }
        if words_bytes.len() * 8 < bit_len {
            return Err(DecodeError::TruncatedPayload {
                declared_bits: bit_len,
                available_bits: words_bytes.len() * 8,
            });
        }
        // The count field is untrusted: decode() materializes `count`
        // labels, so a count the declared bit stream cannot hold must be
        // rejected here — before it sizes a decode allocation. Each label
        // costs exactly 3 q-widths + 1 origin width (both ≥ 1 bit).
        let label_bits = 3 * bits_for(n_plus as u64) + bits_for(n_g.saturating_sub(1).max(1) as u64);
        if count as u64 * label_bits as u64 > bit_len as u64 {
            return Err(DecodeError::TruncatedPayload {
                declared_bits: count as usize * label_bits,
                available_bits: bit_len,
            });
        }
        let words = words_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Ok(EncodedLabels {
            words,
            bit_len,
            count,
            n_plus,
            n_g,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_graph::TransitiveClosure;
    use wfp_model::fixtures::{paper_reachability_claims, paper_run, paper_spec, paper_vertex};
    use wfp_speclabel::{SchemeKind, SpecScheme};

    fn labeled_paper_run(kind: SchemeKind) -> (Specification, Run, LabeledRun<SpecScheme>) {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let scheme = SpecScheme::build(kind, spec.graph());
        let labeled = LabeledRun::build(&spec, scheme, &run).unwrap();
        (spec, run, labeled)
    }

    #[test]
    fn paper_claims_hold_under_every_scheme() {
        for &kind in &SchemeKind::ALL {
            let (spec, run, labeled) = labeled_paper_run(kind);
            for &(from, to, expected) in paper_reachability_claims() {
                let u = paper_vertex(&spec, &run, from);
                let v = paper_vertex(&spec, &run, to);
                assert_eq!(
                    labeled.reaches(u, v),
                    expected,
                    "{from} ⇝ {to} under {kind}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_differential_against_bfs_closure() {
        let (_spec, run, labeled) = labeled_paper_run(SchemeKind::Tcm);
        let oracle = TransitiveClosure::build(run.graph());
        for u in run.vertices() {
            for v in run.vertices() {
                assert_eq!(
                    labeled.reaches(u, v),
                    oracle.reaches(u.raw(), v.raw()),
                    "({u},{v})"
                );
            }
        }
    }

    #[test]
    fn example_9_query_paths() {
        // Example 9: c1 vs d1 falls through to the skeleton; b1 vs c3 (two
        // parallel fork copies) is decided by contexts alone.
        let (spec, run, labeled) = labeled_paper_run(SchemeKind::Tcm);
        let c1 = paper_vertex(&spec, &run, "c1");
        let d1 = paper_vertex(&spec, &run, "d1");
        let (ans, path) = labeled.reaches_traced(c1, d1);
        assert!(!ans);
        assert_eq!(path, QueryPath::Skeleton);
        let b1 = paper_vertex(&spec, &run, "b1");
        let c3 = paper_vertex(&spec, &run, "c3");
        let (ans, path) = labeled.reaches_traced(b1, c3);
        assert!(!ans);
        assert_eq!(path, QueryPath::ContextOnly);
        // successive loop copies: context-only, positive
        let b2 = paper_vertex(&spec, &run, "b2");
        let (ans, path) = labeled.reaches_traced(c1, b2);
        assert!(ans);
        assert_eq!(path, QueryPath::ContextOnly);
    }

    #[test]
    fn label_length_matches_the_bound() {
        let (spec, run, labeled) = labeled_paper_run(SchemeKind::Tcm);
        // n+ = 9, n_G = 8: 3*ceil(log2 10) + ceil(log2 8) = 3*4 + 3 = 15
        assert_eq!(labeled.nonempty_plus_count(), 9);
        assert_eq!(labeled.fixed_label_bits(), 15);
        let bound = 3.0 * (run.vertex_count() as f64).log2()
            + (spec.module_count() as f64).log2();
        assert!((labeled.fixed_label_bits() as f64) <= bound + 4.0);
        // average variable-size ≤ a couple of bits of the fixed size for
        // this tiny run, and strictly positive
        let avg = labeled.average_label_bits();
        assert!(avg > 0.0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let (_spec, run, labeled) = labeled_paper_run(SchemeKind::Bfs);
        let enc = labeled.encode();
        assert_eq!(enc.len(), run.vertex_count());
        assert_eq!(enc.bit_len(), run.vertex_count() * labeled.fixed_label_bits());
        let decoded = enc.decode();
        assert_eq!(decoded, labeled.labels().to_vec());
    }

    #[test]
    fn encoded_labels_byte_round_trip() {
        let (_spec, _run, labeled) = labeled_paper_run(SchemeKind::Tcm);
        let enc = labeled.encode();
        let bytes = enc.to_bytes();
        let back = EncodedLabels::from_bytes(&bytes).unwrap();
        assert_eq!(back.decode(), labeled.labels().to_vec());
        assert_eq!(back.len(), enc.len());
        // corruption is detected, with typed causes: every truncation of
        // the container errors (the format's exact-length check), as does
        // any payload bit flip (per-segment CRC)
        for len in 0..bytes.len() {
            assert!(
                EncodedLabels::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert!(matches!(
            EncodedLabels::from_bytes(&flipped).unwrap_err(),
            DecodeError::Format(crate::snapshot::FormatError::ChecksumMismatch { .. })
        ));
        assert_eq!(
            EncodedLabels::from_bytes(b"garbage___________________").unwrap_err(),
            DecodeError::NotALabelFile
        );
        // a valid container whose labels segment is shorter than the fixed
        // label header is a format defect, not "not a label file"
        let mut w = crate::snapshot::SnapshotWriter::new();
        w.push(crate::snapshot::seg::PACKED_LABELS, vec![0u8; 10]);
        assert!(matches!(
            EncodedLabels::from_bytes(&w.finish()).unwrap_err(),
            DecodeError::Format(crate::snapshot::FormatError::Truncated { .. })
        ));
        // a CRC-consistent forged count the bit stream cannot hold must be
        // rejected before decode() would size a count-proportional
        // allocation
        let mut forged = Vec::new();
        forged.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        forged.extend_from_slice(&1u32.to_le_bytes()); // n_plus
        forged.extend_from_slice(&1u32.to_le_bytes()); // n_g
        forged.extend_from_slice(&64u64.to_le_bytes()); // bit_len
        forged.extend_from_slice(&[0u8; 8]); // one word
        let mut w = crate::snapshot::SnapshotWriter::new();
        w.push(crate::snapshot::seg::PACKED_LABELS, forged);
        assert!(matches!(
            EncodedLabels::from_bytes(&w.finish()).unwrap_err(),
            DecodeError::TruncatedPayload { .. }
        ));
        // decode errors implement std::error::Error and render; the
        // container wrapper exposes the format failure as its source()
        let e: Box<dyn std::error::Error> = Box::new(DecodeError::NotALabelFile);
        assert!(e.to_string().contains("label file"));
        let wrapped = DecodeError::Format(crate::snapshot::FormatError::BadMagic);
        use std::error::Error as _;
        assert!(wrapped.source().is_some());
        assert!(wrapped.to_string().contains("magic"));
    }

    #[test]
    fn v0_label_files_still_decode() {
        let (_spec, _run, labeled) = labeled_paper_run(SchemeKind::Bfs);
        let enc = labeled.encode();
        let v0 = enc.to_bytes_v0();
        assert_ne!(v0, enc.to_bytes(), "v0 and container framings differ");
        let back = EncodedLabels::from_bytes(&v0).unwrap();
        assert_eq!(back.decode(), labeled.labels().to_vec());
        // v0 corruption keeps its original typed causes
        assert_eq!(
            EncodedLabels::from_bytes(&v0[..10]).unwrap_err(),
            DecodeError::NotALabelFile
        );
        assert!(matches!(
            EncodedLabels::from_bytes(&v0[..v0.len() - 1]).unwrap_err(),
            DecodeError::MisalignedPayload { .. }
        ));
        assert!(matches!(
            EncodedLabels::from_bytes(&v0[..v0.len() - 8]).unwrap_err(),
            DecodeError::TruncatedPayload { .. }
        ));
    }

    #[test]
    fn label_run_matches_labeled_run() {
        let (spec, run, labeled) = labeled_paper_run(SchemeKind::Tcm);
        let (labels, n_plus) = label_run(&spec, &run).unwrap();
        assert_eq!(labels, labeled.labels().to_vec());
        assert_eq!(n_plus, labeled.nonempty_plus_count());
    }

    #[test]
    fn reflexive_queries_answer_true() {
        let (_spec, run, labeled) = labeled_paper_run(SchemeKind::Dfs);
        for v in run.vertices() {
            assert!(labeled.reaches(v, v));
        }
    }

    #[test]
    fn label_with_plan_matches_full_pipeline() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let plan = crate::construct::construct_plan(&spec, &run).unwrap();
        let a = LabeledRun::build(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()), &run)
            .unwrap();
        let b = LabeledRun::build_with_plan(
            &spec,
            SpecScheme::build(SchemeKind::Tcm, spec.graph()),
            &run,
            &plan,
        );
        assert_eq!(a.labels(), b.labels());
    }
}
