//! Online (dynamic) skeleton labeling — the extension proposed in the
//! paper's conclusion (§9): *"design efficient and compact dynamic or
//! online labeling schemes, so that data can be labeled and stored in a
//! database along with its label as soon as it is generated ... enabling
//! efficient provenance queries on intermediate data results even before
//! the workflow completes."*
//!
//! A workflow engine (e.g. Taverna, whose logs expose the execution plan,
//! §8.1) streams structural events while the run executes:
//!
//! * [`OnlineLabeler::begin_group`] / [`end_group`](OnlineLabeler::end_group)
//!   — an execution group (`−` node) of a fork/loop opens/closes inside the
//!   current copy;
//! * [`OnlineLabeler::begin_copy`] / [`end_copy`](OnlineLabeler::end_copy)
//!   — one copy (`+` node) of the innermost open group starts/finishes;
//! * [`OnlineLabeler::exec`] — a module executes inside the current copy.
//!
//! The offline scheme's three preorder *positions* only exist once the run
//! is complete, so the online labeler instead keeps the three orders as
//! Euler bracket sequences inside order-maintenance lists
//! ([`wfp_graph::OrderList`]): every new plan node knows, at creation time,
//! exactly where its brackets belong relative to the *existing* nodes
//! (appending a child inserts at the parent's closing bracket — or at its
//! opening bracket in the traversal that reverses this group's children).
//! Relative order of existing nodes never changes, so Lemma 4.5's
//! trichotomy — and therefore πr — holds at every intermediate moment.
//!
//! Queries cost O(1) (three tag comparisons) plus one skeleton probe when
//! the contexts' LCA is a `+` node. When the run completes,
//! [`OnlineLabeler::freeze`] extracts the exact integer labels of the
//! offline scheme.
//!
//! Event validation is strict: every event is checked against the
//! specification's hierarchy (nesting, module homes, copy completeness), so
//! a malformed event stream errors out instead of mislabeling.

use wfp_graph::OrderList;
use wfp_model::{ModuleId, RunVertexId, Specification, SubgraphId, SubgraphKind};
use wfp_speclabel::SpecIndex;

use crate::label::{QueryPath, RunLabel};

/// Violations of the event protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OnlineError {
    /// `begin_group`/`exec` outside any open copy.
    NoOpenCopy,
    /// `begin_copy`/`end_group` while no group is open.
    NoOpenGroup,
    /// `end_copy` while a group is still open, or at the root.
    UnbalancedEnd,
    /// A group of `sg` was opened inside a copy that is not its hierarchy
    /// parent.
    WrongNesting(SubgraphId),
    /// The same subgraph was opened twice within one copy.
    DuplicateGroup(SubgraphId),
    /// A module executed inside a copy that does not dominate it.
    WrongHome(ModuleId),
    /// A module executed twice within one copy.
    DuplicateExec(ModuleId),
    /// A copy ended before all its groups/modules appeared.
    IncompleteCopy {
        /// Child groups still missing.
        missing_groups: usize,
        /// Home modules still missing.
        missing_modules: usize,
    },
    /// `finish` called while copies are still open.
    RunStillOpen,
    /// A group closed with no copies.
    EmptyGroup,
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::NoOpenCopy => write!(f, "event requires an open copy"),
            OnlineError::NoOpenGroup => write!(f, "event requires an open group"),
            OnlineError::UnbalancedEnd => write!(f, "unbalanced end event"),
            OnlineError::WrongNesting(sg) => {
                write!(f, "group {sg} opened outside its parent copy")
            }
            OnlineError::DuplicateGroup(sg) => write!(f, "group {sg} opened twice in one copy"),
            OnlineError::WrongHome(m) => write!(f, "module {m} executed in a foreign copy"),
            OnlineError::DuplicateExec(m) => write!(f, "module {m} executed twice in one copy"),
            OnlineError::IncompleteCopy {
                missing_groups,
                missing_modules,
            } => write!(
                f,
                "copy ended early ({missing_groups} groups, {missing_modules} modules missing)"
            ),
            OnlineError::RunStillOpen => write!(f, "run is not complete"),
            OnlineError::EmptyGroup => write!(f, "group closed with no copies"),
        }
    }
}

impl std::error::Error for OnlineError {}

/// One of the three maintained orders, as an Euler bracket sequence.
struct BracketOrder {
    list: OrderList,
    enter: Vec<u32>,
    exit: Vec<u32>,
}

impl BracketOrder {
    fn new() -> Self {
        BracketOrder {
            list: OrderList::new(),
            enter: Vec::new(),
            exit: Vec::new(),
        }
    }

    /// Creates the root brackets.
    fn push_root(&mut self) {
        debug_assert!(self.enter.is_empty());
        let enter = self.list.push_back();
        let exit = self.list.push_back();
        self.enter.push(enter);
        self.exit.push(exit);
    }

    /// Appends node brackets directly before the parent's closing bracket
    /// (the node becomes the *last*-visited child in this order).
    fn append_last(&mut self, parent: usize) {
        let exit = self.list.insert_before(self.exit[parent]);
        let enter = self.list.insert_before(exit);
        self.enter.push(enter);
        self.exit.push(exit);
    }

    /// Appends node brackets directly after the parent's opening bracket
    /// (the node becomes the *first*-visited child — used by the traversal
    /// that reverses this group's children).
    fn append_first(&mut self, parent: usize) {
        let enter = self.list.insert_after(self.enter[parent]);
        let exit = self.list.insert_after(enter);
        self.enter.push(enter);
        self.exit.push(exit);
    }

    #[inline]
    fn before(&self, a: usize, b: usize) -> bool {
        self.list.before(self.enter[a], self.enter[b])
    }

    /// Current order-maintenance tag of `node`'s opening bracket. Valid
    /// until the list's next global retagging (see
    /// [`rebuilds`](Self::rebuilds)).
    #[inline]
    fn tag(&self, node: usize) -> u64 {
        self.list.key(self.enter[node])
    }

    /// How many global retaggings this order has performed — cached tags
    /// are stale once this advances.
    #[inline]
    fn rebuilds(&self) -> usize {
        self.list.rebuild_count()
    }
}

/// Kind of an online plan node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeKind {
    Root,
    Group(SubgraphId),
    Copy(SubgraphId),
}

struct Node {
    kind: NodeKind,
    nonempty: bool,
    /// bookkeeping for completeness checks (copies only)
    groups_opened: usize,
    modules_executed: usize,
}

/// Stack frame of an open node.
struct Frame {
    node: usize,
    /// subgraphs of groups already opened in this copy (small; linear scan)
    seen_groups: Vec<SubgraphId>,
    /// modules already executed in this copy
    seen_modules: Vec<ModuleId>,
}

/// The dynamic labeler. See the module docs for the event protocol.
pub struct OnlineLabeler<'s, S> {
    spec: &'s Specification,
    skeleton: S,
    nodes: Vec<Node>,
    o1: BracketOrder,
    o2: BracketOrder,
    o3: BracketOrder,
    stack: Vec<Frame>,
    /// per executed vertex: (context node, origin)
    vertices: Vec<(usize, ModuleId)>,
    /// expected counts per subgraph (index n = root)
    expected_groups: Vec<usize>,
    expected_modules: Vec<usize>,
}

impl<'s, S: SpecIndex> OnlineLabeler<'s, S> {
    /// Starts a run of `spec`, delegating skeleton queries to `skeleton`.
    pub fn new(spec: &'s Specification, skeleton: S) -> Self {
        let h = spec.hierarchy();
        let k = spec.subgraph_count();
        // expected child-group and home-module counts per copy kind
        let mut expected_groups = vec![0usize; k + 1];
        let mut expected_modules = vec![0usize; k + 1];
        for (id, _) in spec.subgraphs() {
            expected_groups[id.index()] = h.child_subgraphs(h.node_of(id)).count();
        }
        expected_groups[k] = h.child_subgraphs(h.root()).count();
        for m in spec.modules() {
            match h.dominator_of_vertex(m) {
                Some(sg) => expected_modules[sg.index()] += 1,
                None => expected_modules[k] += 1,
            }
        }

        let mut labeler = OnlineLabeler {
            spec,
            skeleton,
            nodes: Vec::new(),
            o1: BracketOrder::new(),
            o2: BracketOrder::new(),
            o3: BracketOrder::new(),
            stack: Vec::new(),
            vertices: Vec::new(),
            expected_groups,
            expected_modules,
        };
        labeler.nodes.push(Node {
            kind: NodeKind::Root,
            nonempty: false,
            groups_opened: 0,
            modules_executed: 0,
        });
        labeler.o1.push_root();
        labeler.o2.push_root();
        labeler.o3.push_root();
        labeler.stack.push(Frame {
            node: 0,
            seen_groups: Vec::new(),
            seen_modules: Vec::new(),
        });
        labeler
    }

    fn top_copy(&self) -> Option<&Frame> {
        let top = self.stack.last()?;
        match self.nodes[top.node].kind {
            NodeKind::Root | NodeKind::Copy(_) => Some(top),
            NodeKind::Group(_) => None,
        }
    }

    /// Opens an execution group for `sg` inside the current copy.
    pub fn begin_group(&mut self, sg: SubgraphId) -> Result<(), OnlineError> {
        let top = self.top_copy().ok_or(OnlineError::NoOpenCopy)?;
        let parent_node = top.node;
        // nesting: sg's hierarchy parent must be the current copy's subgraph
        let expected_parent = self.spec.hierarchy().parent_subgraph(sg);
        let actual_parent = match self.nodes[parent_node].kind {
            NodeKind::Root => None,
            NodeKind::Copy(c) => Some(c),
            NodeKind::Group(_) => unreachable!("top_copy filtered"),
        };
        if expected_parent != actual_parent {
            return Err(OnlineError::WrongNesting(sg));
        }
        if self.stack.last().unwrap().seen_groups.contains(&sg) {
            return Err(OnlineError::DuplicateGroup(sg));
        }
        self.stack.last_mut().unwrap().seen_groups.push(sg);
        self.nodes[parent_node].groups_opened += 1;

        let node = self.nodes.len();
        self.nodes.push(Node {
            kind: NodeKind::Group(sg),
            nonempty: false,
            groups_opened: 0,
            modules_executed: 0,
        });
        // group nodes hang under + copies: forward in all three orders
        self.o1.append_last(parent_node);
        self.o2.append_last(parent_node);
        self.o3.append_last(parent_node);
        self.stack.push(Frame {
            node,
            seen_groups: Vec::new(),
            seen_modules: Vec::new(),
        });
        Ok(())
    }

    /// Opens the next copy of the innermost open group.
    pub fn begin_copy(&mut self) -> Result<(), OnlineError> {
        let top = self.stack.last().ok_or(OnlineError::NoOpenGroup)?;
        let parent_node = top.node;
        let sg = match self.nodes[parent_node].kind {
            NodeKind::Group(sg) => sg,
            _ => return Err(OnlineError::NoOpenGroup),
        };
        // the group's modules_executed slot doubles as its copy counter
        self.nodes[parent_node].modules_executed += 1;
        let node = self.nodes.len();
        self.nodes.push(Node {
            kind: NodeKind::Copy(sg),
            nonempty: false,
            groups_opened: 0,
            modules_executed: 0,
        });
        // O1 is always left-to-right: append as last child. O2 reverses
        // fork groups; O3 reverses loop groups: there the new (serially /
        // latest-created) copy is visited first.
        self.o1.append_last(parent_node);
        match self.spec.subgraph(sg).kind {
            SubgraphKind::Fork => {
                self.o2.append_first(parent_node);
                self.o3.append_last(parent_node);
            }
            SubgraphKind::Loop => {
                self.o2.append_last(parent_node);
                self.o3.append_first(parent_node);
            }
        }
        self.stack.push(Frame {
            node,
            seen_groups: Vec::new(),
            seen_modules: Vec::new(),
        });
        Ok(())
    }

    /// Records the execution of `module` inside the current copy; returns
    /// the new vertex id, already labeled and queryable.
    pub fn exec(&mut self, module: ModuleId) -> Result<RunVertexId, OnlineError> {
        let top = self.top_copy().ok_or(OnlineError::NoOpenCopy)?;
        let node = top.node;
        // the module's home must be this copy's subgraph
        let home = self.spec.hierarchy().dominator_of_vertex(module);
        let here = match self.nodes[node].kind {
            NodeKind::Root => None,
            NodeKind::Copy(c) => Some(c),
            NodeKind::Group(_) => unreachable!(),
        };
        if home != here {
            return Err(OnlineError::WrongHome(module));
        }
        if self.stack.last().unwrap().seen_modules.contains(&module) {
            return Err(OnlineError::DuplicateExec(module));
        }
        self.stack.last_mut().unwrap().seen_modules.push(module);
        self.nodes[node].modules_executed += 1;
        self.nodes[node].nonempty = true;
        let v = RunVertexId(self.vertices.len() as u32);
        self.vertices.push((node, module));
        Ok(v)
    }

    /// Closes the current copy; all of its groups and home modules must
    /// have appeared.
    pub fn end_copy(&mut self) -> Result<(), OnlineError> {
        let top = self.stack.last().ok_or(OnlineError::UnbalancedEnd)?;
        let node = top.node;
        let sg = match self.nodes[node].kind {
            NodeKind::Copy(sg) => sg,
            _ => return Err(OnlineError::UnbalancedEnd),
        };
        let expect_g = self.expected_groups[sg.index()];
        let expect_m = self.expected_modules[sg.index()];
        let n = &self.nodes[node];
        if n.groups_opened != expect_g || n.modules_executed != expect_m {
            return Err(OnlineError::IncompleteCopy {
                missing_groups: expect_g.saturating_sub(n.groups_opened),
                missing_modules: expect_m.saturating_sub(n.modules_executed),
            });
        }
        self.stack.pop();
        Ok(())
    }

    /// Closes the innermost open group (must contain at least one copy).
    pub fn end_group(&mut self) -> Result<(), OnlineError> {
        let top = self.stack.last().ok_or(OnlineError::UnbalancedEnd)?;
        let node = top.node;
        match self.nodes[node].kind {
            NodeKind::Group(_) => {}
            _ => return Err(OnlineError::NoOpenGroup),
        }
        // a group's modules_executed slot counts its copies (see begin_copy)
        if self.nodes[node].modules_executed == 0 {
            return Err(OnlineError::EmptyGroup);
        }
        self.stack.pop();
        Ok(())
    }

    /// Number of module executions so far.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the run is structurally complete (only the root remains
    /// open; the root's own completeness is checked by [`freeze`](Self::freeze)).
    pub fn at_root(&self) -> bool {
        self.stack.len() == 1
    }

    /// The skeleton index queries delegate to.
    pub fn skeleton(&self) -> &S {
        &self.skeleton
    }

    /// The specification this run conforms to.
    pub fn spec(&self) -> &'s Specification {
        self.spec
    }

    /// Reachability between two executed vertices — valid at *any* moment,
    /// including mid-run on intermediate data (reflexive).
    pub fn reaches(&self, u: RunVertexId, v: RunVertexId) -> bool {
        self.reaches_traced(u, v).0
    }

    /// [`reaches`](Self::reaches) plus which path decided it.
    pub fn reaches_traced(&self, u: RunVertexId, v: RunVertexId) -> (bool, QueryPath) {
        let (cu, ou) = self.vertices[u.index()];
        let (cv, ov) = self.vertices[v.index()];
        if cu == cv {
            return (
                self.skeleton.reaches(ou.raw(), ov.raw()),
                QueryPath::Skeleton,
            );
        }
        let b1 = self.o1.before(cu, cv);
        let b2 = self.o2.before(cu, cv);
        let b3 = self.o3.before(cu, cv);
        if b2 != b3 {
            // F−/L− LCA (Lemma 4.5): context decides
            (b1 && !b3, QueryPath::ContextOnly)
        } else {
            (
                self.skeleton.reaches(ou.raw(), ov.raw()),
                QueryPath::Skeleton,
            )
        }
    }

    /// Context plan node of executed vertex `v` (for the live engine's
    /// column store).
    #[inline]
    pub(crate) fn context_node(&self, v: RunVertexId) -> usize {
        self.vertices[v.index()].0
    }

    /// Current `(O1, O2, O3)` tags of plan node `node`'s opening brackets.
    #[inline]
    pub(crate) fn order_tags(&self, node: usize) -> (u64, u64, u64) {
        (self.o1.tag(node), self.o2.tag(node), self.o3.tag(node))
    }

    /// Per-order global-retagging counters — a cached tag column is stale
    /// for order `k` once slot `k` advances.
    #[inline]
    pub(crate) fn rebuild_counts(&self) -> [usize; 3] {
        [self.o1.rebuilds(), self.o2.rebuilds(), self.o3.rebuilds()]
    }

    /// Completes the run and extracts the offline scheme's exact integer
    /// labels (positions in the three orders) plus `n⁺`.
    pub fn freeze(self) -> Result<(Vec<RunLabel>, u32), OnlineError> {
        self.freeze_into_parts().map(|(labels, n_plus, _)| (labels, n_plus))
    }

    /// Whether the run could freeze right now: every scope closed and the
    /// root complete. Non-consuming, so callers (e.g. the fleet's in-place
    /// freeze) can check before committing to a consuming
    /// [`freeze`](Self::freeze).
    pub fn check_complete(&self) -> Result<(), OnlineError> {
        if self.stack.len() != 1 {
            return Err(OnlineError::RunStillOpen);
        }
        let root = &self.nodes[0];
        if root.groups_opened != self.expected_groups[self.spec.subgraph_count()]
            || root.modules_executed != self.expected_modules[self.spec.subgraph_count()]
        {
            return Err(OnlineError::IncompleteCopy {
                missing_groups: self.expected_groups[self.spec.subgraph_count()]
                    .saturating_sub(root.groups_opened),
                missing_modules: self.expected_modules[self.spec.subgraph_count()]
                    .saturating_sub(root.modules_executed),
            });
        }
        Ok(())
    }

    /// [`freeze`](Self::freeze) that also returns the skeleton index — the
    /// zero-re-labeling handoff used by [`crate::live::LiveRun::freeze`] to
    /// assemble a [`crate::engine::QueryEngine`] without rebuilding the
    /// specification labels.
    pub fn freeze_into_parts(self) -> Result<(Vec<RunLabel>, u32, S), OnlineError> {
        self.check_complete()?;
        /// Walks one bracket list and assigns 1-based positions to the
        /// nonempty `+` nodes in visit order.
        fn positions(order: &BracketOrder, nodes: &[Node]) -> (Vec<u32>, u32) {
            let mut owner = vec![u32::MAX; order.list.len()];
            for (node, &e) in order.enter.iter().enumerate() {
                owner[e as usize] = node as u32;
            }
            let mut pos = vec![0u32; nodes.len()];
            let mut counter = 0u32;
            for handle in order.list.iter_order() {
                let node = owner[handle as usize];
                if node == u32::MAX {
                    continue; // a closing bracket
                }
                let node = node as usize;
                let plus = matches!(nodes[node].kind, NodeKind::Root | NodeKind::Copy(_));
                if plus && nodes[node].nonempty {
                    counter += 1;
                    pos[node] = counter;
                }
            }
            (pos, counter)
        }
        let (p1, n1) = positions(&self.o1, &self.nodes);
        let (p2, n2) = positions(&self.o2, &self.nodes);
        let (p3, n3) = positions(&self.o3, &self.nodes);
        debug_assert!(n1 == n2 && n2 == n3);
        let n_plus = n1;
        let labels = self
            .vertices
            .iter()
            .map(|&(node, origin)| RunLabel {
                q1: p1[node],
                q2: p2[node],
                q3: p3[node],
                origin,
            })
            .collect();
        Ok((labels, n_plus, self.skeleton))
    }
}

impl<S: SpecIndex> OnlineLabeler<'_, S> {
    /// Convenience: `begin_copy` + closure + `end_copy`.
    pub fn copy_scope<R>(
        &mut self,
        body: impl FnOnce(&mut Self) -> Result<R, OnlineError>,
    ) -> Result<R, OnlineError> {
        self.begin_copy()?;
        let r = body(self)?;
        self.end_copy()?;
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_model::fixtures::{paper_run, paper_spec, paper_subgraph};
    use wfp_speclabel::{SchemeKind, SpecScheme};

    fn scheme(spec: &Specification) -> SpecScheme {
        SpecScheme::build(SchemeKind::Tcm, spec.graph())
    }

    /// Streams the paper's Figure 3 run and checks the introduction's
    /// queries *mid-run* and the frozen labels afterwards.
    #[test]
    fn paper_run_streams_and_freezes() {
        let spec = paper_spec();
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let f1 = paper_subgraph(&spec, "F1");
        let f2 = paper_subgraph(&spec, "F2");
        let l1 = paper_subgraph(&spec, "L1");
        let l2 = paper_subgraph(&spec, "L2");
        let mut ol = OnlineLabeler::new(&spec, scheme(&spec));

        let a1 = ol.exec(m("a")).unwrap();
        // F1 group with two copies
        ol.begin_group(f1).unwrap();
        ol.begin_copy().unwrap(); // copy A
        ol.begin_group(l2).unwrap();
        ol.begin_copy().unwrap();
        let b1 = ol.exec(m("b")).unwrap();
        let c1 = ol.exec(m("c")).unwrap();
        ol.end_copy().unwrap();

        // mid-run query on intermediate data: b1 ⇝ c1 inside the loop copy
        assert!(ol.reaches(b1, c1));
        assert!(!ol.reaches(c1, b1));
        assert!(ol.reaches(a1, c1));

        ol.begin_copy().unwrap();
        let b2 = ol.exec(m("b")).unwrap();
        let _c2 = ol.exec(m("c")).unwrap();
        ol.end_copy().unwrap();
        ol.end_group().unwrap();
        ol.end_copy().unwrap(); // F1 copy A

        // successive loop copies, decided mid-run
        assert!(ol.reaches(c1, b2));
        assert!(!ol.reaches(b2, c1));

        ol.begin_copy().unwrap(); // F1 copy B
        ol.begin_group(l2).unwrap();
        ol.begin_copy().unwrap();
        let b3 = ol.exec(m("b")).unwrap();
        let c3 = ol.exec(m("c")).unwrap();
        ol.end_copy().unwrap();
        ol.end_group().unwrap();
        ol.end_copy().unwrap();
        ol.end_group().unwrap(); // F1

        // parallel fork copies, decided mid-run
        assert!(!ol.reaches(b1, c3));
        assert!(!ol.reaches(b3, c1));
        let (_, path) = ol.reaches_traced(b1, c3);
        assert_eq!(path, QueryPath::ContextOnly);

        // lower branch
        let d1 = ol.exec(m("d")).unwrap();
        ol.begin_group(l1).unwrap();
        ol.begin_copy().unwrap(); // L1 copy 1
        let e1 = ol.exec(m("e")).unwrap();
        ol.begin_group(f2).unwrap();
        ol.begin_copy().unwrap();
        let fv1 = ol.exec(m("f")).unwrap();
        ol.end_copy().unwrap();
        ol.end_group().unwrap();
        let g1 = ol.exec(m("g")).unwrap();
        ol.end_copy().unwrap();
        ol.begin_copy().unwrap(); // L1 copy 2
        let _e2 = ol.exec(m("e")).unwrap();
        ol.begin_group(f2).unwrap();
        ol.begin_copy().unwrap();
        let fv2 = ol.exec(m("f")).unwrap();
        ol.end_copy().unwrap();
        ol.begin_copy().unwrap();
        let fv3 = ol.exec(m("f")).unwrap();
        ol.end_copy().unwrap();
        ol.end_group().unwrap();
        let _g2 = ol.exec(m("g")).unwrap();
        ol.end_copy().unwrap();
        ol.end_group().unwrap();
        let h1 = ol.exec(m("h")).unwrap();

        assert!(ol.at_root());
        assert!(ol.reaches(fv1, fv2), "earlier loop copy reaches later fork copies");
        assert!(!ol.reaches(fv2, fv3), "parallel fork copies");
        assert!(ol.reaches(d1, h1));
        assert!(!ol.reaches(g1, e1));
        assert!(!ol.reaches(c1, d1), "separate branches (skeleton path)");

        // freezing yields 16 labels with 9 nonempty + nodes, like offline
        let n = ol.vertex_count();
        let (labels, n_plus) = ol.freeze().unwrap();
        assert_eq!(n, 16);
        assert_eq!(labels.len(), 16);
        assert_eq!(n_plus, 9);
    }

    /// The frozen labels answer identically to the offline pipeline over
    /// the full pair matrix (online sibling order = generation order, so
    /// answers — not necessarily raw positions — must coincide).
    #[test]
    fn frozen_labels_match_offline_answers() {
        use crate::label::predicate;
        let spec = paper_spec();
        let run = paper_run(&spec);
        let offline =
            crate::label::LabeledRun::build(&spec, scheme(&spec), &run).unwrap();

        // stream the same structure (see paper_run_streams_and_freezes)
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let f1 = paper_subgraph(&spec, "F1");
        let f2 = paper_subgraph(&spec, "F2");
        let l1 = paper_subgraph(&spec, "L1");
        let l2 = paper_subgraph(&spec, "L2");
        let mut ol = OnlineLabeler::new(&spec, scheme(&spec));
        let mut ids = Vec::new(); // online vertex per offline vertex name
        let push = |ol: &mut OnlineLabeler<SpecScheme>, name: &str, ids: &mut Vec<(String, RunVertexId)>| {
            let v = ol.exec(m(name)).unwrap();
            ids.push((name.to_string(), v));
        };
        push(&mut ol, "a", &mut ids);
        ol.begin_group(f1).unwrap();
        for copies in [2usize, 1] {
            ol.begin_copy().unwrap();
            ol.begin_group(l2).unwrap();
            for _ in 0..copies {
                ol.begin_copy().unwrap();
                push(&mut ol, "b", &mut ids);
                push(&mut ol, "c", &mut ids);
                ol.end_copy().unwrap();
            }
            ol.end_group().unwrap();
            ol.end_copy().unwrap();
        }
        ol.end_group().unwrap();
        push(&mut ol, "d", &mut ids);
        ol.begin_group(l1).unwrap();
        for copies in [1usize, 2] {
            ol.begin_copy().unwrap();
            push(&mut ol, "e", &mut ids);
            ol.begin_group(f2).unwrap();
            for _ in 0..copies {
                ol.begin_copy().unwrap();
                push(&mut ol, "f", &mut ids);
                ol.end_copy().unwrap();
            }
            ol.end_group().unwrap();
            push(&mut ol, "g", &mut ids);
            ol.end_copy().unwrap();
        }
        ol.end_group().unwrap();
        push(&mut ol, "h", &mut ids);

        // live answers match frozen answers match each other for all pairs
        let live: Vec<Vec<bool>> = ids
            .iter()
            .map(|&(_, u)| ids.iter().map(|&(_, v)| ol.reaches(u, v)).collect())
            .collect();
        let (labels, _) = ol.freeze().unwrap();
        let frozen_skeleton = scheme(&spec);
        for (i, &(_, u)) in ids.iter().enumerate() {
            for (j, &(_, v)) in ids.iter().enumerate() {
                let frozen = predicate(&labels[u.index()], &labels[v.index()], &frozen_skeleton);
                assert_eq!(live[i][j], frozen, "({i},{j}) live vs frozen");
            }
        }
        // and the whole relation matches the offline relation as a multiset
        // over (origin-context) structure: compare reachable-pair counts
        let offline_positive: usize = run
            .vertices()
            .map(|u| run.vertices().filter(|&v| offline.reaches(u, v)).count())
            .sum();
        let online_positive: usize = live.iter().map(|r| r.iter().filter(|&&b| b).count()).sum();
        assert_eq!(offline_positive, online_positive);
    }

    #[test]
    fn protocol_violations_are_rejected() {
        let spec = paper_spec();
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let f1 = paper_subgraph(&spec, "F1");
        let l2 = paper_subgraph(&spec, "L2");

        // begin_copy with no group
        let mut ol = OnlineLabeler::new(&spec, scheme(&spec));
        assert_eq!(ol.begin_copy(), Err(OnlineError::NoOpenGroup));

        // group nesting violation: L2 directly under the root
        let mut ol = OnlineLabeler::new(&spec, scheme(&spec));
        assert_eq!(ol.begin_group(l2), Err(OnlineError::WrongNesting(l2)));

        // module executed in a foreign copy: b at the root
        let mut ol = OnlineLabeler::new(&spec, scheme(&spec));
        assert_eq!(ol.exec(m("b")), Err(OnlineError::WrongHome(m("b"))));

        // duplicate execution within a copy
        let mut ol = OnlineLabeler::new(&spec, scheme(&spec));
        ol.exec(m("a")).unwrap();
        assert_eq!(ol.exec(m("a")), Err(OnlineError::DuplicateExec(m("a"))));

        // incomplete copy: F1 copy without its L2 group
        let mut ol = OnlineLabeler::new(&spec, scheme(&spec));
        ol.begin_group(f1).unwrap();
        ol.begin_copy().unwrap();
        assert!(matches!(
            ol.end_copy(),
            Err(OnlineError::IncompleteCopy { .. })
        ));

        // empty group
        let mut ol = OnlineLabeler::new(&spec, scheme(&spec));
        ol.begin_group(f1).unwrap();
        assert_eq!(ol.end_group(), Err(OnlineError::EmptyGroup));

        // freeze with open copies / incomplete root
        let mut ol = OnlineLabeler::new(&spec, scheme(&spec));
        ol.begin_group(f1).unwrap();
        ol.begin_copy().unwrap();
        assert!(matches!(ol.freeze(), Err(OnlineError::RunStillOpen)));
        let ol = OnlineLabeler::new(&spec, scheme(&spec));
        assert!(matches!(ol.freeze(), Err(OnlineError::IncompleteCopy { .. })));
    }
}
