//! Multi-spec serving: a [`ServiceRegistry`] of [`FleetEngine`]s keyed by
//! content-derived spec identity, with a lazy snapshot *directory* and
//! memory-pressure-driven eviction across fleets.
//!
//! A [`FleetEngine`] serves many runs of **one** specification; a
//! provenance service serves many specifications at once (the ROADMAP's
//! "heavy traffic from millions of users, many workflows"). The registry
//! is the layer between:
//!
//! * **identity** — a spec is addressed by [`SpecId`], the FNV-1a hash of
//!   its canonical spec-labeling record (scheme tag + series–parallel
//!   structure, [`snapshot::spec_record_payload`]). The id computed from an
//!   in-memory spec always agrees with one recomputed from a loaded
//!   snapshot, which is what makes manifest/file cross-validation possible;
//! * **routing** — [`answer_batch`](ServiceRegistry::answer_batch) takes
//!   probes tagged `(SpecId, RunId, u, v)`, shards them per fleet, and
//!   returns answers in input order, so mixed-spec traffic is one call;
//! * **persistence** — [`save_dir`](ServiceRegistry::save_dir) writes one
//!   `<specid>.wfps` container per spec plus a versioned, CRC-guarded
//!   `registry.manifest` index ([`write_manifest`]).
//!   [`open_dir`](ServiceRegistry::open_dir) reads *only* the manifest:
//!   each fleet is loaded lazily on its first probe;
//! * **pressure** — a configurable byte budget over the fleets'
//!   [`FleetStats`](crate::FleetStats) memory signal. When resident bytes exceed the budget,
//!   least-recently-used fleets are offloaded to their snapshot (memory or
//!   directory backed) and reload transparently on the next probe.
//!
//! Integrity has the same contract as the rest of the snapshot layer: a
//! truncated or bit-flipped manifest, a forged entry, or a `*.wfps` file
//! that does not hash to its manifest id is a typed error
//! ([`RegistryError`] / [`FormatError`]) — never a panic and never a
//! silently empty registry.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use wfp_graph::{DiGraph, FxHashMap, FxHashSet};
use wfp_model::{RunVertexId, Specification};
use wfp_speclabel::{SchemeKind, SpecScheme};

use crate::fleet::{FleetEngine, FleetError, RunId};
use crate::label::RunLabel;
use crate::live::LiveRun;
use crate::snapshot::{
    self, put_str, put_varint, seg, Cursor, FormatError, SnapshotReader, SnapshotWriter,
};

/// File name of the registry index inside a snapshot directory.
pub const MANIFEST_FILE: &str = "registry.manifest";

/// Version byte of the manifest payload layout (inside the container's
/// own versioned framing). Version 2 adds each entry's snapshot byte
/// size, so [`ServiceRegistry::open_dir`] can seed its budget accounting
/// before the first fault-in; version 1 manifests still read (size 0,
/// reconciled on first load).
pub const MANIFEST_VERSION: u8 = 2;

// ====================================================================
// Spec identity
// ====================================================================

/// Content-derived identity of a served specification: the 64-bit FNV-1a
/// hash of its canonical spec-labeling record (scheme tag + vertex count +
/// edge list, exactly the bytes [`snapshot::spec_record_payload`] writes
/// into every snapshot). Two registrations of the same structure under the
/// same scheme collide on purpose; the same structure under two schemes
/// are two distinct services.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecId(pub u64);

impl SpecId {
    /// The id of `graph` labeled under `kind`.
    pub fn of(kind: SchemeKind, graph: &DiGraph) -> SpecId {
        SpecId(fnv64(&snapshot::spec_record_payload(kind, graph)))
    }

    /// The default snapshot file name for this spec inside a directory:
    /// sixteen lowercase hex digits plus `.wfps`.
    pub fn file_name(self) -> String {
        format!("{self}.wfps")
    }
}

impl std::fmt::Display for SpecId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// 64-bit FNV-1a. Not cryptographic — like the CRCs below, ids detect
/// mix-ups and corruption, not adversaries with write access.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ====================================================================
// Errors
// ====================================================================

/// Failures of the multi-spec registry.
#[derive(Debug)]
pub enum RegistryError {
    /// The spec id was never registered (and is not in the manifest).
    UnknownSpec(SpecId),
    /// The spec id is already registered; a spec/scheme pair is one
    /// service.
    DuplicateSpec(SpecId),
    /// A fleet-level failure, tagged with the fleet's spec.
    Fleet {
        /// The spec whose fleet failed.
        spec: SpecId,
        /// The underlying fleet error.
        error: FleetError,
    },
    /// A snapshot or manifest failed to parse.
    Format(FormatError),
    /// A filesystem operation failed.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The OS error message.
        message: String,
    },
    /// The manifest (or the in-memory store) references a snapshot that
    /// does not exist.
    MissingSnapshot {
        /// The spec whose snapshot is missing.
        spec: SpecId,
        /// The file name the manifest promised.
        file: String,
    },
    /// A loaded `*.wfps` file does not hash to the spec id its manifest
    /// entry (or registration) claims — the directory was reshuffled or
    /// an entry was forged.
    SpecMismatch {
        /// The id the manifest entry claims.
        expected: SpecId,
        /// The id recomputed from the loaded snapshot's content.
        loaded: SpecId,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownSpec(id) => write!(f, "spec {id} is not registered"),
            RegistryError::DuplicateSpec(id) => {
                write!(f, "spec {id} is already registered")
            }
            RegistryError::Fleet { spec, error } => write!(f, "spec {spec}: {error}"),
            RegistryError::Format(e) => write!(f, "snapshot format: {e}"),
            RegistryError::Io { path, message } => {
                write!(f, "i/o on {}: {message}", path.display())
            }
            RegistryError::MissingSnapshot { spec, file } => {
                write!(f, "spec {spec}: snapshot {file} is missing")
            }
            RegistryError::SpecMismatch { expected, loaded } => write!(
                f,
                "snapshot content hashes to spec {loaded}, but the manifest claims {expected}"
            ),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Fleet { error, .. } => Some(error),
            RegistryError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for RegistryError {
    fn from(e: FormatError) -> Self {
        RegistryError::Format(e)
    }
}

// ====================================================================
// Manifest
// ====================================================================

/// One line of the registry manifest: a served spec and the snapshot file
/// that backs it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Content-derived spec identity ([`SpecId::of`]).
    pub id: SpecId,
    /// The skeleton scheme the fleet was built under.
    pub kind: SchemeKind,
    /// Snapshot file name, relative to the directory. Restricted to
    /// `[A-Za-z0-9._-]` with a mandatory `.wfps` suffix and no `..`, so a
    /// forged manifest cannot point outside its directory.
    pub file: String,
    /// Runs the fleet held when the manifest was written (informational —
    /// the snapshot itself is authoritative).
    pub runs: usize,
    /// Size of the snapshot file in bytes when the manifest was written
    /// (v2; zero for v1 manifests). Seeds the registry's pre-load budget
    /// estimate and is reconciled against actual resident bytes on the
    /// first fault-in.
    pub bytes: usize,
}

/// Serializes manifest entries as a standalone snapshot container holding
/// one [`seg::REGISTRY_MANIFEST`] segment — so the manifest inherits the
/// container's magic, version and CRC guards.
pub fn write_manifest(entries: &[ManifestEntry]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(MANIFEST_VERSION);
    put_varint(&mut payload, entries.len() as u64);
    for e in entries {
        payload.extend_from_slice(&e.id.0.to_le_bytes());
        payload.push(snapshot::scheme_tag(e.kind));
        put_str(&mut payload, &e.file);
        put_varint(&mut payload, e.runs as u64);
        put_varint(&mut payload, e.bytes as u64);
    }
    let mut w = SnapshotWriter::new();
    w.push(seg::REGISTRY_MANIFEST, payload);
    w.finish()
}

/// Parses and validates a [`write_manifest`] container: version and CRC
/// checks from the container framing, then per-entry validation (known
/// scheme tag, safe file name, no duplicate ids). Every failure is a typed
/// [`FormatError`].
pub fn read_manifest(bytes: &[u8]) -> Result<Vec<ManifestEntry>, FormatError> {
    let r = SnapshotReader::parse(bytes)?;
    let mut cur = Cursor::new(r.first(seg::REGISTRY_MANIFEST)?);
    let version = cur.u8()?;
    if version != 1 && version != MANIFEST_VERSION {
        return Err(FormatError::UnsupportedVersion(version as u16));
    }
    // each entry costs at least 8 (id) + 1 (tag) + 2 (min file) + 1 (runs)
    let count = cur.guarded_count(12)?;
    let mut entries = Vec::with_capacity(count);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    for _ in 0..count {
        let id = SpecId(cur.u64()?);
        let kind = snapshot::scheme_from_tag(cur.u8()?)?;
        let file = cur.str()?;
        validate_file_name(file)?;
        let runs = cur.varint()?;
        if runs > u32::MAX as u64 {
            return Err(FormatError::Malformed("manifest run count exceeds u32"));
        }
        // v1 predates per-entry sizes; the estimate is reconciled on the
        // first fault-in either way
        let bytes = if version >= 2 { cur.varint()? } else { 0 };
        if !seen.insert(id.0) {
            return Err(FormatError::Malformed("duplicate spec id in manifest"));
        }
        entries.push(ManifestEntry {
            id,
            kind,
            file: file.to_string(),
            runs: runs as usize,
            bytes: bytes as usize,
        });
    }
    cur.finish()?;
    Ok(entries)
}

/// A manifest file name must stay inside its directory and must not
/// collide with the manifest itself: `[A-Za-z0-9._-]+` only (no path
/// separators), no `..`, and a mandatory `.wfps` suffix.
fn validate_file_name(file: &str) -> Result<(), FormatError> {
    let safe = |c: char| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.');
    if file.is_empty() || !file.chars().all(safe) {
        return Err(FormatError::Malformed("unsafe manifest file name"));
    }
    if file.contains("..") {
        return Err(FormatError::Malformed("manifest file name escapes directory"));
    }
    if !file.ends_with(".wfps") || file.len() == ".wfps".len() {
        return Err(FormatError::Malformed("manifest file name is not *.wfps"));
    }
    Ok(())
}

// ====================================================================
// The registry
// ====================================================================

/// Where offloaded fleets park their snapshot bytes.
enum Store {
    /// In-process: eviction keeps the (compact) snapshot in a shared
    /// buffer — the same `Arc` the zero-copy fault-in binds to, so an
    /// evict→reload cycle of an unmodified fleet is a pointer rebind.
    /// The default for registries built with [`ServiceRegistry::new`].
    Memory(FxHashMap<u64, Arc<[u8]>>),
    /// A snapshot directory ([`ServiceRegistry::open_dir`]): eviction
    /// writes the fleet's `*.wfps` back and reload reads it.
    Dir(PathBuf),
}

/// Residency state of one registered spec.
enum State<'s> {
    /// The fleet is in memory and serving.
    Resident {
        fleet: FleetEngine<'s, SpecScheme>,
        graph: DiGraph,
    },
    /// The fleet lives only as snapshot bytes in the backing store; the
    /// next probe reloads it transparently.
    Offloaded,
}

struct Slot<'s> {
    id: SpecId,
    kind: SchemeKind,
    file: String,
    /// Cached run count (kept in sync on every mutation / offload), so
    /// offloaded specs still report their size without a load.
    runs: usize,
    /// Estimated resident bytes of this fleet while offloaded: seeded
    /// from the manifest's snapshot size ([`ManifestEntry::bytes`]) and
    /// reconciled to the fleet's actual resident footprint on every
    /// load/offload — pre-load budget pressure evicts on this number.
    est_bytes: usize,
    /// Whether the resident fleet's *content* (runs, slot states) has
    /// diverged from the snapshot in the backing store. A clean fleet
    /// offloads without re-serializing; decision counters are carried
    /// across separately (`saved_counters`), so probing stays clean.
    dirty: bool,
    /// Per-slot decision counters captured at a clean offload, re-applied
    /// on the next load so counter continuity survives the skipped
    /// serialization.
    saved_counters: Option<Vec<(u64, u64)>>,
    /// The exact buffer a previous fault-in fully validated. When the
    /// next fetch returns this *identical* `Arc` (memory store, clean
    /// cycle), the reload may skip the per-payload CRC pass — rebind, not
    /// re-read. Directory stores drop this on offload: a file can change
    /// underneath us, so it is always re-read and re-checked.
    validated: Option<Arc<[u8]>>,
    /// Logical LRU stamp: higher = more recently used.
    last_used: u64,
    state: State<'s>,
}

/// Aggregate registry accounting. See [`ServiceRegistry::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RegistryStats {
    /// Registered specs (resident + offloaded).
    pub specs: usize,
    /// Specs currently resident in memory.
    pub resident: usize,
    /// Specs currently offloaded to their snapshot.
    pub offloaded: usize,
    /// Bytes held by resident fleets (spec context + run columns, the
    /// [`FleetStats`](crate::FleetStats) memory signal summed across fleets).
    pub resident_bytes: usize,
    /// The configured byte budget, if any.
    pub budget: Option<usize>,
    /// Lifetime offloads (pressure-driven and explicit).
    pub evictions: u64,
    /// Lifetime lazy reloads from the backing snapshot.
    pub lazy_loads: u64,
    /// Lifetime lazy reloads whose packed runs all bound **zero-copy** to
    /// the shared snapshot buffer (no per-word decode) — a subset of
    /// [`lazy_loads`](Self::lazy_loads).
    pub zero_copy_loads: u64,
    /// Lifetime snapshot bytes read (or rebound) by lazy reloads.
    pub reload_bytes: u64,
    /// Lifetime wall-clock milliseconds spent inside lazy reloads
    /// (parse + bind/decode), so benches can attribute reload cost.
    pub decode_ms: f64,
    /// Frozen runs currently serving in bit-packed form, summed over the
    /// resident fleets (see [`ServiceRegistry::set_packed_tier`]).
    pub packed_runs: usize,
    /// Packed runs served zero-copy out of a shared snapshot buffer,
    /// summed over the resident fleets — a subset of
    /// [`packed_runs`](Self::packed_runs).
    pub zero_copy_runs: usize,
}

/// A registry of [`FleetEngine`]s keyed by [`SpecId`] — the multi-spec
/// serving layer. See the [module docs](self).
///
/// The lifetime `'s` bounds the specifications borrowed by in-flight
/// [`LiveRun`]s ([`begin_live`](Self::begin_live)); a registry with no
/// live runs can use any lifetime.
pub struct ServiceRegistry<'s> {
    slots: Vec<Slot<'s>>,
    by_id: FxHashMap<u64, usize>,
    store: Store,
    budget: Option<usize>,
    /// When on, pressure seals a victim's raw runs into packed columns
    /// before resorting to a full offload.
    packed_tier: bool,
    clock: u64,
    evictions: u64,
    lazy_loads: u64,
    zero_copy_loads: u64,
    reload_bytes: u64,
    decode_ms: f64,
}

impl Default for ServiceRegistry<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'s> ServiceRegistry<'s> {
    /// An empty, memory-backed registry with no byte budget.
    pub fn new() -> Self {
        ServiceRegistry {
            slots: Vec::new(),
            by_id: FxHashMap::default(),
            store: Store::Memory(FxHashMap::default()),
            budget: None,
            packed_tier: false,
            clock: 0,
            evictions: 0,
            lazy_loads: 0,
            zero_copy_loads: 0,
            reload_bytes: 0,
            decode_ms: 0.0,
        }
    }

    /// An empty, memory-backed registry holding at most `budget` resident
    /// bytes across all fleets.
    pub fn with_budget(budget: usize) -> Self {
        let mut r = Self::new();
        r.budget = Some(budget);
        r
    }

    /// Opens a snapshot directory written by [`save_dir`](Self::save_dir):
    /// reads **only** the `registry.manifest` index, verifies every
    /// referenced `*.wfps` file exists, and registers each spec as
    /// offloaded — the fleet itself is loaded lazily on its first probe.
    pub fn open_dir(dir: impl Into<PathBuf>, budget: Option<usize>) -> Result<Self, RegistryError> {
        Self::open_dir_filtered(dir, budget, |_| true)
    }

    /// Opens a snapshot directory like [`open_dir`](Self::open_dir), but
    /// registers **only** the manifest entries selected by `keep` — the
    /// shard-construction path for sharded serving: each worker opens the
    /// same directory with `keep = |id| plan.shard_of(id, shards) == shard`
    /// (and its own slice of the byte budget), so every spec is resident
    /// on exactly one shard and the shards never contend for the same
    /// snapshot bytes. Entries filtered out are not verified on disk and
    /// cost nothing.
    pub fn open_dir_filtered(
        dir: impl Into<PathBuf>,
        budget: Option<usize>,
        mut keep: impl FnMut(SpecId) -> bool,
    ) -> Result<Self, RegistryError> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&manifest_path).map_err(|e| RegistryError::Io {
            path: manifest_path.clone(),
            message: e.to_string(),
        })?;
        let entries = read_manifest(&bytes)?;
        let mut slots = Vec::with_capacity(entries.len());
        let mut by_id = FxHashMap::default();
        for e in entries.into_iter().filter(|e| keep(e.id)) {
            if !dir.join(&e.file).is_file() {
                return Err(RegistryError::MissingSnapshot {
                    spec: e.id,
                    file: e.file,
                });
            }
            by_id.insert(e.id.0, slots.len());
            slots.push(Slot {
                id: e.id,
                kind: e.kind,
                file: e.file,
                runs: e.runs,
                // seed the budget estimate from the manifest's snapshot
                // size; the first fault-in reconciles it to the fleet's
                // actual resident footprint
                est_bytes: e.bytes,
                dirty: false,
                saved_counters: None,
                validated: None,
                last_used: 0,
                state: State::Offloaded,
            });
        }
        Ok(ServiceRegistry {
            slots,
            by_id,
            store: Store::Dir(dir),
            budget,
            packed_tier: false,
            clock: 0,
            evictions: 0,
            lazy_loads: 0,
            zero_copy_loads: 0,
            reload_bytes: 0,
            decode_ms: 0.0,
        })
    }

    // ---------------- registration & lookup ----------------

    /// Registers `spec` for serving under scheme `kind`, returning its
    /// content-derived [`SpecId`]. The new fleet starts resident and
    /// empty. Errors with [`RegistryError::DuplicateSpec`] if the same
    /// structure is already served under the same scheme.
    pub fn register_spec(
        &mut self,
        spec: &Specification,
        kind: SchemeKind,
    ) -> Result<SpecId, RegistryError> {
        let id = SpecId::of(kind, spec.graph());
        if self.by_id.contains_key(&id.0) {
            return Err(RegistryError::DuplicateSpec(id));
        }
        let fleet = FleetEngine::for_spec(spec, SpecScheme::build(kind, spec.graph()));
        let idx = self.slots.len();
        self.by_id.insert(id.0, idx);
        self.clock += 1;
        self.slots.push(Slot {
            id,
            kind,
            file: id.file_name(),
            runs: 0,
            est_bytes: 0,
            // nothing in the backing store describes this fleet yet
            dirty: true,
            saved_counters: None,
            validated: None,
            last_used: self.clock,
            state: State::Resident {
                fleet,
                graph: spec.graph().clone(),
            },
        });
        self.enforce_budget(Some(idx))?;
        Ok(id)
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no spec is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True if `spec` is registered (resident or offloaded).
    pub fn contains(&self, spec: SpecId) -> bool {
        self.by_id.contains_key(&spec.0)
    }

    /// Registered spec ids, in registration (manifest) order.
    pub fn spec_ids(&self) -> impl Iterator<Item = SpecId> + '_ {
        self.slots.iter().map(|s| s.id)
    }

    /// The scheme `spec` is served under.
    pub fn scheme(&self, spec: SpecId) -> Option<SchemeKind> {
        self.by_id.get(&spec.0).map(|&i| self.slots[i].kind)
    }

    /// True if `spec` is currently resident in memory.
    pub fn resident(&self, spec: SpecId) -> bool {
        self.by_id
            .get(&spec.0)
            .is_some_and(|&i| matches!(self.slots[i].state, State::Resident { .. }))
    }

    /// Runs registered under `spec` (cached across offload, so this never
    /// forces a load).
    pub fn run_count(&self, spec: SpecId) -> Result<usize, RegistryError> {
        let idx = self.index_of(spec)?;
        Ok(match &self.slots[idx].state {
            State::Resident { fleet, .. } => fleet.run_count(),
            State::Offloaded => self.slots[idx].runs,
        })
    }

    /// The resident fleet for `spec`, if it is resident *now*. Never
    /// forces a load — use [`ensure_resident`](Self::ensure_resident)
    /// first to probe through this accessor.
    pub fn fleet(&self, spec: SpecId) -> Option<&FleetEngine<'s, SpecScheme>> {
        match &self.slots[*self.by_id.get(&spec.0)?].state {
            State::Resident { fleet, .. } => Some(fleet),
            State::Offloaded => None,
        }
    }

    // ---------------- run lifecycle, routed by spec ----------------

    /// Registers a frozen run (its offline labels) under `spec`,
    /// reloading the fleet first if it was offloaded.
    pub fn register_labels(
        &mut self,
        spec: SpecId,
        labels: &[RunLabel],
    ) -> Result<RunId, RegistryError> {
        let idx = self.index_of(spec)?;
        self.touch(idx)?;
        let (run, count) = {
            let (fleet, _) = self.resident_mut(idx);
            (fleet.register_labels(labels), fleet.run_count())
        };
        self.slots[idx].runs = count;
        self.slots[idx].dirty = true;
        self.enforce_budget(Some(idx))?;
        Ok(run)
    }

    /// Starts a live (query-while-running) run under `spec`. The borrowed
    /// `spec_ref` must be the same structure the id was registered for —
    /// this is checked by content hash, so a mixed-up specification is a
    /// typed [`RegistryError::SpecMismatch`], not silent mislabeling.
    pub fn begin_live(
        &mut self,
        spec: SpecId,
        spec_ref: &'s Specification,
    ) -> Result<RunId, RegistryError> {
        let idx = self.index_of(spec)?;
        let offered = SpecId::of(self.slots[idx].kind, spec_ref.graph());
        if offered != spec {
            return Err(RegistryError::SpecMismatch {
                expected: spec,
                loaded: offered,
            });
        }
        self.touch(idx)?;
        let (run, count) = {
            let (fleet, _) = self.resident_mut(idx);
            (fleet.begin_live(spec_ref), fleet.run_count())
        };
        self.slots[idx].runs = count;
        self.slots[idx].dirty = true;
        Ok(run)
    }

    /// The in-flight labeler of a live run (to feed execution events).
    /// The fleet is pinned resident while live runs exist — eviction
    /// refuses in-flight state — so this never triggers a load.
    pub fn live_mut(
        &mut self,
        spec: SpecId,
        run: RunId,
    ) -> Result<&mut LiveRun<'s, SpecScheme>, RegistryError> {
        let idx = self.index_of(spec)?;
        self.clock += 1;
        self.slots[idx].last_used = self.clock;
        let (fleet, _) = self.resident_or_err(idx, run)?;
        fleet
            .live_mut(run)
            .map_err(|error| RegistryError::Fleet { spec, error })
    }

    /// Freezes a completed live run in place (same [`RunId`], labels
    /// extracted in execution order).
    pub fn freeze_run(&mut self, spec: SpecId, run: RunId) -> Result<(), RegistryError> {
        let idx = self.index_of(spec)?;
        let (fleet, _) = self.resident_or_err(idx, run)?;
        fleet
            .freeze_run(run)
            .map_err(|error| RegistryError::Fleet { spec, error })?;
        self.slots[idx].dirty = true;
        Ok(())
    }

    // ---------------- probes ----------------

    /// One reachability probe: does vertex `u` reach `v` in run `run` of
    /// `spec`? Reloads the fleet lazily if it was offloaded.
    pub fn answer(
        &mut self,
        spec: SpecId,
        run: RunId,
        u: RunVertexId,
        v: RunVertexId,
    ) -> Result<bool, RegistryError> {
        let idx = self.index_of(spec)?;
        self.touch(idx)?;
        let answer = {
            let (fleet, _) = self.resident_mut(idx);
            fleet
                .answer(run, u, v)
                .map_err(|error| RegistryError::Fleet { spec, error })
        };
        // the budget is re-enforced even when the probe itself failed: the
        // lazy load above may have pushed residency over budget, and a
        // caller retrying bad probes must not pin the overshoot
        self.enforce_budget(Some(idx))?;
        answer
    }

    /// Mixed-spec batch evaluation: probes are `(spec, run, u, v)` and may
    /// interleave specs freely. Internally the batch is sharded per fleet
    /// (in first-occurrence order) and each shard flows through that
    /// fleet's run-sharded kernel; answers return **in input order**
    /// regardless of sharding. Offloaded fleets are lazily reloaded as
    /// their first probe arrives, and the byte budget is re-enforced after
    /// each fleet's shard (the fleet currently answering is never its own
    /// victim).
    ///
    /// Any unknown spec id, unknown run id, or out-of-range vertex fails
    /// the batch as a whole.
    pub fn answer_batch(
        &mut self,
        probes: &[(SpecId, RunId, RunVertexId, RunVertexId)],
    ) -> Result<Vec<bool>, RegistryError> {
        // resolve every spec id up front: a batch with one bad id is
        // rejected before any work
        // per-fleet shard: the sub-batch plus each probe's input position
        type Shard = (Vec<(RunId, RunVertexId, RunVertexId)>, Vec<usize>);
        let mut order: Vec<usize> = Vec::new();
        let mut shards: FxHashMap<usize, Shard> = FxHashMap::default();
        for (pos, &(spec, run, u, v)) in probes.iter().enumerate() {
            let idx = self.index_of(spec)?;
            let (sub, positions) = shards.entry(idx).or_insert_with(|| {
                order.push(idx);
                (Vec::new(), Vec::new())
            });
            sub.push((run, u, v));
            positions.push(pos);
        }
        let mut out = vec![false; probes.len()];
        for idx in order {
            let (sub, positions) = shards.remove(&idx).expect("sharded above");
            self.touch(idx)?;
            let spec = self.slots[idx].id;
            let answers = {
                let (fleet, _) = self.resident_mut(idx);
                fleet
                    .answer_batch(&sub)
                    .map_err(|error| RegistryError::Fleet { spec, error })
            };
            // enforce the budget before propagating a shard failure, so a
            // mid-batch error never leaves the lazily-loaded fleet pinned
            // over budget (see `answer`)
            self.enforce_budget(Some(idx))?;
            for (pos, a) in positions.into_iter().zip(answers?) {
                out[pos] = a;
            }
        }
        Ok(out)
    }

    /// [`answer_batch`](Self::answer_batch) with each fleet's shard fanned
    /// out over up to `threads` worker threads
    /// ([`FleetEngine::answer_batch_parallel`]); `threads <= 1` falls back
    /// to the sequential path. Answers are byte-identical to
    /// [`answer_batch`](Self::answer_batch), in input order — this is the
    /// wide-batch drive path of the [`serve`](mod@crate::serve) dispatch loop.
    pub fn answer_batch_parallel(
        &mut self,
        probes: &[(SpecId, RunId, RunVertexId, RunVertexId)],
        threads: usize,
    ) -> Result<Vec<bool>, RegistryError> {
        if threads <= 1 {
            return self.answer_batch(probes);
        }
        type Shard = (Vec<(RunId, RunVertexId, RunVertexId)>, Vec<usize>);
        let mut order: Vec<usize> = Vec::new();
        let mut shards: FxHashMap<usize, Shard> = FxHashMap::default();
        for (pos, &(spec, run, u, v)) in probes.iter().enumerate() {
            let idx = self.index_of(spec)?;
            let (sub, positions) = shards.entry(idx).or_insert_with(|| {
                order.push(idx);
                (Vec::new(), Vec::new())
            });
            sub.push((run, u, v));
            positions.push(pos);
        }
        let mut out = vec![false; probes.len()];
        for idx in order {
            let (sub, positions) = shards.remove(&idx).expect("sharded above");
            self.touch(idx)?;
            let spec = self.slots[idx].id;
            let answers = {
                let (fleet, _) = self.resident_mut(idx);
                fleet
                    .answer_batch_parallel(&sub, threads)
                    .map_err(|error| RegistryError::Fleet { spec, error })
            };
            self.enforce_budget(Some(idx))?;
            for (pos, a) in positions.into_iter().zip(answers?) {
                out[pos] = a;
            }
        }
        Ok(out)
    }

    /// Forces `spec` resident (the lazy load a first probe would do),
    /// then re-enforces the budget against the *other* fleets.
    pub fn ensure_resident(&mut self, spec: SpecId) -> Result<(), RegistryError> {
        let idx = self.index_of(spec)?;
        self.touch(idx)?;
        self.enforce_budget(Some(idx))
    }

    // ---------------- eviction & budget ----------------

    /// The configured byte budget.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Reconfigures the byte budget and immediately enforces it (so
    /// shrinking the budget offloads least-recently-used fleets now).
    pub fn set_budget(&mut self, budget: Option<usize>) -> Result<(), RegistryError> {
        self.budget = budget;
        self.enforce_budget(None)
    }

    /// Turns the packed middle tier on or off (default: off). With the
    /// tier on, budget pressure first seals the LRU victim's raw frozen
    /// runs into bit-packed columns ([`FleetEngine::seal_packed_all`]) —
    /// shrinking it in place while it keeps serving — and only offloads
    /// the fleet entirely if the registry is still over budget once the
    /// victim is all-packed. Turning the tier on does not re-enforce the
    /// budget by itself; the next probe (or [`set_budget`](Self::set_budget))
    /// does.
    pub fn set_packed_tier(&mut self, on: bool) {
        self.packed_tier = on;
    }

    /// Seals every raw frozen run of `spec` into bit-packed columns in
    /// place ([`FleetEngine::seal_packed_all`]), reloading the fleet first
    /// if it was offloaded. Returns the number of runs sealed. The next
    /// offload re-serializes (the fleet now diverges from its stored
    /// snapshot), after which reloads ride the aligned zero-copy path.
    pub fn seal_packed(&mut self, spec: SpecId) -> Result<usize, RegistryError> {
        let idx = self.index_of(spec)?;
        self.touch(idx)?;
        let sealed = {
            let (fleet, _) = self.resident_mut(idx);
            fleet.seal_packed_all()
        };
        if sealed > 0 {
            self.slots[idx].dirty = true;
        }
        self.enforce_budget(Some(idx))?;
        Ok(sealed)
    }

    /// Bytes currently held by resident fleets (the [`FleetStats`] spec +
    /// run memory signal, summed).
    ///
    /// [`FleetStats`]: crate::fleet::FleetStats
    pub fn resident_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match &s.state {
                State::Resident { fleet, .. } => {
                    let st = fleet.stats();
                    st.spec_bytes + st.run_bytes
                }
                State::Offloaded => 0,
            })
            .sum()
    }

    /// Explicitly offloads `spec` to its snapshot (memory store or
    /// directory). A fleet with in-flight live runs refuses with
    /// [`FleetError::StillLive`]; an already-offloaded spec is a no-op.
    pub fn evict(&mut self, spec: SpecId) -> Result<(), RegistryError> {
        let idx = self.index_of(spec)?;
        self.offload(idx)
    }

    /// Aggregate accounting across the registry.
    pub fn stats(&self) -> RegistryStats {
        let resident = self
            .slots
            .iter()
            .filter(|s| matches!(s.state, State::Resident { .. }))
            .count();
        let (packed_runs, zero_copy_runs) = self
            .slots
            .iter()
            .map(|s| match &s.state {
                State::Resident { fleet, .. } => {
                    let st = fleet.stats();
                    (st.packed, st.zero_copy)
                }
                State::Offloaded => (0, 0),
            })
            .fold((0, 0), |(p, z), (dp, dz)| (p + dp, z + dz));
        RegistryStats {
            specs: self.slots.len(),
            resident,
            offloaded: self.slots.len() - resident,
            resident_bytes: self.resident_bytes(),
            budget: self.budget,
            evictions: self.evictions,
            lazy_loads: self.lazy_loads,
            packed_runs,
            zero_copy_loads: self.zero_copy_loads,
            reload_bytes: self.reload_bytes,
            decode_ms: self.decode_ms,
            zero_copy_runs,
        }
    }

    // ---------------- persistence ----------------

    /// Writes the whole registry as a snapshot directory: one `*.wfps`
    /// container per spec (resident fleets are serialized; offloaded
    /// fleets are copied from their backing snapshot) plus the
    /// [`MANIFEST_FILE`] index. Fails with [`FleetError::StillLive`] if
    /// any resident fleet has an in-flight run.
    pub fn save_dir(&self, dir: &Path) -> Result<(), RegistryError> {
        std::fs::create_dir_all(dir).map_err(|e| RegistryError::Io {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let mut entries = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let (bytes, runs): (Arc<[u8]>, usize) = match &slot.state {
                State::Resident { fleet, graph } => (
                    Arc::from(fleet.save(graph).map_err(|error| RegistryError::Fleet {
                        spec: slot.id,
                        error,
                    })?),
                    fleet.run_count(),
                ),
                State::Offloaded => (self.fetch(slot)?, slot.runs),
            };
            let path = dir.join(&slot.file);
            std::fs::write(&path, &bytes).map_err(|e| RegistryError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            entries.push(ManifestEntry {
                id: slot.id,
                kind: slot.kind,
                file: slot.file.clone(),
                runs,
                bytes: bytes.len(),
            });
        }
        let manifest_path = dir.join(MANIFEST_FILE);
        std::fs::write(&manifest_path, write_manifest(&entries)).map_err(|e| {
            RegistryError::Io {
                path: manifest_path.clone(),
                message: e.to_string(),
            }
        })
    }

    // ---------------- internals ----------------

    fn index_of(&self, spec: SpecId) -> Result<usize, RegistryError> {
        self.by_id
            .get(&spec.0)
            .copied()
            .ok_or(RegistryError::UnknownSpec(spec))
    }

    /// The resident fleet at `idx`; panics if it is not resident — callers
    /// go through [`touch`](Self::touch) first, which establishes the
    /// invariant.
    fn resident_mut(&mut self, idx: usize) -> (&mut FleetEngine<'s, SpecScheme>, &DiGraph) {
        match &mut self.slots[idx].state {
            State::Resident { fleet, graph } => (fleet, graph),
            State::Offloaded => unreachable!("touched slot must be resident"),
        }
    }

    /// Like [`resident_mut`](Self::resident_mut) for operations on live
    /// runs, which must not trigger a load (an offloaded fleet cannot hold
    /// live state, so the run id is reported as not-live).
    fn resident_or_err(
        &mut self,
        idx: usize,
        run: RunId,
    ) -> Result<(&mut FleetEngine<'s, SpecScheme>, &DiGraph), RegistryError> {
        let spec = self.slots[idx].id;
        match &mut self.slots[idx].state {
            State::Resident { fleet, graph } => Ok((fleet, graph)),
            State::Offloaded => Err(RegistryError::Fleet {
                spec,
                error: FleetError::NotLive(run),
            }),
        }
    }

    /// Stamps `idx` most-recently-used and makes it resident, lazily
    /// loading (and cross-validating) its snapshot if it was offloaded.
    ///
    /// The LRU stamp lands only once the slot is known resident: a failed
    /// lazy load (missing snapshot, spec mismatch) must not reshuffle the
    /// recency order the next eviction decision reads.
    fn touch(&mut self, idx: usize) -> Result<(), RegistryError> {
        if matches!(self.slots[idx].state, State::Resident { .. }) {
            self.clock += 1;
            self.slots[idx].last_used = self.clock;
            return Ok(());
        }
        let bytes = self.fetch(&self.slots[idx])?;
        // with the snapshot bytes in hand, make room *before* the fleet
        // faults in, using its size estimate (manifest-seeded, reconciled
        // on every load/offload): the LRU byte math must see the incoming
        // load, not discover it afterwards — and a fetch that failed above
        // never evicted anyone
        self.reserve(idx)?;
        // pointer identity with a buffer this registry fully validated
        // earlier attests the content unchanged, so the reload may skip
        // the per-payload checksum pass and just rebind
        let trusted = self.slots[idx]
            .validated
            .as_ref()
            .is_some_and(|v| Arc::ptr_eq(v, &bytes));
        let started = Instant::now();
        let (fleet, graph, profile) = if trusted {
            FleetEngine::load_shared_trusted(Arc::clone(&bytes))?
        } else {
            FleetEngine::load_shared(Arc::clone(&bytes))?
        };
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        let loaded = SpecId::of(fleet.context().skeleton().kind(), &graph);
        let slot = &mut self.slots[idx];
        if loaded != slot.id {
            return Err(RegistryError::SpecMismatch {
                expected: slot.id,
                loaded,
            });
        }
        if fleet.context().skeleton().kind() != slot.kind {
            // reachable only via a forged manifest: the id hashes the
            // snapshot's own tag, so id can match while the manifest lies
            // about the scheme
            return Err(RegistryError::Format(FormatError::Malformed(
                "manifest scheme tag does not match snapshot",
            )));
        }
        if let Some(saved) = slot.saved_counters.take() {
            fleet.restore_counters(&saved);
        }
        slot.runs = fleet.run_count();
        let st = fleet.stats();
        slot.est_bytes = st.spec_bytes + st.run_bytes;
        slot.state = State::Resident { fleet, graph };
        slot.validated = Some(Arc::clone(&bytes));
        slot.dirty = false;
        self.lazy_loads += 1;
        self.reload_bytes += profile.bytes as u64;
        self.decode_ms += elapsed_ms;
        if profile.zero_copy_runs > 0 && profile.decoded_runs == 0 {
            self.zero_copy_loads += 1;
        }
        self.clock += 1;
        self.slots[idx].last_used = self.clock;
        Ok(())
    }

    /// Reads `slot`'s snapshot bytes from the backing store. The memory
    /// store hands out its shared buffer (preserving pointer identity for
    /// the trusted-rebind check in [`touch`](Self::touch)); the directory
    /// store reads the file into a fresh shared allocation.
    fn fetch(&self, slot: &Slot<'s>) -> Result<Arc<[u8]>, RegistryError> {
        match &self.store {
            Store::Memory(map) => {
                map.get(&slot.id.0)
                    .cloned()
                    .ok_or_else(|| RegistryError::MissingSnapshot {
                        spec: slot.id,
                        file: slot.file.clone(),
                    })
            }
            Store::Dir(dir) => {
                let path = dir.join(&slot.file);
                std::fs::read(&path).map(Arc::from).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::NotFound {
                        RegistryError::MissingSnapshot {
                            spec: slot.id,
                            file: slot.file.clone(),
                        }
                    } else {
                        RegistryError::Io {
                            path,
                            message: e.to_string(),
                        }
                    }
                })
            }
        }
    }

    /// Snapshots the fleet at `idx` into the backing store and drops it
    /// from memory. No-op if already offloaded.
    ///
    /// A *clean* fleet (`dirty == false`: content still matches its stored
    /// snapshot) skips serialization entirely — only its probe counters
    /// are carried across in `saved_counters`, and the later fault-in is a
    /// checksum (or, for the memory store, a pointer-identity rebind) of
    /// the bytes already in the store.
    fn offload(&mut self, idx: usize) -> Result<(), RegistryError> {
        let spec = self.slots[idx].id;
        if matches!(self.slots[idx].state, State::Offloaded) {
            return Ok(());
        }
        if !self.slots[idx].dirty {
            let slot = &mut self.slots[idx];
            let State::Resident { fleet, .. } = &slot.state else {
                unreachable!("checked resident above");
            };
            let st = fleet.stats();
            slot.saved_counters = Some(fleet.slot_counters());
            slot.runs = fleet.run_count();
            slot.est_bytes = st.spec_bytes + st.run_bytes;
            if matches!(self.store, Store::Dir(_)) {
                // a directory can change under us between offload and
                // reload; drop the attestation so the fault-in re-reads
                // and re-checksums the file
                slot.validated = None;
            }
            slot.state = State::Offloaded;
            self.evictions += 1;
            return Ok(());
        }
        let (bytes, runs, est) = {
            let State::Resident { fleet, graph } = &self.slots[idx].state else {
                unreachable!("checked resident above");
            };
            let st = fleet.stats();
            let bytes: Arc<[u8]> = Arc::from(
                fleet
                    .save(graph)
                    .map_err(|error| RegistryError::Fleet { spec, error })?,
            );
            (bytes, fleet.run_count(), st.spec_bytes + st.run_bytes)
        };
        match &mut self.store {
            Store::Memory(map) => {
                map.insert(spec.0, Arc::clone(&bytes));
                // our own serialization just went in: the next fault-in of
                // this exact buffer may skip the per-payload checksum pass
                self.slots[idx].validated = Some(bytes);
            }
            Store::Dir(dir) => {
                let path = dir.join(&self.slots[idx].file);
                std::fs::write(&path, &bytes).map_err(|e| RegistryError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
                self.slots[idx].validated = None;
            }
        }
        let slot = &mut self.slots[idx];
        slot.runs = runs;
        slot.est_bytes = est;
        slot.dirty = false;
        slot.saved_counters = None;
        slot.state = State::Offloaded;
        self.evictions += 1;
        Ok(())
    }

    /// While resident bytes exceed the budget, offload the
    /// least-recently-used evictable fleet. `keep` (the fleet answering
    /// the current probe) and fleets with live runs are never victims; if
    /// only those remain, the registry stays over budget rather than
    /// failing — pressure is best-effort, correctness is not.
    ///
    /// With the packed tier on ([`set_packed_tier`](Self::set_packed_tier)),
    /// a victim holding raw frozen runs is first sealed packed in place —
    /// a middle tier between fully resident and offloaded — and only an
    /// all-packed victim is dropped to its snapshot.
    fn enforce_budget(&mut self, keep: Option<usize>) -> Result<(), RegistryError> {
        self.pressure(keep, 0)
    }

    /// Makes room for the offloaded fleet at `idx` *before* it faults in:
    /// budget pressure is applied against the slot's size estimate so the
    /// eviction decision happens on the corrected byte math, not after the
    /// load has already overshot.
    fn reserve(&mut self, idx: usize) -> Result<(), RegistryError> {
        let extra = self.slots[idx].est_bytes;
        self.pressure(Some(idx), extra)
    }

    /// [`enforce_budget`](Self::enforce_budget) generalized over `extra`
    /// incoming bytes that are not resident yet (see
    /// [`reserve`](Self::reserve)).
    fn pressure(&mut self, keep: Option<usize>, extra: usize) -> Result<(), RegistryError> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        loop {
            if self.resident_bytes().saturating_add(extra) <= budget {
                return Ok(());
            }
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    Some(*i) != keep
                        && match &s.state {
                            State::Resident { fleet, .. } => fleet.stats().live == 0,
                            State::Offloaded => false,
                        }
                })
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            let Some(i) = victim else {
                return Ok(());
            };
            if self.packed_tier {
                if let State::Resident { fleet, .. } = &mut self.slots[i].state {
                    if fleet.seal_packed_all() > 0 {
                        // the victim shrank in place (and now diverges
                        // from its stored snapshot); re-check the budget
                        // before deciding whether it must leave memory too
                        self.slots[i].dirty = true;
                        continue;
                    }
                }
            }
            self.offload(i)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use crate::label::LabeledRun;
    use wfp_model::fixtures::{paper_run, paper_spec};

    /// Three distinct services off one structure: the scheme tag is part
    /// of the content hash, so one spec under three schemes is three ids.
    const KINDS: [SchemeKind; 3] = [SchemeKind::Tcm, SchemeKind::Bfs, SchemeKind::Dfs];

    fn labels(spec: &Specification, kind: SchemeKind) -> Vec<RunLabel> {
        let run = paper_run(spec);
        LabeledRun::build(spec, SpecScheme::build(kind, spec.graph()), &run)
            .unwrap()
            .labels()
            .to_vec()
    }

    /// A registry of the paper spec under `KINDS`, two frozen runs each,
    /// plus the per-scheme oracle engines and the spec ids.
    fn build_registry(
        spec: &Specification,
        budget: Option<usize>,
    ) -> (
        ServiceRegistry<'static>,
        Vec<SpecId>,
        Vec<QueryEngine<SpecScheme>>,
    ) {
        let mut reg = ServiceRegistry::new();
        reg.set_budget(budget).unwrap();
        let mut ids = Vec::new();
        let mut oracles = Vec::new();
        for &kind in &KINDS {
            let id = reg.register_spec(spec, kind).unwrap();
            let l = labels(spec, kind);
            for _ in 0..2 {
                reg.register_labels(id, &l).unwrap();
            }
            oracles.push(QueryEngine::from_labels(
                &l,
                SpecScheme::build(kind, spec.graph()),
            ));
            ids.push(id);
        }
        (reg, ids, oracles)
    }

    fn mixed_probes(
        ids: &[SpecId],
        n: usize,
    ) -> Vec<(SpecId, RunId, RunVertexId, RunVertexId)> {
        let mut probes = Vec::new();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                for (i, &id) in ids.iter().enumerate() {
                    probes.push((
                        id,
                        RunId((u as usize + i) as u32 % 2),
                        RunVertexId(u),
                        RunVertexId(v),
                    ));
                }
            }
        }
        probes
    }

    fn expected(
        probes: &[(SpecId, RunId, RunVertexId, RunVertexId)],
        ids: &[SpecId],
        oracles: &[QueryEngine<SpecScheme>],
    ) -> Vec<bool> {
        probes
            .iter()
            .map(|&(id, _, u, v)| {
                let which = ids.iter().position(|&i| i == id).unwrap();
                oracles[which].answer(u, v)
            })
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("wfp-registry-tests")
            .join(format!("{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spec_id_is_content_derived() {
        let spec = paper_spec();
        let a = SpecId::of(SchemeKind::Tcm, spec.graph());
        let b = SpecId::of(SchemeKind::Tcm, spec.graph());
        assert_eq!(a, b, "same content, same id");
        let c = SpecId::of(SchemeKind::Bfs, spec.graph());
        assert_ne!(a, c, "scheme tag is part of the identity");
        assert_eq!(a.file_name(), format!("{a}.wfps"));
        assert_eq!(format!("{a}").len(), 16);
    }

    #[test]
    fn duplicate_and_unknown_spec_are_typed_errors() {
        let spec = paper_spec();
        let (mut reg, ids, _) = build_registry(&spec, None);
        assert!(matches!(
            reg.register_spec(&spec, KINDS[0]),
            Err(RegistryError::DuplicateSpec(id)) if id == ids[0]
        ));
        let bogus = SpecId(0xDEAD_BEEF);
        assert!(matches!(
            reg.answer(bogus, RunId(0), RunVertexId(0), RunVertexId(0)),
            Err(RegistryError::UnknownSpec(id)) if id == bogus
        ));
        // one bad spec id fails a mixed batch as a whole
        let mut probes = mixed_probes(&ids, 3);
        probes.push((bogus, RunId(0), RunVertexId(0), RunVertexId(0)));
        assert!(matches!(
            reg.answer_batch(&probes),
            Err(RegistryError::UnknownSpec(_))
        ));
    }

    #[test]
    fn budget_zero_serves_correctly_with_constant_churn() {
        let spec = paper_spec();
        let (mut reg, ids, oracles) = build_registry(&spec, Some(0));
        let n = paper_run(&spec).vertex_count();
        let probes = mixed_probes(&ids, n);
        let want = expected(&probes, &ids, &oracles);
        assert_eq!(reg.answer_batch(&probes).unwrap(), want);
        let stats = reg.stats();
        // budget 0: at most the last-served fleet stays resident (it is
        // never its own victim), everything else was pushed out
        assert!(stats.resident <= 1, "resident={}", stats.resident);
        assert!(stats.evictions >= 2);
        assert!(stats.lazy_loads >= 2);
        // and a second pass still answers identically
        assert_eq!(reg.answer_batch(&probes).unwrap(), want);
    }

    #[test]
    fn budget_smaller_than_one_fleet_keeps_the_serving_fleet() {
        let spec = paper_spec();
        let (mut reg, ids, _) = build_registry(&spec, Some(1));
        reg.answer(ids[0], RunId(0), RunVertexId(0), RunVertexId(1))
            .unwrap();
        assert!(reg.resident(ids[0]), "the serving fleet is never evicted");
        assert!(!reg.resident(ids[1]) && !reg.resident(ids[2]));
        // serving another spec displaces the previous one
        reg.answer(ids[1], RunId(0), RunVertexId(0), RunVertexId(1))
            .unwrap();
        assert!(reg.resident(ids[1]));
        assert!(!reg.resident(ids[0]));
    }

    #[test]
    fn exact_fit_budget_evicts_nothing() {
        let spec = paper_spec();
        let (mut reg, _, _) = build_registry(&spec, None);
        let fit = reg.resident_bytes();
        reg.set_budget(Some(fit)).unwrap();
        let stats = reg.stats();
        assert_eq!(stats.resident, 3, "<= budget is within budget");
        assert_eq!(stats.evictions, 0);
        // one byte less forces exactly one eviction
        reg.set_budget(Some(fit - 1)).unwrap();
        assert_eq!(reg.stats().resident, 2);
        assert_eq!(reg.stats().evictions, 1);
    }

    #[test]
    fn eviction_order_is_least_recently_used() {
        let spec = paper_spec();
        let (mut reg, ids, _) = build_registry(&spec, None);
        // recency: ids[1] oldest, then ids[2], then ids[0]
        for &i in &[1usize, 2, 0] {
            reg.answer(ids[i], RunId(0), RunVertexId(0), RunVertexId(1))
                .unwrap();
        }
        let total = reg.resident_bytes();
        reg.set_budget(Some(total - 1)).unwrap();
        assert!(!reg.resident(ids[1]), "LRU victim first");
        assert!(reg.resident(ids[2]) && reg.resident(ids[0]));
        let total = reg.resident_bytes();
        reg.set_budget(Some(total - 1)).unwrap();
        assert!(!reg.resident(ids[2]), "next LRU victim");
        assert!(reg.resident(ids[0]));
    }

    #[test]
    fn packed_tier_seals_the_victim_before_offloading_it() {
        let spec = paper_spec();
        let (mut reg, ids, oracles) = build_registry(&spec, None);
        reg.set_packed_tier(true);
        assert_eq!(reg.stats().packed_runs, 0);
        // recency: ids[0] oldest — the first pressure victim
        for &i in &[0usize, 1, 2] {
            reg.answer(ids[i], RunId(0), RunVertexId(0), RunVertexId(1))
                .unwrap();
        }
        let total = reg.resident_bytes();
        // one byte of pressure: the LRU victim packs in place and keeps
        // serving instead of leaving memory
        reg.set_budget(Some(total - 1)).unwrap();
        let stats = reg.stats();
        assert!(reg.resident(ids[0]), "packing satisfied the pressure");
        assert_eq!(stats.resident, 3);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.packed_runs, 2, "both of the victim's runs sealed");
        assert!(stats.resident_bytes < total);

        // the packed representation answers identically
        let n = paper_run(&spec).vertex_count();
        let probes = mixed_probes(&ids, n);
        let want = expected(&probes, &ids, &oracles);
        assert_eq!(reg.answer_batch(&probes).unwrap(), want);

        // pressure packing alone cannot satisfy: all-packed victims fall
        // back to a real offload, and reloads still answer identically
        reg.set_budget(Some(0)).unwrap();
        let stats = reg.stats();
        assert!(stats.resident <= 1, "resident={}", stats.resident);
        assert!(stats.evictions >= 2);
        assert_eq!(reg.answer_batch(&probes).unwrap(), want);
    }

    #[test]
    fn stats_stay_correct_across_evict_and_reload() {
        let spec = paper_spec();
        let (mut reg, ids, oracles) = build_registry(&spec, None);
        let n = paper_run(&spec).vertex_count();
        let probes = mixed_probes(&ids, n);
        let want = expected(&probes, &ids, &oracles);
        assert_eq!(reg.answer_batch(&probes).unwrap(), want);

        for &id in &ids {
            assert_eq!(reg.run_count(id).unwrap(), 2);
            reg.evict(id).unwrap();
            assert!(!reg.resident(id));
            assert_eq!(reg.run_count(id).unwrap(), 2, "count survives offload");
        }
        let stats = reg.stats();
        assert_eq!(stats.offloaded, 3);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.evictions, 3);
        // evicting an offloaded spec is a no-op
        reg.evict(ids[0]).unwrap();
        assert_eq!(reg.stats().evictions, 3);

        // transparent reload: same answers, same per-fleet accounting
        assert_eq!(reg.answer_batch(&probes).unwrap(), want);
        let stats = reg.stats();
        assert_eq!(stats.resident, 3);
        assert_eq!(stats.lazy_loads, 3);
        for &id in &ids {
            let fleet = reg.fleet(id).expect("resident after probes");
            assert_eq!(fleet.stats().frozen, 2);
            assert_eq!(fleet.stats().context_refs, 1);
        }
    }

    #[test]
    fn live_fleets_are_never_pressure_victims_and_refuse_eviction() {
        let spec = paper_spec();
        let mut reg = ServiceRegistry::new();
        let id = reg.register_spec(&spec, SchemeKind::Tcm).unwrap();
        let other = reg.register_spec(&spec, SchemeKind::Bfs).unwrap();
        reg.register_labels(other, &labels(&spec, SchemeKind::Bfs))
            .unwrap();
        let run = reg.begin_live(id, &spec).unwrap();
        assert!(matches!(
            reg.evict(id),
            Err(RegistryError::Fleet {
                error: FleetError::StillLive(r),
                ..
            }) if r == run
        ));
        reg.set_budget(Some(0)).unwrap();
        assert!(reg.resident(id), "in-flight state is not evictable");
        assert!(!reg.resident(other), "frozen-only fleets still are");
    }

    #[test]
    fn begin_live_cross_checks_the_spec_by_content() {
        let spec = paper_spec();
        let mut reg = ServiceRegistry::new();
        let id = reg.register_spec(&spec, SchemeKind::Tcm).unwrap();
        // same structure, but registered id was computed under Tcm; the
        // reference is fine — a *wrong id* is the error
        let other = SpecId::of(SchemeKind::Bfs, spec.graph());
        let mut reg2 = ServiceRegistry::new();
        reg2.register_spec(&spec, SchemeKind::Bfs).unwrap();
        assert!(reg.begin_live(id, &spec).is_ok());
        // content matches under Bfs too — the check is per registered id
        assert!(reg2.begin_live(other, &spec).is_ok());
        assert!(matches!(
            reg.begin_live(SpecId(42), &spec),
            Err(RegistryError::UnknownSpec(_))
        ));
    }

    #[test]
    fn directory_roundtrip_is_lazy_and_identical() {
        let spec = paper_spec();
        let (mut reg, ids, oracles) = build_registry(&spec, None);
        let n = paper_run(&spec).vertex_count();
        let probes = mixed_probes(&ids, n);
        let want = expected(&probes, &ids, &oracles);
        // warm, then persist
        assert_eq!(reg.answer_batch(&probes).unwrap(), want);
        let dir = tmp("roundtrip");
        reg.save_dir(&dir).unwrap();
        assert!(dir.join(MANIFEST_FILE).is_file());
        for &id in &ids {
            assert!(dir.join(id.file_name()).is_file());
        }

        // open reads only the manifest: nothing is resident yet
        let mut loaded = ServiceRegistry::open_dir(&dir, None).unwrap();
        assert_eq!(loaded.stats().resident, 0);
        assert_eq!(loaded.spec_ids().collect::<Vec<_>>(), ids);
        for &id in &ids {
            assert_eq!(loaded.scheme(id), reg.scheme(id));
            assert_eq!(loaded.run_count(id).unwrap(), 2);
        }
        // first probes lazily load exactly the specs they touch
        let (p_spec, p_run, p_u, p_v) = probes[0];
        let pos = 0;
        assert_eq!(
            loaded.answer(p_spec, p_run, p_u, p_v).unwrap(),
            want[pos]
        );
        assert_eq!(loaded.stats().lazy_loads, 1);
        assert_eq!(loaded.stats().resident, 1);
        // the full mixed batch matches byte-for-byte
        assert_eq!(loaded.answer_batch(&probes).unwrap(), want);
        assert_eq!(loaded.stats().lazy_loads, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn filtered_open_registers_only_the_kept_shard() {
        let spec = paper_spec();
        let (mut reg, ids, oracles) = build_registry(&spec, None);
        let n = paper_run(&spec).vertex_count();
        let probes = mixed_probes(&ids, n);
        let want = expected(&probes, &ids, &oracles);
        assert_eq!(reg.answer_batch(&probes).unwrap(), want);
        let dir = tmp("filtered");
        reg.save_dir(&dir).unwrap();

        // keep exactly one spec; a sibling snapshot another shard owns
        // may even be missing — this shard never looks at it
        let keep = ids[1];
        std::fs::remove_file(dir.join(ids[2].file_name())).unwrap();
        let mut shard =
            ServiceRegistry::open_dir_filtered(&dir, None, |id| id == keep).unwrap();
        assert_eq!(shard.spec_ids().collect::<Vec<_>>(), vec![keep]);
        assert_eq!(shard.stats().resident, 0, "filtered open is still lazy");
        // the kept spec answers byte-identically to the full registry
        for (i, &p) in probes.iter().enumerate().filter(|(_, p)| p.0 == keep) {
            assert_eq!(shard.answer(p.0, p.1, p.2, p.3).unwrap(), want[i]);
        }
        // specs filtered away are typed unknown on this shard
        assert!(matches!(
            shard.answer(ids[0], RunId(0), RunVertexId(0), RunVertexId(0)),
            Err(RegistryError::UnknownSpec(id)) if id == ids[0]
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_rejects_forgeries_and_missing_files() {
        let spec = paper_spec();
        let (reg, ids, _) = build_registry(&spec, None);
        let dir = tmp("adversarial");
        reg.save_dir(&dir).unwrap();

        // referencing a file that is gone is typed, not a silent absence
        std::fs::remove_file(dir.join(ids[1].file_name())).unwrap();
        assert!(matches!(
            ServiceRegistry::open_dir(&dir, None),
            Err(RegistryError::MissingSnapshot { spec, .. }) if spec == ids[1]
        ));
        // a swapped snapshot is caught by the content hash at lazy load
        std::fs::copy(dir.join(ids[0].file_name()), dir.join(ids[1].file_name())).unwrap();
        let mut swapped = ServiceRegistry::open_dir(&dir, None).unwrap();
        assert!(matches!(
            swapped.answer(ids[1], RunId(0), RunVertexId(0), RunVertexId(0)),
            Err(RegistryError::SpecMismatch { expected, loaded })
                if expected == ids[1] && loaded == ids[0]
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_entry_validation() {
        let entry = |file: &str| ManifestEntry {
            id: SpecId(1),
            kind: SchemeKind::Tcm,
            file: file.to_string(),
            runs: 0,
            bytes: 0,
        };
        // the empty name dies in the count guard (Oversized) rather than
        // name validation — either way a typed error, never acceptance
        let bytes = write_manifest(&[entry("")]);
        assert!(read_manifest(&bytes).is_err(), "empty name must be rejected");
        for bad in ["a/b.wfps", "..wfps", "x..y.wfps", "x.txt", ".wfps", "a\\b.wfps"] {
            let bytes = write_manifest(&[entry(bad)]);
            assert!(
                matches!(read_manifest(&bytes), Err(FormatError::Malformed(_))),
                "file name {bad:?} must be rejected"
            );
        }
        let dup = write_manifest(&[entry("a.wfps"), entry("b.wfps")]);
        assert!(matches!(
            read_manifest(&dup),
            Err(FormatError::Malformed("duplicate spec id in manifest"))
        ));
        let ok = write_manifest(&[ManifestEntry {
            id: SpecId(7),
            kind: SchemeKind::Hop2,
            file: "07.wfps".into(),
            runs: 3,
            bytes: 4096,
        }]);
        let read = read_manifest(&ok).unwrap();
        assert_eq!(read.len(), 1);
        assert_eq!(read[0].bytes, 4096, "v2 snapshot size round-trips");
    }

    /// Induced mid-batch failures — missing snapshot, swapped (mismatched)
    /// snapshot, unknown run id — must leave the registry consistent and
    /// serving: same answers on the retry, residency within budget, stats
    /// that add up. This is the serving-loop prerequisite: the dispatch
    /// thread keeps one registry alive across every client's bad request.
    #[test]
    fn induced_failures_leave_the_registry_serving() {
        let spec = paper_spec();
        let (reg, ids, oracles) = build_registry(&spec, None);
        let probes = mixed_probes(&ids, 4);
        let want = expected(&probes, &ids, &oracles);

        let dir = tmp("induced-failures");
        reg.save_dir(&dir).unwrap();
        // a tight budget forces lazy loads + evictions on every batch
        let mut reg = ServiceRegistry::open_dir(&dir, Some(0)).unwrap();
        assert_eq!(reg.answer_batch(&probes).unwrap(), want, "baseline");

        // 1. missing snapshot: delete one spec's backing file, fail a
        //    batch that routes through it, restore, retry
        let victim = ids[1];
        let path = dir.join(victim.file_name());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            reg.answer_batch(&probes),
            Err(RegistryError::MissingSnapshot { spec, .. }) if spec == victim
        ));
        let stats = reg.stats();
        assert_eq!(stats.specs, 3, "failure must not drop slots");
        assert!(
            stats.resident <= 1,
            "budget 0 keeps at most the fleet that was serving when the \
             failure hit, even across a failed batch"
        );
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(reg.answer_batch(&probes).unwrap(), want, "after restore");

        // 2. spec mismatch: cross-wire two snapshots, fail, un-swap, retry
        let other = dir.join(ids[2].file_name());
        let other_bytes = std::fs::read(&other).unwrap();
        std::fs::write(&path, &other_bytes).unwrap();
        std::fs::write(&other, &bytes).unwrap();
        assert!(matches!(
            reg.answer_batch(&probes),
            Err(RegistryError::SpecMismatch { .. })
        ));
        std::fs::write(&path, &bytes).unwrap();
        std::fs::write(&other, &other_bytes).unwrap();
        assert_eq!(reg.answer_batch(&probes).unwrap(), want, "after un-swap");

        // 3. unknown run id mid-batch: the faulty probe is sandwiched so a
        //    healthy shard answers before the failure propagates
        let mut poisoned = probes.clone();
        poisoned.insert(poisoned.len() / 2, (ids[2], RunId(99), RunVertexId(0), RunVertexId(0)));
        assert!(matches!(
            reg.answer_batch(&poisoned),
            Err(RegistryError::Fleet { spec, error: FleetError::UnknownRun(RunId(99)) })
                if spec == ids[2]
        ));
        let stats = reg.stats();
        assert!(
            stats.resident <= 1,
            "a failed shard must not pin other lazily-loaded fleets \
             resident — the budget is enforced before the error propagates"
        );
        assert_eq!(reg.answer_batch(&probes).unwrap(), want, "after bad run id");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A failed lazy load must not consume an LRU stamp: with budget for
    /// one resident fleet, probing A, failing on B (missing snapshot), and
    /// probing A again must keep A resident throughout — B's failed touch
    /// never made it "most recently used".
    #[test]
    fn failed_touch_does_not_disturb_lru_order() {
        let spec = paper_spec();
        let (reg, ids, _) = build_registry(&spec, None);
        let dir = tmp("failed-touch-lru");
        reg.save_dir(&dir).unwrap();
        // budget large enough for one resident fleet, not two
        let mut reg = ServiceRegistry::open_dir(&dir, None).unwrap();
        reg.ensure_resident(ids[0]).unwrap();
        let one = reg.resident_bytes();
        reg.set_budget(Some(one)).unwrap();
        assert!(reg.resident(ids[0]));

        std::fs::remove_file(dir.join(ids[1].file_name())).unwrap();
        for _ in 0..3 {
            assert!(reg
                .answer(ids[1], RunId(0), RunVertexId(0), RunVertexId(0))
                .is_err());
            assert!(
                reg.resident(ids[0]),
                "failed loads must not evict the healthy resident fleet"
            );
        }
        let loads_before = reg.stats().lazy_loads;
        assert!(reg
            .answer(ids[0], RunId(0), RunVertexId(0), RunVertexId(0))
            .is_ok());
        assert_eq!(
            reg.stats().lazy_loads,
            loads_before,
            "the healthy fleet stayed resident — no reload needed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The parallel batch drive answers byte-identically to the sequential
    /// one, including under eviction churn.
    #[test]
    fn parallel_batch_matches_sequential() {
        let spec = paper_spec();
        let (mut reg, ids, oracles) = build_registry(&spec, None);
        let probes = mixed_probes(&ids, 5);
        let want = expected(&probes, &ids, &oracles);
        assert_eq!(reg.answer_batch_parallel(&probes, 4).unwrap(), want);
        assert_eq!(reg.answer_batch_parallel(&probes, 1).unwrap(), want);
        reg.set_budget(Some(0)).unwrap();
        assert_eq!(reg.answer_batch_parallel(&probes, 3).unwrap(), want);
        assert!(reg.stats().evictions > 0);
    }

    /// Regression for the budget-accounting drift: `open_dir` seeds each
    /// slot's size estimate from the manifest's snapshot bytes, the first
    /// fault-in reserves on that conservative number, and every
    /// load/offload reconciles the estimate to the fleet's actual resident
    /// footprint — so later eviction decisions run on the corrected
    /// number, not the (larger) serialized size.
    #[test]
    fn manifest_seeded_estimates_reconcile_to_resident_bytes() {
        let spec = paper_spec();
        let (reg, ids, _) = build_registry(&spec, None);
        let dir = tmp("estimate-reconcile");
        reg.save_dir(&dir).unwrap();

        // measure the actual resident footprint of fleets A and B
        let mut probe = ServiceRegistry::open_dir(&dir, None).unwrap();
        probe.ensure_resident(ids[0]).unwrap();
        let r_a = probe.resident_bytes();
        probe.ensure_resident(ids[1]).unwrap();
        let r_b = probe.resident_bytes() - r_a;
        drop(probe);

        // the serialized snapshot (manifest estimate) is strictly larger
        // than the resident footprint — that gap IS the drift under test
        let manifest = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();
        let m_b = read_manifest(&manifest)
            .unwrap()
            .iter()
            .find(|e| e.id == ids[1])
            .expect("B is in the manifest")
            .bytes;
        assert!(m_b > r_b, "fixture: serialized {m_b} <= resident {r_b}");

        // a budget that fits both fleets by the corrected numbers but NOT
        // by A-resident + B's manifest estimate
        let budget = r_a + (r_b + m_b) / 2;
        let mut reg = ServiceRegistry::open_dir(&dir, Some(budget)).unwrap();
        reg.ensure_resident(ids[0]).unwrap();
        // B's first fault-in reserves on the seeded manifest estimate:
        // r_a + m_b overshoots, so A is evicted *before* the load
        reg.ensure_resident(ids[1]).unwrap();
        assert!(!reg.resident(ids[0]), "seeded estimate forced eviction");
        assert!(reg.resident(ids[1]));
        assert_eq!(reg.stats().evictions, 1);
        // A's estimate was reconciled to its resident footprint when it
        // loaded (and kept through its clean offload): by the corrected
        // numbers both fleets fit, so re-loading A evicts nothing
        reg.ensure_resident(ids[0]).unwrap();
        assert!(
            reg.resident(ids[0]) && reg.resident(ids[1]),
            "corrected estimates fit both fleets in the budget"
        );
        assert_eq!(reg.stats().evictions, 1, "no spurious eviction");
        assert!(reg.resident_bytes() <= budget);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Evict→reload of an unmodified, all-packed fleet in the memory store
    /// is a pointer rebind of the retained snapshot buffer: the reload is
    /// counted zero-copy, answers stay identical, and the probe counters
    /// carry across without re-serialization.
    #[test]
    fn clean_evict_reload_is_zero_copy_and_keeps_counters() {
        let spec = paper_spec();
        let mut reg = ServiceRegistry::new();
        let id = reg.register_spec(&spec, SchemeKind::Tcm).unwrap();
        let l = labels(&spec, SchemeKind::Tcm);
        reg.register_labels(id, &l).unwrap();
        assert_eq!(reg.seal_packed(id).unwrap(), 1, "the run seals packed");

        let n = paper_run(&spec).vertex_count();
        let mut want = Vec::new();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                want.push(
                    reg.answer(id, RunId(0), RunVertexId(u), RunVertexId(v))
                        .unwrap(),
                );
            }
        }
        let before = reg.fleet(id).unwrap().stats().engine;

        // first evict: the fleet diverged from the (absent) stored
        // snapshot, so this serializes; the reload then rides the aligned
        // zero-copy path over the buffer the offload just stored
        reg.evict(id).unwrap();
        assert!(!reg.resident(id));
        let again = reg
            .answer(id, RunId(0), RunVertexId(0), RunVertexId(1))
            .unwrap();
        assert_eq!(again, want[1]);
        let stats = reg.stats();
        assert_eq!(stats.lazy_loads, 1);
        assert_eq!(stats.zero_copy_loads, 1, "all runs bound as views");
        assert_eq!(stats.zero_copy_runs, 1, "the packed run is a view");
        assert!(stats.reload_bytes > 0, "reload volume is accounted");
        let engine = reg.fleet(id).unwrap().stats().engine;
        assert_eq!(
            engine.context_only + engine.skeleton,
            before.context_only + before.skeleton + 1,
            "probe counters carry across the evict/reload cycle"
        );

        // second evict: nothing changed since the load, so the offload
        // skips serialization and the reload is a trusted pointer rebind
        reg.evict(id).unwrap();
        let replay: Vec<bool> = (0..n as u32)
            .flat_map(|u| (0..n as u32).map(move |v| (u, v)))
            .map(|(u, v)| {
                reg.answer(id, RunId(0), RunVertexId(u), RunVertexId(v))
                    .unwrap()
            })
            .collect();
        assert_eq!(replay, want, "rebind answers byte-identically");
        let stats = reg.stats();
        assert_eq!(stats.lazy_loads, 2);
        assert_eq!(stats.zero_copy_loads, 2);

        // mutating the fleet re-dirties it: the next cycle re-serializes
        // (a raw frozen run decodes, so the load is no longer all-views)
        reg.register_labels(id, &l).unwrap();
        reg.evict(id).unwrap();
        assert!(reg
            .answer(id, RunId(1), RunVertexId(0), RunVertexId(1))
            .is_ok());
        let stats = reg.stats();
        assert_eq!(stats.lazy_loads, 3);
        assert_eq!(stats.zero_copy_loads, 2, "mixed load is not zero-copy");
        assert_eq!(stats.zero_copy_runs, 1, "but the sealed run still binds");
        assert_eq!(reg.run_count(id).unwrap(), 2);
    }
}
