//! Query-while-running: the live ingestion engine over the online labeler.
//!
//! The paper's conclusion (§9) asks for labels assigned "as soon as it is
//! generated … enabling efficient provenance queries on intermediate data
//! results even before the workflow completes". [`crate::online`] supplies
//! the labeler half of that program; this module supplies the *serving*
//! half: a [`LiveRun`] ingests the event stream of an in-flight workflow
//! and answers reachability queries **at any intermediate moment** with the
//! same O(1) three-comparison predicate — and the same batched,
//! struct-of-arrays evaluation — that [`crate::engine::QueryEngine`] uses
//! for completed runs.
//!
//! The key observation: Algorithm 3 never reads the *values* of the three
//! coordinates, only their *order*. Offline, the coordinates are preorder
//! positions; online, each bracket list ([`wfp_graph::OrderList`]) already
//! carries a `u64` tag per bracket that increases strictly along the list.
//! A [`LiveRun`] therefore keeps an incrementally-appended
//! [`SoaColumns<u64>`] of the tags of each vertex's context — appended once
//! per [`exec`](LiveRun::exec) event — and runs the *identical* batch
//! kernel over them:
//!
//! * the `F−`/`L−` fast path is three tag comparisons (Lemma 4.5 holds at
//!   every intermediate moment, because the relative order of existing
//!   brackets never changes);
//! * `+`-LCA pairs delegate to the skeleton through the specification's
//!   **shared** [`SpecContext`] memo, so repeated probes amortize mid-run
//!   exactly as they do offline — and across every other run of the same
//!   spec holding the same context.
//!
//! Order-maintenance lists occasionally retag themselves globally
//! (amortized O(1) per insertion); the engine watches each order's rebuild
//! counter and repairs the affected column in one linear sweep — queries
//! between repairs stay branch-free.
//!
//! When the run completes, [`LiveRun::freeze`] extracts the offline
//! scheme's exact integer labels from the bracket lists and pairs them —
//! as a slim [`RunHandle`] — with the *same* `Arc`-shared context, so the
//! frozen [`QueryEngine`] starts with every `(origin, origin)` sub-answer
//! accumulated during the run: no plan reconstruction, no skeleton
//! rebuild, no repeated probes.
//!
//! ```
//! use wfp_model::fixtures;
//! use wfp_skl::live::LiveRun;
//! use wfp_speclabel::{SchemeKind, SpecScheme};
//!
//! let spec = fixtures::paper_spec();
//! let f1 = fixtures::paper_subgraph(&spec, "F1");
//! let l2 = fixtures::paper_subgraph(&spec, "L2");
//! let m = |n: &str| spec.module_by_name(n).unwrap();
//!
//! let mut live = LiveRun::new(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
//! let a1 = live.exec(m("a")).unwrap();
//! live.begin_group(f1).unwrap();
//! live.begin_copy().unwrap();
//! live.begin_group(l2).unwrap();
//! live.begin_copy().unwrap();
//! let b1 = live.exec(m("b")).unwrap();
//! let c1 = live.exec(m("c")).unwrap();
//! live.end_copy().unwrap();
//!
//! // the workflow is still running — queries answer anyway
//! assert_eq!(live.answer_batch(&[(a1, c1), (c1, b1)]), vec![true, false]);
//! ```

use std::cell::Cell;
use std::sync::Arc;

use wfp_model::{ModuleId, RunVertexId, Specification, SubgraphId};
use wfp_speclabel::SpecIndex;

use crate::context::{RunHandle, SpecContext};
use crate::engine::{answer_into, EngineStats, QueryEngine, SoaColumns};
use crate::online::{OnlineError, OnlineLabeler};

/// Counters describing a live run's ingestion and query work so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Structural events accepted (`begin_*`/`end_*`/`exec`).
    pub events: u64,
    /// Column repairs after an order-maintenance retagging (each repairs
    /// one column in one linear sweep; amortized O(1) per event).
    pub tag_repairs: u64,
    /// Query-decision counters, shaped like the frozen engine's. The memo
    /// counters are the shared context's — context-wide when several runs
    /// share it.
    pub engine: EngineStats,
}

/// A workflow run being labeled *while it executes*, queryable at every
/// intermediate moment. See the module docs for the design.
///
/// Events are forwarded to the wrapped [`OnlineLabeler`] (and validated by
/// it — a rejected event leaves both the labeler and the column store
/// untouched); queries run over the incrementally-maintained tag columns,
/// delegating `+`-LCA pairs through the `Arc`-shared [`SpecContext`].
pub struct LiveRun<'s, S> {
    labeler: OnlineLabeler<'s, Arc<SpecContext<S>>>,
    /// tag columns, one row per executed vertex, in exec order
    cols: SoaColumns<u64>,
    /// context plan node per executed vertex (for column repairs)
    ctx_nodes: Vec<u32>,
    /// per-order retagging counters at the last sync
    rebuilds: [usize; 3],
    context_only: Cell<u64>,
    skeleton_queries: Cell<u64>,
    events: u64,
    tag_repairs: u64,
}

impl<'s, S: SpecIndex> LiveRun<'s, S> {
    /// Starts ingesting a run of `spec`, delegating `+`-LCA queries to
    /// `skeleton` wrapped in a fresh single-run [`SpecContext`]. To serve
    /// several runs off one skeleton, build the context once and use
    /// [`with_context`](Self::with_context) (or a
    /// [`crate::fleet::FleetEngine`]).
    pub fn new(spec: &'s Specification, skeleton: S) -> Self {
        Self::with_context(spec, SpecContext::for_spec(spec, skeleton).shared())
    }

    /// Starts ingesting a run of `spec` against an **already-shared**
    /// specification context — the fleet path: every live run holding the
    /// same `Arc` warms (and profits from) the same skeleton memo.
    pub fn with_context(spec: &'s Specification, ctx: Arc<SpecContext<S>>) -> Self {
        let labeler = OnlineLabeler::new(spec, ctx);
        let rebuilds = labeler.rebuild_counts();
        LiveRun {
            labeler,
            cols: SoaColumns::new(),
            ctx_nodes: Vec::new(),
            rebuilds,
            context_only: Cell::new(0),
            skeleton_queries: Cell::new(0),
            events: 0,
            tag_repairs: 0,
        }
    }

    // ---------------- event ingestion ----------------------------------

    /// After any event that inserted brackets, refresh columns whose order
    /// retagged itself since the last sync.
    fn sync_tags(&mut self) {
        let now = self.labeler.rebuild_counts();
        for which in 0..3 {
            if now[which] != self.rebuilds[which] {
                let labeler = &self.labeler;
                let ctx_nodes = &self.ctx_nodes;
                self.cols.repair_column(which, |row| {
                    let tags = labeler.order_tags(ctx_nodes[row] as usize);
                    [tags.0, tags.1, tags.2][which]
                });
                self.tag_repairs += 1;
            }
        }
        self.rebuilds = now;
    }

    /// Opens an execution group for `sg` inside the current copy.
    pub fn begin_group(&mut self, sg: SubgraphId) -> Result<(), OnlineError> {
        self.labeler.begin_group(sg)?;
        self.events += 1;
        self.sync_tags();
        Ok(())
    }

    /// Opens the next copy of the innermost open group.
    pub fn begin_copy(&mut self) -> Result<(), OnlineError> {
        self.labeler.begin_copy()?;
        self.events += 1;
        self.sync_tags();
        Ok(())
    }

    /// Records a module execution; the returned vertex is immediately
    /// queryable. Appends one row to the tag columns — the only growth the
    /// column store ever sees.
    pub fn exec(&mut self, module: ModuleId) -> Result<RunVertexId, OnlineError> {
        let v = self.labeler.exec(module)?;
        self.events += 1;
        let node = self.labeler.context_node(v);
        let (t1, t2, t3) = self.labeler.order_tags(node);
        self.cols.push(t1, t2, t3, module.raw());
        self.ctx_nodes.push(node as u32);
        Ok(v)
    }

    /// Closes the current copy (validated for completeness).
    pub fn end_copy(&mut self) -> Result<(), OnlineError> {
        self.labeler.end_copy()?;
        self.events += 1;
        Ok(())
    }

    /// Closes the innermost open group.
    pub fn end_group(&mut self) -> Result<(), OnlineError> {
        self.labeler.end_group()?;
        self.events += 1;
        Ok(())
    }

    // ---------------- live queries -------------------------------------

    /// Whether `u ⇝ v` among the vertices executed so far — the scalar
    /// entry point. Panics if either vertex has not executed yet.
    #[inline]
    pub fn answer(&self, u: RunVertexId, v: RunVertexId) -> bool {
        self.answer_batch_into(&[(u, v)], &mut Vec::with_capacity(1))[0]
    }

    /// Answers every pair in order, over the current intermediate state.
    pub fn answer_batch(&self, pairs: &[(RunVertexId, RunVertexId)]) -> Vec<bool> {
        let mut out = Vec::new();
        self.answer_batch_into(pairs, &mut out);
        out
    }

    /// [`answer_batch`](Self::answer_batch) into a caller-owned buffer
    /// (cleared first) — the steady-state monitoring path, one allocation
    /// for the whole run.
    pub fn answer_batch_into<'o>(
        &self,
        pairs: &[(RunVertexId, RunVertexId)],
        out: &'o mut Vec<bool>,
    ) -> &'o [bool] {
        out.clear();
        out.reserve(pairs.len());
        let spec_ctx = self.context();
        let (ctx, skel) = answer_into(
            &self.cols,
            spec_ctx.skeleton(),
            spec_ctx.probe_memo(),
            pairs,
            out,
        );
        self.context_only.set(self.context_only.get() + ctx);
        self.skeleton_queries.set(self.skeleton_queries.get() + skel);
        out
    }

    /// The live tag columns (for fleet-level batch evaluation).
    pub(crate) fn columns(&self) -> &SoaColumns<u64> {
        &self.cols
    }

    /// Folds one externally-evaluated batch's decision counts into the
    /// run's counters (the fleet path).
    pub(crate) fn count(&self, context_only: u64, skeleton: u64) {
        self.context_only.set(self.context_only.get() + context_only);
        self.skeleton_queries
            .set(self.skeleton_queries.get() + skeleton);
    }

    // ---------------- introspection ------------------------------------

    /// Number of module executions so far (valid query vertices are
    /// `0..vertex_count`).
    pub fn vertex_count(&self) -> usize {
        self.cols.len()
    }

    /// Whether the run is structurally complete (only the root scope is
    /// open; root completeness itself is checked by
    /// [`freeze`](Self::freeze)).
    pub fn at_root(&self) -> bool {
        self.labeler.at_root()
    }

    /// Whether [`freeze`](Self::freeze) would succeed right now —
    /// non-consuming ([`OnlineLabeler::check_complete`]).
    pub fn check_complete(&self) -> Result<(), OnlineError> {
        self.labeler.check_complete()
    }

    /// The wrapped event-validating labeler.
    pub fn labeler(&self) -> &OnlineLabeler<'s, Arc<SpecContext<S>>> {
        &self.labeler
    }

    /// The shared spec-level state this run answers through.
    pub fn context(&self) -> &Arc<SpecContext<S>> {
        self.labeler.skeleton()
    }

    /// The skeleton index `+`-LCA queries delegate to.
    pub fn skeleton(&self) -> &S {
        self.context().skeleton()
    }

    /// Ingestion and query counters.
    pub fn stats(&self) -> LiveStats {
        let memo = self.context().memo();
        LiveStats {
            events: self.events,
            tag_repairs: self.tag_repairs,
            engine: EngineStats {
                context_only: self.context_only.get(),
                skeleton: self.skeleton_queries.get(),
                skeleton_probes: memo.probes(),
                memo_hits: memo.hits(),
            },
        }
    }

    // ---------------- freeze handoff -----------------------------------

    /// Completes the run and hands off to a frozen [`QueryEngine`] with
    /// zero re-labeling: the exact offline integer labels are extracted
    /// from the bracket lists ([`OnlineLabeler::freeze_into_parts`]) into a
    /// [`RunHandle`], and the engine views the *same* `Arc`-shared context
    /// — skeleton untouched, every `(origin, origin)` sub-answer probed
    /// during the run already warm.
    pub fn freeze(self) -> Result<QueryEngine<S>, OnlineError> {
        let (run, ctx) = self.freeze_handle()?;
        Ok(QueryEngine::from_parts(ctx, run))
    }

    /// [`freeze`](Self::freeze) returning the raw spec/run pair — the
    /// fleet's in-place freeze path.
    pub fn freeze_handle(self) -> Result<(RunHandle, Arc<SpecContext<S>>), OnlineError> {
        let (labels, _n_plus, ctx) = self.labeler.freeze_into_parts()?;
        Ok((RunHandle::from_labels(&labels), ctx))
    }

    /// [`freeze`](Self::freeze) straight into the bit-packed tier: the
    /// extracted labels are frame-of-reference encoded immediately
    /// ([`crate::PackedColumns`]), so a completed run lands in the
    /// compressed serving representation without ever holding raw
    /// columns — same shared context, same warm memo, identical answers.
    pub fn freeze_packed(self) -> Result<crate::PackedEngine<S>, OnlineError> {
        let (run, ctx) = self.freeze_handle()?;
        Ok(crate::PackedEngine::from_parts(
            ctx,
            crate::context::PackedRunHandle::pack(&run),
        ))
    }

    /// The offline scheme's exact labels plus `n⁺` and the shared context
    /// — for callers that want the raw parts rather than an engine.
    #[allow(clippy::type_complexity)]
    pub fn freeze_into_parts(
        self,
    ) -> Result<(Vec<crate::RunLabel>, u32, Arc<SpecContext<S>>), OnlineError> {
        self.labeler.freeze_into_parts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::predicate;
    use wfp_model::fixtures::{paper_spec, paper_subgraph};
    use wfp_speclabel::{SchemeKind, SpecScheme};

    fn scheme(spec: &Specification, kind: SchemeKind) -> SpecScheme {
        SpecScheme::build(kind, spec.graph())
    }

    /// Streams the paper's Figure 3 run, checking live answers against the
    /// wrapped labeler's own (order-list) predicate at every exec.
    fn stream_paper_run(live: &mut LiveRun<'_, SpecScheme>) -> Vec<RunVertexId> {
        let spec = live.labeler().spec();
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let f1 = paper_subgraph(spec, "F1");
        let f2 = paper_subgraph(spec, "F2");
        let l1 = paper_subgraph(spec, "L1");
        let l2 = paper_subgraph(spec, "L2");
        let mut vs = Vec::new();
        vs.push(live.exec(m("a")).unwrap());
        live.begin_group(f1).unwrap();
        for copies in [2usize, 1] {
            live.begin_copy().unwrap();
            live.begin_group(l2).unwrap();
            for _ in 0..copies {
                live.begin_copy().unwrap();
                vs.push(live.exec(m("b")).unwrap());
                vs.push(live.exec(m("c")).unwrap());
                live.end_copy().unwrap();
            }
            live.end_group().unwrap();
            live.end_copy().unwrap();
        }
        live.end_group().unwrap();
        vs.push(live.exec(m("d")).unwrap());
        live.begin_group(l1).unwrap();
        for copies in [1usize, 2] {
            live.begin_copy().unwrap();
            vs.push(live.exec(m("e")).unwrap());
            live.begin_group(f2).unwrap();
            for _ in 0..copies {
                live.begin_copy().unwrap();
                vs.push(live.exec(m("f")).unwrap());
                live.end_copy().unwrap();
            }
            live.end_group().unwrap();
            vs.push(live.exec(m("g")).unwrap());
            live.end_copy().unwrap();
        }
        live.end_group().unwrap();
        vs.push(live.exec(m("h")).unwrap());
        vs
    }

    #[test]
    fn live_agrees_with_the_labeler_at_every_prefix() {
        for kind in [SchemeKind::Tcm, SchemeKind::Bfs] {
            let spec = paper_spec();
            let mut live = LiveRun::new(&spec, scheme(&spec, kind));
            let vs = stream_paper_run(&mut live);
            // the labeler's own order-list predicate is the mid-run oracle
            for &u in &vs {
                for &v in &vs {
                    assert_eq!(
                        live.answer(u, v),
                        live.labeler().reaches(u, v),
                        "({u}, {v}) under {kind}"
                    );
                }
            }
            let stats = live.stats();
            assert_eq!(stats.engine.total(), (vs.len() * vs.len()) as u64);
            assert!(stats.events > 0);
        }
    }

    #[test]
    fn freeze_hands_off_identical_answers_and_a_warm_memo() {
        let spec = paper_spec();
        let mut live = LiveRun::new(&spec, scheme(&spec, SchemeKind::Bfs));
        let vs = stream_paper_run(&mut live);
        let pairs: Vec<_> = vs
            .iter()
            .flat_map(|&u| vs.iter().map(move |&v| (u, v)))
            .collect();
        let live_answers = live.answer_batch(&pairs);
        let probes_before = live.stats().engine.skeleton_probes;
        assert!(probes_before > 0, "BFS must have probed the skeleton");

        let engine = live.freeze().unwrap();
        // the probe counter travels with the shared context …
        assert_eq!(engine.stats().skeleton_probes, probes_before);
        assert_eq!(engine.answer_batch(&pairs), live_answers);
        // … and the frozen engine answered the whole matrix without one
        // new skeleton probe: every sub-answer was already warm
        assert_eq!(engine.stats().skeleton_probes, probes_before);
    }

    #[test]
    fn freeze_packed_lands_compressed_with_identical_answers() {
        let spec = paper_spec();
        let mut live = LiveRun::new(&spec, scheme(&spec, SchemeKind::Bfs));
        let vs = stream_paper_run(&mut live);
        let pairs: Vec<_> = vs
            .iter()
            .flat_map(|&u| vs.iter().map(move |&v| (u, v)))
            .collect();
        let live_answers = live.answer_batch(&pairs);
        let probes_before = live.stats().engine.skeleton_probes;

        let packed = live.freeze_packed().unwrap();
        assert_eq!(packed.vertex_count(), vs.len());
        assert!(
            packed.columns().memory_bytes() < vs.len() * 16,
            "packed columns must undercut the raw 16 bytes/vertex"
        );
        assert_eq!(packed.answer_batch(&pairs), live_answers);
        // the warm memo travelled with the shared context: the whole
        // matrix re-answers without one new skeleton probe
        assert_eq!(packed.stats().skeleton_probes, probes_before);
    }

    #[test]
    fn frozen_labels_match_the_labelers_freeze() {
        let spec = paper_spec();
        let mut live = LiveRun::new(&spec, scheme(&spec, SchemeKind::Tcm));
        let vs = stream_paper_run(&mut live);
        let (labels, n_plus, _ctx) = live.freeze_into_parts().unwrap();
        assert_eq!(labels.len(), vs.len());
        assert_eq!(n_plus, 9);
        // and the labels answer like the scalar predicate
        let skeleton = scheme(&spec, SchemeKind::Tcm);
        assert!(predicate(&labels[0], &labels[labels.len() - 1], &skeleton));
    }

    #[test]
    fn live_runs_share_one_context() {
        // Two live runs off one Arc<SpecContext>: probes warmed by the
        // first run are memo hits for the second.
        let spec = paper_spec();
        let ctx = SpecContext::for_spec(&spec, scheme(&spec, SchemeKind::Bfs)).shared();
        let mut first = LiveRun::with_context(&spec, Arc::clone(&ctx));
        let vs = stream_paper_run(&mut first);
        for &u in &vs {
            for &v in &vs {
                first.answer(u, v);
            }
        }
        let probes_after_first = ctx.memo().probes();
        assert!(probes_after_first > 0);

        let mut second = LiveRun::with_context(&spec, Arc::clone(&ctx));
        let ws = stream_paper_run(&mut second);
        for &u in &ws {
            for &v in &ws {
                assert_eq!(second.answer(u, v), second.labeler().reaches(u, v));
            }
        }
        assert_eq!(
            ctx.memo().probes(),
            probes_after_first,
            "the second run re-probed pairs the first already warmed"
        );
        // 1 external + 2 labelers hold the context
        assert_eq!(Arc::strong_count(&ctx), 3);
    }

    #[test]
    fn rejected_events_leave_the_columns_untouched() {
        let spec = paper_spec();
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let mut live = LiveRun::new(&spec, scheme(&spec, SchemeKind::Tcm));
        let a = live.exec(m("a")).unwrap();
        let before = live.vertex_count();
        assert!(live.exec(m("a")).is_err()); // duplicate in the root copy
        assert!(live.exec(m("b")).is_err()); // wrong home
        assert!(live.begin_copy().is_err()); // no open group
        assert_eq!(live.vertex_count(), before);
        assert!(live.answer(a, a), "queries still work after rejections");
    }

    #[test]
    fn tag_repairs_keep_answers_correct_under_heavy_retagging() {
        // A long serial loop inserts every new copy at the *front* of O3,
        // which is the OrderList's pathological retagging case.
        let mut sb = wfp_model::SpecBuilder::new();
        let s = sb.add_module("s").unwrap();
        let a = sb.add_module("a").unwrap();
        let b = sb.add_module("b").unwrap();
        let t = sb.add_module("t").unwrap();
        sb.add_edge(s, a).unwrap();
        sb.add_edge(a, b).unwrap();
        sb.add_edge(b, t).unwrap();
        sb.add_loop_over(&[a, b]);
        let spec = sb.build().unwrap();
        let lp = spec.subgraphs().next().unwrap().0;

        let mut live = LiveRun::new(&spec, scheme(&spec, SchemeKind::Tcm));
        live.exec(s).unwrap();
        live.begin_group(lp).unwrap();
        let mut xs = Vec::new();
        for _ in 0..4000 {
            live.begin_copy().unwrap();
            xs.push(live.exec(a).unwrap());
            live.exec(b).unwrap();
            live.end_copy().unwrap();
        }
        live.end_group().unwrap();
        live.exec(t).unwrap();
        assert!(
            live.stats().tag_repairs > 0,
            "4000 front insertions must retag at least once"
        );
        // serial copies: earlier reaches later, never the reverse
        for w in xs.windows(2) {
            assert!(live.answer(w[0], w[1]));
            assert!(!live.answer(w[1], w[0]));
        }
        // and the frozen engine still agrees on a sample
        let pairs: Vec<_> = xs.windows(2).map(|w| (w[0], w[1])).collect();
        let live_ans = live.answer_batch(&pairs);
        let engine = live.freeze().unwrap();
        assert_eq!(engine.answer_batch(&pairs), live_ans);
    }
}
