//! The unified snapshot layer: one versioned, segmented container format
//! for everything the stack persists.
//!
//! The paper's headline economy — a run label factors into a tiny per-run
//! part plus a spec-only skeleton part (§4, §7) — should survive a process
//! restart. Before this module each serialized artifact (packed label
//! files, provenance stores) carried its own hand-rolled framing, and the
//! *expensive* shared state (the [`SpecContext`] skeleton and the
//! [`SharedMemo`] warm snapshot) was rebuilt from scratch on every start.
//! Now every on-disk artifact is the same container:
//!
//! ```text
//! magic "WFPS" | container version u16 | reserved u16 | segment count u32
//! section table: per segment { kind u16 | reserved u16 | len u64 | crc32 }
//! structure crc32 (over header + table; reported as segment kind 0)
//! payloads, concatenated in table order (total length checked exactly)
//! ```
//!
//! * one shared framing module: little-endian [`Cursor`] reads, LEB128
//!   varints, CRC-32 checksums, and the untrusted-length guard
//!   ([`Cursor::guarded_count`]) that bounds every count-prefixed
//!   preallocation by the bytes actually present;
//! * every segment is CRC-checked at parse time, so a flipped bit anywhere
//!   in a payload is a typed [`FormatError`] — never a wrong answer;
//! * segment kinds compose: a spec record ([`write_spec_context`]) is two
//!   segments, a fleet is a spec record + a manifest + one
//!   [`seg::RUN_COLUMNS`] segment per frozen run, and higher layers
//!   (`wfp-provenance`'s fleet index) append their own kinds to the same
//!   container.
//!
//! Integrity vs. trust: the CRCs detect *corruption* (a torn page, a bad
//! disk), not tampering — a snapshot is trusted state, like the database
//! page the paper stores labels in. Untrusted *structure* (lengths, counts,
//! ids) is still validated everywhere, so a malformed file errors cleanly
//! instead of panicking or over-allocating.

use wfp_graph::DiGraph;
use wfp_speclabel::{SchemeKind, SpecScheme};

use crate::context::{SharedMemo, SpecContext};
use crate::engine::SoaLabels;
use crate::packed::PackedColumns;

/// Container magic: the first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"WFPS";

/// Current container version.
pub const VERSION: u16 = 1;

/// Well-known segment kinds. Unknown kinds are skipped by readers (forward
/// compatibility); the constants here are the kinds this crate stack
/// writes.
pub mod seg {
    /// Spec-labeling record: scheme kind + specification graph.
    pub const SPEC_LABELING: u16 = 0x0001;
    /// Dense [`super::SharedMemo`] warm-snapshot cells.
    pub const MEMO_WARM: u16 = 0x0002;
    /// One frozen run's SoA label columns.
    pub const RUN_COLUMNS: u16 = 0x0003;
    /// Fleet manifest: slot states + per-run decision counters.
    pub const FLEET_MANIFEST: u16 = 0x0004;
    /// Packed fixed-width label array (`EncodedLabels`).
    pub const PACKED_LABELS: u16 = 0x0005;
    /// Provenance store items (`StoredProvenance`).
    pub const PROVENANCE_ITEMS: u16 = 0x0006;
    /// One run's registered data items (`wfp-provenance` fleet index).
    pub const RUN_ITEMS: u16 = 0x0007;
    /// Multi-spec registry manifest: the index of a snapshot *directory*
    /// (`wfp_skl::registry`) — spec ids, scheme tags and per-spec file
    /// names.
    pub const REGISTRY_MANIFEST: u16 = 0x0008;
    /// One frozen run's bit-packed label columns
    /// (`wfp_skl::packed::PackedColumns`) — the compressed successor of
    /// [`RUN_COLUMNS`]; readers that predate it skip the segment and fail
    /// on the manifest slot state instead of misreading bits.
    pub const PACKED_COLUMNS: u16 = 0x0009;
    /// One frozen run's bit-packed label columns in the **8-byte-aligned**
    /// layout (`wfp_skl::PackedColumnsView`): a fixed header, then each
    /// column's `u64` words plus a zero pad word, every region a multiple
    /// of 8 from the payload start — directly serveable out of the load
    /// buffer with zero per-word decode. The successor of
    /// [`PACKED_COLUMNS`] for fleet persistence; old snapshots still
    /// decode via the copy path.
    pub const PACKED_COLUMNS_ALIGNED: u16 = 0x000A;
}

// ====================================================================
// Errors
// ====================================================================

/// Failures parsing a snapshot container or one of its segment payloads.
/// The shared error vocabulary of every persistent format in the stack:
/// `wfp_skl::DecodeError` and `wfp_provenance`'s `StoreError` both wrap it
/// (with `source()` threading back here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// The bytes do not start with the container magic.
    BadMagic,
    /// The container (or a layer above it) declares an unsupported version.
    UnsupportedVersion(u16),
    /// The buffer ended before a declared structure was complete.
    Truncated {
        /// Byte offset (within the buffer or segment) where input ran out.
        offset: usize,
    },
    /// A count or length field promises more data than the buffer holds —
    /// rejected *before* sizing any allocation.
    Oversized {
        /// Items or bytes declared by the untrusted field.
        declared: u64,
        /// Bytes actually available to back them.
        available: u64,
    },
    /// A segment's payload does not match its table checksum (kind 0
    /// denotes the container's own header + section table).
    ChecksumMismatch {
        /// Kind of the corrupt segment.
        kind: u16,
    },
    /// A required segment kind is absent from the container.
    MissingSegment {
        /// The kind that was looked up.
        kind: u16,
    },
    /// Bytes remain after the last declared payload.
    TrailingBytes {
        /// How many.
        extra: usize,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A structurally invalid payload (reserved bits set, inconsistent
    /// counts, out-of-range ids).
    Malformed(&'static str),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not a snapshot container (bad magic)"),
            FormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            FormatError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            FormatError::Oversized {
                declared,
                available,
            } => write!(
                f,
                "length field declares {declared} where only {available} bytes remain"
            ),
            FormatError::ChecksumMismatch { kind } => {
                write!(f, "segment 0x{kind:04x} failed its CRC-32 check")
            }
            FormatError::MissingSegment { kind } => {
                write!(f, "snapshot has no segment of kind 0x{kind:04x}")
            }
            FormatError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last segment")
            }
            FormatError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            FormatError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for FormatError {}

// ====================================================================
// CRC-32 (IEEE), dependency-free
// ====================================================================

/// Slicing-by-16 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table, `TABLES[k][j]` advances `j` through `k` further zero bytes.
const fn crc_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut j = 0;
        while j < 256 {
            let prev = tables[k - 1][j];
            tables[k][j] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            j += 1;
        }
        k += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 16] = crc_tables();

/// CRC-32 (IEEE 802.3 polynomial) of `bytes` — the per-segment checksum.
/// Slicing-by-16: snapshot loads checksum megabytes of label columns, and
/// with zero-copy binds (no decode pass) this checksum *is* the fault-in
/// cost, so the two 8-byte lanes per iteration buy real reload latency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        let lo = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes")) ^ c as u64;
        let hi = u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
        c = t[15][(lo & 0xFF) as usize]
            ^ t[14][((lo >> 8) & 0xFF) as usize]
            ^ t[13][((lo >> 16) & 0xFF) as usize]
            ^ t[12][((lo >> 24) & 0xFF) as usize]
            ^ t[11][((lo >> 32) & 0xFF) as usize]
            ^ t[10][((lo >> 40) & 0xFF) as usize]
            ^ t[9][((lo >> 48) & 0xFF) as usize]
            ^ t[8][(lo >> 56) as usize]
            ^ t[7][(hi & 0xFF) as usize]
            ^ t[6][((hi >> 8) & 0xFF) as usize]
            ^ t[5][((hi >> 16) & 0xFF) as usize]
            ^ t[4][((hi >> 24) & 0xFF) as usize]
            ^ t[3][((hi >> 32) & 0xFF) as usize]
            ^ t[2][((hi >> 40) & 0xFF) as usize]
            ^ t[1][((hi >> 48) & 0xFF) as usize]
            ^ t[0][(hi >> 56) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ====================================================================
// Varints
// ====================================================================

/// Appends `value` as an LEB128 varint (1–10 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

// ====================================================================
// Bounded cursor: the shared little-endian framing reader
// ====================================================================

/// A bounds-checked reader over a byte slice: every read returns a typed
/// [`FormatError`] instead of panicking, and count fields go through
/// [`guarded_count`](Self::guarded_count) so untrusted lengths can never
/// size an allocation the buffer cannot back.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Takes the next `len` bytes.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], FormatError> {
        if self.remaining() < len {
            return Err(FormatError::Truncated { offset: self.pos });
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.bytes(1)?[0])
    }

    /// Next little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, FormatError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2 bytes")))
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// Next LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, FormatError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            value |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                // bits beyond the 64th must be zero (canonical encoding)
                if shift == 63 && byte > 1 {
                    return Err(FormatError::Malformed("varint overflows u64"));
                }
                return Ok(value);
            }
        }
        Err(FormatError::Malformed("varint longer than 10 bytes"))
    }

    /// A varint count field, **guarded**: errors unless the remaining bytes
    /// could possibly hold `count` items of at least `min_item_bytes` each.
    /// The single home of the untrusted-length rule every segment reader
    /// follows — a flipped high bit in a count must produce
    /// [`FormatError::Oversized`], not a multi-gigabyte preallocation.
    pub fn guarded_count(&mut self, min_item_bytes: usize) -> Result<usize, FormatError> {
        let count = self.varint()?;
        let need = count.saturating_mul(min_item_bytes.max(1) as u64);
        if need > self.remaining() as u64 {
            return Err(FormatError::Oversized {
                declared: count,
                available: self.remaining() as u64,
            });
        }
        Ok(count as usize)
    }

    /// A varint-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, FormatError> {
        let len = self.guarded_count(1)?;
        std::str::from_utf8(self.bytes(len)?).map_err(|_| FormatError::BadUtf8)
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), FormatError> {
        if self.remaining() != 0 {
            return Err(FormatError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Appends a varint-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// ====================================================================
// Container writer / reader
// ====================================================================

/// Builds a snapshot container: segments are appended in order, then
/// [`finish`](Self::finish) lays down the header, the CRC'd section table
/// and the payloads.
#[derive(Default)]
pub struct SnapshotWriter {
    segments: Vec<(u16, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one segment. Repeated kinds are allowed (a fleet writes one
    /// [`seg::RUN_COLUMNS`] per run); readers see them in insertion order.
    pub fn push(&mut self, kind: u16, payload: Vec<u8>) {
        self.segments.push((kind, payload));
    }

    /// Serializes the container.
    pub fn finish(self) -> Vec<u8> {
        let payload_len: usize = self.segments.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(16 + 16 * self.segments.len() + payload_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for (kind, payload) in &self.segments {
            out.extend_from_slice(&kind.to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes()); // reserved
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        // header + table CRC: segment CRCs cover the payloads, this one
        // covers the structure, so a flipped bit in a kind or length field
        // is detected at parse — not when a lookup mysteriously misses
        let structure_crc = crc32(&out);
        out.extend_from_slice(&structure_crc.to_le_bytes());
        for (_, payload) in &self.segments {
            out.extend_from_slice(payload);
        }
        out
    }
}

/// A parsed snapshot container: the section table validated, every
/// segment's CRC verified, payloads borrowed from the input buffer.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    segments: Vec<(u16, &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Whether `bytes` begins with the container magic — the sniff used by
    /// adapters that also accept their legacy (v0) framing.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && bytes[..4] == MAGIC
    }

    /// Parses and fully validates a container: header, section table,
    /// exact total length, and one CRC pass over every payload.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, FormatError> {
        Self::parse_with(bytes, true)
    }

    /// [`parse`](Self::parse) minus the per-payload CRC pass. Structure
    /// validation (magic, version, table, structure CRC, exact total
    /// length) still runs; only the payload checksums are skipped. For
    /// callers that can attest the *identical* buffer already passed a
    /// full [`parse`](Self::parse) — e.g. the registry rebinding a
    /// retained `Arc` it validated on a previous fault-in — so a reload
    /// of an unmodified fleet costs O(segments), not O(bytes).
    pub(crate) fn parse_trusted(bytes: &'a [u8]) -> Result<Self, FormatError> {
        Self::parse_with(bytes, false)
    }

    fn parse_with(bytes: &'a [u8], verify_payloads: bool) -> Result<Self, FormatError> {
        let mut cur = Cursor::new(bytes);
        if cur.bytes(4).map_err(|_| FormatError::BadMagic)? != MAGIC {
            return Err(FormatError::BadMagic);
        }
        let version = cur.u16()?;
        if version != VERSION {
            return Err(FormatError::UnsupportedVersion(version));
        }
        if cur.u16()? != 0 {
            return Err(FormatError::Malformed("reserved header bits set"));
        }
        let count = cur.u32()? as u64;
        // length guard: each table entry is 16 bytes
        if count.saturating_mul(16) > cur.remaining() as u64 {
            return Err(FormatError::Oversized {
                declared: count,
                available: cur.remaining() as u64,
            });
        }
        let mut table = Vec::with_capacity(count as usize);
        let mut total: u64 = 0;
        for _ in 0..count {
            let kind = cur.u16()?;
            if cur.u16()? != 0 {
                return Err(FormatError::Malformed("reserved table bits set"));
            }
            let len = cur.u64()?;
            let crc = cur.u32()?;
            total = total.saturating_add(len);
            table.push((kind, len, crc));
        }
        let structure_crc = crc32(&bytes[..cur.position()]);
        if cur.u32()? != structure_crc {
            return Err(FormatError::ChecksumMismatch { kind: 0 });
        }
        if total != cur.remaining() as u64 {
            // either a truncated file or a corrupted length field; report
            // whichever direction the mismatch points
            return if total > cur.remaining() as u64 {
                Err(FormatError::Oversized {
                    declared: total,
                    available: cur.remaining() as u64,
                })
            } else {
                Err(FormatError::TrailingBytes {
                    extra: (cur.remaining() as u64 - total) as usize,
                })
            };
        }
        let mut segments = Vec::with_capacity(table.len());
        for (kind, len, crc) in table {
            let payload = cur.bytes(len as usize)?;
            if verify_payloads && crc32(payload) != crc {
                return Err(FormatError::ChecksumMismatch { kind });
            }
            segments.push((kind, payload));
        }
        cur.finish()?;
        Ok(SnapshotReader { segments })
    }

    /// All segments, in container order.
    pub fn segments(&self) -> &[(u16, &'a [u8])] {
        &self.segments
    }

    /// The first segment of `kind`, or [`FormatError::MissingSegment`].
    pub fn first(&self, kind: u16) -> Result<&'a [u8], FormatError> {
        self.all(kind)
            .next()
            .ok_or(FormatError::MissingSegment { kind })
    }

    /// Every segment of `kind`, in container order.
    pub fn all(&self, kind: u16) -> impl Iterator<Item = &'a [u8]> + '_ {
        self.segments
            .iter()
            .filter(move |(k, _)| *k == kind)
            .map(|&(_, p)| p)
    }
}

// ====================================================================
// Spec-labeling record: scheme kind + specification graph + warm memo
// ====================================================================

pub(crate) fn scheme_tag(kind: SchemeKind) -> u8 {
    match kind {
        SchemeKind::Tcm => 0,
        SchemeKind::Bfs => 1,
        SchemeKind::Dfs => 2,
        SchemeKind::TreeCover => 3,
        SchemeKind::Chain => 4,
        SchemeKind::Hop2 => 5,
    }
}

pub(crate) fn scheme_from_tag(tag: u8) -> Result<SchemeKind, FormatError> {
    Ok(match tag {
        0 => SchemeKind::Tcm,
        1 => SchemeKind::Bfs,
        2 => SchemeKind::Dfs,
        3 => SchemeKind::TreeCover,
        4 => SchemeKind::Chain,
        5 => SchemeKind::Hop2,
        _ => return Err(FormatError::Malformed("unknown scheme tag")),
    })
}

/// The canonical [`seg::SPEC_LABELING`] payload for a scheme kind + spec
/// graph: scheme tag, vertex count, edge count, then the edge list in
/// insertion order — all varint-encoded. This byte string is both what the
/// snapshot stores *and* what `wfp_skl::registry::SpecId` hashes, so a spec
/// id computed in memory always agrees with one recomputed from a loaded
/// snapshot.
pub fn spec_record_payload(kind: SchemeKind, graph: &DiGraph) -> Vec<u8> {
    let mut spec = Vec::new();
    spec.push(scheme_tag(kind));
    put_varint(&mut spec, graph.vertex_count() as u64);
    put_varint(&mut spec, graph.edge_count() as u64);
    for &(from, to) in graph.edges() {
        put_varint(&mut spec, from as u64);
        put_varint(&mut spec, to as u64);
    }
    spec
}

/// Writes the two spec-level segments ([`seg::SPEC_LABELING`] +
/// [`seg::MEMO_WARM`]) describing `ctx` into `w`. The skeleton itself is
/// *not* serialized — the record carries the scheme kind and the
/// specification graph, from which [`read_spec_context`] rebuilds the
/// identical (deterministic) index; what *is* carried verbatim is the
/// dense warm-memo tier, so a restarted service answers its first
/// `+`-LCA probes from the memo instead of re-running warm-up searches.
pub fn write_spec_context(w: &mut SnapshotWriter, ctx: &SpecContext<SpecScheme>, graph: &DiGraph) {
    w.push(
        seg::SPEC_LABELING,
        spec_record_payload(ctx.skeleton().kind(), graph),
    );

    let memo = ctx.memo();
    let mut warm = Vec::new();
    put_varint(&mut warm, memo.side() as u64);
    warm.extend_from_slice(&memo.warm_cells());
    w.push(seg::MEMO_WARM, warm);
}

/// Reads the spec-level segments back: rebuilds the skeleton index from
/// the stored graph + scheme kind and restores the warm memo cells.
/// Returns the context plus the specification graph it was saved for.
pub fn read_spec_context(
    r: &SnapshotReader<'_>,
) -> Result<(SpecContext<SpecScheme>, DiGraph), FormatError> {
    let mut cur = Cursor::new(r.first(seg::SPEC_LABELING)?);
    let kind = scheme_from_tag(cur.u8()?)?;
    let n = cur.varint()?;
    if n > u32::MAX as u64 {
        return Err(FormatError::Malformed("vertex count exceeds u32"));
    }
    let mut graph = DiGraph::with_vertices(n as usize);
    // each edge costs at least two varint bytes
    let m = cur.guarded_count(2)?;
    for _ in 0..m {
        let from = cur.varint()?;
        let to = cur.varint()?;
        if from >= n || to >= n {
            return Err(FormatError::Malformed("edge endpoint out of range"));
        }
        graph.add_edge(from as u32, to as u32);
    }
    cur.finish()?;
    // the schemes assume a DAG (Chain's topological sweep would panic on a
    // cycle); a forged graph must be a typed error, not a crash
    if wfp_graph::topo_order(&graph).is_err() {
        return Err(FormatError::Malformed("specification graph has a cycle"));
    }

    let mut warm = Cursor::new(r.first(seg::MEMO_WARM)?);
    let side = warm.varint()?;
    if side > SharedMemo::SIDE_CAP as u64 {
        return Err(FormatError::Oversized {
            declared: side,
            available: SharedMemo::SIDE_CAP as u64,
        });
    }
    let cells = warm.bytes((side * side) as usize)?;
    warm.finish()?;
    let memo = SharedMemo::from_warm_cells(side as u32, cells)
        .ok_or(FormatError::Malformed("warm memo cell out of range"))?;
    let skeleton = SpecScheme::build(kind, &graph);
    Ok((SpecContext::from_restored(skeleton, memo), graph))
}

impl SpecContext<SpecScheme> {
    /// Persists the spec-level state — the spec-labeling record (scheme
    /// kind + specification graph) and the dense [`SharedMemo`]
    /// warm-snapshot bytes — as one standalone container. A service that
    /// [`load`](Self::load)s it answers its first skeleton-delegated
    /// probes from the restored memo instead of re-running warm-up
    /// searches.
    pub fn save(&self, graph: &DiGraph) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        write_spec_context(&mut w, self, graph);
        w.finish()
    }

    /// Restores a [`save`](Self::save)d context (and the specification
    /// graph it was built over). The skeleton index is rebuilt
    /// deterministically from the stored graph, so answers are
    /// byte-identical to the saved instance; the warm memo is restored
    /// verbatim.
    pub fn load(bytes: &[u8]) -> Result<(Self, DiGraph), FormatError> {
        read_spec_context(&SnapshotReader::parse(bytes)?)
    }
}

// ====================================================================
// Run label-column segments
// ====================================================================

/// Serializes one run's SoA label columns as a [`seg::RUN_COLUMNS`]
/// payload: vertex count, then the four `u32` columns back to back — the
/// layout [`read_run_columns`] maps straight back into a column store with
/// no per-label decoding and no re-labeling.
pub fn write_run_columns(cols: &SoaLabels) -> Vec<u8> {
    let (q1, q2, q3, origin) = cols.raw_columns();
    let mut out = Vec::with_capacity(2 + cols.len() * 16);
    put_varint(&mut out, cols.len() as u64);
    for col in [q1, q2, q3, origin] {
        for &v in col {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Serializes one run's bit-packed label columns as a
/// [`seg::PACKED_COLUMNS`] payload — the compressed successor of
/// [`write_run_columns`], typically 2–3× smaller (version byte, four
/// `(base, width)` frame headers, vertex count, packed words).
pub fn write_packed_columns(cols: &PackedColumns) -> Vec<u8> {
    cols.to_payload()
}

/// Parses a [`write_packed_columns`] payload, rejecting inconsistent
/// frame headers (width > 32, `base + mask` overflowing `u32`, counts the
/// stored words cannot back) before sizing any allocation.
pub fn read_packed_columns(payload: &[u8]) -> Result<PackedColumns, FormatError> {
    PackedColumns::from_payload(payload)
}

/// Serializes one run's bit-packed label columns as a
/// [`seg::PACKED_COLUMNS_ALIGNED`] payload: the same per-column frames as
/// [`write_packed_columns`], laid out so every column's `u64` words start
/// 8-byte-aligned relative to the payload — the layout
/// [`crate::PackedColumnsView`] serves straight from the load buffer.
pub fn write_packed_columns_aligned(cols: &PackedColumns) -> Vec<u8> {
    cols.to_aligned_payload()
}

/// Parses a [`write_packed_columns_aligned`] payload into **owned**
/// columns — the copy path, for callers without a shareable load buffer.
/// Zero-copy callers bind a [`crate::PackedColumnsView`] instead.
pub fn read_packed_columns_aligned(payload: &[u8]) -> Result<PackedColumns, FormatError> {
    PackedColumns::from_aligned_payload(payload)
}

/// Parses a [`write_run_columns`] payload.
pub fn read_run_columns(payload: &[u8]) -> Result<SoaLabels, FormatError> {
    let mut cur = Cursor::new(payload);
    // 16 bytes per vertex across the four columns
    let n = cur.guarded_count(16)?;
    let read_col = |cur: &mut Cursor<'_>| -> Result<Vec<u32>, FormatError> {
        let raw = cur.bytes(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    };
    let q1 = read_col(&mut cur)?;
    let q2 = read_col(&mut cur)?;
    let q3 = read_col(&mut cur)?;
    let origin = read_col(&mut cur)?;
    cur.finish()?;
    SoaLabels::from_raw_columns(q1, q2, q3, origin)
        .ok_or(FormatError::Malformed("column lengths disagree"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.varint().unwrap(), v);
            cur.finish().unwrap();
        }
        // non-canonical: 11 continuation bytes
        let mut cur = Cursor::new(&[0x80u8; 12]);
        assert!(cur.varint().is_err());
    }

    #[test]
    fn container_round_trips_and_validates() {
        let mut w = SnapshotWriter::new();
        w.push(7, vec![1, 2, 3]);
        w.push(9, Vec::new());
        w.push(7, vec![4, 5]);
        let bytes = w.finish();
        assert!(SnapshotReader::sniff(&bytes));
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(r.segments().len(), 3);
        assert_eq!(r.first(7).unwrap(), &[1, 2, 3]);
        assert_eq!(r.all(7).collect::<Vec<_>>(), vec![&[1u8, 2, 3][..], &[4, 5][..]]);
        assert_eq!(r.first(9).unwrap(), &[] as &[u8]);
        assert_eq!(
            r.first(8).unwrap_err(),
            FormatError::MissingSegment { kind: 8 }
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut w = SnapshotWriter::new();
        w.push(1, vec![0xAB; 37]);
        w.push(2, (0..64u8).collect());
        let bytes = w.finish();
        assert!(SnapshotReader::parse(&bytes).is_ok());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut fuzzed = bytes.clone();
                fuzzed[byte] ^= 1 << bit;
                assert!(
                    SnapshotReader::parse(&fuzzed).is_err(),
                    "flip at {byte}:{bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_offset_errors_cleanly() {
        let mut w = SnapshotWriter::new();
        w.push(3, vec![9; 21]);
        let bytes = w.finish();
        for len in 0..bytes.len() {
            assert!(
                SnapshotReader::parse(&bytes[..len]).is_err(),
                "prefix of {len} bytes parsed"
            );
        }
        // appended garbage is trailing bytes
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(matches!(
            SnapshotReader::parse(&extra),
            Err(FormatError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let bytes = SnapshotWriter::new().finish();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            SnapshotReader::parse(&bad_magic).unwrap_err(),
            FormatError::BadMagic
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFE;
        assert_eq!(
            SnapshotReader::parse(&bad_version).unwrap_err(),
            FormatError::UnsupportedVersion(0x00FE)
        );
        assert_eq!(
            SnapshotReader::parse(b"WF").unwrap_err(),
            FormatError::BadMagic
        );
    }

    #[test]
    fn oversized_counts_are_guarded() {
        // container level: a table claiming u32::MAX segments over 0 bytes
        let mut bytes = SnapshotWriter::new().finish();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            SnapshotReader::parse(&bytes),
            Err(FormatError::Oversized { .. })
        ));
        // cursor level: guarded_count over a tiny remainder
        let mut payload = Vec::new();
        put_varint(&mut payload, 1 << 40);
        let mut cur = Cursor::new(&payload);
        assert!(matches!(
            cur.guarded_count(16),
            Err(FormatError::Oversized { .. })
        ));
    }

    #[test]
    fn errors_render_and_are_std_errors() {
        let e: Box<dyn std::error::Error> = Box::new(FormatError::ChecksumMismatch { kind: 3 });
        assert!(e.to_string().contains("CRC-32"));
        assert!(FormatError::BadMagic.to_string().contains("magic"));
        assert!(FormatError::Oversized {
            declared: 9,
            available: 1
        }
        .to_string()
        .contains("9"));
    }
}
