//! Synthetic data-item attachment for runs.
//!
//! The paper's run graphs carry data items on every channel (Figure 11).
//! This generator annotates an existing run: each module execution produces
//! a random number of items, and each item flows over a random nonempty
//! subset of the producer's outgoing edges (multi-consumer items exercise
//! the `k > 1` cases of §6).

use wfp_graph::rng::Xoshiro256;
use wfp_model::{Run, RunEdgeId};

use crate::data::{RunData, RunDataBuilder};

/// Attaches synthetic data items to `run`.
///
/// `mean_items` is the expected number of items produced per module
/// execution with outgoing edges (at least one item is attached to every
/// outgoing edge so no channel is empty, matching the paper's figures).
pub fn attach_data(run: &Run, seed: u64, mean_items: f64) -> RunData {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xc2b2_ae3d_27d4_eb4f);
    let mut builder = RunDataBuilder::new(run);
    let mut next_id = 0usize;
    for v in run.vertices() {
        let out: Vec<RunEdgeId> = run
            .edge_ids()
            .filter(|&e| run.edge(e).0 == v)
            .collect();
        if out.is_empty() {
            continue;
        }
        // every outgoing channel carries at least one dedicated item
        for &e in &out {
            builder
                .add_item(format!("x{next_id}"), &[e])
                .expect("generated names are unique");
            next_id += 1;
        }
        // plus extra (possibly shared) items
        let extra = if mean_items <= 0.0 {
            0
        } else {
            rng.geometric(1.0 / (1.0 + mean_items)) as usize
        };
        for _ in 0..extra {
            // random nonempty subset of the out-edges
            let mut subset: Vec<RunEdgeId> = out
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.5))
                .collect();
            if subset.is_empty() {
                subset.push(out[rng.gen_usize(out.len())]);
            }
            builder
                .add_item(format!("x{next_id}"), &subset)
                .expect("subset shares the producer by construction");
            next_id += 1;
        }
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_model::fixtures::{paper_run, paper_spec};

    #[test]
    fn every_channel_carries_data() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let data = attach_data(&run, 3, 1.0);
        for e in run.edge_ids() {
            assert!(
                !data.data_on_edge(e).is_empty(),
                "edge {e} carries no data"
            );
        }
        assert!(data.item_count() >= run.edge_count());
    }

    #[test]
    fn items_have_single_producers() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let data = attach_data(&run, 9, 2.0);
        for (_, item) in data.items() {
            assert!(!item.consumers.is_empty());
            // producer consistency is enforced by the builder; spot-check
            // that consumers are successors of the producer
            for &c in &item.consumers {
                assert!(
                    run.graph().has_edge(item.producer.raw(), c.raw()),
                    "consumer not adjacent to producer"
                );
            }
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let a = attach_data(&run, 1, 1.0);
        let b = attach_data(&run, 1, 1.0);
        assert_eq!(a.item_count(), b.item_count());
        // mean 0 still gives one item per edge
        let zero = attach_data(&run, 1, 0.0);
        assert_eq!(zero.item_count(), run.edge_count());
    }
}
