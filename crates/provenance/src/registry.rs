//! Registry data provenance: §6 dependency queries keyed by
//! `(spec, run, item)` — the multi-spec layer above [`crate::FleetIndex`].
//!
//! A [`FleetIndex`](crate::FleetIndex) answers item-level queries across
//! many runs of *one* specification; [`RegistryIndex`] routes the same
//! predicates across many specifications, each served by its own fleet
//! inside a [`ServiceRegistry`]. Items are stored in the facade (they are
//! a few vertex references per item — cheap next to label columns), while
//! the label state below them participates fully in the registry's lazy
//! loading and pressure-driven eviction: a query against an offloaded
//! spec transparently reloads its fleet, answers, and re-enforces the
//! byte budget.
//!
//! Queries take `&mut self` for exactly that reason — residency may
//! change under a probe. Batches may mix specs and runs freely; answers
//! return in input order.

use wfp_graph::FxHashMap;
use wfp_model::{RunVertexId, Specification};
use wfp_skl::fleet::{FleetError, RunId};
use wfp_skl::registry::{RegistryError, RegistryStats, ServiceRegistry, SpecId};
use wfp_skl::RunLabel;
use wfp_speclabel::SchemeKind;

use crate::data::{DataItem, DataItemId, RunData};

/// A multi-spec provenance index: item-level §6 queries routed through a
/// [`ServiceRegistry`]. See the module docs.
pub struct RegistryIndex<'s> {
    registry: ServiceRegistry<'s>,
    /// Per spec: the registered items of each run, indexed by `RunId`
    /// slot. Kept out of the registry's eviction domain.
    items: FxHashMap<u64, Vec<Vec<DataItem>>>,
}

impl Default for RegistryIndex<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'s> RegistryIndex<'s> {
    /// An empty index over a fresh, memory-backed registry.
    pub fn new() -> Self {
        RegistryIndex {
            registry: ServiceRegistry::new(),
            items: FxHashMap::default(),
        }
    }

    /// An empty index with a registry byte budget (see
    /// [`ServiceRegistry::with_budget`]).
    pub fn with_budget(budget: usize) -> Self {
        RegistryIndex {
            registry: ServiceRegistry::with_budget(budget),
            items: FxHashMap::default(),
        }
    }

    /// Wraps an existing registry. Its already-registered runs have no
    /// items until registered here — prefer registering through the
    /// index.
    pub fn from_registry(registry: ServiceRegistry<'s>) -> Self {
        RegistryIndex {
            registry,
            items: FxHashMap::default(),
        }
    }

    /// The underlying registry (for vertex-level probes and stats).
    pub fn registry(&self) -> &ServiceRegistry<'s> {
        &self.registry
    }

    /// The underlying registry, mutably (budget changes, explicit
    /// eviction, persistence).
    pub fn registry_mut(&mut self) -> &mut ServiceRegistry<'s> {
        &mut self.registry
    }

    /// Registers a specification for serving under `kind`.
    pub fn register_spec(
        &mut self,
        spec: &Specification,
        kind: SchemeKind,
    ) -> Result<SpecId, RegistryError> {
        let id = self.registry.register_spec(spec, kind)?;
        self.items.entry(id.0).or_default();
        Ok(id)
    }

    /// Registers one run of `spec`: its labels (into the spec's fleet)
    /// and its data items.
    pub fn register_run(
        &mut self,
        spec: SpecId,
        labels: &[RunLabel],
        data: &RunData,
    ) -> Result<RunId, RegistryError> {
        let run = self.registry.register_labels(spec, labels)?;
        let slots = self.items.entry(spec.0).or_default();
        while slots.len() <= run.index() {
            slots.push(Vec::new());
        }
        slots[run.index()] = data.items().map(|(_, item)| item.clone()).collect();
        Ok(run)
    }

    /// Number of items registered for `(spec, run)`.
    pub fn item_count(&self, spec: SpecId, run: RunId) -> Result<usize, RegistryError> {
        self.registry.run_count(spec)?; // validates the spec id
        Ok(self
            .items
            .get(&spec.0)
            .and_then(|slots| slots.get(run.index()))
            .map_or(0, Vec::len))
    }

    /// Aggregate registry accounting (residency, budget, evictions).
    pub fn stats(&self) -> RegistryStats {
        self.registry.stats()
    }

    fn item(&self, spec: SpecId, run: RunId, x: DataItemId) -> Result<&DataItem, RegistryError> {
        if !self.registry.contains(spec) {
            return Err(RegistryError::UnknownSpec(spec));
        }
        self.items
            .get(&spec.0)
            .and_then(|slots| slots.get(run.index()))
            .and_then(|items| items.get(x.index()))
            .ok_or(RegistryError::Fleet {
                spec,
                error: FleetError::UnknownItem { run, item: x.0 },
            })
    }

    // ---------------- §6 dependency queries, cross-spec ----------------

    /// Does data item `x` of `(spec, run)` depend on data item `x'` of
    /// the same run?
    pub fn data_depends_on_data(
        &mut self,
        spec: SpecId,
        run: RunId,
        x: DataItemId,
        x_prime: DataItemId,
    ) -> Result<bool, RegistryError> {
        let out = self.item(spec, run, x)?.producer;
        let consumers = self.item(spec, run, x_prime)?.consumers.clone();
        for v in consumers {
            if self.registry.answer(spec, run, v, out)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Does data item `x` of `(spec, run)` depend on module execution
    /// `v`?
    pub fn data_depends_on_module(
        &mut self,
        spec: SpecId,
        run: RunId,
        x: DataItemId,
        v: RunVertexId,
    ) -> Result<bool, RegistryError> {
        let out = self.item(spec, run, x)?.producer;
        self.registry.answer(spec, run, v, out)
    }

    /// Does module execution `v` of `(spec, run)` depend on data item
    /// `x`?
    pub fn module_depends_on_data(
        &mut self,
        spec: SpecId,
        run: RunId,
        v: RunVertexId,
        x: DataItemId,
    ) -> Result<bool, RegistryError> {
        let consumers = self.item(spec, run, x)?.consumers.clone();
        for u in consumers {
            if self.registry.answer(spec, run, u, v)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Bulk [`data_depends_on_data`](Self::data_depends_on_data) over
    /// `(spec, run, x, x')` tuples that may mix specs and runs freely:
    /// every tuple expands to its `k` vertex probes, the whole batch
    /// flows through the registry's spec- and run-sharded kernels once
    /// (lazily loading fleets as their first probe arrives), and answers
    /// fold back in input order.
    pub fn data_depends_on_data_batch(
        &mut self,
        queries: &[(SpecId, RunId, DataItemId, DataItemId)],
    ) -> Result<Vec<bool>, RegistryError> {
        let mut probes = Vec::new();
        let mut spans = Vec::with_capacity(queries.len());
        for &(spec, run, x, x_prime) in queries {
            let out = self.item(spec, run, x)?.producer;
            let start = probes.len();
            probes.extend(
                self.item(spec, run, x_prime)?
                    .consumers
                    .iter()
                    .map(|&v| (spec, run, v, out)),
            );
            spans.push(start..probes.len());
        }
        let answers = self.registry.answer_batch(&probes)?;
        Ok(spans
            .into_iter()
            .map(|span| answers[span].iter().any(|&a| a))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::attach_data;
    use wfp_model::fixtures::{paper_run, paper_spec};
    use wfp_skl::{label_run, LabeledRun};
    use wfp_speclabel::SpecScheme;

    #[test]
    fn registry_facade_matches_per_run_provenance_index() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let data = attach_data(&run, 0xC0FFEE, 1.5);
        let mut index = RegistryIndex::new();
        let mut ids = Vec::new();
        for kind in [SchemeKind::Tcm, SchemeKind::Chain, SchemeKind::Hop2] {
            let spec_id = index.register_spec(&spec, kind).unwrap();
            let (labels, _) = label_run(&spec, &run).unwrap();
            let rid = index.register_run(spec_id, &labels, &data).unwrap();
            ids.push((spec_id, rid, kind));
        }

        // per-run oracle: the single-run §6 index over the same items
        let item_count = index.item_count(ids[0].0, ids[0].1).unwrap();
        assert!(item_count > 1);
        let mut queries = Vec::new();
        for x in 0..item_count as u32 {
            for y in 0..item_count as u32 {
                for &(spec_id, rid, _) in &ids {
                    queries.push((spec_id, rid, DataItemId(x), DataItemId(y)));
                }
            }
        }
        let batched = index.data_depends_on_data_batch(&queries).unwrap();
        for (i, &(spec_id, rid, kind)) in ids.iter().enumerate() {
            let labeled =
                LabeledRun::build(&spec, SpecScheme::build(kind, spec.graph()), &run).unwrap();
            let oracle = crate::ProvenanceIndex::build(&labeled, &data);
            for x in 0..item_count as u32 {
                for y in 0..item_count as u32 {
                    let want = oracle.data_depends_on_data(DataItemId(x), DataItemId(y));
                    assert_eq!(
                        index
                            .data_depends_on_data(spec_id, rid, DataItemId(x), DataItemId(y))
                            .unwrap(),
                        want,
                        "{kind}: x{x} on x{y}"
                    );
                    let pos = (x as usize * item_count + y as usize) * ids.len() + i;
                    assert_eq!(batched[pos], want, "{kind}: batched x{x} on x{y}");
                }
            }
        }

        // the same answers survive eviction + transparent reload
        for &(spec_id, _, _) in &ids {
            index.registry_mut().evict(spec_id).unwrap();
        }
        assert_eq!(
            index.data_depends_on_data_batch(&queries).unwrap(),
            batched
        );
        assert_eq!(index.stats().lazy_loads, ids.len() as u64);

        // unknown item and unknown spec are typed errors
        assert!(matches!(
            index.data_depends_on_data(ids[0].0, ids[0].1, DataItemId(0), DataItemId(9999)),
            Err(RegistryError::Fleet {
                error: FleetError::UnknownItem { .. },
                ..
            })
        ));
        assert!(matches!(
            index.item_count(SpecId(1), RunId(0)),
            Err(RegistryError::UnknownSpec(_))
        ));
    }
}
