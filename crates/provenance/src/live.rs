//! Live data provenance: §6 dependency queries over an *in-flight* run.
//!
//! [`crate::ProvenanceIndex`] labels data items after a run completes.
//! [`LiveIndex`] removes that wait: it wraps a [`LiveRun`] (the §9
//! query-while-running engine of `wfp-skl`), forwards the workflow
//! engine's structural events, and lets data items be registered **the
//! moment their producing module executes**. Every §6 dependency predicate
//! — data-on-data, data-on-module, module-on-data, scalar and batched — is
//! answerable at any intermediate moment, over exactly the vertices and
//! items seen so far.
//!
//! Items are stored as `(producer, consumers)` vertex references rather
//! than materialized labels: the live engine's columns *are* the labels,
//! so a dependency query is `k` live πr probes sharing the engine's
//! lazily-grown skeleton memo (§6's `k + 1` factor, unchanged).
//!
//! [`LiveIndex::freeze`] completes the run and hands back a frozen
//! [`QueryEngine`] (zero re-labeling, warm memo — see
//! [`LiveRun::freeze`]) together with the registered items, ready for the
//! offline store ([`crate::store`]) or index.

use wfp_model::{ModuleId, RunVertexId, Specification, SubgraphId};
use wfp_skl::live::LiveRun;
use wfp_skl::online::OnlineError;
use wfp_skl::QueryEngine;
use wfp_speclabel::SpecIndex;

use crate::data::{DataError, DataItem, DataItemId};

/// A provenance index over a run that is still executing. See the module
/// docs.
pub struct LiveIndex<'s, S> {
    live: LiveRun<'s, S>,
    items: Vec<DataItem>,
}

impl<'s, S: SpecIndex> LiveIndex<'s, S> {
    /// Starts a live index over a fresh run of `spec`.
    pub fn new(spec: &'s Specification, skeleton: S) -> Self {
        Self::from_live(LiveRun::new(spec, skeleton))
    }

    /// Wraps an already-started live run (its executed vertices are valid
    /// producers/consumers immediately).
    pub fn from_live(live: LiveRun<'s, S>) -> Self {
        LiveIndex {
            live,
            items: Vec::new(),
        }
    }

    // ---------------- event ingestion ----------------------------------

    /// Forwards [`LiveRun::begin_group`].
    pub fn begin_group(&mut self, sg: SubgraphId) -> Result<(), OnlineError> {
        self.live.begin_group(sg)
    }

    /// Forwards [`LiveRun::begin_copy`].
    pub fn begin_copy(&mut self) -> Result<(), OnlineError> {
        self.live.begin_copy()
    }

    /// Forwards [`LiveRun::exec`]; the returned vertex can immediately
    /// produce and consume data items.
    pub fn exec(&mut self, module: ModuleId) -> Result<RunVertexId, OnlineError> {
        self.live.exec(module)
    }

    /// Forwards [`LiveRun::end_copy`].
    pub fn end_copy(&mut self) -> Result<(), OnlineError> {
        self.live.end_copy()
    }

    /// Forwards [`LiveRun::end_group`].
    pub fn end_group(&mut self) -> Result<(), OnlineError> {
        self.live.end_group()
    }

    // ---------------- item registration --------------------------------

    /// Registers a data item written by `producer` (typically the vertex
    /// returned by the [`exec`](Self::exec) that just ran) and read by
    /// `consumers`. Consumers may be extended later via
    /// [`add_consumer`](Self::add_consumer) as downstream modules execute.
    pub fn register_item(
        &mut self,
        name: impl Into<String>,
        producer: RunVertexId,
        consumers: &[RunVertexId],
    ) -> Result<DataItemId, DataError> {
        let name = name.into();
        if self.items.iter().any(|it| it.name == name) {
            return Err(DataError::DuplicateName(name));
        }
        let n = self.live.vertex_count();
        for &v in std::iter::once(&producer).chain(consumers) {
            if v.index() >= n {
                return Err(DataError::BadVertex(v));
            }
        }
        let mut consumers: Vec<RunVertexId> = consumers.to_vec();
        consumers.sort_unstable();
        consumers.dedup();
        let id = DataItemId(self.items.len() as u32);
        self.items.push(DataItem {
            name,
            producer,
            consumers,
        });
        Ok(id)
    }

    /// Records that `consumer` (an already-executed vertex) read item `x`
    /// — the streaming counterpart of a data item flowing on a later edge.
    pub fn add_consumer(
        &mut self,
        x: DataItemId,
        consumer: RunVertexId,
    ) -> Result<(), DataError> {
        if consumer.index() >= self.live.vertex_count() {
            return Err(DataError::BadVertex(consumer));
        }
        let consumers = &mut self.items[x.index()].consumers;
        if let Err(at) = consumers.binary_search(&consumer) {
            consumers.insert(at, consumer);
        }
        Ok(())
    }

    /// The registered item `x`.
    pub fn item(&self, x: DataItemId) -> &DataItem {
        &self.items[x.index()]
    }

    /// Number of registered items.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Finds an item by name.
    pub fn item_by_name(&self, name: &str) -> Option<DataItemId> {
        self.items
            .iter()
            .position(|it| it.name == name)
            .map(|i| DataItemId(i as u32))
    }

    /// The wrapped live engine (for raw vertex-level queries and stats).
    pub fn live(&self) -> &LiveRun<'s, S> {
        &self.live
    }

    // ---------------- §6 dependency queries, live ----------------------

    /// Does data item `x` depend on data item `x'`? (`x'` flowed into the
    /// computation that produced `x`.) Valid mid-run.
    pub fn data_depends_on_data(&self, x: DataItemId, x_prime: DataItemId) -> bool {
        let out = self.items[x.index()].producer;
        self.items[x_prime.index()]
            .consumers
            .iter()
            .any(|&v| self.live.answer(v, out))
    }

    /// Does data item `x` depend on module execution `v`?
    pub fn data_depends_on_module(&self, x: DataItemId, v: RunVertexId) -> bool {
        self.live.answer(v, self.items[x.index()].producer)
    }

    /// Does module execution `v` depend on data item `x`?
    pub fn module_depends_on_data(&self, v: RunVertexId, x: DataItemId) -> bool {
        self.items[x.index()]
            .consumers
            .iter()
            .any(|&u| self.live.answer(u, v))
    }

    /// Bulk [`data_depends_on_data`](Self::data_depends_on_data): expands
    /// every item pair to its vertex probes and answers them through one
    /// batched engine pass, sharing the live memo.
    pub fn data_depends_on_data_batch(&self, pairs: &[(DataItemId, DataItemId)]) -> Vec<bool> {
        // flatten: item pair -> k vertex pairs, then fold `any` back
        let mut probes = Vec::new();
        let mut spans = Vec::with_capacity(pairs.len());
        for &(x, x_prime) in pairs {
            let out = self.items[x.index()].producer;
            let start = probes.len();
            probes.extend(
                self.items[x_prime.index()]
                    .consumers
                    .iter()
                    .map(|&v| (v, out)),
            );
            spans.push(start..probes.len());
        }
        let answers = self.live.answer_batch(&probes);
        spans
            .into_iter()
            .map(|span| answers[span].iter().any(|&a| a))
            .collect()
    }

    /// Bulk [`data_depends_on_module`](Self::data_depends_on_module).
    pub fn data_depends_on_module_batch(
        &self,
        pairs: &[(DataItemId, RunVertexId)],
    ) -> Vec<bool> {
        let probes: Vec<_> = pairs
            .iter()
            .map(|&(x, v)| (v, self.items[x.index()].producer))
            .collect();
        self.live.answer_batch(&probes)
    }

    /// Bulk [`module_depends_on_data`](Self::module_depends_on_data).
    pub fn module_depends_on_data_batch(
        &self,
        pairs: &[(RunVertexId, DataItemId)],
    ) -> Vec<bool> {
        let mut probes = Vec::new();
        let mut spans = Vec::with_capacity(pairs.len());
        for &(v, x) in pairs {
            let start = probes.len();
            probes.extend(self.items[x.index()].consumers.iter().map(|&u| (u, v)));
            spans.push(start..probes.len());
        }
        let answers = self.live.answer_batch(&probes);
        spans
            .into_iter()
            .map(|span| answers[span].iter().any(|&a| a))
            .collect()
    }

    // ---------------- freeze -------------------------------------------

    /// Completes the run: hands back the frozen [`QueryEngine`] (exact
    /// offline labels, warm memo — [`LiveRun::freeze`]) and the registered
    /// items, whose vertex references stay valid against the engine.
    pub fn freeze(self) -> Result<(QueryEngine<S>, Vec<DataItem>), OnlineError> {
        Ok((self.live.freeze()?, self.items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_model::fixtures::{paper_spec, paper_subgraph};
    use wfp_speclabel::{SchemeKind, SpecScheme};

    /// Streams the paper run's upper branch and registers Figure 11's
    /// items as their producers execute.
    #[test]
    fn figure_11_dependencies_answer_mid_run() {
        let spec = paper_spec();
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let f1 = paper_subgraph(&spec, "F1");
        let l2 = paper_subgraph(&spec, "L2");
        let mut idx = LiveIndex::new(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));

        let a1 = idx.exec(m("a")).unwrap();
        idx.begin_group(f1).unwrap();
        idx.begin_copy().unwrap();
        idx.begin_group(l2).unwrap();
        idx.begin_copy().unwrap();
        let b1 = idx.exec(m("b")).unwrap();
        // x1 produced by a1, consumed by b1 (and later b3); x2 likewise
        let x1 = idx.register_item("x1", a1, &[b1]).unwrap();
        let x2 = idx.register_item("x2", a1, &[b1]).unwrap();
        let c1 = idx.exec(m("c")).unwrap();
        let x4 = idx.register_item("x4", b1, &[c1]).unwrap();
        idx.end_copy().unwrap();
        idx.begin_copy().unwrap();
        let _b2 = idx.exec(m("b")).unwrap();
        let _c2 = idx.exec(m("c")).unwrap();
        idx.end_copy().unwrap();
        idx.end_group().unwrap();
        idx.end_copy().unwrap();

        // the run is mid-flight: F1's second copy hasn't happened yet,
        // but x4's lineage is already queryable
        assert!(idx.data_depends_on_data(x4, x1));
        assert!(idx.data_depends_on_data(x4, x2));
        assert!(!idx.data_depends_on_data(x1, x4));
        assert!(idx.data_depends_on_module(x4, a1));
        assert!(idx.module_depends_on_data(c1, x1));
        assert!(!idx.module_depends_on_data(a1, x4));

        // second fork copy arrives; x1 gains a consumer there
        idx.begin_copy().unwrap();
        idx.begin_group(l2).unwrap();
        idx.begin_copy().unwrap();
        let b3 = idx.exec(m("b")).unwrap();
        idx.add_consumer(x1, b3).unwrap();
        let c3 = idx.exec(m("c")).unwrap();
        let x6 = idx.register_item("x6", c3, &[]).unwrap();
        idx.end_copy().unwrap();
        idx.end_group().unwrap();
        idx.end_copy().unwrap();
        idx.end_group().unwrap();

        // Example 10: x6 depends on x1 (via b3) but not on x2 (b1 is a
        // parallel fork copy)
        assert!(idx.data_depends_on_data(x6, x1));
        assert!(!idx.data_depends_on_data(x6, x2));

        // batch paths agree with the scalars
        let ids = [x1, x2, x4, x6];
        let dd: Vec<_> = ids
            .iter()
            .flat_map(|&x| ids.iter().map(move |&y| (x, y)))
            .collect();
        let batch = idx.data_depends_on_data_batch(&dd);
        for (&(x, y), &ans) in dd.iter().zip(&batch) {
            assert_eq!(ans, idx.data_depends_on_data(x, y), "({x}, {y})");
        }
        let n = idx.live().vertex_count();
        let dm: Vec<_> = ids
            .iter()
            .flat_map(|&x| (0..n as u32).map(move |v| (x, RunVertexId(v))))
            .collect();
        let batch = idx.data_depends_on_module_batch(&dm);
        for (&(x, v), &ans) in dm.iter().zip(&batch) {
            assert_eq!(ans, idx.data_depends_on_module(x, v), "({x}, {v})");
        }
        let md: Vec<_> = dm.iter().map(|&(x, v)| (v, x)).collect();
        let batch = idx.module_depends_on_data_batch(&md);
        for (&(v, x), &ans) in md.iter().zip(&batch) {
            assert_eq!(ans, idx.module_depends_on_data(v, x), "({v}, {x})");
        }
    }

    #[test]
    fn registration_is_validated() {
        let spec = paper_spec();
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let mut idx = LiveIndex::new(&spec, SpecScheme::build(SchemeKind::Tcm, spec.graph()));
        let a1 = idx.exec(m("a")).unwrap();
        idx.register_item("x", a1, &[]).unwrap();
        assert!(matches!(
            idx.register_item("x", a1, &[]),
            Err(DataError::DuplicateName(_))
        ));
        assert!(matches!(
            idx.register_item("y", RunVertexId(99), &[]),
            Err(DataError::BadVertex(_))
        ));
        assert!(matches!(
            idx.add_consumer(DataItemId(0), RunVertexId(99)),
            Err(DataError::BadVertex(_))
        ));
        assert_eq!(idx.item_by_name("x"), Some(DataItemId(0)));
        assert_eq!(idx.item_count(), 1);
        assert_eq!(idx.item(DataItemId(0)).producer, a1);
    }

    #[test]
    fn freeze_returns_engine_and_items() {
        let spec = paper_spec();
        let m = |n: &str| spec.module_by_name(n).unwrap();
        let f1 = paper_subgraph(&spec, "F1");
        let f2 = paper_subgraph(&spec, "F2");
        let l1 = paper_subgraph(&spec, "L1");
        let l2 = paper_subgraph(&spec, "L2");
        let mut idx = LiveIndex::new(&spec, SpecScheme::build(SchemeKind::Bfs, spec.graph()));
        let a1 = idx.exec(m("a")).unwrap();
        idx.begin_group(f1).unwrap();
        idx.begin_copy().unwrap();
        idx.begin_group(l2).unwrap();
        idx.begin_copy().unwrap();
        let b1 = idx.exec(m("b")).unwrap();
        idx.exec(m("c")).unwrap();
        idx.end_copy().unwrap();
        idx.end_group().unwrap();
        idx.end_copy().unwrap();
        idx.end_group().unwrap();
        let d1 = idx.exec(m("d")).unwrap();
        idx.begin_group(l1).unwrap();
        idx.begin_copy().unwrap();
        idx.exec(m("e")).unwrap();
        idx.begin_group(f2).unwrap();
        idx.begin_copy().unwrap();
        idx.exec(m("f")).unwrap();
        idx.end_copy().unwrap();
        idx.end_group().unwrap();
        idx.exec(m("g")).unwrap();
        idx.end_copy().unwrap();
        idx.end_group().unwrap();
        let h1 = idx.exec(m("h")).unwrap();
        idx.register_item("x", a1, &[b1]).unwrap();

        let live_ans = idx.live().answer(a1, h1);
        let (engine, items) = idx.freeze().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].producer, a1);
        assert_eq!(engine.answer(a1, h1), live_ans);
        assert!(engine.answer(d1, h1));
    }
}
