//! Data provenance over labeled workflow runs (paper §6).
//!
//! Module labels from `wfp-skl` extend to the data items flowing over a
//! run's channels: each item is labeled by its producer's label plus the
//! labels of its consumers, and every provenance question ("does x₈ depend
//! on x₁?", "which data was affected by module v?") reduces to a constant
//! number of module-reachability probes.
//!
//! * [`data`] — the `Data(e)` model: items, producers, consumers.
//! * [`index`] — data labels and the three dependency predicates.
//! * [`live`] — §6 queries over a run that is *still executing* (the §9
//!   query-while-running scenario), with registration as modules execute.
//! * [`fleet`] — §6 queries keyed by `(run, item)` **across many runs** of
//!   one specification, served by a single shared skeleton context.
//! * [`store`] — a byte-serialized provenance store answering queries
//!   without the run graph (the "store labels in a database" scenario that
//!   motivates the paper).
//! * [`gen`] — synthetic data attachment for benchmarks and tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod data;
pub mod fleet;
pub mod gen;
pub mod index;
pub mod live;
pub mod registry;
pub mod store;

pub use data::{DataError, DataItem, DataItemId, RunData, RunDataBuilder};
pub use fleet::FleetIndex;
pub use gen::attach_data;
pub use index::{DataLabel, ProvenanceIndex};
pub use live::LiveIndex;
pub use registry::RegistryIndex;
pub use store::{serialize, serialize_v0, StoreError, StoredProvenance};
