//! Data items on run edges (paper §6).
//!
//! Each run edge `e = (u, v)` carries a set `Data(e)` of data items produced
//! by `u` and consumed by `v`. A data item is created by a *unique* module
//! execution (its `Output`) but may be read by several (`Inputs`) — e.g.
//! `x1` in Figure 11 flows on both `(a1, b1)` and `(a1, b3)`.

use wfp_model::{Run, RunEdgeId, RunVertexId};

/// Identifier of a data item within a [`RunData`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataItemId(pub u32);

impl DataItemId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DataItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl std::fmt::Debug for DataItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// One data item: its name, producer and consumers.
#[derive(Clone, Debug)]
pub struct DataItem {
    /// Human-readable name (unique within the run's data).
    pub name: String,
    /// `Output(x)`: the unique module execution that wrote the item.
    pub producer: RunVertexId,
    /// `Inputs(x)`: the module executions that read the item (deduplicated,
    /// sorted).
    pub consumers: Vec<RunVertexId>,
}

/// Violations of the data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// An item was declared with no carrying edges.
    NoEdges(String),
    /// An item's carrying edges have different tails — it would have two
    /// producers.
    MultipleProducers(String),
    /// Duplicate item name.
    DuplicateName(String),
    /// An edge id is out of range for the run.
    BadEdge(RunEdgeId),
    /// A vertex reference is out of range (live registration: the vertex
    /// has not executed yet).
    BadVertex(RunVertexId),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::NoEdges(n) => write!(f, "data item {n:?} flows on no edge"),
            DataError::MultipleProducers(n) => {
                write!(f, "data item {n:?} would be produced by two modules")
            }
            DataError::DuplicateName(n) => write!(f, "duplicate data item name {n:?}"),
            DataError::BadEdge(e) => write!(f, "edge {e} out of range"),
            DataError::BadVertex(v) => {
                write!(f, "vertex {v} out of range (not executed yet)")
            }
        }
    }
}

impl std::error::Error for DataError {}

/// The data annotation of a run: `Data(e)` per edge plus the item registry.
pub struct RunData {
    items: Vec<DataItem>,
    per_edge: Vec<Vec<DataItemId>>,
}

impl RunData {
    /// Number of data items.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// The item with id `x`.
    pub fn item(&self, x: DataItemId) -> &DataItem {
        &self.items[x.index()]
    }

    /// All items with their ids.
    pub fn items(&self) -> impl Iterator<Item = (DataItemId, &DataItem)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, it)| (DataItemId(i as u32), it))
    }

    /// `Data(e)`: the items flowing over edge `e`.
    pub fn data_on_edge(&self, e: RunEdgeId) -> &[DataItemId] {
        &self.per_edge[e.index()]
    }

    /// Finds an item by name.
    pub fn item_by_name(&self, name: &str) -> Option<DataItemId> {
        self.items
            .iter()
            .position(|it| it.name == name)
            .map(|i| DataItemId(i as u32))
    }

    /// Total number of (edge, item) incidences `Σ_e |Data(e)|` — the input
    /// size of data labeling (§6).
    pub fn incidence_count(&self) -> usize {
        self.per_edge.iter().map(|v| v.len()).sum()
    }

    /// The maximum in-degree `k = max_x |Inputs(x)|` governing the data
    /// label length factor `k + 1` (§6).
    pub fn max_inputs(&self) -> usize {
        self.items.iter().map(|it| it.consumers.len()).max().unwrap_or(0)
    }
}

/// Builder for [`RunData`].
pub struct RunDataBuilder<'a> {
    run: &'a Run,
    items: Vec<DataItem>,
    per_edge: Vec<Vec<DataItemId>>,
    names: std::collections::HashSet<String>,
}

impl<'a> RunDataBuilder<'a> {
    /// Creates an empty annotation for `run`.
    pub fn new(run: &'a Run) -> Self {
        RunDataBuilder {
            run,
            items: Vec::new(),
            per_edge: vec![Vec::new(); run.edge_count()],
            names: std::collections::HashSet::new(),
        }
    }

    /// Declares a data item flowing over `edges` (all must share a tail).
    pub fn add_item(
        &mut self,
        name: impl Into<String>,
        edges: &[RunEdgeId],
    ) -> Result<DataItemId, DataError> {
        let name = name.into();
        if edges.is_empty() {
            return Err(DataError::NoEdges(name));
        }
        if !self.names.insert(name.clone()) {
            return Err(DataError::DuplicateName(name));
        }
        for &e in edges {
            if e.index() >= self.run.edge_count() {
                return Err(DataError::BadEdge(e));
            }
        }
        let (producer, _) = self.run.edge(edges[0]);
        let mut consumers: Vec<RunVertexId> = Vec::with_capacity(edges.len());
        for &e in edges {
            let (tail, head) = self.run.edge(e);
            if tail != producer {
                return Err(DataError::MultipleProducers(name));
            }
            consumers.push(head);
        }
        consumers.sort_unstable();
        consumers.dedup();
        let id = DataItemId(self.items.len() as u32);
        for &e in edges {
            self.per_edge[e.index()].push(id);
        }
        self.items.push(DataItem {
            name,
            producer,
            consumers,
        });
        Ok(id)
    }

    /// Finishes the annotation.
    pub fn finish(self) -> RunData {
        RunData {
            items: self.items,
            per_edge: self.per_edge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfp_model::fixtures::{paper_run, paper_spec, paper_vertex};

    #[test]
    fn figure_11_items() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let a1 = paper_vertex(&spec, &run, "a1");
        let b1 = paper_vertex(&spec, &run, "b1");
        let b3 = paper_vertex(&spec, &run, "b3");
        let e_a1b1 = run.edge_ids().find(|&e| run.edge(e) == (a1, b1)).unwrap();
        let e_a1b3 = run.edge_ids().find(|&e| run.edge(e) == (a1, b3)).unwrap();
        let mut b = RunDataBuilder::new(&run);
        let x1 = b.add_item("x1", &[e_a1b1, e_a1b3]).unwrap();
        let data = b.finish();
        let item = data.item(x1);
        assert_eq!(item.producer, a1);
        assert_eq!(item.consumers, vec![b1, b3]);
        assert_eq!(data.data_on_edge(e_a1b1), &[x1]);
        assert_eq!(data.item_by_name("x1"), Some(x1));
        assert_eq!(data.item_by_name("x9"), None);
        assert_eq!(data.incidence_count(), 2);
        assert_eq!(data.max_inputs(), 2);
    }

    #[test]
    fn multiple_producers_rejected() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let e0 = RunEdgeId(0);
        let other = run
            .edge_ids()
            .find(|&e| run.edge(e).0 != run.edge(e0).0)
            .unwrap();
        let mut b = RunDataBuilder::new(&run);
        assert!(matches!(
            b.add_item("bad", &[e0, other]),
            Err(DataError::MultipleProducers(_))
        ));
    }

    #[test]
    fn duplicate_names_and_empty_edges_rejected() {
        let spec = paper_spec();
        let run = paper_run(&spec);
        let mut b = RunDataBuilder::new(&run);
        b.add_item("x", &[RunEdgeId(0)]).unwrap();
        assert!(matches!(
            b.add_item("x", &[RunEdgeId(1)]),
            Err(DataError::DuplicateName(_))
        ));
        assert!(matches!(b.add_item("y", &[]), Err(DataError::NoEdges(_))));
        assert!(matches!(
            b.add_item("z", &[RunEdgeId(9999)]),
            Err(DataError::BadEdge(_))
        ));
    }

    use wfp_model::RunEdgeId;
}
